"""Tests for the multi-tenant fleet simulator (repro.serve)."""

import json

import pytest

from repro.experiments import serve as serve_experiment
from repro.serve import (
    AdmissionController,
    AdmissionStatus,
    FleetConfig,
    TenantBudget,
    TraceConfig,
    TrainingJob,
    generate_trace,
    percentile,
    simulate_fleet,
)


def _job(job_id, *, tenant="t0", model="SqueezeNet", algorithm="SGD",
         batch=64, steps=100, sigma=1.0, dataset=20_000, arrival=0.0):
    return TrainingJob(
        job_id=job_id, tenant=tenant, model=model, algorithm=algorithm,
        batch=batch, steps=steps, noise_multiplier=sigma,
        dataset_size=dataset, arrival_s=arrival)


class TestTrainingJob:
    def test_sampling_rate(self):
        assert _job(0, batch=64, dataset=6400).sampling_rate == 0.01

    def test_sampling_rate_capped(self):
        assert _job(0, batch=100, dataset=10).sampling_rate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _job(0, algorithm="ADAM")
        with pytest.raises(ValueError):
            _job(0, batch=0)
        with pytest.raises(ValueError):
            _job(0, steps=0)
        with pytest.raises(ValueError):
            _job(0, arrival=-1.0)
        with pytest.raises(ValueError):
            _job(0, algorithm="DP-SGD", sigma=0.0)

    def test_sgd_allows_zero_sigma(self):
        assert not _job(0, algorithm="SGD", sigma=0.0).is_private


class TestTraceGenerator:
    def test_deterministic(self):
        config = TraceConfig(jobs=25, seed=3)
        assert generate_trace(config) == generate_trace(config)

    def test_seed_changes_trace(self):
        assert (generate_trace(TraceConfig(jobs=25, seed=3))
                != generate_trace(TraceConfig(jobs=25, seed=4)))

    def test_shape_and_monotone_arrivals(self):
        trace = generate_trace(TraceConfig(jobs=40, seed=1))
        assert len(trace) == 40
        assert [j.job_id for j in trace] == list(range(40))
        arrivals = [j.arrival_s for j in trace]
        assert arrivals == sorted(arrivals)
        config = TraceConfig()
        assert {j.tenant for j in trace} <= set(config.tenants)
        assert {j.model for j in trace} <= set(config.models)

    def test_empty_trace(self):
        assert generate_trace(TraceConfig(jobs=0)) == ()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(jobs=-1)
        with pytest.raises(ValueError):
            TraceConfig(mean_interarrival_s=0.0)
        with pytest.raises(ValueError):
            TraceConfig(algorithms=("SGD",), algorithm_weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            TraceConfig(steps_range=(10, 5))


class TestAdmission:
    def test_non_private_is_free(self):
        ctl = AdmissionController(TenantBudget(epsilon=1.0))
        decision = ctl.admit(_job(0, algorithm="SGD", steps=10**6))
        assert decision.status is AdmissionStatus.ADMITTED
        assert decision.epsilon_cost == 0.0
        assert ctl.epsilon_spent("t0") == 0.0

    def test_full_admit_within_budget(self):
        ctl = AdmissionController(TenantBudget(epsilon=8.0))
        job = _job(0, algorithm="DP-SGD", batch=64, dataset=20_000,
                   sigma=1.3, steps=200)
        decision = ctl.admit(job)
        assert decision.status is AdmissionStatus.ADMITTED
        assert decision.granted_steps == 200
        assert decision.epsilon_after <= 8.0

    def test_truncation(self):
        # q=256/20000, sigma=1.0: ~860 of 1500 steps fit eps=3.0.
        ctl = AdmissionController(TenantBudget(epsilon=3.0))
        job = _job(0, algorithm="DP-SGD(R)", batch=256, dataset=20_000,
                   sigma=1.0, steps=1500)
        decision = ctl.admit(job)
        assert decision.status is AdmissionStatus.TRUNCATED
        assert 0 < decision.granted_steps < 1500
        assert decision.epsilon_after <= 3.0

    def test_rejection_when_truncation_disabled(self):
        ctl = AdmissionController(TenantBudget(epsilon=3.0),
                                  allow_truncation=False)
        job = _job(0, algorithm="DP-SGD(R)", batch=256, dataset=20_000,
                   sigma=1.0, steps=1500)
        decision = ctl.admit(job)
        assert decision.status is AdmissionStatus.REJECTED
        assert decision.granted_steps == 0
        assert ctl.epsilon_spent("t0") == 0.0

    def test_budget_never_exceeded_across_jobs(self):
        ctl = AdmissionController(TenantBudget(epsilon=2.0))
        for i in range(20):
            ctl.admit(_job(i, algorithm="DP-SGD", batch=128,
                           dataset=20_000, sigma=1.0, steps=400))
            assert ctl.epsilon_spent("t0") <= 2.0 + 1e-9

    def test_per_tenant_override(self):
        ctl = AdmissionController({"vip": TenantBudget(epsilon=50.0)},
                                  default_budget=TenantBudget(epsilon=1.0))
        assert ctl.budget_for("vip").epsilon == 50.0
        assert ctl.budget_for("anyone-else").epsilon == 1.0

    def test_remaining_fraction_decreases(self):
        ctl = AdmissionController(TenantBudget(epsilon=4.0))
        assert ctl.remaining_fraction("t0") == 1.0
        ctl.admit(_job(0, algorithm="DP-SGD", batch=128, dataset=20_000,
                       sigma=1.0, steps=300))
        assert ctl.remaining_fraction("t0") < 1.0


class TestSchedulerEdgeCases:
    def test_empty_trace(self):
        report = simulate_fleet((), FleetConfig(chips=2))
        assert report.submitted == 0
        assert report.completed == 0
        assert report.rejected == 0
        assert report.makespan_s == 0.0
        assert report.utilization == 0.0
        assert report.wait_p99_s == 0.0

    def test_single_chip_fleet(self):
        trace = generate_trace(TraceConfig(jobs=10, seed=2))
        report = simulate_fleet(trace, FleetConfig(chips=1))
        assert report.n_clusters == 1
        assert report.submitted == 10
        assert report.completed + report.rejected == 10
        assert 0.0 <= report.utilization <= 1.0
        assert all(r.wait_s >= 0.0 for r in report.records)

    def test_all_jobs_rejected_budget(self):
        # All-private trace against a budget below the RDP conversion
        # floor: not even one step fits, everything is rejected.
        trace = generate_trace(TraceConfig(
            jobs=8, seed=5, algorithms=("DP-SGD(R)",),
            algorithm_weights=(1.0,)))
        report = simulate_fleet(
            trace, FleetConfig(chips=2),
            admission=AdmissionController(TenantBudget(epsilon=0.005)))
        assert report.rejected == 8
        assert report.completed == 0
        assert report.makespan_s == 0.0
        assert all(t.epsilon_spent == 0.0 for t in report.tenants)

    def test_seeded_trace_is_deterministic(self):
        trace = generate_trace(TraceConfig(jobs=30, seed=11))
        first = simulate_fleet(trace, FleetConfig(chips=3), policy="sjf",
                               admission=AdmissionController())
        second = simulate_fleet(trace, FleetConfig(chips=3), policy="sjf",
                                admission=AdmissionController())
        assert first.to_dict() == second.to_dict()

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            simulate_fleet((), policy="priority")

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(chips=0)
        with pytest.raises(ValueError):
            FleetConfig(chips=4, chips_per_cluster=3)


class TestPolicies:
    def test_sjf_reorders_queue(self):
        # Three SGD jobs hit one cluster at t=0: the first dispatches
        # immediately; of the two queued, SJF picks the short one and
        # FIFO the earlier one.
        trace = (
            _job(0, steps=1000),
            _job(1, steps=1000),
            _job(2, steps=10),
        )
        sjf = simulate_fleet(trace, FleetConfig(chips=1), policy="sjf")
        fifo = simulate_fleet(trace, FleetConfig(chips=1), policy="fifo")

        def start_order(report):
            started = sorted(report.records, key=lambda r: r.start_s)
            return [r.job.job_id for r in started]

        assert start_order(fifo) == [0, 1, 2]
        assert start_order(sjf) == [0, 2, 1]

    def test_budget_policy_favors_unspent_tenant(self):
        # Tenant "spender" burns budget at t=0; of the two jobs queued
        # behind the running one, the budget policy dispatches the
        # fresh tenant's job first even though it arrived later.
        trace = (
            _job(0, tenant="spender", algorithm="DP-SGD", batch=128,
                 dataset=20_000, sigma=1.0, steps=400),
            _job(1, tenant="spender", algorithm="DP-SGD", batch=128,
                 dataset=20_000, sigma=1.0, steps=400),
            _job(2, tenant="fresh", algorithm="SGD", steps=400),
        )
        report = simulate_fleet(trace, FleetConfig(chips=1),
                                policy="budget",
                                admission=AdmissionController(
                                    TenantBudget(epsilon=8.0)))
        started = sorted((r for r in report.records
                          if r.start_s is not None),
                         key=lambda r: r.start_s)
        assert [r.job.job_id for r in started] == [0, 2, 1]

    def test_policy_does_not_change_admission(self):
        trace = generate_trace(TraceConfig(jobs=25, seed=13))
        ledgers = []
        for policy in ("fifo", "sjf", "budget"):
            report = simulate_fleet(trace, FleetConfig(chips=2),
                                    policy=policy,
                                    admission=AdmissionController())
            ledgers.append([t.to_dict() for t in report.tenants])
        assert ledgers[0] == ledgers[1] == ledgers[2]


class TestFleetInvariants:
    def test_demo_trace_budget_and_rejections(self):
        """The acceptance invariant: epsilon never exceeds the budget
        and the default demo trace trips admission control."""
        trace = generate_trace(TraceConfig())
        report = simulate_fleet(trace, FleetConfig(chips=4),
                                admission=AdmissionController())
        assert report.rejected >= 1
        for usage in report.tenants:
            assert usage.within_budget
            assert usage.epsilon_spent <= usage.budget_epsilon + 1e-9

    def test_served_steps_bounded_by_request(self):
        trace = generate_trace(TraceConfig(jobs=20, seed=9))
        report = simulate_fleet(trace, FleetConfig(chips=2))
        for record in report.records:
            assert record.decision.granted_steps <= record.job.steps

    def test_report_serializable(self):
        trace = generate_trace(TraceConfig(jobs=10, seed=1))
        report = simulate_fleet(trace, FleetConfig(chips=2))
        payload = json.dumps(report.to_dict())
        assert "tenant-0" in payload


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_nearest_rank(self):
        data = list(range(1, 11))
        assert percentile(data, 50) == 5
        assert percentile(data, 95) == 10
        assert percentile(data, 100) == 10
        assert percentile(data, 0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestServeExperiment:
    def test_rows_serializable_and_rendered(self):
        rows = serve_experiment.run(policies=("fifo", "sjf"),
                                    trace_jobs=15, chips=2)
        json.dumps(rows)
        assert len(rows) == 2
        text = serve_experiment.render(rows)
        assert "Policy" in text
        assert "tenant-0" in text

    def test_rejects_empty_policies(self):
        with pytest.raises(ValueError):
            serve_experiment.run(policies=())

    def test_cli_policy_choices_match_scheduler(self):
        # The argparse `choices` list in __main__.py is a literal (so
        # building the parser never imports the serving stack); this
        # pins it to the scheduler's POLICIES so they cannot drift.
        from pathlib import Path

        from repro.serve.scheduler import POLICIES

        main_py = (Path(__file__).resolve().parent.parent
                   / "src" / "repro" / "__main__.py")
        expected = ("choices=["
                    + ", ".join(f'"{p}"' for p in POLICIES) + "]")
        assert expected in main_py.read_text()

    def test_default_policies_resolve_to_scheduler_list(self):
        from repro.serve.scheduler import POLICIES

        rows = serve_experiment.run(trace_jobs=5, chips=1)
        assert tuple(row["policy"] for row in rows) == POLICIES

    def test_step_cache_persists(self, tmp_path):
        from repro.experiments import runner

        cache = runner.ResultCache(tmp_path)
        serve_experiment.run(policies=("fifo",), trace_jobs=10,
                             chips=2, cache=cache)
        entries = list(tmp_path.glob("*.json"))
        assert entries
        payload = json.loads(entries[0].read_text())
        assert payload["key"]["experiment"] == "serve-step"
