"""Tests for the training-step GEMM planner (repro.training.plan)."""

import pytest

from repro.training import Algorithm, Phase, bottleneck_gemms, phase_gemms
from repro.workloads import build_model


class TestPhaseGemms:
    net = build_model("SqueezeNet")

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            phase_gemms(self.net, Algorithm.SGD, 0)

    def test_sgd_phases(self):
        plan = phase_gemms(self.net, Algorithm.SGD, 8)
        assert plan[Phase.FWD]
        assert plan[Phase.BWD_ACT_1]
        assert plan[Phase.BWD_BATCH_GRAD]
        assert not plan[Phase.BWD_EXAMPLE_GRAD]
        assert not plan[Phase.BWD_ACT_2]

    def test_dp_sgd_phases(self):
        plan = phase_gemms(self.net, Algorithm.DP_SGD, 8)
        assert plan[Phase.BWD_EXAMPLE_GRAD]
        assert not plan[Phase.BWD_BATCH_GRAD]
        assert not plan[Phase.BWD_ACT_2]

    def test_dp_sgd_r_phases(self):
        """DP-SGD(R) runs backprop twice (Algorithm 1)."""
        plan = phase_gemms(self.net, Algorithm.DP_SGD_R, 8)
        assert plan[Phase.BWD_EXAMPLE_GRAD]
        assert plan[Phase.BWD_ACT_2]
        assert plan[Phase.BWD_BATCH_GRAD]
        assert plan[Phase.BWD_ACT_2] == plan[Phase.BWD_ACT_1]

    def test_forward_identical_across_algorithms(self):
        """Forward propagation is algorithm-independent (Section III-B)."""
        plans = [phase_gemms(self.net, algo, 8) for algo in Algorithm]
        assert plans[0][Phase.FWD] == plans[1][Phase.FWD]
        assert plans[1][Phase.FWD] == plans[2][Phase.FWD]

    def test_example_gemm_counts_scale_with_batch(self):
        plan = phase_gemms(self.net, Algorithm.DP_SGD, 16)
        for gemm in plan[Phase.BWD_EXAMPLE_GRAD]:
            assert gemm.count % 16 == 0


class TestBottleneckGemms:
    def test_covers_backprop_gemm_stages(self):
        net = build_model("LSTM-small")
        plan = phase_gemms(net, Algorithm.DP_SGD_R, 4)
        expected = (len(plan[Phase.BWD_ACT_1])
                    + len(plan[Phase.BWD_EXAMPLE_GRAD])
                    + len(plan[Phase.BWD_ACT_2])
                    + len(plan[Phase.BWD_BATCH_GRAD]))
        assert len(bottleneck_gemms(net, Algorithm.DP_SGD_R, 4)) == expected

    def test_excludes_forward(self):
        from repro.workloads import GemmKind

        net = build_model("LSTM-small")
        kinds = {g.kind for g in bottleneck_gemms(net, Algorithm.DP_SGD_R, 4)}
        assert GemmKind.FORWARD not in kinds
