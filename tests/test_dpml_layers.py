"""Tests for the functional NumPy layers (repro.dpml.layers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpml import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    GradMode,
    MeanOverTime,
    ReLU,
    SeqDense,
    Sequential,
    col2im,
    im2col,
)

RNG = np.random.default_rng(42)


def finite_diff_weight_grad(layer, x, grad_out, name, eps=1e-6):
    """Numeric gradient of sum(grad_out * forward(x)) wrt a parameter."""
    param = layer.params[name]
    numeric = np.zeros_like(param)
    flat = param.reshape(-1)
    num_flat = numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float((layer.forward(x, train=False) * grad_out).sum())
        flat[i] = orig - eps
        down = float((layer.forward(x, train=False) * grad_out).sum())
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * eps)
    return numeric


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=RNG)
        assert layer.forward(RNG.normal(size=(5, 4))).shape == (5, 3)

    def test_weight_grad_matches_finite_diff(self):
        layer = Dense(3, 2, rng=np.random.default_rng(1))
        x = RNG.normal(size=(4, 3))
        g = RNG.normal(size=(4, 2))
        layer.forward(x)
        layer.backward(g, mode=GradMode.BATCH)
        numeric = finite_diff_weight_grad(layer, x, g, "weight")
        np.testing.assert_allclose(layer.grads["weight"], numeric, atol=1e-5)

    def test_bias_grad_matches_finite_diff(self):
        layer = Dense(3, 2, rng=np.random.default_rng(1))
        x = RNG.normal(size=(4, 3))
        g = RNG.normal(size=(4, 2))
        layer.forward(x)
        layer.backward(g, mode=GradMode.BATCH)
        numeric = finite_diff_weight_grad(layer, x, g, "bias")
        np.testing.assert_allclose(layer.grads["bias"], numeric, atol=1e-5)

    def test_input_grad_matches_finite_diff(self):
        layer = Dense(3, 2, rng=np.random.default_rng(1))
        x = RNG.normal(size=(2, 3))
        g = RNG.normal(size=(2, 2))
        layer.forward(x)
        dx = layer.backward(g)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(*x.shape):
            xp = x.copy()
            xp[idx] += eps
            up = float((layer.forward(xp, train=False) * g).sum())
            xp[idx] -= 2 * eps
            down = float((layer.forward(xp, train=False) * g).sum())
            numeric[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(dx, numeric, atol=1e-5)

    def test_per_example_grads_sum_to_batch(self):
        layer = Dense(5, 4, rng=RNG)
        x = RNG.normal(size=(8, 5))
        g = RNG.normal(size=(8, 4))
        layer.forward(x)
        layer.backward(g, mode=GradMode.PER_EXAMPLE)
        np.testing.assert_allclose(
            layer.per_example_grads["weight"].sum(axis=0),
            layer.grads["weight"], atol=1e-10)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.ones((1, 2)))


class TestGhostNorms:
    """The reweighting trick's core identity (Lee & Kifer)."""

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 8), seed=st.integers(0, 1000))
    def test_dense_ghost_equals_direct(self, batch, seed):
        rng = np.random.default_rng(seed)
        layer = Dense(6, 5, rng=rng)
        x = rng.normal(size=(batch, 6))
        g = rng.normal(size=(batch, 5))
        layer.forward(x)
        layer.backward(g, mode=GradMode.PER_EXAMPLE)
        direct = layer.sq_norms.copy()
        layer.zero_grads()
        layer.forward(x)
        layer.backward(g, mode=GradMode.GHOST_NORM)
        np.testing.assert_allclose(layer.sq_norms, direct, rtol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_seq_dense_ghost_equals_direct(self, seed):
        rng = np.random.default_rng(seed)
        layer = SeqDense(5, 4, rng=rng)
        x = rng.normal(size=(3, 7, 5))
        g = rng.normal(size=(3, 7, 4))
        layer.forward(x)
        layer.backward(g, mode=GradMode.PER_EXAMPLE)
        direct = layer.sq_norms.copy()
        layer.forward(x)
        layer.backward(g, mode=GradMode.GHOST_NORM)
        np.testing.assert_allclose(layer.sq_norms, direct, rtol=1e-9)

    def test_conv_ghost_equals_direct(self):
        rng = np.random.default_rng(7)
        layer = Conv2D(2, 3, kernel=3, rng=rng)
        x = rng.normal(size=(4, 2, 6, 6))
        g = rng.normal(size=(4, 3, 6, 6))
        layer.forward(x)
        layer.backward(g, mode=GradMode.PER_EXAMPLE)
        direct = layer.sq_norms.copy()
        layer.forward(x)
        layer.backward(g, mode=GradMode.GHOST_NORM)
        np.testing.assert_allclose(layer.sq_norms, direct, rtol=1e-9)

    def test_ghost_mode_stores_no_gradients(self):
        """The memory win of DP-SGD(R): nothing materialized."""
        layer = Dense(4, 4, rng=RNG)
        x = RNG.normal(size=(2, 4))
        layer.forward(x)
        layer.backward(RNG.normal(size=(2, 4)), mode=GradMode.GHOST_NORM)
        assert layer.per_example_grads == {}
        assert "weight" not in layer.grads


class TestConv2D:
    def test_forward_matches_explicit_convolution(self):
        rng = np.random.default_rng(3)
        layer = Conv2D(1, 1, kernel=3, stride=1, padding=0, bias=False,
                       rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        y = layer.forward(x, train=False)
        w = layer.params["weight"].reshape(3, 3)
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i:i + 3, j:j + 3] * w).sum()
        np.testing.assert_allclose(y[0, 0], expected, atol=1e-12)

    def test_weight_grad_matches_finite_diff(self):
        layer = Conv2D(2, 2, kernel=3, rng=np.random.default_rng(5))
        x = RNG.normal(size=(2, 2, 4, 4))
        g = RNG.normal(size=(2, 2, 4, 4))
        layer.forward(x)
        layer.backward(g, mode=GradMode.BATCH)
        numeric = finite_diff_weight_grad(layer, x, g, "weight")
        np.testing.assert_allclose(layer.grads["weight"], numeric, atol=1e-4)

    def test_channel_validation(self):
        layer = Conv2D(3, 4, rng=RNG)
        with pytest.raises(ValueError):
            layer.forward(RNG.normal(size=(1, 2, 8, 8)))

    def test_stride_output_shape(self):
        layer = Conv2D(3, 8, kernel=3, stride=2, padding=1, rng=RNG)
        y = layer.forward(RNG.normal(size=(2, 3, 8, 8)))
        assert y.shape == (2, 8, 4, 4)


class TestIm2Col:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_col2im_is_adjoint(self, seed):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint
        property that makes the conv backward pass correct."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, kernel=3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_patch_content(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, kernel=2, stride=2, padding=0)
        np.testing.assert_allclose(cols[0, 0], [0, 1, 4, 5])
        np.testing.assert_allclose(cols[0, 3], [10, 11, 14, 15])


class TestStatelessLayers:
    def test_relu_masks_gradient(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0, -3.0, 4.0]])
        y = relu.forward(x)
        np.testing.assert_allclose(y, [[0, 2, 0, 4]])
        dx = relu.backward(np.ones_like(x))
        np.testing.assert_allclose(dx, [[0, 1, 0, 1]])

    def test_flatten_round_trip(self):
        flat = Flatten()
        x = RNG.normal(size=(3, 2, 4, 4))
        y = flat.forward(x)
        assert y.shape == (3, 32)
        assert flat.backward(y).shape == x.shape

    def test_avgpool_forward(self):
        pool = AvgPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y = pool.forward(x)
        assert y[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avgpool_backward_conserves_gradient(self):
        pool = AvgPool2D(2)
        x = RNG.normal(size=(2, 3, 4, 4))
        pool.forward(x)
        g = RNG.normal(size=(2, 3, 2, 2))
        dx = pool.backward(g)
        assert dx.sum() == pytest.approx(g.sum())

    def test_mean_over_time(self):
        mot = MeanOverTime()
        x = RNG.normal(size=(2, 5, 3))
        y = mot.forward(x)
        np.testing.assert_allclose(y, x.mean(axis=1))
        dx = mot.backward(np.ones((2, 3)))
        np.testing.assert_allclose(dx, np.full((2, 5, 3), 1 / 5))


class TestSequential:
    def test_param_count(self):
        net = Sequential([Dense(4, 8, rng=RNG), ReLU(), Dense(8, 2, rng=RNG)])
        assert net.param_count() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_norms_require_backward(self):
        net = Sequential([Dense(4, 2, rng=RNG)])
        net.forward(RNG.normal(size=(2, 4)))
        with pytest.raises(RuntimeError):
            net.per_example_sq_norms()

    def test_no_weight_layers_raises(self):
        net = Sequential([ReLU()])
        with pytest.raises(RuntimeError):
            net.per_example_sq_norms()
