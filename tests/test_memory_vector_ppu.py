"""Tests for the memory system, vector unit and PPU models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.memory import MemoryConfig, MemorySystem
from repro.arch.vector import VectorUnit, VectorUnitConfig
from repro.core.ppu import PostProcessingUnit, PpuConfig


class TestMemorySystem:
    def test_defaults_match_table2(self):
        cfg = MemoryConfig()
        assert cfg.bandwidth_bytes_per_s == 450e9
        assert cfg.access_latency_cycles == 100
        assert cfg.channels == 16
        assert cfg.sram_bytes == 16 * 2**20

    def test_bytes_per_cycle(self):
        mem = MemorySystem(frequency_hz=940e6)
        assert mem.bytes_per_cycle == pytest.approx(450e9 / 940e6)

    def test_zero_bytes_zero_cycles(self):
        mem = MemorySystem()
        assert mem.transfer_cycles(0) == 0
        assert mem.transfer_cycles(-5) == 0

    def test_latency_added_once(self):
        mem = MemorySystem()
        assert mem.transfer_cycles(1) == 1 + 100

    @given(num_bytes=st.integers(1, 10**10))
    def test_transfer_monotone(self, num_bytes):
        mem = MemorySystem()
        assert (mem.transfer_cycles(num_bytes)
                <= mem.transfer_cycles(num_bytes + 1000))

    def test_seconds(self):
        mem = MemorySystem(frequency_hz=1e9)
        cycles = mem.transfer_cycles(450_000)
        assert mem.seconds(450_000) == pytest.approx(cycles / 1e9)

    def test_fits_in_sram(self):
        mem = MemorySystem()
        assert mem.fits_in_sram(16 * 2**20)
        assert not mem.fits_in_sram(16 * 2**20 + 1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MemoryConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            MemoryConfig(sram_bytes=0)


class TestVectorUnit:
    def test_ops_per_cycle(self):
        assert VectorUnitConfig().ops_per_cycle == 128 * 8

    def test_elementwise_cycles(self):
        vu = VectorUnit()
        assert vu.elementwise_cycles(1024) == 1
        assert vu.elementwise_cycles(1025) == 2

    def test_zero_elems(self):
        vu = VectorUnit()
        assert vu.elementwise_cycles(0) == 0
        assert vu.reduction_cycles(0) == 0

    def test_reduction_overhead(self):
        """Reductions pay the permute overhead (Section IV-C)."""
        vu = VectorUnit()
        elems = 100_000
        assert vu.reduction_cycles(elems) == 2 * vu.elementwise_cycles(elems)

    @given(elems=st.integers(1, 10**8))
    def test_cycles_positive(self, elems):
        vu = VectorUnit()
        assert vu.elementwise_cycles(elems) >= 1


class TestPpu:
    def test_levels_for_128(self):
        """A 128-wide tree has log2(128) = 7 levels (Figure 11)."""
        assert PpuConfig().levels == 7

    def test_sustainable_bandwidth_matches_paper(self):
        """Section IV-C: 940 MHz x 8 rows x 128 elems x 4 B = 3.85 TB/s."""
        ppu = PpuConfig()
        assert ppu.sustainable_bytes_per_s == pytest.approx(3.85e12, rel=0.01)

    def test_elements_per_cycle(self):
        assert PpuConfig().elements_per_cycle == 8 * 128

    def test_matches_drain_rate(self):
        ppu = PostProcessingUnit()
        assert ppu.matches_drain_rate(8, 128)
        assert not ppu.matches_drain_rate(16, 128)
        assert not ppu.matches_drain_rate(8, 256)

    def test_flush_includes_tree_depth(self):
        ppu = PostProcessingUnit()
        assert ppu.flush_cycles() >= 7

    def test_reduction_throughput(self):
        """Input loading is O(1) per beat: N elements need ~N/1024 beats."""
        ppu = PostProcessingUnit()
        big = ppu.reduction_cycles(1024 * 1000)
        assert big == 1000 + ppu.flush_cycles()

    def test_reduction_zero(self):
        assert PostProcessingUnit().reduction_cycles(0) == 0

    @given(elems=st.integers(1, 10**7))
    def test_reduction_monotone(self, elems):
        ppu = PostProcessingUnit()
        assert ppu.reduction_cycles(elems) <= ppu.reduction_cycles(elems * 2)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PpuConfig(tree_width=1)
        with pytest.raises(ValueError):
            PpuConfig(num_trees=0)
