"""Tests for the ``repro.analysis`` invariant linter.

Each rule gets one passing and one failing fixture (lint runs over a
temp file, so the fixtures cannot pollute the repo's own lint state),
plus a meta-test asserting the repo itself lints clean modulo the
checked-in baseline, and a cache regression test for the stale-hit bug
rule R002 originally surfaced in the design-space sweep.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import (
    Project, all_rules, load_baseline, run_rules, split_baseline,
)
from repro.analysis.units import unit_of_name

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_CLI = REPO_ROOT / "tools" / "repro_lint.py"
BASELINE = REPO_ROOT / "tools" / "lint_baseline.txt"

# Composed at runtime so the drift rule's textual scan of tests/ does
# not count this file as the fixture's "pinned equivalence test".
HIDDEN_BATCH_NAME = "drifted" + "_batch"


def lint_source(tmp_path, source, select=None):
    """Findings for one fixture file, optionally filtered by rule id."""
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    project = Project.load(REPO_ROOT, [path])
    rules = [rule for rule in all_rules()
             if select is None or rule.rule_id in select]
    return run_rules(project, rules)


def rule_ids(findings):
    return sorted({finding.rule_id for finding in findings})


# ---------------------------------------------------------------------------
# R001: units of measure
# ---------------------------------------------------------------------------

def test_units_suffix_inference():
    assert unit_of_name("total_cycles") == "cycles"
    assert unit_of_name("arrival_s") == "seconds"
    assert unit_of_name("total_seconds") == "seconds"
    assert unit_of_name("payload_bytes") == "bytes"
    assert unit_of_name("frequency_hz") == "hz"
    assert unit_of_name("target_eps") == "eps"
    # batch suffixes strip; compound units have no single unit
    assert unit_of_name("allreduce_seconds_batch") == "seconds"
    assert unit_of_name("bytes_per_cycle") is None
    assert unit_of_name("link_bandwidth_bytes_per_s") is None
    assert unit_of_name("chips") is None


def test_units_pass(tmp_path):
    findings = lint_source(tmp_path, """
        def total_cycles(compute_cycles, drain_cycles, frequency_hz):
            busy_cycles = compute_cycles + drain_cycles
            wall_seconds = busy_cycles / frequency_hz
            del wall_seconds
            return max(busy_cycles, drain_cycles)
    """, select={"R001"})
    assert findings == []


def test_units_fail(tmp_path):
    findings = lint_source(tmp_path, """
        def total_cycles(compute_cycles, wall_seconds):
            total = compute_cycles + wall_seconds
            return total
    """, select={"R001"})
    assert rule_ids(findings) == ["R001"]
    assert "mixes cycles and seconds" in findings[0].message


def test_units_flags_return_and_keyword(tmp_path):
    findings = lint_source(tmp_path, """
        def run(x_seconds):
            record(busy_cycles=x_seconds)

        def total_seconds(x_cycles):
            return x_cycles
    """, select={"R001"})
    messages = " / ".join(finding.message for finding in findings)
    assert "busy_cycles" in messages
    assert "declares seconds but returns cycles" in messages


def test_units_conversions_are_clean(tmp_path):
    findings = lint_source(tmp_path, """
        def seconds(cycles, frequency_hz):
            return cycles / frequency_hz

        def cycles(seconds, frequency_hz):
            return seconds * frequency_hz
    """, select={"R001"})
    assert findings == []


# ---------------------------------------------------------------------------
# R002: cache-key completeness
# ---------------------------------------------------------------------------

CACHE_FIXTURE = """
    from repro.experiments import runner

    def evaluate_points_batched(points):
        return [point[0] * point[1] + point[{index}] for point in points]

    def run(cache=None):
        work = [(1, 2, 3)]
        return runner.cached_batch(
            evaluate_points_batched, work, cache=cache,
            key_fn=lambda point: {{"experiment": "fixture",
                                   "a": point[0], "b": point[1],
                                   "c": point[2]}})
"""


def test_cache_key_pass(tmp_path):
    findings = lint_source(
        tmp_path, CACHE_FIXTURE.format(index=2), select={"R002"})
    assert findings == []


def test_cache_key_fail_index(tmp_path):
    findings = lint_source(
        tmp_path, CACHE_FIXTURE.format(index=3), select={"R002"})
    assert rule_ids(findings) == ["R002"]
    assert "[3]" in findings[0].message


def test_cache_key_fail_attribute(tmp_path):
    findings = lint_source(tmp_path, """
        from repro.experiments import runner

        def predict(fleet, job, cache=None):
            key = {"kind": fleet.kind, "model": job.model}
            return runner.run_cached(
                key, lambda: simulate(fleet.kind, fleet.chips, job.model),
                cache=cache)
    """, select={"R002"})
    assert rule_ids(findings) == ["R002"]
    assert "fleet.chips" in findings[0].message


def test_cache_key_alias_covers_derived_value(tmp_path):
    findings = lint_source(tmp_path, """
        import math
        from repro.experiments import runner

        def predict(fleet, job, cache=None):
            batch = math.ceil(job.batch / fleet.width) * fleet.width
            key = {"kind": fleet.kind, "batch": batch}
            return runner.run_cached(
                key, lambda: simulate(fleet.kind, batch), cache=cache)
    """, select={"R002"})
    assert findings == []


# ---------------------------------------------------------------------------
# R003: scalar <-> batched drift
# ---------------------------------------------------------------------------

def test_drift_pass(tmp_path):
    findings = lint_source(tmp_path, """
        def evaluate(engine, size, overlap=True):
            return size if overlap else -size

        def evaluates_batch(engine, sizes, overlaps=True):
            return [evaluate(engine, s, overlaps) for s in sizes]
    """, select={"R003"})
    # the signature matches; the only finding may be the missing test,
    # which this very file's literals satisfy ("evaluates_batch").
    assert findings == []


def test_drift_fail_signature_and_test(tmp_path):
    findings = lint_source(tmp_path, f"""
        def drifted(engine, size, overlap=True):
            return size if overlap else -size

        def {HIDDEN_BATCH_NAME}(engine, sizes):
            return [drifted(engine, s) for s in sizes]
    """, select={"R003"})
    messages = " / ".join(finding.message for finding in findings)
    assert "parameter 'overlap' has no batched counterpart" in messages
    assert "no pinned equivalence test" in messages


def test_drift_packed_work_tuples_exempt(tmp_path):
    findings = lint_source(tmp_path, """
        def sample(name, height, width):
            return name, height, width

        def samples_batch(points):
            return [sample(*point) for point in points]
    """, select={"R003"})
    # equivalence-test check still applies; signature check is exempt
    assert all("counterpart" not in f.message for f in findings)


# ---------------------------------------------------------------------------
# R004: determinism
# ---------------------------------------------------------------------------

def test_determinism_pass(tmp_path):
    findings = lint_source(tmp_path, """
        import random
        import numpy as np

        def make(seed):
            rng = np.random.default_rng(seed)
            legacy = random.Random(seed)
            return rng, legacy
    """, select={"R004"})
    assert findings == []


def test_determinism_fail(tmp_path):
    findings = lint_source(tmp_path, """
        import random
        import numpy as np
        from numpy.random import default_rng

        def make():
            np.random.shuffle([1, 2, 3])
            a = np.random.default_rng()
            b = default_rng()
            c = random.random()
            d = random.Random()
            return a, b, c, d
    """, select={"R004"})
    assert len(findings) == 5
    assert rule_ids(findings) == ["R004"]


# ---------------------------------------------------------------------------
# R005: oracle-guard
# ---------------------------------------------------------------------------

ENGINE_FIXTURE = """
    class Base:
        grid_axes = None

        def tiles(self, gemm):
            raise NotImplementedError

        def tile_cycle_phases(self, tile):
            raise NotImplementedError

        def tile_sram_traffic(self, tile):
            raise NotImplementedError

        def tile_grid(self, gemm):
            return None

        def grid_tile_dims(self, gemm, outer, inner):
            raise NotImplementedError

        def tile_phases_batch(self, m, k, n):
            raise NotImplementedError

        def tile_traffic_batch(self, m, k, n):
            raise NotImplementedError


    class Closed(Base):
        grid_axes = ("m", "n")
    {body}
"""

FULL_BODY = "\n".join(
    f"""
        def {name}(self, *args):
            return 1"""
    for name in ("tiles", "tile_cycle_phases", "tile_sram_traffic",
                 "tile_grid", "grid_tile_dims", "tile_phases_batch",
                 "tile_traffic_batch"))


def test_oracle_guard_pass(tmp_path):
    findings = lint_source(
        tmp_path, ENGINE_FIXTURE.format(body=FULL_BODY), select={"R005"})
    assert findings == []


def test_oracle_guard_fail(tmp_path):
    # Base stubs (raise / return None / abstract) are not real
    # implementations, so the bare subclass misses all seven.
    findings = lint_source(
        tmp_path, ENGINE_FIXTURE.format(body="    pass"), select={"R005"})
    assert len(findings) == 7
    assert rule_ids(findings) == ["R005"]
    assert all("Closed" in finding.message for finding in findings)


# ---------------------------------------------------------------------------
# R006: wall-clock isolation
# ---------------------------------------------------------------------------

def test_walltime_flags_module_and_bare_clock_reads(tmp_path):
    findings = lint_source(tmp_path, """
        import time
        from time import perf_counter as pc

        def simulate():
            start = time.time()
            mid = time.monotonic()
            end = pc()
            return end - start + mid
    """, select={"R006"})
    assert rule_ids(findings) == ["R006"]
    assert len(findings) == 3
    assert any("time.time" in f.message for f in findings)
    assert any("'pc'" in f.message for f in findings)


def test_walltime_flags_datetime_now(tmp_path):
    findings = lint_source(tmp_path, """
        import datetime

        def stamp():
            return datetime.datetime.now()
    """, select={"R006"})
    assert rule_ids(findings) == ["R006"]


def test_walltime_allows_sleep_and_simulated_time(tmp_path):
    findings = lint_source(tmp_path, """
        import time

        def simulate(now_s, service_s):
            time.sleep(0.0)
            return now_s + service_s
    """, select={"R006"})
    assert findings == []


def test_walltime_allowlists_obs_and_run_all():
    """The sanctioned homes really are exempt (they read host clocks)."""
    from repro.analysis.walltime import WalltimeRule

    project = Project.load(REPO_ROOT, [
        REPO_ROOT / "src" / "repro" / "obs",
        REPO_ROOT / "src" / "repro" / "experiments" / "run_all.py"])
    assert run_rules(project, [WalltimeRule()]) == []
    # Sanity: the profiler actually contains host-clock reads, so the
    # empty result above is the allowlist at work, not a no-op scan.
    source = (REPO_ROOT / "src" / "repro" / "obs" / "profile.py")
    assert "perf_counter" in source.read_text()


# ---------------------------------------------------------------------------
# R007: link-rate homing
# ---------------------------------------------------------------------------

def test_bandwidth_flags_literal_rates(tmp_path):
    findings = lint_source(tmp_path, """
        def price(payload_bytes, bandwidth=100e9, latency=1e-6):
            return payload_bytes / bandwidth + latency

        cross_bandwidth = 25e9
        total = price(10, bandwidth=2 * 2**30)
    """, select={"R007"})
    assert rule_ids(findings) == ["R007"]
    assert len(findings) == 4
    assert any("'cross_bandwidth'" in f.message for f in findings)


def test_bandwidth_allows_named_constants_and_memory_rates(tmp_path):
    findings = lint_source(tmp_path, """
        from repro.arch.interconnect import DEFAULT_LINK_BANDWIDTH_BYTES_PER_S

        dram_bandwidth_bytes_per_s = 900e9
        sram_latency_s = 1e-9

        def price(payload_bytes,
                  bandwidth=DEFAULT_LINK_BANDWIDTH_BYTES_PER_S):
            return payload_bytes / bandwidth
    """, select={"R007"})
    assert findings == []


def test_bandwidth_allowlists_interconnect_home():
    """The sanctioned homes hold literal rates without findings."""
    from repro.analysis.bandwidth import BandwidthHomingRule

    project = Project.load(REPO_ROOT, [
        REPO_ROOT / "src" / "repro" / "arch" / "interconnect.py",
        REPO_ROOT / "src" / "repro" / "arch" / "memory.py",
        REPO_ROOT / "src" / "repro" / "arch" / "gpu.py"])
    assert run_rules(project, [BandwidthHomingRule()]) == []
    # Sanity: the fabric presets really are literal link rates, so the
    # empty result above is the allowlist at work, not a no-op scan.
    source = (REPO_ROOT / "src" / "repro" / "arch" / "interconnect.py")
    assert "300e9" in source.read_text()


# ---------------------------------------------------------------------------
# framework: pragmas, baseline, CLI, registry
# ---------------------------------------------------------------------------

def test_inline_pragma_suppresses(tmp_path):
    findings = lint_source(tmp_path, """
        def total_cycles(a_cycles, b_seconds):
            return a_cycles + b_seconds  # repro-lint: ignore[R001] fixture
    """, select={"R001"})
    assert findings == []


def test_pragma_is_rule_specific(tmp_path):
    findings = lint_source(tmp_path, """
        def total_cycles(a_cycles, b_seconds):
            return a_cycles + b_seconds  # repro-lint: ignore[R004] wrong id
    """, select={"R001"})
    assert rule_ids(findings) == ["R001"]


def test_baseline_split(tmp_path):
    source = """
        def total_cycles(a_cycles, b_seconds):
            return a_cycles + b_seconds
    """
    findings = lint_source(tmp_path, source, select={"R001"})
    assert findings
    new, baselined, stale = split_baseline(
        findings, [finding.key for finding in findings] + ["bogus::R9::x"])
    assert new == [] and len(baselined) == len(findings)
    assert stale == ["bogus::R9::x"]


def test_registry_has_eight_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == ["R001", "R002", "R003", "R004", "R005", "R006",
                   "R007", "R008"]
    assert all(rule.title for rule in all_rules())


def test_repo_lints_clean_modulo_baseline():
    project = Project.load(REPO_ROOT, [REPO_ROOT / "src" / "repro"])
    findings = run_rules(project)
    new, _, stale = split_baseline(findings, load_baseline(BASELINE))
    assert not new, "new lint findings:\n" + "\n".join(
        finding.render() for finding in new)
    assert not stale, f"stale baseline entries: {stale}"


def test_cli_strict_passes_on_repo():
    result = subprocess.run(
        [sys.executable, str(LINT_CLI), "--strict"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stdout + result.stderr


def test_cli_reports_seeded_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(4)\n")
    result = subprocess.run(
        [sys.executable, str(LINT_CLI), "--strict", str(bad)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 1
    assert "R004" in result.stdout


# ---------------------------------------------------------------------------
# regression: the stale-hit bug R002 surfaced in the design-space sweep
# ---------------------------------------------------------------------------

def test_design_space_key_includes_model_shape(tmp_path):
    """Key v2: sweeps differing only in seq_len must not share entries.

    Key v1 hashed only (model, height, width), so a second sweep with a
    different sequence length silently returned the first sweep's rows.
    """
    from repro.experiments import design_space
    from repro.experiments.runner import ResultCache

    cache = ResultCache(tmp_path / "cache")
    short = design_space.run(models=("BERT-large",), heights=(64,),
                             seq_len=32, cache=cache)
    long = design_space.run(models=("BERT-large",), heights=(64,),
                            seq_len=64, cache=cache)
    assert len(list((tmp_path / "cache").glob("*.json"))) == 2
    assert short[0]["ws_ms"] != long[0]["ws_ms"]

    # and the cached row is the one the scalar oracle would compute
    oracle = design_space.evaluate_point("BERT-large", 64, 64, seq_len=64)
    assert long[0] == oracle
