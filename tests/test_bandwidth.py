"""Tests for the Table I SRAM bandwidth model (repro.arch.bandwidth)."""

from repro.arch.bandwidth import (
    os_bandwidth,
    outer_product_bandwidth,
    ws_bandwidth,
)
from repro.arch.engine import ArrayConfig


class TestTable1Defaults:
    """Exact Table I values for the 128x128 default array."""

    def test_ws_total(self):
        """(2*PE_H + 20*PE_W) bytes/clock = 2816 for 128x128."""
        assert ws_bandwidth().total == 2 * 128 + 20 * 128

    def test_os_total(self):
        """(2*PE_H + 34*PE_W) bytes/clock = 4608 for 128x128."""
        assert os_bandwidth().total == 2 * 128 + 34 * 128

    def test_ws_components(self):
        bw = ws_bandwidth()
        assert bw.lhs_read == 128 * 2
        assert bw.rhs_read == 128 * 8 * 2
        assert bw.output_write == 128 * 4

    def test_os_components(self):
        bw = os_bandwidth()
        assert bw.lhs_read == 128 * 2
        assert bw.rhs_read == 128 * 2
        assert bw.output_write == 128 * 8 * 4

    def test_outer_product_identical_to_os(self):
        """Section IV-D: outer-product needs are no worse than OS."""
        assert outer_product_bandwidth() == os_bandwidth()

    def test_os_needs_more_than_ws(self):
        """The paper's trade-off: OS-style drain costs SRAM bandwidth."""
        assert os_bandwidth().total > ws_bandwidth().total


class TestTable1Scaling:
    def test_scales_with_array(self):
        cfg = ArrayConfig(height=64, width=256)
        assert ws_bandwidth(cfg).total == 2 * 64 + 20 * 256
        assert os_bandwidth(cfg).total == 2 * 64 + 34 * 256

    def test_fill_rate_raises_ws_rhs(self):
        cfg = ArrayConfig(fill_rows_per_cycle=16)
        assert ws_bandwidth(cfg).rhs_read == 128 * 16 * 2

    def test_drain_rate_raises_os_output(self):
        cfg = ArrayConfig(drain_rows_per_cycle=16)
        assert os_bandwidth(cfg).output_write == 128 * 16 * 4
