"""Tests for ``repro.obs``: tracing, metrics, profiling, cache stats.

The load-bearing contracts:

* every emitted event satisfies the Chrome-trace schema
  (:func:`repro.obs.validate_events` — the same check Perfetto's
  loader effectively applies);
* identical simulation inputs produce byte-identical trace files
  (the recorder never reads a host clock);
* a scalar and a streaming fleet run of the same trace produce
  *identical* span sets and metrics documents;
* observability off (the default) changes nothing — reports and
  dispatch logs are equal with and without an observer attached.
"""

import json

import pytest

from repro.obs import (
    Counter,
    FleetObs,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    TimeSeries,
    TraceRecorder,
    load_trace,
    render_summary,
    summarize,
    validate_events,
)
from repro.serve import (
    AdmissionController,
    FleetConfig,
    TenantBudget,
    TraceConfig,
    generate_trace,
    generate_trace_arrays,
    simulate_fleet,
    simulate_fleet_streaming,
)
from repro.serve.autoscale import AutoscalerPolicy


# ---------------------------------------------------------------------------
# TraceRecorder: schema, ids, round trip
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_all_event_kinds_schema_valid(self):
        rec = TraceRecorder()
        pid = rec.pid("proc")
        tid = rec.tid(pid, "thread")
        rec.span("work", 1.0, 2.0, pid=pid, tid=tid, args={"n": 3})
        rec.instant("mark", 1.5, pid=pid, tid=tid)
        rec.counter("load", 2.0, {"queued": 4}, pid=pid)
        rec.async_span("overlap", 0.5, 1.0, span_id=1, pid=pid, tid=tid)
        assert validate_events(rec.events) == []
        # Required keys per the Chrome trace event format.
        span = next(e for e in rec.events if e["ph"] == "X")
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            assert key in span
        assert span["ts"] == 1.0e6 and span["dur"] == 2.0e6
        instant = next(e for e in rec.events if e["ph"] == "i")
        assert instant["s"] == "t"
        begin = next(e for e in rec.events if e["ph"] == "b")
        end = next(e for e in rec.events if e["ph"] == "e")
        assert begin["id"] == end["id"] == 1
        assert end["ts"] == pytest.approx(1.5e6)

    def test_pid_tid_allocation_deterministic(self):
        rec = TraceRecorder()
        assert rec.pid("a") == 0
        assert rec.pid("b") == 1
        assert rec.pid("a") == 0  # idempotent, no second metadata event
        assert rec.tid(0, "x") == 0
        assert rec.tid(1, "y") == 0  # tids are per-process
        assert rec.tid(0, "z") == 1
        metas = [e for e in rec.events if e["ph"] == "M"]
        assert len(metas) == 5  # 2 process_name + 3 thread_name
        assert validate_events(rec.events) == []

    def test_write_load_round_trip(self, tmp_path):
        rec = TraceRecorder()
        rec.span("s", 0.0, 1.0, pid=rec.pid("p"))
        path = rec.write(tmp_path / "t.json")
        events = load_trace(path)
        assert events == rec.events
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"

    def test_load_trace_accepts_bare_list(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([
            {"name": "s", "ph": "X", "ts": 0, "dur": 1,
             "pid": 0, "tid": 0}]))
        assert len(load_trace(path)) == 1

    def test_load_trace_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "s", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}))
        with pytest.raises(ValueError, match="missing dur"):
            load_trace(path)
        path.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
        with pytest.raises(ValueError, match="unknown ph"):
            load_trace(path)

    def test_summarize_and_render(self):
        rec = TraceRecorder()
        pid = rec.pid("proc")
        rec.span("short", 0.0, 1.0, pid=pid)
        rec.span("long", 1.0, 5.0, pid=pid)
        rec.instant("mark", 2.0, pid=pid)
        summary = summarize(rec.events)
        assert summary["events"] == len(rec.events)
        (proc,) = summary["processes"]
        assert proc["name"] == "proc"
        assert proc["spans"] == 2 and proc["instants"] == 1
        assert proc["longest_span"]["name"] == "long"
        assert proc["end_ts"] == pytest.approx(6.0e6)
        text = render_summary(summary)
        assert "proc: 2 spans" in text
        assert "'long'" in text


# ---------------------------------------------------------------------------
# Training-step tracing
# ---------------------------------------------------------------------------
class TestTrainingTrace:
    @staticmethod
    def _sim(recorder=None):
        from repro.core import build_accelerator
        from repro.training import (
            Algorithm, max_batch_size, simulate_training_step,
        )
        from repro.workloads import build_model

        network = build_model("SqueezeNet")
        accel = build_accelerator("diva", with_ppu=True)
        batch = max_batch_size(network, Algorithm.DP_SGD)
        return simulate_training_step(
            network, Algorithm.DP_SGD_R, accel, batch, recorder=recorder)

    def test_recorder_does_not_change_report(self):
        rec = TraceRecorder()
        traced = self._sim(recorder=rec)
        plain = self._sim()
        assert traced.phases == plain.phases
        assert traced.total_seconds == plain.total_seconds
        assert rec.events and validate_events(rec.events) == []

    def test_phase_spans_cover_the_step(self):
        rec = TraceRecorder()
        report = self._sim(recorder=rec)
        phase_spans = [e for e in rec.events
                       if e["ph"] == "X" and e.get("cat") == "phase"]
        total_us = sum(e["dur"] for e in phase_spans)
        assert total_us == pytest.approx(report.total_seconds * 1e6)
        # Phases are laid back to back: each starts where the previous
        # ended.
        cursor = 0.0
        for span in phase_spans:
            assert span["ts"] == pytest.approx(cursor)
            cursor += span["dur"]
        # Per-op spans (gemm + vector) partition each phase.
        op_us = sum(e["dur"] for e in rec.events
                    if e["ph"] == "X" and e.get("cat") in ("gemm",
                                                           "vector"))
        assert op_us == pytest.approx(total_us)

    def test_sharded_step_emits_hidden_overlap_slice(self):
        from repro.arch.interconnect import InterconnectConfig
        from repro.core import build_cluster
        from repro.training import (
            Algorithm, simulate_sharded_training_step,
        )
        from repro.workloads import build_model

        cluster = build_cluster(
            "diva", n_chips=4,
            interconnect=InterconnectConfig(bucket_bytes=25 * 2**20))
        rec = TraceRecorder()
        report = simulate_sharded_training_step(
            build_model("ResNet-50"), Algorithm.DP_SGD, cluster, 256,
            recorder=rec)
        assert validate_events(rec.events) == []
        assert report.comm.hidden_cycles > 0
        begin = next(e for e in rec.events if e["ph"] == "b")
        end = next(e for e in rec.events if e["ph"] == "e")
        comm = next(e for e in rec.events
                    if e["ph"] == "X" and e.get("cat") == "comm")
        # The hidden slice ends exactly where the exposed span begins.
        assert end["ts"] == pytest.approx(comm["ts"])
        hidden_s = report.comm.hidden_cycles / report.frequency_hz
        assert end["ts"] - begin["ts"] == pytest.approx(hidden_s * 1e6)

    def test_deterministic_bytes(self, tmp_path):
        paths = []
        for i in range(2):
            rec = TraceRecorder()
            self._sim(recorder=rec)
            paths.append(rec.write(tmp_path / f"t{i}.json"))
        assert paths[0].read_bytes() == paths[1].read_bytes()


# ---------------------------------------------------------------------------
# Fleet observability
# ---------------------------------------------------------------------------
AUTOSCALE = AutoscalerPolicy(max_clusters=32, provision_delay_s=30.0,
                             cooldown_s=20.0, target_p99_wait_s=60.0)


def _fleet_inputs(jobs=2_000, seed=13):
    config = TraceConfig(jobs=jobs, seed=seed, mean_interarrival_s=0.5)
    arrays = generate_trace_arrays(config)
    return arrays, arrays.jobs(), FleetConfig(chips=4)


class TestFleetObs:
    def test_constructor_requires_a_sink(self):
        with pytest.raises(ValueError, match="recorder"):
            FleetObs()

    def test_export_requires_a_run(self):
        obs = FleetObs(metrics=MetricsRegistry())
        with pytest.raises(RuntimeError, match="no run attached"):
            obs.export()

    def test_one_obs_per_run(self):
        arrays, jobs, fleet = _fleet_inputs(jobs=50)
        obs = FleetObs(metrics=MetricsRegistry())
        simulate_fleet(
            jobs, fleet, policy="fifo", obs=obs,
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        with pytest.raises(RuntimeError, match="already observed"):
            simulate_fleet(
                jobs, fleet, policy="fifo", obs=obs,
                admission=AdmissionController(TenantBudget(epsilon=3.0)))

    def test_disabled_path_is_byte_identical(self):
        """obs=None (the default) changes no decision and no output."""
        arrays, jobs, fleet = _fleet_inputs()
        log_plain: list = []
        log_obs: list = []
        plain = simulate_fleet(
            jobs, fleet, policy="sjf", autoscaler=AUTOSCALE,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            dispatch_log=log_plain)
        observed = simulate_fleet(
            jobs, fleet, policy="sjf", autoscaler=AUTOSCALE,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            dispatch_log=log_obs,
            obs=FleetObs(recorder=TraceRecorder(),
                         metrics=MetricsRegistry()))
        assert log_plain == log_obs
        assert plain.to_dict() == observed.to_dict()
        assert plain.render() == observed.render()

    @pytest.mark.parametrize("policy", ("fifo", "sjf", "budget"))
    @pytest.mark.parametrize("autoscaled", (False, True),
                             ids=("static", "autoscaled"))
    def test_scalar_and_streaming_spans_identical(self, policy,
                                                  autoscaled):
        """Same trace, either simulator: identical events and metrics."""
        arrays, jobs, fleet = _fleet_inputs(jobs=10_000)
        autoscaler = AUTOSCALE if autoscaled else None
        outputs = []
        for mode in ("scalar", "streaming"):
            recorder = TraceRecorder()
            metrics = MetricsRegistry()
            obs = FleetObs(recorder=recorder, metrics=metrics)
            admission = AdmissionController(TenantBudget(epsilon=3.0))
            if mode == "scalar":
                simulate_fleet(jobs, fleet, policy=policy,
                               autoscaler=autoscaler,
                               admission=admission, obs=obs)
            else:
                simulate_fleet_streaming(arrays, fleet, policy=policy,
                                         autoscaler=autoscaler,
                                         admission=admission, obs=obs)
            obs.export()
            assert validate_events(recorder.events) == []
            outputs.append((recorder.to_json(),
                            json.dumps(metrics.to_dict())))
        assert outputs[0][0] == outputs[1][0]
        assert outputs[0][1] == outputs[1][1]

    def test_exported_content_reflects_the_run(self):
        arrays, jobs, fleet = _fleet_inputs()
        recorder = TraceRecorder()
        metrics = MetricsRegistry()
        obs = FleetObs(recorder=recorder, metrics=metrics)
        report = simulate_fleet(
            jobs, fleet, policy="fifo", autoscaler=AUTOSCALE,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            obs=obs)
        obs.export()
        obs.export()  # idempotent
        runs = [e for e in recorder.events
                if e["ph"] == "X" and e.get("cat") == "run"]
        rejects = [e for e in recorder.events
                   if e["ph"] == "i" and e.get("cat") == "admission"]
        scales = [e for e in recorder.events
                  if e["ph"] == "i" and e.get("cat") == "autoscale"]
        assert len(runs) == report.completed
        assert len(rejects) == report.rejected
        assert len(scales) == len(report.scale_events)
        assert any(e["ph"] == "C" for e in recorder.events)
        # Metrics fold the same totals.
        doc = metrics.to_dict()
        jobs_total = sum(m["value"] for m in doc["metrics"]
                         if m["name"] == "jobs")
        assert jobs_total == report.submitted
        truncated = sum(m["value"] for m in doc["metrics"]
                        if m["name"] == "jobs"
                        and m["labels"]["outcome"] == "truncated")
        assert truncated == report.truncated
        waits = next(m for m in doc["metrics"] if m["name"] == "wait_s")
        assert waits["count"] == report.completed


# ---------------------------------------------------------------------------
# Metrics primitives
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.to_dict() == {"value": 2.0}

    def test_histogram_quantiles_exact_below_warmup(self):
        histogram = Histogram()
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(49.5)
        assert histogram.maximum == 99.0
        assert histogram.quantile(0.5) == pytest.approx(49.0, abs=1.0)
        doc = histogram.to_dict()
        assert doc["count"] == 100
        assert "p50" in doc and "p99" in doc

    def test_timeseries_windows(self):
        series = TimeSeries(window_s=10.0)
        series.add(1.0, 5.0)
        series.add(9.0, 3.0)
        series.add(25.0, 7.0)  # skips window 1 entirely
        doc = series.to_dict()
        assert doc["window_s"] == 10.0
        assert doc["points"] == [
            {"t": 0.0, "count": 2, "sum": 8.0, "min": 3.0, "max": 5.0,
             "last": 3.0},
            {"t": 20.0, "count": 1, "sum": 7.0, "min": 7.0, "max": 7.0,
             "last": 7.0},
        ]

    def test_timeseries_rejects_time_travel(self):
        series = TimeSeries(window_s=10.0)
        series.add(25.0, 1.0)
        with pytest.raises(ValueError, match="precedes"):
            series.add(5.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            TimeSeries(window_s=0.0)

    def test_registry_labels_and_kind_conflicts(self):
        registry = MetricsRegistry()
        a = registry.counter("jobs", policy="fifo", tenant="t0")
        b = registry.counter("jobs", tenant="t0", policy="fifo")
        assert a is b  # label order does not matter
        assert registry.counter("jobs", policy="sjf", tenant="t0") is not a
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("jobs", policy="fifo", tenant="t0")

    def test_registry_document_deterministic(self, tmp_path):
        def build():
            registry = MetricsRegistry(window_s=30.0)
            registry.counter("z").inc()
            registry.gauge("a", policy="x").set(1.0)
            registry.series("q").add(3.0, 2.0)
            return registry

        first, second = build().to_dict(), build().to_dict()
        assert first == second
        assert [m["name"] for m in first["metrics"]] == ["a", "q", "z"]
        path = build().write(tmp_path / "m.json")
        assert json.loads(path.read_text()) == first


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------
class TestProfiler:
    def test_stages_and_counters(self, tmp_path):
        profiler = Profiler("unit")
        for _ in range(3):
            with profiler.stage("work"):
                pass
        profiler.count("items", 5)
        profiler.count("items", 2)
        manifest = profiler.manifest()
        assert manifest["profile"] == "unit"
        assert manifest["stages"]["work"]["calls"] == 3
        assert manifest["stages"]["work"]["seconds"] >= 0.0
        assert manifest["counters"] == {"items": 7.0}
        assert manifest["wall_seconds"] > 0.0
        assert profiler.stage_seconds("missing") == 0.0
        path = profiler.write(tmp_path / "p.json")
        assert json.loads(path.read_text())["profile"] == "unit"

    def test_stage_times_exceptions_too(self):
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("boom"):
                raise RuntimeError("x")
        assert profiler.manifest()["stages"]["boom"]["calls"] == 1


# ---------------------------------------------------------------------------
# Cache stats + profiled runner stages
# ---------------------------------------------------------------------------
class TestCacheStats:
    def test_lookup_statuses(self, tmp_path):
        from repro.experiments.runner import ResultCache

        cache = ResultCache(tmp_path)
        assert cache.lookup("aaaa") == (None, "miss")
        cache.put("aaaa", {"k": 1}, {"v": 2})
        assert cache.lookup("aaaa") == ({"v": 2}, "hit")
        cache.path("bbbb").write_text("{ not json")
        assert cache.lookup("bbbb") == (None, "stale")
        cache.path("cccc").write_text(json.dumps({"key": 1}))
        assert cache.lookup("cccc") == (None, "stale")

    def test_cached_batch_tallies_and_profiles(self, tmp_path):
        from repro.experiments.runner import (
            CacheStats, ResultCache, cached_batch,
        )

        cache = ResultCache(tmp_path)
        key_fn = lambda item: {"item": item}  # noqa: E731

        stats = CacheStats()
        profiler = Profiler()
        out = cached_batch(lambda items: [i * 10 for i in items],
                           [1, 2, 3], key_fn=key_fn, cache=cache,
                           stats=stats, profiler=profiler)
        assert out == [10, 20, 30]
        assert (stats.hits, stats.misses, stats.stale) == (0, 3, 0)
        assert profiler.counters["batch_items"] == 3.0
        assert profiler.counters["cache_misses"] == 3.0
        stages = profiler.manifest()["stages"]
        assert set(stages) == {"cache/lookup", "cache/compute",
                               "cache/write"}

        # Second pass: all hits, accumulated into the same stats.
        out = cached_batch(lambda items: [i * 10 for i in items],
                           [1, 2, 3], key_fn=key_fn, cache=cache,
                           stats=stats)
        assert out == [10, 20, 30]
        assert (stats.hits, stats.misses, stats.stale) == (3, 3, 0)

        # Corrupt one entry: recomputed, tallied stale.
        from repro.experiments.runner import config_hash
        cache.path(config_hash(key_fn(2))).write_text("garbage")
        out = cached_batch(lambda items: [i * 10 for i in items],
                           [1, 2, 3], key_fn=key_fn, cache=cache,
                           stats=stats)
        assert out == [10, 20, 30]
        assert (stats.hits, stats.misses, stats.stale) == (5, 3, 1)
        assert stats.lookups == 9
        assert stats.render() == "cache: 5 hits, 3 misses, 1 stale"

    def test_cached_sweep_tallies(self, tmp_path):
        from repro.experiments.runner import (
            CacheStats, ResultCache, cached_sweep,
        )

        cache = ResultCache(tmp_path)
        stats = CacheStats()
        out = cached_sweep(str, [1, 2], cache=cache, parallel=False,
                           key_fn=lambda item: {"item": item},
                           stats=stats)
        assert out == ["1", "2"]
        assert (stats.hits, stats.misses) == (0, 2)
        cached_sweep(str, [1, 2], cache=cache, parallel=False,
                     key_fn=lambda item: {"item": item}, stats=stats)
        assert (stats.hits, stats.misses) == (2, 2)

    def test_record_rejects_unknown_status(self):
        from repro.experiments.runner import CacheStats

        with pytest.raises(ValueError, match="unknown"):
            CacheStats().record("hot")


# ---------------------------------------------------------------------------
# FleetReport.render golden output
# ---------------------------------------------------------------------------
GOLDEN_RENDER = """\
Fleet: 4 chips as 4 x 1-chip clusters, policy=fifo
Jobs: 40 submitted, 31 completed (8 truncated), 9 rejected
Makespan 608 s, 183.6 jobs/h, chip utilization 84.3%
Queueing wait p50/p95/p99: 97.9 / 207.8 / 235.8 s

Per-tenant privacy budget
Tenant   | Budget eps | Spent eps | Used | Admitted | Truncated | Rejected
---------+------------+-----------+------+----------+-----------+---------
tenant-0 |       3.00 |      3.00 | 100% |        4 |         2 |        0
tenant-1 |       3.00 |      3.00 | 100% |        7 |         1 |        1
tenant-2 |       3.00 |      3.00 | 100% |        8 |         3 |        2
tenant-3 |       3.00 |      3.00 | 100% |        4 |         2 |        6"""


class TestFleetReportGolden:
    def test_render_matches_golden(self):
        trace = generate_trace(TraceConfig(jobs=40, seed=3))
        report = simulate_fleet(
            trace, FleetConfig(chips=4), policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        assert report.render() == GOLDEN_RENDER


# ---------------------------------------------------------------------------
# CLI integration: serve/simulate/trace subcommands
# ---------------------------------------------------------------------------
class TestCli:
    def test_serve_outputs_and_inspector(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = tmp_path / "fleet.json"
        metrics_dir = tmp_path / "metrics"
        profile_path = tmp_path / "profile.json"
        assert main(["serve", "--jobs", "120", "--policy", "fifo",
                     "--trace", str(trace_path),
                     "--metrics-out", str(metrics_dir),
                     "--profile", str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "trace ->" in out and "profile ->" in out
        events = load_trace(trace_path)
        assert validate_events(events) == []
        assert (metrics_dir / "metrics_fifo.json").exists()
        manifest = json.loads(profile_path.read_text())
        assert "serve/simulate" in manifest["stages"]

        assert main(["trace", str(trace_path)]) == 0
        assert "fleet: fifo" in capsys.readouterr().out
        assert main(["trace", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == len(events)

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["trace", str(bad)]) == 2
        assert "trace:" in capsys.readouterr().err
        assert main(["trace", str(tmp_path / "missing.json")]) == 2

    def test_serve_rows_unchanged_by_observability(self, tmp_path):
        from repro.experiments import serve

        plain = serve.run(policies=("fifo", "sjf"), trace_jobs=150)
        observed = serve.run(policies=("fifo", "sjf"), trace_jobs=150,
                             trace_path=str(tmp_path / "t.json"),
                             metrics_dir=str(tmp_path / "m"),
                             profiler=Profiler("serve"))
        assert plain == observed

    def test_simulate_trace_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "step.json"
        assert main(["simulate", "SqueezeNet", "--chips", "2",
                     "--trace", str(path)]) == 0
        assert "2x diva" in capsys.readouterr().out
        assert validate_events(load_trace(path)) == []

    def test_design_space_prints_cache_stats(self, tmp_path, capsys):
        from repro.__main__ import main

        args = ["design-space", "--models", "SqueezeNet",
                "--heights", "32", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "cache: 0 hits, 1 misses, 0 stale" in \
            capsys.readouterr().out
        assert main(args) == 0
        assert "cache: 1 hits, 0 misses, 0 stale" in \
            capsys.readouterr().out
