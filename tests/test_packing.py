"""Tests for the spatial GEMM-packing extension (repro.core.packing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.engine import ArrayConfig
from repro.core.outer_product import OuterProductEngine
from repro.core.packing import (
    PackedOuterProductEngine,
    packing_overhead_fraction,
)
from repro.workloads.gemms import Gemm


class TestPackingFactor:
    engine = PackedOuterProductEngine(bus_segments=4)

    def test_single_instance_never_packs(self):
        assert self.engine.packing_factor(Gemm(16, 8, 16)) == 1

    def test_full_array_instance_never_packs(self):
        assert self.engine.packing_factor(Gemm(128, 8, 128, count=32)) == 1

    def test_quarter_array_packs_four(self):
        assert self.engine.packing_factor(Gemm(64, 8, 64, count=32)) == 4

    def test_bounded_by_segments(self):
        assert self.engine.packing_factor(Gemm(8, 8, 8, count=1000)) == 4

    def test_bounded_by_count(self):
        assert self.engine.packing_factor(Gemm(8, 8, 8, count=3)) == 3

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            PackedOuterProductEngine(bus_segments=0)


class TestPackedStats:
    def test_packing_reduces_cycles(self):
        base = OuterProductEngine()
        packed = PackedOuterProductEngine(bus_segments=4)
        g = Gemm(9, 16, 1, count=512)  # MobileNet-style sliver GEMMs
        assert (packed.gemm_stats(g).compute_cycles
                < base.gemm_stats(g).compute_cycles / 2)

    def test_unpacked_shapes_identical_to_base(self):
        base = OuterProductEngine()
        packed = PackedOuterProductEngine(bus_segments=4)
        g = Gemm(128, 64, 128, count=8)
        assert (packed.gemm_stats(g).compute_cycles
                == base.gemm_stats(g).compute_cycles)

    def test_macs_preserved(self):
        packed = PackedOuterProductEngine(bus_segments=8)
        g = Gemm(16, 4, 16, count=100)
        assert packed.gemm_stats(g).macs == g.macs

    def test_sram_traffic_preserved(self):
        """Packing changes time, not data volume."""
        base = OuterProductEngine()
        packed = PackedOuterProductEngine(bus_segments=4)
        g = Gemm(16, 4, 16, count=100)
        assert (packed.gemm_stats(g).sram_read_bytes
                == base.gemm_stats(g).sram_read_bytes)

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 128), k=st.integers(1, 64),
           n=st.integers(1, 128), count=st.integers(1, 64),
           segments=st.integers(1, 8))
    def test_utilization_bounded_and_no_worse(self, m, k, n, count,
                                              segments):
        base = OuterProductEngine()
        packed = PackedOuterProductEngine(bus_segments=segments)
        g = Gemm(m, k, n, count=count)
        base_stats = base.gemm_stats(g)
        packed_stats = packed.gemm_stats(g)
        assert 0.0 < packed_stats.utilization <= 1.0
        assert packed_stats.compute_cycles <= base_stats.compute_cycles


class TestOverheadModel:
    def test_one_segment_free(self):
        assert packing_overhead_fraction(1) == 0.0

    def test_grows_with_segments(self):
        assert (packing_overhead_fraction(8)
                > packing_overhead_fraction(2) > 0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            packing_overhead_fraction(0)


class TestAblationExperiment:
    def test_drain_rate_monotone(self):
        from repro.experiments.ablation import drain_rate_sweep

        points = drain_rate_sweep("SqueezeNet", rates=(2, 8))
        assert points[1].speedup_vs_ws > points[0].speedup_vs_ws

    def test_packing_study_mobilenet(self):
        from repro.experiments.ablation import packing_study

        result = packing_study("MobileNet", segments=4)
        assert result.improvement > 2.0
        assert result.area_overhead_fraction == pytest.approx(0.06)
