"""Tests for the nine-model zoo (repro.workloads.zoo)."""

import pytest

from repro.workloads import MODEL_NAMES, GemmKind, build_model
from repro.workloads.model import ModelFamily
from repro.workloads.zoo import CNN_MODELS, RNN_MODELS, TRANSFORMER_MODELS

# Published parameter counts (10-class heads for CNNs, in millions).
EXPECTED_PARAMS_M = {
    "VGG-16": (30, 40),
    "ResNet-50": (20, 28),
    "ResNet-152": (52, 65),
    "SqueezeNet": (0.4, 1.2),
    "MobileNet": (2.5, 4.5),
    "BERT-base": (100, 120),
    "BERT-large": (320, 350),
    "LSTM-small": (0.2, 1.0),
    "LSTM-large": (10, 20),
}


class TestZooRegistry:
    def test_nine_models(self):
        assert len(MODEL_NAMES) == 9

    def test_family_partition(self):
        assert set(MODEL_NAMES) == (set(CNN_MODELS) | set(TRANSFORMER_MODELS)
                                    | set(RNN_MODELS))

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("AlexNet")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_builds(self, name):
        net = build_model(name)
        assert net.name == name
        assert net.params > 0

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_param_counts_published_range(self, name):
        low, high = EXPECTED_PARAMS_M[name]
        params_m = build_model(name).params / 1e6
        assert low <= params_m <= high, f"{name}: {params_m:.1f}M"

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_family_tags(self, name):
        net = build_model(name)
        if name in CNN_MODELS:
            assert net.family == ModelFamily.CNN
        elif name in TRANSFORMER_MODELS:
            assert net.family == ModelFamily.TRANSFORMER
        else:
            assert net.family == ModelFamily.RNN

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_stage_has_gemms(self, name):
        net = build_model(name)
        for kind in GemmKind:
            assert net.gemms(kind, batch=2), f"{name} missing {kind}"


class TestScaling:
    def test_image_scaling_grows_macs(self):
        small = build_model("VGG-16", input_size=32)
        large = build_model("VGG-16", input_size=64)
        assert (large.stage_macs(GemmKind.FORWARD, 1)
                > 3 * small.stage_macs(GemmKind.FORWARD, 1))

    def test_image_scaling_keeps_params(self):
        small = build_model("ResNet-50", input_size=32)
        large = build_model("ResNet-50", input_size=128)
        assert small.params == large.params

    def test_seq_scaling_grows_macs(self):
        short = build_model("BERT-base", seq_len=32)
        long = build_model("BERT-base", seq_len=128)
        assert (long.stage_macs(GemmKind.FORWARD, 1)
                > 3 * short.stage_macs(GemmKind.FORWARD, 1))

    def test_seq_scaling_irrelevant_for_cnn(self):
        a = build_model("SqueezeNet", seq_len=32)
        b = build_model("SqueezeNet", seq_len=256)
        assert a.params == b.params
        assert a.stage_macs(GemmKind.FORWARD, 2) == b.stage_macs(
            GemmKind.FORWARD, 2)


class TestMobileNetLowering:
    def test_native_groups_changes_gemms(self):
        dense = build_model("MobileNet")
        native = build_model("MobileNet", native_groups=True)
        assert (dense.stage_macs(GemmKind.FORWARD, 2)
                > native.stage_macs(GemmKind.FORWARD, 2))

    def test_native_groups_same_params(self):
        dense = build_model("MobileNet")
        native = build_model("MobileNet", native_groups=True)
        assert dense.params == native.params

    def test_other_models_ignore_flag(self):
        a = build_model("VGG-16", native_groups=True)
        b = build_model("VGG-16")
        assert a.stage_macs(GemmKind.FORWARD, 2) == b.stage_macs(
            GemmKind.FORWARD, 2)


class TestKnownShapes:
    def test_bert_base_encoder_count(self):
        net = build_model("BERT-base")
        q_layers = [l for l in net.layers if l.name.endswith(".q")]
        assert len(q_layers) == 12

    def test_bert_large_hidden(self):
        net = build_model("BERT-large")
        q = next(l for l in net.layers if l.name == "layer0.q")
        assert q.in_features == 1024

    def test_resnet152_conv_count(self):
        net = build_model("ResNet-152")
        from repro.workloads.layer import Conv2D
        convs = [l for l in net.layers if isinstance(l, Conv2D)]
        # 1 stem + 3*(3+8+36+3) bottleneck convs + 4 downsample projections.
        assert len(convs) == 1 + 3 * 50 + 4

    def test_vgg16_conv_count(self):
        net = build_model("VGG-16")
        from repro.workloads.layer import Conv2D, Linear
        assert len([l for l in net.layers if isinstance(l, Conv2D)]) == 13
        assert len([l for l in net.layers if isinstance(l, Linear)]) == 3

    def test_lstm_large_two_layers(self):
        net = build_model("LSTM-large")
        ih = [l for l in net.layers if l.name.endswith(".ih")]
        assert len(ih) == 2
