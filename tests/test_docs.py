"""Docs stay healthy: links resolve, the README CLI table matches the
actual CLI (same checks the CI docs job runs via tools/check_docs.py)."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_check_docs()


def test_readme_and_docs_exist():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "modeling-assumptions.md").is_file()


def test_internal_links_resolve():
    assert check_docs.check_links(check_docs.iter_doc_files()) == []


def test_cli_table_matches_cli():
    problems = check_docs.check_cli_table(REPO_ROOT / "README.md")
    assert problems == [], "\n".join(problems)


def test_declared_subcommands_found_statically():
    declared = check_docs.declared_subcommands(
        REPO_ROOT / "src" / "repro" / "__main__.py")
    assert "serve" in declared
    assert "scaling" in declared
    assert len(declared) == len(set(declared))


def test_every_declared_subcommand_is_documented():
    problems = check_docs.check_declared_subcommands(
        REPO_ROOT / "README.md",
        REPO_ROOT / "src" / "repro" / "__main__.py")
    assert problems == [], "\n".join(problems)


def test_declared_check_flags_missing_row(tmp_path):
    readme = tmp_path / "README.md"
    readme.write_text("| `models` | list models |\n")
    main_py = tmp_path / "__main__.py"
    main_py.write_text('sub.add_parser("models")\n'
                       'sub.add_parser("serve", help="x")\n')
    problems = check_docs.check_declared_subcommands(readme, main_py)
    assert len(problems) == 1
    assert "serve" in problems[0]


def test_declared_check_flags_unscannable_main(tmp_path):
    readme = tmp_path / "README.md"
    readme.write_text("| `models` | list models |\n")
    main_py = tmp_path / "__main__.py"
    main_py.write_text("print('no subparsers here')\n")
    problems = check_docs.check_declared_subcommands(readme, main_py)
    assert len(problems) == 1
    assert "no add_parser" in problems[0]


def test_main_aggregates_helper_problems(monkeypatch):
    # Wiring only — the helpers themselves are exercised above, so
    # don't repeat their subprocess fan-out here.
    monkeypatch.setattr(check_docs, "check_links", lambda docs: [])
    monkeypatch.setattr(check_docs, "check_cli_table", lambda readme: [])
    monkeypatch.setattr(check_docs, "check_declared_subcommands",
                        lambda readme, main_py: [])
    assert check_docs.main() == 0
    monkeypatch.setattr(check_docs, "check_cli_table",
                        lambda readme: ["stale row"])
    assert check_docs.main() == 1
