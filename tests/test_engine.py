"""Tests for the engine abstraction (repro.arch.engine)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.engine import ArrayConfig, GemmStats, chunk_sizes
from repro.arch.systolic import WeightStationaryEngine
from repro.workloads.gemms import Gemm


class TestChunkSizes:
    def test_exact_division(self):
        assert chunk_sizes(256, 128) == [128, 128]

    def test_remainder(self):
        assert chunk_sizes(300, 128) == [128, 128, 44]

    def test_smaller_than_chunk(self):
        assert chunk_sizes(5, 128) == [5]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_sizes(0, 128)
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)

    @given(total=st.integers(1, 10_000), size=st.integers(1, 512))
    def test_chunks_cover_total(self, total, size):
        chunks = chunk_sizes(total, size)
        assert sum(chunks) == total
        assert all(0 < c <= size for c in chunks)
        # Only the last chunk may be short.
        assert all(c == size for c in chunks[:-1])


class TestArrayConfig:
    def test_defaults_match_table2(self):
        cfg = ArrayConfig()
        assert (cfg.height, cfg.width) == (128, 128)
        assert cfg.frequency_hz == 940e6
        assert cfg.peak_macs_per_cycle == 16384

    def test_peak_flops(self):
        cfg = ArrayConfig()
        assert cfg.peak_flops == pytest.approx(2 * 16384 * 940e6)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            ArrayConfig(height=0)
        with pytest.raises(ValueError):
            ArrayConfig(drain_rows_per_cycle=0)


class TestGemmStats:
    def _stats(self, cycles=100, macs=1000):
        return GemmStats(
            gemm=Gemm(10, 10, 10),
            engine="WS",
            compute_cycles=cycles,
            macs=macs,
            peak_macs_per_cycle=16384,
            tiles=1,
            sram_read_bytes=10,
            sram_write_bytes=20,
        )

    def test_utilization(self):
        s = self._stats(cycles=10, macs=16384 * 5)
        assert s.utilization == pytest.approx(0.5)

    def test_utilization_zero_cycles(self):
        assert self._stats(cycles=0).utilization == 0.0

    def test_add_merges(self):
        a, b = self._stats(), self._stats()
        merged = a + b
        assert merged.compute_cycles == 200
        assert merged.macs == 2000
        assert merged.sram_write_bytes == 40

    def test_add_rejects_mismatched_arrays(self):
        a = self._stats()
        b = GemmStats(Gemm(1, 1, 1), "WS", 1, 1, 999, 1, 0, 0)
        with pytest.raises(ValueError):
            a + b


gemm_shapes = st.tuples(
    st.integers(1, 1024), st.integers(1, 1024), st.integers(1, 1024),
    st.integers(1, 8),
)


class TestEngineInvariants:
    @given(shape=gemm_shapes)
    def test_utilization_bounded(self, shape):
        m, k, n, count = shape
        engine = WeightStationaryEngine()
        stats = engine.gemm_stats(Gemm(m, k, n, count=count))
        assert 0.0 < stats.utilization <= 1.0

    @given(shape=gemm_shapes)
    def test_count_scales_linearly(self, shape):
        m, k, n, count = shape
        engine = WeightStationaryEngine()
        one = engine.gemm_stats(Gemm(m, k, n))
        many = engine.gemm_stats(Gemm(m, k, n, count=count))
        assert many.compute_cycles == count * one.compute_cycles
        assert many.sram_read_bytes == count * one.sram_read_bytes
