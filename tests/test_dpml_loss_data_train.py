"""Tests for loss, datasets and the end-to-end DP training loop."""

import numpy as np
import pytest

from repro.dpml import (
    Dataset,
    Dense,
    ReLU,
    Sequential,
    accuracy,
    evaluate,
    softmax,
    softmax_cross_entropy,
    synthetic_classification,
    synthetic_images,
    synthetic_sequences,
    train_dpsgd,
)

RNG = np.random.default_rng(0)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        logits = RNG.normal(size=(8, 5)) * 30
        np.testing.assert_allclose(softmax(logits).sum(axis=1), 1.0)

    def test_loss_gradient_finite_diff(self):
        logits = RNG.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 2])
        _, grads = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in np.ndindex(*logits.shape):
            up = logits.copy()
            up[idx] += eps
            down = logits.copy()
            down[idx] -= eps
            l_up, _ = softmax_cross_entropy(up, labels)
            l_down, _ = softmax_cross_entropy(down, labels)
            numeric = (l_up.sum() - l_down.sum()) / (2 * eps)
            assert grads[idx] == pytest.approx(numeric, abs=1e-5)

    def test_per_example_losses(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        losses, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert losses.shape == (2,)
        assert np.all(losses < 0.01)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones((2, 3, 4)).reshape(2, -1)[:, :3],
                                  np.array([0]))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.ones(6).reshape(2, 3),
                                  np.array([0, 1, 2]))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)


class TestDatasets:
    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            Dataset(x=np.ones((3, 2)), y=np.ones(4))

    def test_shapes(self):
        assert synthetic_classification(50, 7, 3).x.shape == (50, 7)
        assert synthetic_images(10, 3, 8).x.shape == (10, 3, 8, 8)
        assert synthetic_sequences(10, 6, 5).x.shape == (10, 6, 5)

    def test_labels_in_range(self):
        ds = synthetic_classification(100, 4, classes=5)
        assert ds.y.min() >= 0 and ds.y.max() < 5

    def test_batches_cover_dataset(self):
        ds = synthetic_classification(64, 4)
        seen = sum(len(x) for x, _ in ds.batches(16))
        assert seen == 64

    def test_batches_drop_ragged_tail(self):
        ds = synthetic_classification(50, 4)
        sizes = [len(x) for x, _ in ds.batches(16)]
        assert sizes == [16, 16, 16]

    def test_batch_size_validated(self):
        ds = synthetic_classification(10, 4)
        with pytest.raises(ValueError):
            list(ds.batches(0))

    def test_poisson_batch_nonempty(self):
        ds = synthetic_classification(100, 4)
        x, y = ds.poisson_batch(0.001, np.random.default_rng(0))
        assert len(x) >= 1

    def test_reproducible_seed(self):
        a = synthetic_classification(20, 4, seed=9)
        b = synthetic_classification(20, 4, seed=9)
        np.testing.assert_array_equal(a.x, b.x)

    def test_learnable_signal(self):
        """Blobs with high separation are nearly linearly separable."""
        ds = synthetic_classification(200, 16, 4, separation=4.0)
        # Nearest-centroid classification should beat chance easily.
        centroids = np.stack([ds.x[ds.y == c].mean(axis=0) for c in range(4)])
        preds = np.argmin(
            ((ds.x[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1)
        assert (preds == ds.y).mean() > 0.8


class TestTrainingLoop:
    def _net(self):
        rng = np.random.default_rng(0)
        return Sequential([Dense(16, 32, rng=rng), ReLU(),
                           Dense(32, 4, rng=rng)])

    def test_dp_training_learns(self):
        ds = synthetic_classification(256, 16, 4, separation=3.0, seed=1)
        net = self._net()
        history, acct = train_dpsgd(net, ds, steps=40, batch_size=64,
                                    lr=0.4, noise_multiplier=0.8)
        assert history.losses[-1] < history.losses[0]
        assert evaluate(net, ds) > 0.5

    def test_epsilon_monotone_over_training(self):
        ds = synthetic_classification(128, 16, 4)
        _, acct = train_dpsgd(self._net(), ds, steps=10, batch_size=32)
        assert acct.steps == 10
        history, _ = train_dpsgd(self._net(), ds, steps=10, batch_size=32)
        assert all(a <= b for a, b in zip(history.epsilons,
                                          history.epsilons[1:]))

    def test_both_methods_supported(self):
        ds = synthetic_classification(64, 16, 4)
        for method in ("dpsgd", "reweighted"):
            history, _ = train_dpsgd(self._net(), ds, steps=3,
                                     batch_size=16, method=method)
            assert len(history.losses) == 3

    def test_unknown_method_rejected(self):
        ds = synthetic_classification(64, 16, 4)
        with pytest.raises(ValueError):
            train_dpsgd(self._net(), ds, method="magic")

    def test_final_epsilon_property(self):
        ds = synthetic_classification(64, 16, 4)
        history, acct = train_dpsgd(self._net(), ds, steps=5, batch_size=16,
                                    delta=1e-5)
        assert history.final_epsilon == pytest.approx(acct.epsilon(1e-5))
