"""Tests for the Accelerator composition (repro.arch.accelerator)."""

import pytest

from repro.arch.accelerator import OpRun
from repro.core import build_accelerator
from repro.workloads.gemms import Gemm


class TestOpRun:
    def test_zero_identity(self):
        run = OpRun(cycles=10, macs=5, dram_read_bytes=3)
        merged = run + OpRun.zero()
        assert merged == run

    def test_add_fields(self):
        a = OpRun(cycles=1, compute_cycles=2, vector_cycles=3, ppu_cycles=4,
                  macs=5, vector_ops=6, dram_read_bytes=7,
                  dram_write_bytes=8, sram_read_bytes=9, sram_write_bytes=10)
        b = a + a
        assert b.cycles == 2
        assert b.ppu_cycles == 8
        assert b.sram_write_bytes == 20

    def test_dram_bytes(self):
        run = OpRun(dram_read_bytes=3, dram_write_bytes=4)
        assert run.dram_bytes == 7


class TestRunGemm:
    def test_traffic_accounting(self):
        accel = build_accelerator("ws")
        g = Gemm(100, 50, 60)
        run = accel.run_gemm(g)
        ib, ob = accel.config.input_bytes, accel.config.acc_bytes
        assert run.dram_read_bytes == (100 * 50 + 50 * 60) * ib
        assert run.dram_write_bytes == 100 * 60 * ob
        assert run.macs == g.macs

    def test_skip_operand_reads(self):
        accel = build_accelerator("ws")
        g = Gemm(100, 50, 60)
        run = accel.run_gemm(g, read_lhs=False, read_rhs=False,
                             write_output=False)
        assert run.dram_bytes == 0

    def test_latency_is_max_of_compute_and_memory(self):
        accel = build_accelerator("ws")
        g = Gemm(16, 16, 16)  # tiny compute, memory-latency bound
        run = accel.run_gemm(g)
        assert run.cycles == max(
            run.compute_cycles,
            accel.memory.transfer_cycles(run.dram_bytes),
        )

    def test_memory_bound_gemm(self):
        """A skinny GEMM with huge operands is DRAM-limited."""
        accel = build_accelerator("diva")
        g = Gemm(128, 1, 128, count=2000)
        run = accel.run_gemm(g)
        assert run.cycles > run.compute_cycles

    def test_count_scales_traffic(self):
        accel = build_accelerator("diva")
        one = accel.run_gemm(Gemm(64, 8, 64))
        many = accel.run_gemm(Gemm(64, 8, 64, count=4))
        assert many.dram_read_bytes == 4 * one.dram_read_bytes


class TestFuseNorm:
    def test_ws_cannot_fuse(self):
        accel = build_accelerator("ws")
        assert not accel.can_fuse_norm
        with pytest.raises(ValueError, match="fuse"):
            accel.run_gemm(Gemm(8, 8, 8), fuse_norm=True)

    def test_os_without_ppu_cannot_fuse(self):
        accel = build_accelerator("os", with_ppu=False)
        assert not accel.can_fuse_norm

    def test_diva_with_ppu_fuses(self):
        accel = build_accelerator("diva", with_ppu=True)
        assert accel.can_fuse_norm

    def test_fused_gemm_emits_norms_not_gradients(self):
        """The 99%-traffic-reduction mechanism (Section IV-C)."""
        accel = build_accelerator("diva", with_ppu=True)
        g = Gemm(576, 16, 512, count=32)
        spilled = accel.run_gemm(g, write_output=True, fuse_norm=False)
        fused = accel.run_gemm(g, write_output=False, fuse_norm=True)
        assert fused.dram_write_bytes == 32 * accel.config.acc_bytes
        assert spilled.dram_write_bytes == g.out_elems * 4
        assert fused.dram_write_bytes < spilled.dram_write_bytes / 1000

    def test_fuse_norm_charges_ppu_cycles(self):
        accel = build_accelerator("diva", with_ppu=True)
        run = accel.run_gemm(Gemm(64, 8, 64), fuse_norm=True)
        assert run.ppu_cycles > 0

    def test_unfused_gemm_no_ppu_cycles(self):
        accel = build_accelerator("diva", with_ppu=True)
        run = accel.run_gemm(Gemm(64, 8, 64))
        assert run.ppu_cycles == 0

    def test_fused_ppu_cycles_are_flush_only(self):
        """Regression: the whole GEMM compute was attributed to the PPU,
        inflating PPU utilization/energy breakdowns."""
        accel = build_accelerator("diva", with_ppu=True)
        gemm = Gemm(576, 16, 512, count=32)
        fused = accel.run_gemm(gemm, write_output=False, fuse_norm=True)
        assert fused.ppu_cycles == accel.ppu.flush_cycles() * gemm.count
        assert fused.ppu_cycles < fused.compute_cycles
        # The flush rides on top of the unfused GEMM latency.
        unfused = accel.run_gemm(gemm)
        assert (fused.compute_cycles
                == unfused.compute_cycles + fused.ppu_cycles)


class TestRunVector:
    def test_vector_cycles_tracked(self):
        accel = build_accelerator("ws")
        run = accel.run_vector(10_000)
        assert run.vector_cycles > 0
        assert run.compute_cycles == 0

    def test_memory_bound_vector_op(self):
        accel = build_accelerator("ws")
        run = accel.run_vector(1000, dram_read_bytes=10**9)
        assert run.cycles == accel.memory.transfer_cycles(10**9)

    def test_reduction_slower_than_elementwise(self):
        accel = build_accelerator("ws")
        fast = accel.run_vector(100_000)
        slow = accel.run_vector(100_000, reduction=True)
        assert slow.vector_cycles > fast.vector_cycles


class TestPpuReduction:
    def test_requires_ppu(self):
        accel = build_accelerator("ws")
        with pytest.raises(ValueError, match="PPU"):
            accel.run_ppu_reduction(100)

    def test_with_ppu(self):
        accel = build_accelerator("diva", with_ppu=True)
        run = accel.run_ppu_reduction(1024 * 10)
        assert run.ppu_cycles == run.cycles > 0
