"""3D parallelism: fabrics, pipeline schedules, the placement planner,
and the batched 3D grid engine (DP x PP x TP)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import ParallelPlan
from repro.arch.interconnect import (
    DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    DEFAULT_LINK_LATENCY_S,
    FABRICS,
    Fabric,
    InterconnectConfig,
    LinkClass,
    fabric_named,
)
from repro.core import build_cluster
from repro.training import Algorithm, simulate_sharded_training_step
from repro.training.batch import sharded_step_batch
from repro.training.memory import max_batch_size, memory_breakdown
from repro.training.parallel import partition_layers, stage_memory_breakdown
from repro.training.plan import plan_placement
from repro.workloads import build_model

ALGORITHMS = ("SGD", "DP-SGD", "DP-SGD(R)")

#: Every (pp, tp) grid of an 8-chip cluster.
GRIDS_8 = [(pp, tp) for pp in (1, 2, 4, 8) for tp in (1, 2, 4, 8)
           if pp * tp <= 8 and 8 % (pp * tp) == 0]


def _nets():
    return {name: build_model(name) for name in ("SqueezeNet", "VGG-16")}


NETS = _nets()


# -- fabrics ----------------------------------------------------------------

class TestFabric:
    def test_named_presets(self):
        assert set(FABRICS) == {"uniform", "two-tier"}
        assert fabric_named("two-tier").intra_node.bandwidth_bytes_per_s \
            > fabric_named("two-tier").cross_node.bandwidth_bytes_per_s

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown fabric"):
            fabric_named("warp-drive")

    @pytest.mark.parametrize("topology,cpn", [
        ("ring", 1), ("all_to_all", 1), ("hierarchical", 2)])
    def test_uniform_fabric_is_degenerate(self, topology, cpn):
        """A fabric whose tiers equal the homogeneous link changes nothing."""
        net = NETS["SqueezeNet"]
        uniform = Fabric(
            intra_node=LinkClass("link", DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
                                 DEFAULT_LINK_LATENCY_S),
            cross_node=LinkClass("link", DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
                                 DEFAULT_LINK_LATENCY_S))
        reports = []
        for fabric in (None, uniform, fabric_named("uniform")):
            cluster = build_cluster(
                "diva", n_chips=4,
                interconnect=InterconnectConfig(
                    topology=topology, chips_per_node=cpn, fabric=fabric))
            reports.append(simulate_sharded_training_step(
                net, Algorithm.DP_SGD, cluster, 32))
        base = reports[0]
        for report in reports[1:]:
            assert report.total_cycles == base.total_cycles
            assert report.comm.cycles == base.comm.cycles
            assert report.comm.link_bytes == base.comm.link_bytes

    def test_two_tier_slows_cross_node_collectives(self):
        net = NETS["SqueezeNet"]
        times = {}
        for name in (None, "two-tier"):
            cluster = build_cluster(
                "diva", n_chips=8,
                interconnect=InterconnectConfig(
                    fabric=fabric_named(name) if name else None))
            times[name] = simulate_sharded_training_step(
                net, Algorithm.DP_SGD, cluster, 64).comm.busy_cycles
        # The two-tier NIC (25 GB/s) is 4x slower than the uniform link.
        assert times["two-tier"] > times[None]


# -- pure-DP identity (satellite: plans are strictly additive) --------------

class TestPureDPIdentity:
    @settings(max_examples=30, deadline=None)
    @given(model=st.sampled_from(sorted(NETS)),
           algorithm=st.sampled_from(ALGORITHMS),
           chips=st.sampled_from([2, 4, 8]),
           topology=st.sampled_from(["ring", "all_to_all"]),
           overlap=st.booleans())
    def test_trivial_plan_is_bitwise_identical(
            self, model, algorithm, chips, topology, overlap):
        """``ParallelPlan(dp=N, pp=1, tp=1)`` is the legacy DP path."""
        net = NETS[model]
        cluster = build_cluster(
            "diva", n_chips=chips,
            interconnect=InterconnectConfig(topology=topology))
        legacy = simulate_sharded_training_step(
            net, Algorithm(algorithm), cluster, 32, overlap=overlap)
        planned = simulate_sharded_training_step(
            net, Algorithm(algorithm), cluster, 32, overlap=overlap,
            plan=ParallelPlan(dp=chips, pp=1, tp=1))
        assert planned.total_seconds == legacy.total_seconds  # bitwise
        assert planned.total_cycles == legacy.total_cycles
        assert planned.comm.cycles == legacy.comm.cycles
        assert planned.comm.link_bytes == legacy.comm.link_bytes
        assert planned.shard.phases == legacy.shard.phases
        assert planned.pipeline_cycles == 0
        assert planned.bubble_cycles == 0


# -- pipeline schedules -----------------------------------------------------

class TestPipelineSchedule:
    def test_partition_covers_all_layers(self):
        net = NETS["VGG-16"]
        costs = [max(layer.params, 1) for layer in net.layers]
        for pp in (1, 2, 3, 4, 8):
            bounds = partition_layers(costs, pp)
            assert bounds[0] == 0 and bounds[-1] == len(net.layers)
            assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_pipeline_at_least_bottleneck_stage(self):
        net = NETS["VGG-16"]
        cluster = build_cluster("diva", n_chips=4)
        report = simulate_sharded_training_step(
            net, Algorithm.DP_SGD, cluster, 32,
            plan=ParallelPlan(dp=1, pp=4, tp=1))
        assert report.pipeline_cycles >= max(report.stage_cycles)
        assert report.bubble_cycles >= 0
        assert len(report.stage_cycles) == 4

    @settings(max_examples=30, deadline=None)
    @given(model=st.sampled_from(sorted(NETS)),
           algorithm=st.sampled_from(ALGORITHMS),
           grid=st.sampled_from(GRIDS_8))
    def test_never_beats_perfect_scaling(self, model, algorithm, grid):
        """No valid 3D plan beats the perfect-scaling lower bound."""
        from repro.core import build_accelerator
        from repro.training import simulate_training_step

        pp, tp = grid
        net = NETS[model]
        base = simulate_training_step(
            net, Algorithm(algorithm), build_accelerator("diva"),
            32).total_seconds
        cluster = build_cluster("diva", n_chips=8)
        report = simulate_sharded_training_step(
            net, Algorithm(algorithm), cluster, 32,
            plan=ParallelPlan(dp=8 // (pp * tp), pp=pp, tp=tp))
        assert report.total_seconds >= base / 8


# -- placement planner ------------------------------------------------------

class TestPlacementPlanner:
    net = build_model("ResNet-152")

    def test_resnet152_batch_cap_pins_feasibility(self):
        """The paper's ResNet-152 DP-SGD batch cap (32) is the planner's
        pure-DP feasibility edge: 32 fits on one chip, 64 does not."""
        assert max_batch_size(self.net, Algorithm.DP_SGD) == 32
        fits = plan_placement(self.net, Algorithm.DP_SGD, 1, 32)
        assert fits.best == ParallelPlan(dp=1, pp=1, tp=1)
        over = plan_placement(self.net, Algorithm.DP_SGD, 1, 64)
        assert over.best is None
        (candidate,) = over.candidates
        assert candidate.plan == ParallelPlan(dp=1, pp=1, tp=1)
        assert "stage memory" in candidate.reason
        assert "exceeds" in candidate.reason

    def test_memory_refusal_tracks_budget(self):
        """Raising the capacity flips the same candidate to feasible."""
        tight = plan_placement(self.net, Algorithm.DP_SGD, 1, 64)
        roomy = plan_placement(self.net, Algorithm.DP_SGD, 1, 64,
                               capacity_bytes=64 * 2**30)
        assert tight.best is None
        assert roomy.best == ParallelPlan(dp=1, pp=1, tp=1)

    def test_best_prefers_fastest_then_least_invasive(self):
        result = plan_placement(self.net, Algorithm.DP_SGD, 4, 128)
        feasible = [c for c in result.candidates if c.feasible]
        assert len(feasible) > 1
        best = min(feasible, key=lambda c: (
            c.step_seconds, c.plan.pp, c.plan.tp))
        assert result.best == best.plan

    def test_batch_divisibility_refusal(self):
        result = plan_placement(NETS["SqueezeNet"], Algorithm.SGD, 4, 6)
        refused = {c.plan: c.reason for c in result.candidates
                   if not c.feasible}
        assert any("not divisible by dp=4" in reason
                   for reason in refused.values())

    def test_single_stage_breakdown_matches_whole_chip(self):
        """One stage, tp=1: the stage breakdown is the chip breakdown."""
        for model, net in NETS.items():
            for algorithm in ALGORITHMS:
                whole = memory_breakdown(net, Algorithm(algorithm), 16)
                (stage,) = stage_memory_breakdown(
                    net, Algorithm(algorithm), 16, (0, len(net.layers)), 1)
                assert stage == whole, model


# -- batched 3D grid --------------------------------------------------------

class TestBatched3D:
    @settings(max_examples=25, deadline=None)
    @given(model=st.sampled_from(sorted(NETS)),
           algorithm=st.sampled_from(ALGORITHMS),
           grid=st.sampled_from(GRIDS_8),
           topology=st.sampled_from(["ring", "all_to_all", "hierarchical"]),
           fabric=st.sampled_from([None, "uniform", "two-tier"]),
           overlap=st.booleans())
    def test_batched_matches_scalar_bitwise(
            self, model, algorithm, grid, topology, fabric, overlap):
        """The vectorized 3D sweep equals the scalar simulator, bitwise."""
        pp, tp = grid
        cpn = 2 if topology == "hierarchical" else 1
        net = NETS[model]
        cluster = build_cluster(
            "diva", n_chips=8,
            interconnect=InterconnectConfig(
                topology=topology, chips_per_node=cpn, bucket_bytes=2**20,
                fabric=fabric_named(fabric) if fabric else None))
        plan = ParallelPlan(dp=8 // (pp * tp), pp=pp, tp=tp)
        report = simulate_sharded_training_step(
            net, Algorithm(algorithm), cluster, 32,
            plan=None if plan.is_pure_dp else plan, overlap=overlap)
        result = sharded_step_batch(
            [model], [algorithm], np.array([32]), 8,
            topologies=topology, bucket_bytes=2**20, chips_per_node=cpn,
            overlaps=overlap, pps=pp, tps=tp, fabrics=fabric)
        assert float(result.total_seconds[0]) == report.total_seconds
        assert int(result.comm_cycles[0]) == report.comm.cycles
        assert int(result.comm_total_cycles[0]) == report.comm.busy_cycles
        assert int(result.link_bytes[0]) == report.comm.link_bytes
        assert int(result.bubble_cycles[0]) == report.bubble_cycles

    def test_mixed_grid_in_one_call(self):
        """Heterogeneous plans, fabrics and overlap in a single batch."""
        grids = [(1, 1), (2, 2), (8, 1), (1, 8), (4, 2)]
        models = ["SqueezeNet"] * len(grids)
        algorithms = ["DP-SGD"] * len(grids)
        result = sharded_step_batch(
            models, algorithms, np.full(len(grids), 32), 8,
            pps=np.array([g[0] for g in grids]),
            tps=np.array([g[1] for g in grids]),
            fabrics=["two-tier", None, "uniform", None, "two-tier"])
        for i, (pp, tp) in enumerate(grids):
            cluster = build_cluster(
                "diva", n_chips=8,
                interconnect=InterconnectConfig(fabric=fabric_named(
                    ["two-tier", None, "uniform", None, "two-tier"][i])
                    if i in (0, 2, 4) else None))
            plan = ParallelPlan(dp=8 // (pp * tp), pp=pp, tp=tp)
            report = simulate_sharded_training_step(
                NETS["SqueezeNet"], Algorithm.DP_SGD, cluster, 32,
                plan=None if plan.is_pure_dp else plan)
            assert float(result.total_seconds[i]) == report.total_seconds, i

    def test_bad_factorization_message(self):
        with pytest.raises(ValueError, match="do not factor into"):
            sharded_step_batch(["SqueezeNet"], ["SGD"], np.array([32]), 8,
                               pps=3)


# -- validation across layers -----------------------------------------------

class TestValidation:
    def test_build_cluster_hierarchical_divisibility(self):
        with pytest.raises(ValueError, match="do not group into"):
            build_cluster("diva", n_chips=6,
                          interconnect=InterconnectConfig(
                              topology="hierarchical", chips_per_node=4))

    def test_build_cluster_single_chip_exempt(self):
        build_cluster("diva", n_chips=1,
                      interconnect=InterconnectConfig(
                          topology="hierarchical", chips_per_node=4))

    def test_parallel_plan_validate(self):
        with pytest.raises(ValueError, match="uses 8 chips"):
            ParallelPlan(dp=2, pp=2, tp=2).validate(4)
        ParallelPlan(dp=1, pp=2, tp=2).validate(4)

    def test_fleet_config_grid_validation(self):
        from repro.serve import FleetConfig

        with pytest.raises(ValueError, match="factor into pp=3"):
            FleetConfig(chips=8, chips_per_cluster=4, pp=3)
        fleet = FleetConfig(chips=8, chips_per_cluster=4, pp=2, tp=2,
                            fabric="two-tier")
        assert fleet.dp == 1

    def test_fleet_config_unknown_fabric(self):
        from repro.serve import FleetConfig

        with pytest.raises(ValueError, match="unknown fabric"):
            FleetConfig(chips=4, chips_per_cluster=2, fabric="warp-drive")


# -- observability: per-stage pipeline tracks -------------------------------

class TestPipelineTrace:
    def _record(self):
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        cluster = build_cluster("diva", n_chips=8)
        simulate_sharded_training_step(
            NETS["VGG-16"], Algorithm.DP_SGD, cluster, 32,
            plan=ParallelPlan(dp=2, pp=2, tp=2), recorder=recorder)
        return recorder

    def test_stage_tracks_and_bubble_slice(self):
        from repro.obs.trace import validate_events

        recorder = self._record()
        assert validate_events(recorder.events) == []
        pipeline = [e for e in recorder.events
                    if e.get("cat") == "pipeline"]
        stage_spans = [e for e in pipeline if e["ph"] == "X"]
        assert [e["name"] for e in stage_spans] \
            == ["stage 0 [L0:41)", "stage 1 [L41:49)"]
        bubble = [e for e in pipeline if e["ph"] in ("b", "e")]
        assert [e["name"] for e in bubble] == ["pipeline bubble"] * 2
        assert bubble[1]["ts"] > bubble[0]["ts"]

    def test_trace_bytes_deterministic(self):
        one = json.dumps(self._record().events, sort_keys=True)
        two = json.dumps(self._record().events, sort_keys=True)
        assert one == two

    def test_pure_dp_trace_has_no_pipeline_track(self):
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        cluster = build_cluster("diva", n_chips=4)
        simulate_sharded_training_step(
            NETS["SqueezeNet"], Algorithm.DP_SGD, cluster, 32,
            recorder=recorder)
        assert not [e for e in recorder.events
                    if e.get("cat") == "pipeline"]
