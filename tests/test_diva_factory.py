"""Tests for the accelerator factory and DivaConfig (repro.core)."""

import pytest

from repro.arch.engine import ArrayConfig
from repro.core import (
    ACCELERATOR_KINDS,
    DivaConfig,
    build_accelerator,
    build_diva,
)
from repro.core.ppu import PpuConfig


class TestFactory:
    def test_three_kinds(self):
        assert set(ACCELERATOR_KINDS) == {"ws", "os", "diva"}

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            build_accelerator("tpu")

    def test_ws_defaults_no_ppu(self):
        assert build_accelerator("ws").ppu is None

    def test_ws_with_ppu_rejected(self):
        """Section IV-C: WS output granularity cannot feed the PPU."""
        with pytest.raises(ValueError):
            build_accelerator("ws", with_ppu=True)

    def test_os_and_diva_default_ppu(self):
        assert build_accelerator("os").ppu is not None
        assert build_accelerator("diva").ppu is not None

    def test_ppu_ablation(self):
        assert build_accelerator("diva", with_ppu=False).ppu is None

    def test_engine_names(self):
        assert build_accelerator("ws").name == "WS"
        assert build_accelerator("os").name == "OS"
        assert build_accelerator("diva").name == "DiVa"

    def test_case_insensitive(self):
        assert build_accelerator("DiVa").name == "DiVa"

    def test_build_diva_helper(self):
        accel = build_diva()
        assert accel.name == "DiVa"
        assert accel.can_fuse_norm

    def test_shared_frequency(self):
        accel = build_accelerator("diva")
        assert accel.frequency_hz == accel.engine.config.frequency_hz


class TestDivaConfig:
    def test_table2_rows(self):
        table = DivaConfig().table2()
        assert table["PE array dimension"] == "128 x 128"
        assert table["PE operating frequency"] == "940 MHz"
        assert table["On-chip SRAM size"] == "16 MB"
        assert table["Number of memory channels"] == "16"
        assert table["Memory bandwidth"] == "450 GB/sec"
        assert table["Memory access latency"] == "100 cycles"

    def test_ppu_must_cover_array_width(self):
        with pytest.raises(ValueError):
            DivaConfig(array=ArrayConfig(width=256),
                       ppu=PpuConfig(tree_width=128))

    def test_custom_array_flows_through(self):
        cfg = DivaConfig(array=ArrayConfig(height=64, width=64))
        accel = build_accelerator("diva", config=cfg)
        assert accel.config.height == 64
