"""Tests for the Network container (repro.workloads.model)."""

import pytest

from repro.workloads.gemms import GemmKind
from repro.workloads.layer import Conv2D, Elementwise, Embedding, Linear, Norm
from repro.workloads.model import ModelFamily, Network


def tiny_network() -> Network:
    return Network(
        name="tiny",
        family=ModelFamily.CNN,
        layers=(
            Conv2D("conv1", 3, 8, 8, 8),
            Elementwise("relu1", 8 * 8 * 8),
            Linear("fc", 8 * 8 * 8, 10),
        ),
        input_elems=3 * 8 * 8,
    )


class TestNetworkStructure:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Network("dup", ModelFamily.CNN,
                    (Linear("a", 2, 2), Linear("a", 2, 2)), input_elems=2)

    def test_params_sum(self):
        net = tiny_network()
        expected = 8 * 3 * 9 + (512 * 10 + 10)
        assert net.params == expected

    def test_weight_layers(self):
        net = tiny_network()
        assert [l.name for l in net.weight_layers] == ["conv1", "fc"]

    def test_act_elems_includes_input(self):
        net = tiny_network()
        total = 3 * 64 + 8 * 64 + 8 * 64 + 10
        assert net.act_elems_per_example == total

    def test_max_layer_params(self):
        net = tiny_network()
        assert net.max_layer_params == 512 * 10 + 10

    def test_describe_mentions_name(self):
        assert "tiny" in tiny_network().describe()


class TestParamPartition:
    def test_vector_plus_gemm_is_total(self):
        net = Network(
            "mix", ModelFamily.TRANSFORMER,
            (Embedding("emb", 100, 8, 4), Norm("ln", 32, 8),
             Linear("fc", 8, 4)),
            input_elems=4,
        )
        assert net.gemm_params + net.vector_grad_params == net.params

    def test_embedding_and_norm_are_vector_path(self):
        net = Network(
            "mix2", ModelFamily.TRANSFORMER,
            (Embedding("emb", 100, 8, 4), Norm("ln", 32, 8),
             Linear("fc", 8, 4)),
            input_elems=4,
        )
        assert net.vector_grad_params == 100 * 8 + 16
        assert net.gemm_params == 8 * 4 + 4


class TestGemmExtraction:
    def test_all_stages_nonempty(self):
        net = tiny_network()
        for kind in GemmKind:
            assert net.gemms(kind, batch=4), kind

    def test_stage_macs_scale_with_batch(self):
        net = tiny_network()
        m1 = net.stage_macs(GemmKind.FORWARD, 1)
        m8 = net.stage_macs(GemmKind.FORWARD, 8)
        assert m8 == 8 * m1

    def test_example_wgrad_count_equals_batch(self):
        net = tiny_network()
        for gemm in net.gemms(GemmKind.WGRAD_EXAMPLE, batch=16):
            assert gemm.count % 16 == 0

    def test_batch_vs_example_wgrad_macs_match(self):
        """Figure 6: reduction changes shape, not MAC count."""
        net = tiny_network()
        assert (net.stage_macs(GemmKind.WGRAD_BATCH, 8)
                == net.stage_macs(GemmKind.WGRAD_EXAMPLE, 8))
