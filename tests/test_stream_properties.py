"""Hypothesis property tests for the streaming quantile estimators.

The P² markers (:class:`repro.serve.stream.P2Quantile`) and their
zero-split wrapper (:class:`repro.serve.stream.StreamingStats`) feed
both the fleet report's wait percentiles and the autoscaler's p99
trigger, so their estimates must stay sane on *adversarial* streams,
not just the friendly exponential waits of the demo trace:

* every estimate is bounded by the observed min/max (a P² marker can
  interpolate, never extrapolate);
* on zero-heavy streams (the wait stream's signature point mass) and
  on monotone streams (the worst case for marker adjustment) the
  estimate stays within a tolerance of the exact nearest-rank
  percentile.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import P2Quantile, StreamingStats, percentile
from repro.serve.stream import WARMUP_OBSERVATIONS

_QUANTILES = (0.5, 0.95, 0.99)


def _exact(data, p):
    return percentile(list(data), p * 100)


class TestP2QuantileBounds:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6),
           p=st.floats(0.01, 0.99),
           n=st.integers(1, 2000))
    def test_estimate_bounded_by_observed_extremes(self, seed, p, n):
        rng = np.random.default_rng(seed)
        data = rng.lognormal(0.0, 2.0, n)
        estimator = P2Quantile(p)
        for value in data:
            estimator.add(float(value))
        assert len(estimator) == n
        assert data.min() <= estimator.value() <= data.max()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6), p=st.floats(0.01, 0.99))
    def test_seeded_estimator_bounded(self, seed, p):
        rng = np.random.default_rng(seed)
        sample = np.sort(rng.exponential(3.0, 512))
        tail = rng.exponential(3.0, 4096)
        estimator = P2Quantile(p)
        estimator.seed(sample.tolist(), p)
        for value in tail:
            estimator.add(float(value))
        lo = min(sample.min(), tail.min())
        hi = max(sample.max(), tail.max())
        assert lo <= estimator.value() <= hi

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(200, 5000), p=st.sampled_from(_QUANTILES))
    def test_monotone_stream_within_tolerance(self, n, p):
        """Strictly increasing input — P²'s classic stress case.

        Streams shorter than a couple hundred observations are out of
        scope: five markers cannot pin a 99th percentile of a drifting
        distribution they have barely seen.
        """
        data = np.arange(1.0, n + 1.0)
        estimator = P2Quantile(p)
        for value in data:
            estimator.add(float(value))
        exact = _exact(data, p)
        # Markers lag a drifting distribution; 10% of the observed
        # range is far tighter than a broken estimator would manage.
        assert abs(estimator.value() - exact) <= 0.10 * n


class TestStreamingStatsProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6),
           zero_frac=st.floats(0.0, 0.95),
           n=st.integers(1, 12_000))
    def test_bounded_and_zero_mass_exact(self, seed, zero_frac, n):
        rng = np.random.default_rng(seed)
        zeros = int(n * zero_frac)
        data = np.concatenate([np.zeros(zeros),
                               rng.exponential(7.0, n - zeros)])
        rng.shuffle(data)
        stats = StreamingStats()
        for value in data:
            stats.add(float(value))
        assert stats.count == n
        assert stats.zeros == zeros
        for p in _QUANTILES:
            estimate = stats.quantile(p)
            assert 0.0 <= estimate <= data.max()
            if p * n <= zeros:
                # The zero point mass alone covers p: exact answer.
                assert estimate == 0.0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6), zero_frac=st.floats(0.0, 0.8))
    def test_zero_heavy_stream_within_tolerance(self, seed, zero_frac):
        n = WARMUP_OBSERVATIONS * 3
        rng = np.random.default_rng(seed)
        zeros = int(n * zero_frac)
        data = np.concatenate([np.zeros(zeros),
                               rng.exponential(10.0, n - zeros)])
        rng.shuffle(data)
        stats = StreamingStats()
        for value in data:
            stats.add(float(value))
        scale = float(data.max())
        for p in _QUANTILES:
            assert abs(stats.quantile(p) - _exact(data, p)) \
                <= 0.05 * scale + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(direction=st.sampled_from((1.0, -1.0)))
    def test_monotone_stream_past_warmup(self, direction):
        """Sorted input (either direction) straight through graduation."""
        n = WARMUP_OBSERVATIONS * 2
        data = np.arange(1.0, n + 1.0)[::int(direction)].copy()
        stats = StreamingStats()
        for value in data:
            stats.add(float(value))
        for p in _QUANTILES:
            exact = _exact(data, p)
            assert 1.0 <= stats.quantile(p) <= n
            assert abs(stats.quantile(p) - exact) <= 0.10 * n

    def test_exact_below_warmup_any_mix(self):
        data = [0.0, 0.0, 5.0, 1.0, 0.0, 9.0, 2.0]
        stats = StreamingStats()
        for value in data:
            stats.add(value)
        for p in _QUANTILES:
            assert stats.quantile(p) == _exact(data, p)
