"""Functional-simulator tests: numerics vs NumPy, cycles vs closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import (
    os_wavefront_cycles,
    simulate_adder_tree,
    simulate_os,
    simulate_outer_product,
    simulate_ws,
    ws_stream_cycles,
)

shapes = st.tuples(st.integers(1, 12), st.integers(1, 8), st.integers(1, 8))


def _operands(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(m, k)), rng.normal(size=(k, n))


class TestWsFunctional:
    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 100))
    def test_numerics_match_numpy(self, shape, seed):
        m, k, n = shape
        a, b = _operands(m, k, n, seed)
        result = simulate_ws(a, b, height=8, width=8, fill_rows_per_cycle=2)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(shape=shapes)
    def test_stream_cycles_closed_form(self, shape):
        m, k, n = shape
        a, b = _operands(m, k, n)
        result = simulate_ws(a, b, height=8, width=8, fill_rows_per_cycle=2)
        assert result.stream_cycles == ws_stream_cycles(m, k, n)

    def test_fill_cycles(self):
        a, b = _operands(4, 7, 3)
        result = simulate_ws(a, b, height=8, width=8, fill_rows_per_cycle=2)
        assert result.fill_cycles == 4  # ceil(7/2)

    def test_oversize_tile_rejected(self):
        a, b = _operands(4, 9, 3)
        with pytest.raises(ValueError):
            simulate_ws(a, b, height=8, width=8)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_ws(rng.normal(size=(3, 4)), rng.normal(size=(5, 2)),
                        8, 8)


class TestOsFunctional:
    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 20),
                           st.integers(1, 8)), seed=st.integers(0, 100))
    def test_numerics_match_numpy(self, shape, seed):
        m, k, n = shape
        a, b = _operands(m, k, n, seed)
        result = simulate_os(a, b, height=8, width=8)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 20),
                           st.integers(1, 8)))
    def test_wavefront_closed_form(self, shape):
        m, k, n = shape
        a, b = _operands(m, k, n)
        result = simulate_os(a, b, height=8, width=8)
        assert result.wavefront_cycles == os_wavefront_cycles(m, k, n)

    def test_oversize_output_tile_rejected(self):
        a, b = _operands(9, 4, 3)
        with pytest.raises(ValueError):
            simulate_os(a, b, height=8, width=8)


class TestOuterProductFunctional:
    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 30),
                           st.integers(1, 8)), seed=st.integers(0, 100))
    def test_numerics_match_numpy(self, shape, seed):
        m, k, n = shape
        a, b = _operands(m, k, n, seed)
        result = simulate_outer_product(a, b, height=8, width=8)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 30),
                           st.integers(1, 8)))
    def test_compute_cycles_equal_k(self, shape):
        """The headline property: K cycles regardless of M, N."""
        m, k, n = shape
        a, b = _operands(m, k, n)
        result = simulate_outer_product(a, b, height=8, width=8)
        assert result.compute_cycles == k

    @settings(max_examples=40, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 30),
                           st.integers(1, 8)), seed=st.integers(0, 100))
    def test_ppu_norm_tap(self, shape, seed):
        """The drained norm equals the Frobenius norm of the product."""
        m, k, n = shape
        a, b = _operands(m, k, n, seed)
        result = simulate_outer_product(a, b, height=8, width=8)
        expected = float(np.sum((a @ b) ** 2))
        assert result.norm_squared == pytest.approx(expected)

    def test_drain_cycles(self):
        a, b = _operands(7, 3, 4)
        result = simulate_outer_product(a, b, 8, 8, drain_rows_per_cycle=2)
        assert result.drain_cycles == 4  # ceil(7/2)


class TestCrossValidation:
    """The analytic models must be conservative w.r.t. the functional sims."""

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes)
    def test_ws_analytic_upper_bounds_functional(self, shape):
        from repro.arch.engine import ArrayConfig
        from repro.arch.systolic import WeightStationaryEngine

        m, k, n = shape
        cfg = ArrayConfig(height=8, width=8, fill_rows_per_cycle=2,
                          tile_startup_cycles=0, gemm_startup_cycles=0,
                          weight_double_buffer=False)
        engine = WeightStationaryEngine(cfg)
        fill, stream = engine.tile_cycle_phases(
            engine.tiles(__import__("repro.workloads.gemms",
                                    fromlist=["Gemm"]).Gemm(m, k, n))[0])
        a, b = _operands(m, k, n)
        functional = simulate_ws(a, b, 8, 8, fill_rows_per_cycle=2)
        assert fill == functional.fill_cycles
        assert stream >= functional.stream_cycles

    @settings(max_examples=30, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 20),
                           st.integers(1, 8)))
    def test_os_analytic_upper_bounds_functional(self, shape):
        from repro.arch.engine import ArrayConfig
        from repro.arch.systolic import OutputStationaryEngine
        from repro.workloads.gemms import Gemm

        m, k, n = shape
        cfg = ArrayConfig(height=8, width=8, tile_startup_cycles=0,
                          gemm_startup_cycles=0)
        engine = OutputStationaryEngine(cfg)
        _, wave = engine.tile_cycle_phases(engine.tiles(Gemm(m, k, n))[0])
        a, b = _operands(m, k, n)
        functional = simulate_os(a, b, 8, 8)
        assert wave == functional.wavefront_cycles + 1  # paper's +1 skew

    @settings(max_examples=30, deadline=None)
    @given(shape=st.tuples(st.integers(1, 8), st.integers(1, 20),
                           st.integers(1, 8)))
    def test_outer_product_analytic_matches_functional(self, shape):
        from repro.arch.engine import ArrayConfig
        from repro.core.outer_product import OuterProductEngine
        from repro.workloads.gemms import Gemm

        m, k, n = shape
        cfg = ArrayConfig(height=8, width=8, drain_rows_per_cycle=2,
                          tile_startup_cycles=0, gemm_startup_cycles=0)
        engine = OuterProductEngine(cfg)
        drain, main = engine.tile_cycle_phases(
            engine.tiles(Gemm(m, k, n))[0])
        a, b = _operands(m, k, n)
        functional = simulate_outer_product(a, b, 8, 8,
                                            drain_rows_per_cycle=2)
        assert main == functional.compute_cycles
        assert drain == functional.drain_cycles


class TestAdderTree:
    def test_sums_match_numpy(self):
        rng = np.random.default_rng(3)
        rows = rng.normal(size=(20, 32))
        result = simulate_adder_tree(rows)
        np.testing.assert_allclose(result.sums, rows.sum(axis=1), atol=1e-9)

    def test_latency_is_log2_width(self):
        """Section IV-C: output generation is O(log2 E)."""
        rows = np.ones((4, 128))
        result = simulate_adder_tree(rows)
        assert result.latency_cycles == 7

    def test_pipelined_throughput(self):
        """N rows complete in N + levels cycles — one row per clock."""
        rows = np.ones((50, 16))
        result = simulate_adder_tree(rows)
        assert result.total_cycles == 50 + 4

    def test_non_power_of_two_width(self):
        rows = np.arange(30.0).reshape(3, 10)
        result = simulate_adder_tree(rows)
        np.testing.assert_allclose(result.sums, rows.sum(axis=1))

    def test_rejects_width_one(self):
        from repro.functional.adder_tree import PipelinedAdderTree
        with pytest.raises(ValueError):
            PipelinedAdderTree(1)

    def test_rejects_wrong_row_width(self):
        from repro.functional.adder_tree import PipelinedAdderTree
        tree = PipelinedAdderTree(8)
        with pytest.raises(ValueError):
            tree.step(np.ones(9))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            simulate_adder_tree(np.ones(8))
