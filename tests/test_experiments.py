"""Integration tests: the experiment harness reproduces the paper's shape.

These run each figure/table on a reduced model subset (for speed) and
assert the qualitative results the paper reports: orderings, approximate
factors and crossovers.  EXPERIMENTS.md records the full-model numbers.
"""

import pytest

from repro.experiments import (
    fig04_memory,
    fig05_breakdown,
    fig07_utilization,
    fig13_speedup,
    fig14_breakdown,
    fig15_flops,
    fig16_energy,
    fig17_gpu,
    maxbatch,
    ppu_traffic,
    sensitivity,
    table1_bandwidth,
    table3_area_power,
)
from repro.training import Algorithm, Phase
from repro.workloads import GemmKind

FAST_MODELS = ("SqueezeNet", "LSTM-small")


class TestFig04:
    rows = fig04_memory.run(FAST_MODELS)

    def test_three_bars_per_model(self):
        assert len(self.rows) == 3 * len(FAST_MODELS)

    def test_dp_sgd_dominated_by_example_grads(self):
        for row in self.rows:
            if row.algorithm is Algorithm.DP_SGD:
                assert row.breakdown.fraction("example_gradients") > 0.5

    def test_dp_sgd_r_shrinks_memory(self):
        by_algo = {(r.model, r.algorithm): r for r in self.rows}
        for model in FAST_MODELS:
            dp = by_algo[(model, Algorithm.DP_SGD)].breakdown.total
            dp_r = by_algo[(model, Algorithm.DP_SGD_R)].breakdown.total
            assert dp_r < dp
        # The deep CNN shows the full reduction (paper avg: 3.8x).
        squeeze_dp = by_algo[("SqueezeNet", Algorithm.DP_SGD)]
        squeeze_r = by_algo[("SqueezeNet", Algorithm.DP_SGD_R)]
        assert squeeze_r.breakdown.total < squeeze_dp.breakdown.total / 2

    def test_render(self):
        assert "Figure 4" in fig04_memory.render(self.rows)


class TestFig05:
    rows = fig05_breakdown.run(FAST_MODELS)

    def test_dp_sgd_slowdown_range(self):
        """Paper: order-of-magnitude slowdown on the WS baseline."""
        for row in self.rows:
            if row.algorithm is Algorithm.DP_SGD:
                assert row.normalized_total > 3.0

    def test_dp_sgd_r_beats_dp_sgd(self):
        by_algo = {(r.model, r.algorithm): r for r in self.rows}
        for model in FAST_MODELS:
            assert (by_algo[(model, Algorithm.DP_SGD_R)].normalized_total
                    < by_algo[(model, Algorithm.DP_SGD)].normalized_total)

    def test_sgd_normalized_to_one(self):
        for row in self.rows:
            if row.algorithm is Algorithm.SGD:
                assert row.normalized_total == pytest.approx(1.0)

    def test_render(self):
        assert "slowdown" in fig05_breakdown.render(self.rows)


class TestFig07:
    rows = fig07_utilization.run(FAST_MODELS)

    def test_example_grads_lowest_utilization(self):
        for row in self.rows:
            ex = row.utilization[GemmKind.WGRAD_EXAMPLE]
            assert ex < row.utilization[GemmKind.FORWARD]
            assert ex < row.utilization[GemmKind.WGRAD_BATCH]

    def test_utilizations_bounded(self):
        for row in self.rows:
            for value in row.utilization.values():
                assert 0.0 < value <= 1.0


class TestFig13:
    rows = fig13_speedup.run(FAST_MODELS)

    def test_diva_beats_everything(self):
        for row in self.rows:
            diva = row.dp_speedups["DiVa with PPU"]
            assert diva > 1.5
            assert diva >= row.dp_speedups["DiVa w/o PPU"]
            assert diva > row.dp_speedups["OS with PPU"]

    def test_os_close_to_ws(self):
        """Paper: OS alone is no cure (Figure 13)."""
        for row in self.rows:
            assert 0.5 < row.dp_speedups["OS w/o PPU"] < 1.6

    def test_diva_sgd_beats_ws_sgd(self):
        for row in self.rows:
            assert row.sgd_speedups["DiVa"] > row.sgd_speedups["WS"]

    def test_summary_keys(self):
        stats = fig13_speedup.summarize(self.rows)
        assert stats["diva_speedup_max"] >= stats["diva_speedup_avg"]


class TestFig14:
    rows = fig14_breakdown.run(("SqueezeNet",))

    def test_ws_normalized_to_one(self):
        ws = next(r for r in self.rows if r.design == "WS")
        assert ws.normalized_total == pytest.approx(1.0)

    def test_ppu_eliminates_norm_stage(self):
        with_ppu = next(r for r in self.rows if r.design == "DiVa with PPU")
        without = next(r for r in self.rows if r.design == "DiVa w/o PPU")
        norm_with = with_ppu.report.phase_seconds(Phase.BWD_GRAD_NORM)
        norm_without = without.report.phase_seconds(Phase.BWD_GRAD_NORM)
        assert norm_with < norm_without / 10

    def test_example_grad_reduction(self):
        reductions = fig14_breakdown.example_grad_reduction(self.rows)
        assert reductions["SqueezeNet"] > 2.0


class TestFig15:
    rows = fig15_flops.run(("SqueezeNet", "LSTM-small"))

    def test_ws_improvement_is_one(self):
        for row in self.rows:
            if row.engine == "WS":
                for value in row.improvement.values():
                    assert value == pytest.approx(1.0)

    def test_diva_improves_example_grads(self):
        for row in self.rows:
            if row.engine == "DiVa":
                assert row.improvement[GemmKind.WGRAD_EXAMPLE] > 2.0


class TestFig16:
    rows = fig16_energy.run(("SqueezeNet",))

    def test_diva_cheapest(self):
        by_design = {r.design: r.normalized_total for r in self.rows}
        assert by_design["DiVa with PPU"] < by_design["DiVa w/o PPU"]
        assert by_design["DiVa with PPU"] < by_design["WS"] / 1.5

    def test_ws_is_baseline(self):
        ws = next(r for r in self.rows if r.design == "WS")
        assert ws.normalized_total == pytest.approx(1.0)


class TestFig17:
    rows = fig17_gpu.run(("SqueezeNet", "MobileNet", "BERT-base"))

    def test_mobilenet_gpu_wins(self):
        """Section VI-D: the one workload where GPUs beat DiVa."""
        row = next(r for r in self.rows if r.model == "MobileNet")
        assert row.speedup("DiVa (BF16)", "V100 (FP16)") < 1.0

    def test_bert_diva_wins(self):
        """Despite 4.2x lower peak FLOPS, DiVa beats V100 Tensor Cores
        on Transformer bottleneck GEMMs (Section VI-D)."""
        row = next(r for r in self.rows if r.model == "BERT-base")
        assert row.speedup("DiVa (BF16)", "V100 (FP16)") > 1.0

    def test_tensor_cores_faster_than_fp32(self):
        for row in self.rows:
            assert row.seconds["V100 (FP16)"] <= row.seconds["V100 (FP32)"]
            assert row.seconds["A100 (FP16)"] <= row.seconds["A100 (FP32)"]


class TestTables:
    def test_table1_exact(self):
        result = table1_bandwidth.run()
        assert result.ws.total == 2816
        assert result.os_outer.total == 4608

    def test_table3_effective_ordering(self):
        """DiVa's engine sustains far higher effective TFLOPS."""
        diva = table3_area_power.effective_tflops("diva", FAST_MODELS)
        ws = table3_area_power.effective_tflops("ws", FAST_MODELS)
        os_ = table3_area_power.effective_tflops("os", FAST_MODELS)
        assert diva > 3 * ws
        assert ws > os_

    def test_table3_render(self):
        result = table3_area_power.run(FAST_MODELS)
        text = table3_area_power.render(result)
        assert "Outer-product" in text


class TestSensitivity:
    def test_speedup_decays_with_image_size(self):
        """Section VI-C: bigger inputs shrink DiVa's edge."""
        points = sensitivity.run_images(sizes=(32, 128),
                                        models=("SqueezeNet",))
        avg = sensitivity.averages(points)
        assert avg["img128"] < avg["img32"]

    def test_speedup_decays_with_seq_len(self):
        points = sensitivity.run_sequences(lens=(32, 128),
                                           models=("LSTM-small",))
        avg = sensitivity.averages(points)
        assert avg["seq128"] < avg["seq32"]


class TestMaxBatchAndTraffic:
    def test_maxbatch_rows(self):
        rows = maxbatch.run(("SqueezeNet",))
        assert rows[0].sgd > rows[0].dp_sgd
        assert rows[0].dp_sgd_r >= rows[0].dp_sgd

    def test_ppu_traffic_reduction(self):
        rows = ppu_traffic.run(FAST_MODELS)
        for row in rows:
            assert row.reduction > 0.9

    def test_renders(self):
        assert "16 GB" in maxbatch.render(maxbatch.run(("SqueezeNet",)))
        assert "%" in ppu_traffic.render(ppu_traffic.run(("SqueezeNet",)))
