"""Tests for the DP-SGD optimizers (repro.dpml.dpsgd) — Algorithm 1."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpml import (
    Conv2D,
    Dense,
    DpSgdOptimizer,
    Flatten,
    GradMode,
    PrivacyParams,
    ReLU,
    Sequential,
    clip_scales,
    softmax_cross_entropy,
    synthetic_classification,
    synthetic_images,
)


def small_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Dense(16, 32, rng=rng), ReLU(), Dense(32, 4, rng=rng),
    ])


def conv_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2D(2, 4, rng=rng), ReLU(), Flatten(),
        Dense(4 * 6 * 6, 3, rng=rng),
    ])


class TestClipScales:
    @given(norms=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=64),
           clip=st.floats(0.1, 100.0))
    def test_clipped_norms_bounded(self, norms, clip):
        """Algorithm 1 line 23: after clipping, ||g_i|| <= C."""
        sq = np.array(norms) ** 2
        scales = clip_scales(sq, clip)
        clipped = np.sqrt(sq) * scales
        assert np.all(clipped <= clip * (1 + 1e-9))

    @given(norms=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=64))
    def test_small_gradients_untouched(self, norms):
        """Gradients under the threshold are not scaled."""
        sq = np.array(norms) ** 2
        scales = clip_scales(sq, clip_norm=1e9)
        np.testing.assert_allclose(scales, 1.0)

    def test_exact_scale(self):
        scales = clip_scales(np.array([16.0]), clip_norm=2.0)
        assert scales[0] == pytest.approx(0.5)


class TestAlgorithmEquivalence:
    """DP-SGD and DP-SGD(R) are algebraically identical (Algorithm 1)."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500), clip=st.floats(0.1, 5.0))
    def test_dense_net_updates_identical(self, seed, clip):
        data = synthetic_classification(64, 16, 4, seed=seed)
        x, y = data.x[:16], data.y[:16]
        net_a, net_b = small_net(seed), small_net(seed)
        privacy = PrivacyParams(clip_norm=clip, noise_multiplier=1.0)
        opt_a = DpSgdOptimizer(net_a, privacy=privacy,
                               rng=np.random.default_rng(seed))
        opt_b = DpSgdOptimizer(net_b, privacy=privacy,
                               rng=np.random.default_rng(seed))
        opt_a.step_dpsgd(x, y)
        opt_b.step_reweighted(x, y)
        for la, lb in zip(net_a.weight_layers, net_b.weight_layers):
            for name in la.params:
                np.testing.assert_allclose(la.params[name], lb.params[name],
                                           atol=1e-9)

    def test_conv_net_updates_identical(self):
        data = synthetic_images(32, 2, 6, 3, seed=3)
        x, y = data.x[:8], data.y[:8]
        net_a, net_b = conv_net(3), conv_net(3)
        opt_a = DpSgdOptimizer(net_a, rng=np.random.default_rng(9))
        opt_b = DpSgdOptimizer(net_b, rng=np.random.default_rng(9))
        ra = opt_a.step_dpsgd(x, y)
        rb = opt_b.step_reweighted(x, y)
        assert ra.mean_loss == pytest.approx(rb.mean_loss)
        assert ra.mean_grad_norm == pytest.approx(rb.mean_grad_norm)
        assert ra.clipped_fraction == rb.clipped_fraction
        for la, lb in zip(net_a.weight_layers, net_b.weight_layers):
            for name in la.params:
                np.testing.assert_allclose(la.params[name], lb.params[name],
                                           atol=1e-9)

    def test_same_result_means_same_telemetry(self):
        data = synthetic_classification(32, 16, 4, seed=1)
        net = small_net(1)
        opt = DpSgdOptimizer(net, rng=np.random.default_rng(0))
        result = opt.step_dpsgd(data.x[:8], data.y[:8])
        assert 0.0 <= result.clipped_fraction <= 1.0
        assert result.mean_grad_norm > 0


class TestNoiseBehaviour:
    def test_zero_noise_deterministic(self):
        data = synthetic_classification(32, 16, 4, seed=2)
        privacy = PrivacyParams(clip_norm=1.0, noise_multiplier=0.0)
        nets = [small_net(5), small_net(5)]
        for net in nets:
            DpSgdOptimizer(net, privacy=privacy,
                           rng=np.random.default_rng(123)).step_dpsgd(
                data.x[:8], data.y[:8])
        for la, lb in zip(nets[0].weight_layers, nets[1].weight_layers):
            np.testing.assert_array_equal(la.params["weight"],
                                          lb.params["weight"])

    def test_noise_perturbs_update(self):
        data = synthetic_classification(32, 16, 4, seed=2)
        quiet, noisy = small_net(5), small_net(5)
        DpSgdOptimizer(
            quiet, privacy=PrivacyParams(1.0, 0.0),
            rng=np.random.default_rng(1)).step_dpsgd(data.x[:8], data.y[:8])
        DpSgdOptimizer(
            noisy, privacy=PrivacyParams(1.0, 5.0),
            rng=np.random.default_rng(1)).step_dpsgd(data.x[:8], data.y[:8])
        diff = np.abs(quiet.weight_layers[0].params["weight"]
                      - noisy.weight_layers[0].params["weight"]).max()
        assert diff > 1e-6

    def test_noise_scale_uses_clip_norm(self):
        """Algorithm 1 line 24: noise is N(0, sigma^2 C^2 I)."""
        net = small_net(0)
        opt = DpSgdOptimizer(
            net, privacy=PrivacyParams(clip_norm=3.0, noise_multiplier=2.0),
            rng=np.random.default_rng(0))
        samples = opt._noise_like(np.zeros(200_000))
        assert samples.std() == pytest.approx(6.0, rel=0.02)


class TestPrivacyParams:
    def test_rejects_bad_clip(self):
        with pytest.raises(ValueError):
            PrivacyParams(clip_norm=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            PrivacyParams(noise_multiplier=-1.0)


class TestSgdBaseline:
    def test_loss_decreases(self):
        data = synthetic_classification(128, 16, 4, seed=4, separation=3.0)
        net = small_net(7)
        opt = DpSgdOptimizer(net, lr=0.05)
        first = opt.step_sgd(data.x[:64], data.y[:64]).mean_loss
        for _ in range(30):
            last = opt.step_sgd(data.x[:64], data.y[:64]).mean_loss
        assert last < first

    def test_steps_counted(self):
        data = synthetic_classification(32, 16, 4)
        net = small_net(0)
        opt = DpSgdOptimizer(net)
        opt.step_sgd(data.x[:8], data.y[:8])
        opt.step_dpsgd(data.x[:8], data.y[:8])
        opt.step_reweighted(data.x[:8], data.y[:8])
        assert opt.steps_taken == 3


class TestClippingInvariantEndToEnd:
    def test_summed_update_bounded_by_clip(self):
        """With zero noise, ||sum of clipped grads|| <= B * C."""
        data = synthetic_classification(64, 16, 4, seed=8, separation=10.0)
        net = small_net(11)
        clip = 0.5
        batch = 16
        x, y = data.x[:batch], data.y[:batch]
        logits = net.forward(x)
        _, d = softmax_cross_entropy(logits, y)
        net.backward(d, mode=GradMode.PER_EXAMPLE)
        sq = net.per_example_sq_norms()
        scales = clip_scales(sq, clip)
        total_sq = 0.0
        for layer in net.weight_layers:
            for per_ex in layer.per_example_grads.values():
                shape = (batch,) + (1,) * (per_ex.ndim - 1)
                summed = (per_ex * scales.reshape(shape)).sum(axis=0)
                total_sq += float((summed ** 2).sum())
        assert np.sqrt(total_sq) <= batch * clip * (1 + 1e-9)
