"""Tests for the overlap-aware communication subsystem: bucketed
allreduces, the hierarchical topology, exposed-vs-total accounting,
and the cluster cycle-rounding bugfixes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Interconnect, InterconnectConfig, OpRun
from repro.arch.interconnect import TOPOLOGIES
from repro.core import build_accelerator, build_cluster
from repro.experiments import scaling
from repro.training import (
    Algorithm,
    Phase,
    allreduce_payload_bytes,
    overlappable_backward_cycles,
    simulate_sharded_training_step,
    simulate_training_step,
)
from repro.workloads import build_model

NETWORK = build_model("SqueezeNet")


def fabric(**kwargs) -> Interconnect:
    return Interconnect(InterconnectConfig(**kwargs))


class TestHierarchicalTopology:
    def test_registered(self):
        assert "hierarchical" in TOPOLOGIES

    def test_closed_form(self):
        bw, lat = 100e9, 1e-6
        ic = fabric(topology="hierarchical", chips_per_node=4,
                    link_bandwidth_bytes_per_s=bw, link_latency_s=lat)
        payload, n = 10**8, 8
        m, k = 4, 2
        expected = (2 * (payload / (m * bw) + lat)
                    + 2 * (k - 1) * (payload / (m * k * bw) + lat))
        assert ic.allreduce_seconds(payload, n) == pytest.approx(expected)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_degenerates_to_ring_at_one_chip_per_node(self, n):
        hier = fabric(topology="hierarchical", chips_per_node=1)
        ring = fabric(topology="ring")
        payload = 7 * 10**6 + 13
        assert hier.allreduce_seconds(payload, n) \
            == ring.allreduce_seconds(payload, n)
        assert hier.link_bytes_per_chip(payload, n) \
            == ring.link_bytes_per_chip(payload, n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_degenerates_to_all_to_all_at_full_node(self, n):
        hier = fabric(topology="hierarchical", chips_per_node=n)
        a2a = fabric(topology="all_to_all")
        payload = 7 * 10**6 + 13
        assert hier.allreduce_seconds(payload, n) \
            == a2a.allreduce_seconds(payload, n)
        assert hier.link_bytes_per_chip(payload, n) \
            == a2a.link_bytes_per_chip(payload, n)

    def test_between_flat_topologies_on_latency_hops(self):
        # 2 + 2(K-1) latency hops sit between all_to_all's 2 and the
        # flat ring's 2(N-1) — fewer ring steps over fatter shards.
        payload, n = 4096, 16
        ring = fabric(topology="ring").allreduce_seconds(payload, n)
        a2a = fabric(topology="all_to_all").allreduce_seconds(payload, n)
        hier = fabric(topology="hierarchical",
                      chips_per_node=4).allreduce_seconds(payload, n)
        assert a2a < hier < ring

    def test_rejects_indivisible_node_shape(self):
        ic = fabric(topology="hierarchical", chips_per_node=3)
        with pytest.raises(ValueError, match="hierarchical nodes"):
            ic.allreduce_seconds(8 * 10**6, 8)

    def test_chips_per_node_requires_hierarchical(self):
        with pytest.raises(ValueError, match="chips_per_node"):
            InterconnectConfig(topology="ring", chips_per_node=2)

    def test_single_chip_free(self):
        ic = fabric(topology="hierarchical", chips_per_node=1)
        assert ic.allreduce_seconds(10**9, 1) == 0.0
        assert ic.link_bytes_per_chip(10**9, 1) == 0


class TestBucketing:
    def test_bucket_sizes_split_with_remainder(self):
        ic = fabric(bucket_bytes=1000)
        assert ic.bucket_sizes(2500) == [1000, 1000, 500]
        assert ic.bucket_sizes(2000) == [1000, 1000]
        assert ic.bucket_sizes(0) == []
        assert ic.n_buckets(2500) == 3

    def test_monolithic_when_bucket_covers_payload(self):
        for cfg in (dict(bucket_bytes=None), dict(bucket_bytes=10**9)):
            ic = fabric(**cfg)
            assert ic.bucket_sizes(10**6) == [10**6]

    @pytest.mark.parametrize("topology,cpn",
                             [("ring", 1), ("all_to_all", 1),
                              ("hierarchical", 2)])
    def test_bucketed_time_converges_to_unbucketed(self, topology, cpn):
        payload, n = 10**7, 4
        base = fabric(topology=topology, chips_per_node=cpn)
        exact = base.allreduce_seconds(payload, n)
        # At bucket_bytes == payload the schedules are identical.
        whole = fabric(topology=topology, chips_per_node=cpn,
                       bucket_bytes=payload)
        assert whole.allreduce_seconds(payload, n) == exact
        # Total wire time decreases monotonically toward it as the
        # buckets coarsen (fewer repeated latency hops).
        previous = None
        for bucket in (payload // 64, payload // 8, payload // 2, payload):
            total = fabric(topology=topology, chips_per_node=cpn,
                           bucket_bytes=bucket
                           ).allreduce_seconds(payload, n)
            assert total >= exact
            if previous is not None:
                assert total <= previous + 1e-12
            previous = total

    def test_first_bucket_latency(self):
        ic = fabric(bucket_bytes=1000)
        assert ic.first_bucket_seconds(2500, 4) \
            == ic._one_allreduce_seconds(1000, 4)
        assert fabric().first_bucket_seconds(2500, 4) \
            == fabric().allreduce_seconds(2500, 4)

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError, match="bucket_bytes"):
            InterconnectConfig(bucket_bytes=0)


class TestLinkBytes:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_static_lower_bound_rounds_shard_first(self, n):
        payload = 10**6 + 1
        assert Interconnect.allreduce_bytes_per_chip(payload, n) \
            == 2 * (n - 1) * math.ceil(payload / n)

    @settings(max_examples=50, deadline=None)
    @given(payload=st.integers(1, 10**8),
           n=st.sampled_from([2, 3, 4, 6, 8, 12, 16]),
           bucket=st.one_of(st.none(), st.integers(1, 10**7)),
           shape=st.sampled_from([("ring", 1), ("all_to_all", 1),
                                  ("hierarchical", 2),
                                  ("hierarchical", 4)]))
    def test_scheduled_bytes_never_undercount(self, payload, n, bucket,
                                              shape):
        topology, cpn = shape
        if n % cpn:
            n *= cpn
        ic = fabric(topology=topology, chips_per_node=cpn,
                    bucket_bytes=bucket)
        scheduled = ic.link_bytes_per_chip(payload, n)
        # Scheduled transfers can only round *up* from the
        # bandwidth-optimal lower bound, never below it.
        assert scheduled >= 2 * (n - 1) * payload / n


class TestCycleAccounting:
    """Satellite bugfix: fractional seconds accumulate across the
    collectives of a step and quantize to cycles once."""

    def test_comm_cycles_pinned_to_float_sum(self):
        # lat=1.01us makes the two DP-SGD collectives' fractional
        # cycles sum below 1: per-collective ceiling (the old model)
        # overcharges by exactly one cycle here.
        cluster = build_cluster(
            "diva", 4,
            interconnect=InterconnectConfig(link_latency_s=1.01e-6))
        payloads = allreduce_payload_bytes(NETWORK, Algorithm.DP_SGD, 64)
        assert len(payloads) == 2
        float_sum = sum(cluster.allreduce_seconds(p) for p in payloads)
        report = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=False)
        assert report.comm.cycles \
            == math.ceil(float_sum * cluster.frequency_hz)
        per_collective = sum(
            math.ceil(cluster.allreduce_seconds(p) * cluster.frequency_hz)
            for p in payloads)
        assert report.comm.cycles == per_collective - 1

    def test_bucketed_step_does_not_pay_per_bucket_rounding(self):
        cluster = build_cluster(
            "diva", 4,
            interconnect=InterconnectConfig(bucket_bytes=100_000))
        payloads = allreduce_payload_bytes(NETWORK, Algorithm.DP_SGD, 64)
        float_sum = sum(cluster.allreduce_seconds(p) for p in payloads)
        report = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=False)
        assert report.comm.cycles \
            == math.ceil(float_sum * cluster.frequency_hz)

    def test_standalone_allreduce_still_ceils(self):
        cluster = build_cluster("diva", 4)
        payload = 10**7
        run = cluster.allreduce(payload)
        assert run.cycles == math.ceil(
            cluster.allreduce_seconds(payload) * cluster.frequency_hz)
        assert run.link_bytes == cluster.link_bytes(payload)


class TestOverlapModel:
    def test_single_chip_bitwise_identical(self):
        bare = simulate_training_step(
            NETWORK, Algorithm.DP_SGD, build_accelerator("diva"), 32)
        for overlap in (False, True):
            clustered = simulate_sharded_training_step(
                NETWORK, Algorithm.DP_SGD,
                build_cluster("diva", n_chips=1), 32, overlap=overlap)
            assert clustered.comm == OpRun.zero()
            assert clustered.shard.phases == bare.phases
            assert clustered.total_cycles == bare.total_cycles

    def test_monolithic_bucket_cannot_overlap(self):
        # Without bucketing the payload only exists once backward has
        # finished, so overlap on/off must be cycle-identical.
        cluster = build_cluster("diva", 4)
        on = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=True)
        off = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=False)
        assert on.phases == off.phases
        assert on.total_cycles == off.total_cycles
        assert on.comm.hidden_cycles == 0

    @pytest.mark.parametrize("algorithm", list(Algorithm))
    def test_overlap_hides_but_never_lengthens(self, algorithm):
        cluster = build_cluster(
            "diva", 4,
            interconnect=InterconnectConfig(bucket_bytes=64 * 1024))
        on = simulate_sharded_training_step(
            NETWORK, algorithm, cluster, 64, overlap=True)
        off = simulate_sharded_training_step(
            NETWORK, algorithm, cluster, 64, overlap=False)
        assert on.total_cycles <= off.total_cycles
        assert on.comm.cycles <= off.comm.cycles
        # Total wire time (exposed + hidden) is schedule-invariant.
        assert on.comm.busy_cycles == off.comm.busy_cycles
        assert on.comm.link_bytes == off.comm.link_bytes
        assert on.overlap and not off.overlap

    def test_exposed_floor_is_first_bucket(self):
        # Tiny buckets, a fat zero-latency fabric, and a clip phase
        # that dwarfs the wire time: everything hides except one
        # bucket's allreduce (plus the serial norm collective) — the
        # model must bottom out at the first-bucket floor, not at zero.
        cluster = build_cluster(
            "diva", 4,
            interconnect=InterconnectConfig(
                bucket_bytes=16 * 1024,
                link_bandwidth_bytes_per_s=1e12,
                link_latency_s=0.0))
        report = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=True)
        payloads = allreduce_payload_bytes(NETWORK, Algorithm.DP_SGD, 64)
        first_s = cluster.interconnect.first_bucket_seconds(payloads[0], 4)
        window = overlappable_backward_cycles(report.shard)
        comm_total_s = sum(cluster.allreduce_seconds(p) for p in payloads)
        assert window / cluster.frequency_hz > comm_total_s
        norm_s = cluster.allreduce_seconds(payloads[1])
        expected = cluster.cycles(first_s + norm_s)
        assert report.comm.cycles == expected
        assert report.comm.hidden_cycles > 0

    def test_overlappable_phase_per_algorithm(self):
        shard_dp = simulate_training_step(
            NETWORK, Algorithm.DP_SGD, build_accelerator("diva"), 16)
        assert overlappable_backward_cycles(shard_dp) \
            == shard_dp.phase_cycles(Phase.BWD_GRAD_CLIP)
        for algorithm in (Algorithm.SGD, Algorithm.DP_SGD_R):
            shard = simulate_training_step(
                NETWORK, algorithm, build_accelerator("diva"), 16)
            assert overlappable_backward_cycles(shard) \
                == shard.phase_cycles(Phase.BWD_BATCH_GRAD)

    def test_report_exposed_total_split(self):
        cluster = build_cluster(
            "diva", 8,
            interconnect=InterconnectConfig(bucket_bytes=32 * 1024))
        report = simulate_sharded_training_step(
            NETWORK, Algorithm.DP_SGD, cluster, 64, overlap=True)
        assert report.comm_exposed_seconds == report.comm_seconds
        assert report.comm_total_seconds == pytest.approx(
            report.comm_exposed_seconds + report.comm_hidden_seconds)
        assert report.comm_total_seconds >= report.comm_exposed_seconds

    @settings(max_examples=25, deadline=None)
    @given(n=st.sampled_from([2, 4, 8]),
           bucket_kb=st.integers(1, 4096),
           shape=st.sampled_from([("ring", 1), ("all_to_all", 1),
                                  ("hierarchical", 2)]),
           algorithm=st.sampled_from(list(Algorithm)),
           latency_us=st.floats(0.0, 20.0))
    def test_property_overlap_never_longer_than_serial(
            self, n, bucket_kb, shape, algorithm, latency_us):
        topology, cpn = shape
        cfg = InterconnectConfig(
            topology=topology, chips_per_node=cpn,
            bucket_bytes=bucket_kb * 1024,
            link_latency_s=latency_us * 1e-6)
        cluster = build_cluster("diva", n, interconnect=cfg)
        on = simulate_sharded_training_step(
            NETWORK, algorithm, cluster, 64, overlap=True)
        off = simulate_sharded_training_step(
            NETWORK, algorithm, cluster, 64, overlap=False)
        assert on.comm.cycles <= off.comm.cycles
        assert on.total_cycles <= off.total_cycles
        assert on.comm.busy_cycles == off.comm.busy_cycles
        assert on.comm.cycles + on.comm.hidden_cycles == off.comm.cycles


class TestScalingExperimentKnobs:
    def test_hierarchical_sweep_runs(self):
        rows = scaling.run(models=("SqueezeNet",), chips=(2, 4),
                           algorithms=("DP-SGD",),
                           topology="hierarchical", chips_per_node=2,
                           bucket_bytes=256 * 1024, jobs=1)
        assert all(row["topology"] == "hierarchical" for row in rows)
        assert all(row["chips_per_node"] == 2 for row in rows)
        assert all(row["comm_ms"] <= row["comm_total_ms"] + 1e-9
                   for row in rows)

    def test_overlap_exposed_leq_serial_per_point(self):
        common = dict(models=("SqueezeNet",), chips=(2, 4, 8),
                      algorithms=("DP-SGD",),
                      bucket_bytes=128 * 1024, jobs=1)
        on = scaling.run(overlap=True, **common)
        off = scaling.run(overlap=False, **common)
        for row_on, row_off in zip(on, off):
            assert row_on["chips"] == row_off["chips"]
            assert row_on["comm_ms"] <= row_off["comm_ms"] + 1e-9
            assert row_on["step_ms"] <= row_off["step_ms"] + 1e-9

    def test_validates_new_knobs(self):
        with pytest.raises(ValueError, match="topology"):
            scaling.run(topology="torus")
        with pytest.raises(ValueError, match="hierarchical nodes"):
            scaling.run(chips=(2, 3), topology="hierarchical",
                        chips_per_node=2)
        with pytest.raises(ValueError, match="chips_per_node"):
            scaling.run(topology="ring", chips_per_node=2)
        with pytest.raises(ValueError, match="bucket_bytes"):
            scaling.run(bucket_bytes=0)

    def test_cache_key_distinguishes_new_dimensions(self, tmp_path):
        from repro.experiments.runner import ResultCache
        cache = ResultCache(tmp_path)
        common = dict(models=("SqueezeNet",), chips=(2,),
                      algorithms=("DP-SGD",), jobs=1, cache=cache)
        scaling.run(overlap=True, bucket_bytes=64 * 1024, **common)
        scaling.run(overlap=False, bucket_bytes=64 * 1024, **common)
        scaling.run(overlap=True, **common)
        assert len(list(tmp_path.glob("*.json"))) == 3


class TestBatchClampFlag:
    def test_info_reports_clamp(self):
        # lcm(3, 4096) far exceeds any single-chip batch: the default
        # must clamp up to the LCM and say so.
        batch, clamped = scaling.default_global_batch_info(
            "SqueezeNet", (3, 4096))
        assert clamped
        assert batch == math.lcm(3, 4096)
        assert scaling.default_global_batch("SqueezeNet", (3, 4096)) \
            == batch

    def test_info_no_clamp_for_feasible_sweeps(self):
        batch, clamped = scaling.default_global_batch_info(
            "SqueezeNet", (1, 2, 4, 8))
        assert not clamped
        assert batch % 8 == 0

    def test_flag_flows_into_rows_and_render(self):
        row = scaling.evaluate_point(
            "SqueezeNet", 2, "DP-SGD", "strong", "ring", 64,
            batch_clamped=True)
        assert row["batch_clamped"] is True
        text = scaling.render([row])
        assert "64*" in text
        assert "clamped" in text

    def test_unclamped_rows_render_without_footnote(self):
        row = scaling.evaluate_point(
            "SqueezeNet", 2, "DP-SGD", "strong", "ring", 64)
        assert row["batch_clamped"] is False
        text = scaling.render([row])
        assert "clamped" not in text


class TestServePicksUpOverlapModel:
    def test_fleet_config_validates_new_knobs(self):
        from repro.serve import FleetConfig
        with pytest.raises(ValueError, match="hierarchical nodes"):
            FleetConfig(chips=6, chips_per_cluster=3,
                        topology="hierarchical", chips_per_node=2)
        with pytest.raises(ValueError, match="chips_per_node"):
            FleetConfig(topology="ring", chips_per_node=2)
        with pytest.raises(ValueError, match="bucket_bytes"):
            FleetConfig(bucket_bytes=0)

    def test_service_time_reflects_overlap(self):
        from repro.serve import FleetConfig
        from repro.serve.scheduler import predict_step_seconds
        from repro.serve.job import TrainingJob

        job = TrainingJob(job_id=1, tenant="t0", model="SqueezeNet",
                          algorithm="DP-SGD", batch=64, steps=10,
                          noise_multiplier=1.0, dataset_size=10_000,
                          arrival_s=0.0)
        base = dict(chips=4, chips_per_cluster=4,
                    bucket_bytes=128 * 1024)
        fast = predict_step_seconds(
            FleetConfig(overlap=True, **base), job)
        slow = predict_step_seconds(
            FleetConfig(overlap=False, **base), job)
        assert fast <= slow
