"""Capacity planner: minimality, SLO verification, search mechanics.

The headline acceptance criterion: the fleet :func:`plan_capacity`
returns must *verifiably* meet the requested SLO — its attached report
shows a p99 queueing wait at or under the bound and (when asked) a
completed-jobs throughput at or over the target — and it must be the
*smallest* such fleet: the probe log has to contain an infeasible
probe at one cluster fewer.
"""

import pytest

from repro.experiments import capacity as capacity_experiment
from repro.serve import (
    TenantBudget,
    TraceConfig,
    generate_trace_arrays,
    plan_capacity,
)


def _trace(jobs=2000, seed=7, mean_interarrival_s=1.0, shape="poisson"):
    return generate_trace_arrays(TraceConfig(
        jobs=jobs, seed=seed, shape=shape,
        mean_interarrival_s=mean_interarrival_s))


class TestPlanMinimality:
    def test_plan_meets_slo_and_is_minimal(self):
        plan = plan_capacity(_trace(), max_p99_wait_s=60.0)
        assert plan.feasible
        # The verification report — a fresh run of the chosen fleet —
        # actually meets the requested SLO.
        assert plan.report.wait_p99_s <= 60.0
        assert plan.chips == plan.clusters
        # Minimality: one cluster fewer was probed and found wanting.
        by_clusters = {probe.clusters: probe for probe in plan.probes}
        assert by_clusters[plan.clusters].feasible
        if plan.clusters > 1:
            assert plan.clusters - 1 in by_clusters
            assert not by_clusters[plan.clusters - 1].feasible

    def test_throughput_target_honored(self):
        # Admit (nearly) everything; completed-jobs throughput is
        # completed / makespan, and the makespan always includes the
        # 2000 s arrival span plus the longest service tail, so the
        # infinite-capacity ceiling on this trace sits near 0.47
        # jobs/s.  Ask for a target under that ceiling.
        open_budget = TenantBudget(epsilon=1e9)
        target = 0.4
        plan = plan_capacity(
            _trace(), max_p99_wait_s=1e9, budget=open_budget,
            target_jobs_per_s=target)
        assert plan.feasible
        jobs_per_s = plan.report.throughput_jobs_per_h / 3600.0
        assert jobs_per_s >= target
        # A pure-latency plan with the SLO wide open needs one cluster
        # at most as large as the throughput-constrained one.
        latency_only = plan_capacity(
            _trace(), max_p99_wait_s=1e9, budget=open_budget)
        assert latency_only.clusters <= plan.clusters

    def test_infeasible_at_ceiling_reports_shortfall(self):
        plan = plan_capacity(_trace(mean_interarrival_s=0.05),
                             max_p99_wait_s=1e-6, max_clusters=4)
        assert not plan.feasible
        assert plan.clusters == 4
        assert plan.report.wait_p99_s > 1e-6
        assert all(not probe.feasible for probe in plan.probes)

    def test_budget_threads_through_to_admission(self):
        tight = plan_capacity(
            _trace(), max_p99_wait_s=60.0,
            budget=TenantBudget(epsilon=0.5))
        open_ended = plan_capacity(_trace(), max_p99_wait_s=60.0,
                                   budget=TenantBudget(epsilon=1e9))
        assert tight.report.rejected > 0
        assert open_ended.report.rejected == 0
        # Fewer admitted jobs can only shrink (never grow) the fleet.
        assert tight.clusters <= open_ended.clusters


class TestSearchMechanics:
    def test_probe_log_sorted_and_memoized(self):
        plan = plan_capacity(_trace(), max_p99_wait_s=60.0)
        sizes = [probe.clusters for probe in plan.probes]
        assert sizes == sorted(sizes)
        assert len(sizes) == len(set(sizes))  # each size probed once

    def test_feasibility_monotone_across_probes(self):
        """Once a size is feasible, every larger probed size is too."""
        plan = plan_capacity(_trace(), max_p99_wait_s=60.0)
        smallest_feasible = min(
            probe.clusters for probe in plan.probes if probe.feasible)
        for probe in plan.probes:
            if probe.clusters >= smallest_feasible:
                assert probe.feasible
            else:
                assert not probe.feasible

    def test_one_cluster_fleet_short_circuits(self):
        plan = plan_capacity(_trace(jobs=200, mean_interarrival_s=1e6),
                             max_p99_wait_s=1e9)
        assert plan.feasible
        assert plan.clusters == 1
        assert len(plan.probes) == 1

    @pytest.mark.parametrize("kwargs", [
        {"max_p99_wait_s": 0.0},
        {"max_p99_wait_s": -1.0},
        {"max_p99_wait_s": 60.0, "target_jobs_per_s": 0.0},
        {"max_p99_wait_s": 60.0, "max_clusters": 0},
    ])
    def test_bad_slo_rejected(self, kwargs):
        with pytest.raises(ValueError):
            plan_capacity(_trace(jobs=10), **kwargs)

    def test_plan_round_trips_to_dict(self):
        plan = plan_capacity(_trace(jobs=500), max_p99_wait_s=60.0)
        payload = plan.to_dict()
        assert payload["clusters"] == plan.clusters
        assert payload["feasible"] is True
        assert payload["report"]["wait_p99_s"] == plan.report.wait_p99_s
        assert [p["clusters"] for p in payload["probes"]] \
            == [p.clusters for p in plan.probes]


class TestCapacityExperiment:
    def test_run_and_render_smoke(self):
        result = capacity_experiment.run(
            trace_jobs=1500, max_p99_wait_s=60.0)
        assert result["feasible"]
        assert result["report"]["wait_p99_s"] <= 60.0
        text = capacity_experiment.render(result)
        assert "Capacity search" in text
        assert "meet the SLO" in text

    def test_render_reports_infeasible_plan(self):
        result = capacity_experiment.run(
            trace_jobs=1500, mean_interarrival_s=0.05,
            max_p99_wait_s=1e-6, max_clusters=2)
        assert not result["feasible"]
        assert "DO NOT meet" in capacity_experiment.render(result)
