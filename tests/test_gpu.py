"""Tests for the analytical GPU model (repro.arch.gpu)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.gpu import A100, V100, GpuModel
from repro.workloads.gemms import Gemm


class TestConfigs:
    def test_v100_specs(self):
        assert V100.sms == 80
        assert V100.tensor_peak_flops == 125e12
        assert V100.dram_bandwidth_bytes_per_s == 900e9

    def test_a100_specs(self):
        assert A100.sms == 108
        assert A100.tensor_peak_flops == 312e12

    def test_names(self):
        assert GpuModel(V100, tensor_cores=True).name == "V100 (FP16)"
        assert GpuModel(A100, tensor_cores=False).name == "A100 (FP32)"


class TestGemmTiming:
    def test_tensor_cores_speed_up_large_gemm(self):
        g = Gemm(4096, 4096, 4096)
        tc = GpuModel(V100, tensor_cores=True).gemm_seconds(g)
        simt = GpuModel(V100, tensor_cores=False).gemm_seconds(g)
        assert tc < simt

    def test_a100_faster_than_v100_on_big_gemm(self):
        g = Gemm(8192, 8192, 8192)
        assert (GpuModel(A100).gemm_seconds(g)
                < GpuModel(V100).gemm_seconds(g))

    def test_effective_flops_below_peak(self):
        g = Gemm(2048, 2048, 2048)
        model = GpuModel(V100)
        assert model.effective_flops(g) < model.peak_flops

    def test_launch_overhead_floors_tiny_gemms(self):
        model = GpuModel(V100)
        assert (model.gemm_seconds(Gemm(1, 1, 1))
                >= V100.kernel_launch_seconds)

    def test_small_k_padding_wastes_throughput(self):
        """K=1 GEMMs burn a whole K-quantum per tile."""
        model = GpuModel(V100)
        thin = model.effective_flops(Gemm(4096, 1, 4096))
        thick = model.effective_flops(Gemm(4096, 128, 4096))
        assert thin < thick / 4

    def test_batched_gemm_fills_sms(self):
        """vmap batching: many small GEMMs approach one big GEMM's
        efficiency (the GPU advantage the paper notes on MobileNet)."""
        model = GpuModel(V100)
        single = model.gemm_seconds(Gemm(64, 64, 64))
        batched = model.gemm_seconds(Gemm(64, 64, 64, count=320))
        assert batched < 320 * single / 3

    def test_memory_bound_regime(self):
        """Huge operands with trivial compute hit the HBM roofline."""
        model = GpuModel(A100)
        g = Gemm(8192, 1, 8192, count=16)
        bytes_moved = (g.lhs_elems + g.rhs_elems) * 2 + g.out_elems * 4
        floor = bytes_moved / A100.dram_bandwidth_bytes_per_s
        assert model.gemm_seconds(g) >= floor

    def test_write_output_toggle(self):
        model = GpuModel(V100)
        g = Gemm(4096, 2, 4096, count=64)  # memory-bound shape
        with_w = model.gemm_seconds(g, write_output=True)
        without = model.gemm_seconds(g, write_output=False)
        assert with_w >= without

    @given(m=st.integers(1, 4096), k=st.integers(1, 1024),
           n=st.integers(1, 4096))
    def test_time_positive(self, m, k, n):
        assert GpuModel(V100).gemm_seconds(Gemm(m, k, n)) > 0

    def test_gemms_seconds_sums(self):
        model = GpuModel(V100)
        gemms = [Gemm(128, 64, 128), Gemm(256, 32, 64)]
        assert model.gemms_seconds(gemms) == pytest.approx(
            sum(model.gemm_seconds(g) for g in gemms))
