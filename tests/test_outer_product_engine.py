"""Tests for DiVa's outer-product engine (repro.core.outer_product)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.engine import ArrayConfig
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.core.outer_product import OuterProductEngine
from repro.workloads.gemms import Gemm

SMALL = ArrayConfig(height=8, width=8, drain_rows_per_cycle=2,
                    tile_startup_cycles=0, gemm_startup_cycles=0)


class TestOuterProductCycles:
    def test_k_cycles_per_tile(self):
        """Section IV-B: K cycles per tile, M x N MACs per cycle."""
        engine = OuterProductEngine(SMALL)
        drain, main = engine.tile_cycle_phases(
            engine.tiles(Gemm(8, 100, 8))[0])
        assert main == 100
        assert drain == math.ceil(8 / 2)

    def test_throughput_independent_of_k(self):
        """The defining property: effective MACs/cycle does not collapse
        as K shrinks (for K above the drain bound)."""
        engine = OuterProductEngine()
        util_large_k = engine.utilization(Gemm(128, 1024, 128))
        util_small_k = engine.utilization(Gemm(128, 32, 128))
        assert util_small_k > 0.5 * util_large_k

    def test_k_one_is_drain_bound(self):
        """At K=1 the drain (16 cycles at R=8) dominates."""
        engine = OuterProductEngine()
        stats = engine.gemm_stats(Gemm(128, 1, 128))
        drain = math.ceil(128 / 8)
        assert stats.compute_cycles >= drain


class TestOuterProductVsSystolic:
    @pytest.mark.parametrize("k", [1, 4, 16, 32])
    def test_beats_ws_on_small_k(self, k):
        """Figure 15's core result, at the engine level."""
        op = OuterProductEngine()
        ws = WeightStationaryEngine()
        g = Gemm(576, k, 512, count=8)
        assert op.utilization(g) > 3 * ws.utilization(g)

    @pytest.mark.parametrize("k", [1, 4, 16, 32])
    def test_beats_os_on_small_k(self, k):
        op = OuterProductEngine()
        os_ = OutputStationaryEngine()
        g = Gemm(576, k, 512, count=8)
        assert op.utilization(g) > 3 * os_.utilization(g)

    def test_comparable_on_square(self):
        """On large square GEMMs all engines are near peak — the outer
        product is robust, not merely specialized (Section VI-A)."""
        op = OuterProductEngine()
        ws = WeightStationaryEngine()
        g = Gemm(4096, 4096, 4096)
        assert op.utilization(g) >= ws.utilization(g) * 0.99

    def test_same_sram_bandwidth_class_as_os(self):
        """Table I: outer-product traffic mirrors the OS dataflow."""
        op = OuterProductEngine()
        os_ = OutputStationaryEngine()
        g = Gemm(128, 64, 128)
        op_stats = op.gemm_stats(g)
        os_stats = os_.gemm_stats(g)
        assert op_stats.sram_read_bytes == os_stats.sram_read_bytes
        assert op_stats.sram_write_bytes == os_stats.sram_write_bytes


gemm_shapes = st.tuples(st.integers(1, 512), st.integers(1, 512),
                        st.integers(1, 512))


class TestOuterProductInvariants:
    @given(shape=gemm_shapes)
    def test_utilization_bounded(self, shape):
        m, k, n = shape
        engine = OuterProductEngine()
        util = engine.utilization(Gemm(m, k, n))
        assert 0.0 < util <= 1.0

    @given(shape=gemm_shapes)
    def test_tiles_cover_output(self, shape):
        m, k, n = shape
        engine = OuterProductEngine()
        tiles = engine.tiles(Gemm(m, k, n))
        assert sum(t.m * t.n for t in tiles) == m * n
        assert all(t.k == k for t in tiles)
