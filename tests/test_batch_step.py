"""Batched training/sharded-step evaluation vs the scalar simulators.

``training_step_batch`` / ``sharded_step_batch`` must be bitwise
identical to ``simulate_training_step`` / ``simulate_sharded_training_step``
on every grid point — cycles, seconds, link bytes, everything the
``scaling`` and ``design-space`` experiments and the serving
service-time table consume.
"""

import itertools

import numpy as np
import pytest

from repro.arch.interconnect import InterconnectConfig
from repro.core import build_accelerator, build_cluster
from repro.training import (
    Algorithm,
    sharded_step_batch,
    simulate_sharded_training_step,
    simulate_training_step,
    training_step_batch,
)
from repro.training.batch import _PHASE_INDEX
from repro.workloads import build_model

MODELS = ("SqueezeNet", "MobileNet")
ALGORITHMS = ("DP-SGD", "DP-SGD(R)", "SGD")


class TestTrainingStepBatch:
    @pytest.mark.parametrize("kind", ("ws", "os", "diva"))
    def test_phase_cycles_match_scalar(self, kind):
        accel = (build_accelerator("ws") if kind == "ws"
                 else build_accelerator(kind))
        specs, refs = [], []
        for model in MODELS:
            network = build_model(model)
            for algorithm in ALGORITHMS:
                for batch in (8, 32):
                    specs.append((accel, network, Algorithm(algorithm),
                                  batch))
                    refs.append((network, Algorithm(algorithm), batch))
        step = training_step_batch(specs)
        for i, (network, algorithm, batch) in enumerate(refs):
            report = simulate_training_step(network, algorithm, accel,
                                            batch)
            assert int(step.total_cycles[i]) == report.total_cycles
            assert float(step.total_seconds[i]) == report.total_seconds
            for phase, run in report.phases.items():
                assert int(step.phase_cycles[i, _PHASE_INDEX[phase]]) \
                    == run.cycles, (kind, network.name, algorithm, phase)

    def test_empty_specs(self):
        assert len(training_step_batch([])) == 0


def _grid():
    points = []
    for model, algorithm, chips, topology, bucket, overlap in \
            itertools.product(MODELS, ALGORITHMS, (1, 2, 4),
                              ("ring", "all_to_all", "hierarchical"),
                              (None, 2**20), (True, False)):
        chips_per_node = 2 if (topology == "hierarchical"
                               and chips > 1) else 1
        points.append((model, algorithm, 32 * chips, chips, topology,
                       bucket, chips_per_node, overlap))
    return points


class TestShardedStepBatch:
    def test_grid_matches_scalar_simulator(self):
        points = _grid()
        columns = list(zip(*points))
        result = sharded_step_batch(
            list(columns[0]), list(columns[1]), np.array(columns[2]),
            np.array(columns[3]), topologies=list(columns[4]),
            bucket_bytes=list(columns[5]),
            chips_per_node=np.array(columns[6]),
            overlaps=np.array(columns[7]))
        for i, (model, algorithm, batch, chips, topology, bucket,
                chips_per_node, overlap) in enumerate(points):
            cluster = build_cluster(
                "diva", n_chips=chips,
                interconnect=InterconnectConfig(
                    topology=topology, bucket_bytes=bucket,
                    chips_per_node=chips_per_node))
            report = simulate_sharded_training_step(
                build_model(model), Algorithm(algorithm), cluster,
                batch, overlap=overlap)
            assert int(result.total_cycles[i]) == report.total_cycles
            assert float(result.total_seconds[i]) == report.total_seconds
            assert float(result.compute_seconds[i]) == \
                report.compute_seconds
            assert float(result.comm_seconds[i]) == report.comm_seconds
            assert float(result.comm_total_seconds[i]) == \
                report.comm_total_seconds
            assert float(result.comm_hidden_seconds[i]) == \
                report.comm_hidden_seconds
            assert int(result.link_bytes[i]) == report.comm.link_bytes
            assert int(result.local_batch[i]) == report.local_batch
            assert float(result.comm_fraction[i]) == report.comm_fraction

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            sharded_step_batch(["SqueezeNet"], "DP-SGD", 33, 2)

    def test_lopsided_hierarchical_rejected(self):
        with pytest.raises(ValueError, match="hierarchical"):
            sharded_step_batch(["SqueezeNet"], "DP-SGD", 32, 4,
                               topologies="hierarchical",
                               chips_per_node=3)

    def test_chips_per_node_needs_hierarchical(self):
        with pytest.raises(ValueError, match="chips_per_node"):
            sharded_step_batch(["SqueezeNet"], "DP-SGD", 32, 4,
                               topologies="ring", chips_per_node=2)


class TestExperimentBatchedPaths:
    def test_scaling_batched_rows_equal_scalar_oracle(self):
        from repro.experiments import scaling

        work = []
        base, clamped = scaling.default_global_batch_info(
            "SqueezeNet", (1, 2, 4))
        for algorithm in ("DP-SGD", "SGD"):
            for chips in (1, 2, 4):
                work.append(("SqueezeNet", chips, algorithm, "strong",
                             "ring", base, True, 2**20, 1, clamped))
        batched = scaling.evaluate_points_batched(work)
        scalar = [scaling.evaluate_point(*point) for point in work]
        assert batched == scalar

    def test_design_space_batched_rows_equal_scalar_oracle(self):
        from repro.experiments import design_space

        work = [("SqueezeNet", h, w) for h, w in
                ((64, 64), (64, 128), (96, 96))]
        batched = design_space.evaluate_points_batched(work)
        scalar = [design_space.evaluate_point(*point) for point in work]
        assert batched == scalar

    def test_weak_scaling_batched(self):
        from repro.experiments import scaling

        work = [("SqueezeNet", chips, "DP-SGD", "weak", "ring", 16,
                 True, None, 1, False) for chips in (1, 2, 4)]
        batched = scaling.evaluate_points_batched(work)
        scalar = [scaling.evaluate_point(*point) for point in work]
        assert batched == scalar
        assert [row["global_batch"] for row in batched] == [16, 32, 64]
