"""Smoke tests: the CLI and every example script run end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestCli:
    def test_models(self, capsys):
        assert cli_main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-152" in out
        assert "BERT-large" in out

    def test_experiments_listing(self, capsys):
        assert cli_main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "table1" in out

    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        assert "2816" in capsys.readouterr().out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "fig99"]) == 2

    def test_simulate(self, capsys):
        assert cli_main(["simulate", "SqueezeNet", "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "DiVa" in out

    def test_scaling(self, capsys):
        assert cli_main(["scaling", "--chips", "1", "2",
                         "--models", "SqueezeNet",
                         "--algorithms", "DP-SGD", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Speedup" in out
        assert "Efficiency" in out
        assert "SqueezeNet" in out

    def test_scaling_rejects_bad_sweep_cleanly(self, capsys):
        assert cli_main(["scaling", "--chips", "1", "8",
                         "--models", "SqueezeNet", "--batch", "100"]) == 2
        assert "divide" in capsys.readouterr().err

    def test_serve(self, capsys):
        assert cli_main(["serve", "--trace-jobs", "12",
                         "--chips", "2", "--policy", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "Fleet serving" in out
        assert "tenant-0" in out
        assert "Rejected" in out

    def test_serve_rejects_bad_fleet_cleanly(self, capsys):
        assert cli_main(["serve", "--chips", "4",
                         "--chips-per-cluster", "3"]) == 2
        assert "serve" in capsys.readouterr().err

    def test_serve_autoscaled_diurnal(self, capsys):
        assert cli_main(["serve", "--trace-jobs", "400",
                         "--chips", "2", "--policy", "fifo",
                         "--trace-shape", "diurnal",
                         "--mean-interarrival", "2",
                         "--autoscale", "--autoscale-max", "8",
                         "--provision-delay", "15"]) == 0
        out = capsys.readouterr().out
        assert "Peak" in out and "Scales" in out
        assert "Chip-h" in out and "Cost" in out

    def test_serve_rejects_unknown_trace_shape(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--trace-shape", "weekly"])
        assert excinfo.value.code == 2
        assert "weekly" in capsys.readouterr().err

    def test_capacity(self, capsys):
        assert cli_main(["capacity", "--trace-jobs", "800",
                         "--max-p99-wait", "60"]) == 0
        out = capsys.readouterr().out
        assert "Capacity search" in out
        assert "meet the SLO" in out

    def test_capacity_infeasible_exits_nonzero(self, capsys):
        assert cli_main(["capacity", "--trace-jobs", "800",
                         "--mean-interarrival", "0.1",
                         "--max-p99-wait", "0.000001",
                         "--max-clusters", "2"]) == 1
        assert "DO NOT meet" in capsys.readouterr().out


@pytest.mark.parametrize("script,arg", [
    ("quickstart.py", "SqueezeNet"),
    ("workload_characterization.py", "LSTM-small"),
    ("accelerator_comparison.py", "SqueezeNet"),
    ("dp_training.py", None),
    ("multi_chip_scaling.py", "SqueezeNet"),
    ("fleet_serving.py", "30"),
])
def test_example_runs(script, arg):
    cmd = [sys.executable, str(EXAMPLES / script)]
    if arg:
        cmd.append(arg)
    result = subprocess.run(cmd, capture_output=True, text=True,
                            timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
