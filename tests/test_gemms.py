"""Tests for the Gemm descriptor (repro.workloads.gemms)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.gemms import Gemm, GemmKind

dims = st.integers(min_value=1, max_value=512)
counts = st.integers(min_value=1, max_value=64)


class TestGemmValidation:
    def test_rejects_zero_m(self):
        with pytest.raises(ValueError):
            Gemm(0, 1, 1)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            Gemm(1, -2, 1)

    def test_rejects_zero_n(self):
        with pytest.raises(ValueError):
            Gemm(1, 1, 0)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            Gemm(1, 1, 1, count=0)

    def test_accepts_minimal(self):
        g = Gemm(1, 1, 1)
        assert g.macs == 1


class TestGemmArithmetic:
    @given(m=dims, k=dims, n=dims, count=counts)
    def test_macs_product(self, m, k, n, count):
        g = Gemm(m, k, n, count=count)
        assert g.macs == m * k * n * count

    @given(m=dims, k=dims, n=dims)
    def test_flops_twice_macs(self, m, k, n):
        g = Gemm(m, k, n)
        assert g.flops == 2 * g.macs

    @given(m=dims, k=dims, n=dims, count=counts)
    def test_operand_elements(self, m, k, n, count):
        g = Gemm(m, k, n, count=count)
        assert g.lhs_elems == m * k * count
        assert g.rhs_elems == k * n * count
        assert g.out_elems == m * n * count

    def test_single_drops_count(self):
        g = Gemm(4, 5, 6, count=9)
        s = g.single()
        assert s.count == 1
        assert (s.m, s.k, s.n) == (4, 5, 6)
        assert g.count == 9  # original untouched

    def test_with_kind_tags(self):
        g = Gemm(2, 3, 4).with_kind(GemmKind.WGRAD_EXAMPLE, layer="conv1")
        assert g.kind is GemmKind.WGRAD_EXAMPLE
        assert g.layer == "conv1"

    def test_with_kind_preserves_layer(self):
        g = Gemm(2, 3, 4, layer="fc").with_kind(GemmKind.ACT_GRAD)
        assert g.layer == "fc"


class TestGemmKind:
    def test_four_training_stages(self):
        assert len(GemmKind) == 4

    def test_str_values(self):
        assert str(GemmKind.FORWARD) == "fwdprop"
        assert str(GemmKind.WGRAD_EXAMPLE) == "wgrad_example"
