"""Autoscaler invariants: budget ledger, cost accounting, decisions.

The two load-bearing properties from the issue:

* **Ledger invariance** — admission prices jobs at arrival against
  per-tenant budgets; capacity is not an input.  Scaling the fleet up
  or down must therefore never change any tenant's granted epsilon,
  admitted/truncated/rejected counts, or total granted steps.
* **Delay defers capacity, never buys it** — on a fixed trace and
  policy, making machines slower to arrive monotonically worsens
  waits and can never *increase* the chip-hours billed beyond the
  instant-provisioning run: the fleet is work-conserving (idle
  clusters retire), so total billed time is pinned by the admitted
  work, and capacity that lands after the backlog has drained serves
  strictly less of it.

Plus unit coverage of the decision rule itself: cooldown gating, the
max/min cluster clamps, idle-driven scale-down, the chip-hour
integral, and event serialization.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AdmissionController,
    AutoscalerPolicy,
    AutoscalerState,
    FleetConfig,
    SCALE_REASONS,
    TenantBudget,
    TraceConfig,
    generate_trace_arrays,
    simulate_fleet_streaming,
)


def _ledger(report):
    return [usage.to_dict() for usage in report.tenants]


class TestLedgerInvariance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6),
           shape=st.sampled_from(("poisson", "bursty")))
    def test_scaling_never_touches_the_budget_ledger(self, seed, shape):
        trace = generate_trace_arrays(TraceConfig(
            jobs=1500, seed=seed, shape=shape, mean_interarrival_s=1.0))
        fleet = FleetConfig(chips=2)
        static = simulate_fleet_streaming(
            trace, fleet, policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        scaled = simulate_fleet_streaming(
            trace, fleet, policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            autoscaler=AutoscalerPolicy(max_clusters=16,
                                        provision_delay_s=10.0,
                                        cooldown_s=5.0))
        assert _ledger(static) == _ledger(scaled)
        assert static.submitted == scaled.submitted
        assert static.completed == scaled.completed
        assert static.truncated == scaled.truncated
        assert static.rejected == scaled.rejected

    def test_delay_defers_capacity_never_buys_it(self):
        """Slower machines monotonically raise waits, never chip-hours.

        The fleet is work-conserving: idle clusters are retired, so on
        a fixed admitted trace the billed chip-hours are pinned by the
        work itself, not by when the machines showed up.  The honest
        pinned relationships, verified empirically on this trace:

        * median *and* p99 waits are monotone non-decreasing in the
          provisioning delay (delayed capacity can only defer service);
        * no delay buys extra chip-hours — every run's cost stays
          within 1% of the instant-provisioning run;
        * at a delay past the burst (machines land after the backlog
          has mostly drained) the cost is strictly *below* the
          instant-provisioning cost: late capacity serves less.
        """
        trace = generate_trace_arrays(TraceConfig(
            jobs=2000, seed=21, mean_interarrival_s=0.2))
        fleet = FleetConfig(chips=2)
        costs, p50s, p99s = [], [], []
        for delay_s in (0.0, 100.0, 400.0, 1600.0, 6400.0):
            report = simulate_fleet_streaming(
                trace, fleet, policy="fifo",
                admission=AdmissionController(TenantBudget(epsilon=3.0)),
                autoscaler=AutoscalerPolicy(max_clusters=16,
                                            provision_delay_s=delay_s,
                                            cooldown_s=10.0))
            costs.append(report.cost)
            p50s.append(report.wait_p50_s)
            p99s.append(report.wait_p99_s)
        assert p50s == sorted(p50s)
        assert p99s == sorted(p99s)
        assert all(0.0 < cost <= costs[0] * 1.01 for cost in costs)
        assert costs[-1] < costs[0]


class TestDecisionRule:
    POLICY = AutoscalerPolicy(max_clusters=8, up_queue_per_cluster=2.0,
                              provision_delay_s=10.0, cooldown_s=30.0)

    def _state(self, policy=None, clusters=2):
        return AutoscalerState(policy or self.POLICY,
                               initial_clusters=clusters,
                               chips_per_cluster=1)

    def test_queue_pressure_scales_up(self):
        state = self._state()
        delta = state.decide(100.0, queued=5, idle=0)
        assert delta == 1
        assert state.pending == [110.0]
        (event,) = state.events
        assert event.action == "up"
        assert event.reason == "queue_depth"
        assert event.reason in SCALE_REASONS

    def test_cooldown_gates_decisions(self):
        state = self._state()
        assert state.decide(100.0, queued=5, idle=0) == 1
        assert state.decide(120.0, queued=50, idle=0) == 0  # within 30s
        assert state.decide(131.0, queued=50, idle=0) == 1

    def test_max_clusters_clamps(self):
        state = self._state(clusters=8)
        assert state.decide(100.0, queued=100, idle=0) == 0
        assert state.events == []

    def test_pending_counts_toward_max(self):
        policy = AutoscalerPolicy(max_clusters=3, up_queue_per_cluster=1.0,
                                  provision_delay_s=10.0, cooldown_s=0.0)
        state = self._state(policy, clusters=2)
        assert state.decide(100.0, queued=10, idle=0) == 1
        assert state.decide(200.0, queued=10, idle=0) == 0  # 2 + 1 = max

    def test_p99_trigger(self):
        policy = AutoscalerPolicy(max_clusters=8, up_queue_per_cluster=100.0,
                                  target_p99_wait_s=5.0, cooldown_s=0.0)
        state = self._state(policy)
        for _ in range(50):
            state.record_wait(60.0)
        assert state.decide(100.0, queued=1, idle=0) == 1
        assert state.events[0].reason == "p99_wait"

    def test_idle_fleet_scales_down_to_min(self):
        policy = AutoscalerPolicy(min_clusters=2, max_clusters=8,
                                  down_idle_fraction=0.5, cooldown_s=0.0,
                                  step_clusters=4)
        state = self._state(policy, clusters=4)
        assert state.decide(100.0, queued=0, idle=4) == -2  # min clamp
        assert state.active == 2
        (event,) = state.events
        assert event.action == "down"
        assert event.reason == "idle"
        assert state.decide(200.0, queued=0, idle=2) == 0  # at the floor

    def test_no_scale_down_while_jobs_queue(self):
        state = self._state(clusters=4)
        assert state.decide(100.0, queued=1, idle=4) == 0

    def test_chip_hour_integral(self):
        policy = AutoscalerPolicy(max_clusters=8, up_queue_per_cluster=1.0,
                                  provision_delay_s=100.0, cooldown_s=0.0,
                                  chip_cost_per_hour=2.0)
        state = AutoscalerState(policy, initial_clusters=1,
                                chips_per_cluster=4)
        assert state.decide(0.0, queued=10, idle=0) == 1
        state.activate_one(100.0)  # 1 cluster x 4 chips x 100 s
        state.finalize(200.0)      # + 2 clusters x 4 chips x 100 s
        assert state.chip_hours == pytest.approx(1200.0 / 3600.0)
        assert state.cost == pytest.approx(state.chip_hours * 2.0)
        assert state.peak_clusters == 2

    def test_next_provision_empty(self):
        assert self._state().next_provision_s() == math.inf

    def test_scale_event_serializes(self):
        state = self._state()
        state.decide(100.0, queued=5, idle=0)
        payload = state.events[0].to_dict()
        assert payload == {"time_s": 100.0, "action": "up",
                           "clusters": 1, "active_after": 2,
                           "pending_after": 1, "reason": "queue_depth"}


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_clusters": 0},
        {"max_clusters": 0},
        {"min_clusters": 8, "max_clusters": 4},
        {"up_queue_per_cluster": 0.0},
        {"target_p99_wait_s": 0.0},
        {"down_idle_fraction": 1.5},
        {"provision_delay_s": -1.0},
        {"cooldown_s": -1.0},
        {"step_clusters": 0},
        {"chip_cost_per_hour": -0.1},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerPolicy(**kwargs)

    def test_initial_fleet_must_fit_under_max(self):
        with pytest.raises(ValueError, match="max_clusters"):
            AutoscalerState(AutoscalerPolicy(max_clusters=2),
                            initial_clusters=4, chips_per_cluster=1)
