"""Edge-case and cross-cutting property tests.

Stress the models at configuration extremes and assert global
invariants (frequency invariance of speedups, determinism, degenerate
geometries) that no single-module test pins down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.engine import ArrayConfig
from repro.arch.memory import MemoryConfig
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.core import DivaConfig, PpuConfig, build_accelerator
from repro.core.outer_product import OuterProductEngine
from repro.dpml import synthetic_classification, train_dpsgd
from repro.dpml.layers import Dense, ReLU, Sequential
from repro.training import Algorithm, simulate_training_step
from repro.workloads import build_model
from repro.workloads.gemms import Gemm


class TestDegenerateGeometries:
    @pytest.mark.parametrize("engine_cls", [
        WeightStationaryEngine, OutputStationaryEngine, OuterProductEngine,
    ])
    def test_one_by_one_array(self, engine_cls):
        """A 1x1 array degenerates to a scalar MAC but stays correct."""
        cfg = ArrayConfig(height=1, width=1, fill_rows_per_cycle=1,
                          drain_rows_per_cycle=1)
        engine = engine_cls(cfg)
        stats = engine.gemm_stats(Gemm(4, 3, 2))
        assert stats.macs == 24
        assert stats.compute_cycles >= 24  # cannot beat one MAC/cycle
        assert 0 < stats.utilization <= 1.0

    @pytest.mark.parametrize("engine_cls", [
        WeightStationaryEngine, OutputStationaryEngine, OuterProductEngine,
    ])
    def test_single_element_gemm(self, engine_cls):
        stats = engine_cls().gemm_stats(Gemm(1, 1, 1))
        assert stats.macs == 1
        assert stats.tiles == 1

    def test_extreme_aspect_array(self):
        cfg = ArrayConfig(height=1024, width=2)
        engine = OuterProductEngine(cfg)
        assert 0 < engine.utilization(Gemm(1024, 64, 2)) <= 1.0

    def test_huge_fill_rate(self):
        cfg = ArrayConfig(fill_rows_per_cycle=1024)
        engine = WeightStationaryEngine(cfg)
        fill, _ = engine.tile_cycle_phases(engine.tiles(Gemm(4, 128, 8))[0])
        assert fill == 1


class TestFrequencyInvariance:
    """Speedups are ratios of cycles: frequency must cancel out."""

    @pytest.mark.parametrize("freq", [100e6, 940e6, 2e9])
    def test_speedup_independent_of_frequency(self, freq):
        network = build_model("LSTM-small")
        config = DivaConfig(
            array=ArrayConfig(frequency_hz=freq),
            # Keep the compute/bandwidth balance constant across
            # frequencies so only the time unit changes.
            memory=MemoryConfig(
                bandwidth_bytes_per_s=450e9 * freq / 940e6),
        )
        ws = build_accelerator("ws", config=config)
        diva = build_accelerator("diva", with_ppu=True, config=config)
        base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, 32)
        ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva, 32)
        speedup = base.total_cycles / ours.total_cycles
        reference_speedup = 2.75  # measured at the default 940 MHz
        assert speedup == pytest.approx(reference_speedup, rel=0.05)


class TestDeterminism:
    def test_simulation_reproducible(self):
        network = build_model("SqueezeNet")
        accel = build_accelerator("diva")
        a = simulate_training_step(network, Algorithm.DP_SGD, accel, 16)
        b = simulate_training_step(network, Algorithm.DP_SGD, accel, 16)
        assert a.total_cycles == b.total_cycles
        assert a.total.dram_bytes == b.total.dram_bytes

    def test_training_reproducible_with_seed(self):
        def run():
            rng = np.random.default_rng(3)
            net = Sequential([Dense(8, 16, rng=rng), ReLU(),
                              Dense(16, 3, rng=rng)])
            data = synthetic_classification(64, 8, 3, seed=1)
            history, _ = train_dpsgd(net, data, steps=5, batch_size=16,
                                     seed=9)
            return history.losses

        assert run() == run()


class TestPoissonSampling:
    def test_poisson_training_runs(self):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(8, 3, rng=rng)])
        data = synthetic_classification(128, 8, 3, seed=2)
        history, accountant = train_dpsgd(
            net, data, steps=10, batch_size=32, sampling="poisson")
        assert len(history.losses) == 10
        assert accountant.steps == 10

    def test_unknown_sampling_rejected(self):
        net = Sequential([Dense(4, 2)])
        data = synthetic_classification(16, 4, 2)
        with pytest.raises(ValueError):
            train_dpsgd(net, data, sampling="stratified")

    def test_poisson_accounting_matches_rate(self):
        """The accountant uses B/N regardless of realized batch sizes."""
        rng = np.random.default_rng(0)
        net = Sequential([Dense(4, 2, rng=rng)])
        data = synthetic_classification(100, 4, 2, seed=3)
        _, acct = train_dpsgd(net, data, steps=3, batch_size=10,
                              sampling="poisson")
        assert acct.sampling_rate == pytest.approx(0.1)


class TestBatchOneTraining:
    """B=1 is the degenerate DP-SGD case (every gradient 'per-example')."""

    def test_simulation_batch_one(self):
        network = build_model("LSTM-small")
        accel = build_accelerator("ws")
        report = simulate_training_step(network, Algorithm.DP_SGD, accel, 1)
        assert report.total_cycles > 0

    def test_memory_batch_one(self):
        from repro.training import memory_breakdown

        network = build_model("SqueezeNet")
        b = memory_breakdown(network, Algorithm.DP_SGD, 1)
        assert b.example_gradients == network.params * 4


class TestSensitivityConfigs:
    @settings(max_examples=10, deadline=None)
    @given(drain=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]))
    def test_any_drain_rate_valid(self, drain):
        config = DivaConfig(array=ArrayConfig(drain_rows_per_cycle=drain),
                            ppu=PpuConfig(num_trees=drain))
        accel = build_accelerator("diva", with_ppu=True, config=config)
        run = accel.run_gemm(Gemm(128, 4, 128), fuse_norm=accel.can_fuse_norm)
        assert run.cycles > 0

    def test_bandwidth_extremes(self):
        network = build_model("SqueezeNet")
        slow = DivaConfig(memory=MemoryConfig(bandwidth_bytes_per_s=1e9))
        fast = DivaConfig(memory=MemoryConfig(bandwidth_bytes_per_s=1e13))
        slow_t = simulate_training_step(
            network, Algorithm.DP_SGD_R,
            build_accelerator("diva", config=slow), 16).total_cycles
        fast_t = simulate_training_step(
            network, Algorithm.DP_SGD_R,
            build_accelerator("diva", config=fast), 16).total_cycles
        assert slow_t > fast_t
