"""Tests for the energy/area/power models (repro.energy) — Table III."""

import pytest

from repro.core import build_accelerator
from repro.energy import EnergyModel, estimate_sram
from repro.training import Algorithm, simulate_training_step
from repro.workloads import build_model

MODEL = EnergyModel()


class TestTable3Power:
    """Calibration against the paper's synthesis results."""

    def test_ws_power(self):
        assert MODEL.engine_power_w("ws") == pytest.approx(13.4, rel=0.01)

    def test_os_power(self):
        assert MODEL.engine_power_w("os") == pytest.approx(13.6, rel=0.01)

    def test_outer_product_power(self):
        assert MODEL.engine_power_w("diva") == pytest.approx(21.2, rel=0.01)

    def test_ppu_power(self):
        assert MODEL.ppu_power_w() == pytest.approx(2.6, rel=0.01)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            MODEL.engine_power_w("gpu")


class TestTable3Area:
    def test_ws_area(self):
        assert MODEL.engine_area_mm2("ws") == pytest.approx(68.0, rel=0.01)

    def test_os_area(self):
        assert MODEL.engine_area_mm2("os") == pytest.approx(70.0, rel=0.01)

    def test_outer_product_area(self):
        """Outer-product adds ~19.6% over WS (Section VI-B)."""
        diva = MODEL.engine_area_mm2("diva")
        ws = MODEL.engine_area_mm2("ws")
        assert diva / ws == pytest.approx(82.0 / 68.0, rel=0.02)

    def test_ppu_area(self):
        assert MODEL.ppu_area_mm2() == pytest.approx(3.0, rel=0.02)


class TestEngineProfile:
    def test_ratio_columns(self):
        profile = MODEL.engine_profile("diva", effective_tflops=6.6)
        assert profile.tflops_per_watt == pytest.approx(6.6 / 21.19,
                                                        rel=0.01)
        assert profile.tflops_per_mm2 == pytest.approx(6.6 / 82.35,
                                                       rel=0.01)

    def test_no_effective_means_no_ratios(self):
        profile = MODEL.engine_profile("ws")
        assert profile.tflops_per_watt is None
        assert profile.tflops_per_mm2 is None


class TestTrainingEnergy:
    def _report(self, kind, with_ppu):
        net = build_model("SqueezeNet")
        accel = (build_accelerator("ws") if kind == "ws"
                 else build_accelerator(kind, with_ppu=with_ppu))
        return simulate_training_step(net, Algorithm.DP_SGD_R, accel, 32)

    def test_components_positive(self):
        energy = MODEL.training_energy(self._report("ws", False), "ws")
        assert energy.engine_j > 0
        assert energy.dram_j > 0
        assert energy.sram_j > 0
        assert energy.total_j == pytest.approx(
            energy.engine_j + energy.ppu_j + energy.vector_j
            + energy.sram_j + energy.dram_j)

    def test_no_ppu_energy_without_ppu(self):
        energy = MODEL.training_energy(self._report("diva", False), "diva")
        assert energy.ppu_j == 0.0

    def test_ppu_energy_when_fused(self):
        energy = MODEL.training_energy(self._report("diva", True), "diva")
        assert energy.ppu_j > 0.0

    def test_diva_saves_energy_vs_ws(self):
        """Figure 16's headline: lower energy despite higher power."""
        ws = MODEL.training_energy(self._report("ws", False), "ws")
        diva = MODEL.training_energy(self._report("diva", True), "diva")
        assert diva.total_j < ws.total_j / 1.5

    def test_dram_savings_from_ppu(self):
        spill = MODEL.training_energy(self._report("ws", False), "ws")
        fused = MODEL.training_energy(self._report("diva", True), "diva")
        assert fused.dram_j < spill.dram_j / 2


class TestSramEstimator:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            estimate_sram(0)

    def test_area_scales_with_capacity(self):
        small = estimate_sram(2 * 2**20)
        large = estimate_sram(16 * 2**20)
        assert large.area_mm2 == pytest.approx(8 * small.area_mm2, rel=0.01)

    def test_16mb_area_plausible(self):
        """16 MB at 65 nm lands in the tens of mm^2 (CACTI ballpark)."""
        est = estimate_sram(16 * 2**20)
        assert 20 < est.area_mm2 < 80

    def test_access_energy_grows_with_bank(self):
        small = estimate_sram(2 * 2**20, bank_bytes=2 * 2**20)
        big_bank = estimate_sram(16 * 2**20, bank_bytes=16 * 2**20)
        assert big_bank.read_pj_per_byte > small.read_pj_per_byte

    def test_write_costs_more_than_read(self):
        est = estimate_sram(4 * 2**20)
        assert est.write_pj_per_byte > est.read_pj_per_byte

    def test_leakage_scales(self):
        assert (estimate_sram(16 * 2**20).leakage_mw
                == pytest.approx(8 * estimate_sram(2 * 2**20).leakage_mw))
