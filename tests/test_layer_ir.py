"""Tests for the layer IR and its Figure 6 GEMM extraction."""

import pytest

from repro.workloads.gemms import GemmKind
from repro.workloads.layer import (
    Conv2D,
    Elementwise,
    Embedding,
    Linear,
    MatmulOp,
    Norm,
    Pool2D,
    SeqLinear,
    conv_out_size,
)


class TestConvOutSize:
    def test_same_padding(self):
        assert conv_out_size(32, 3, 1, 1) == 32

    def test_stride_two(self):
        assert conv_out_size(32, 3, 2, 1) == 16

    def test_no_padding(self):
        assert conv_out_size(8, 3, 1, 0) == 6

    def test_collapse_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 7, 1, 0)


class TestLinearFigure6:
    """MLP row of Figure 6: fwd (B,I,O); batch (I,B,O); example Bx(I,1,O)."""

    layer = Linear("fc", in_features=256, out_features=512, bias=False)

    def test_forward_dims(self):
        (g,) = self.layer.forward_gemms(batch=32)
        assert (g.m, g.k, g.n, g.count) == (32, 256, 512, 1)
        assert g.kind is GemmKind.FORWARD

    def test_act_grad_dims(self):
        (g,) = self.layer.act_grad_gemms(batch=32)
        assert (g.m, g.k, g.n) == (32, 512, 256)

    def test_batch_wgrad_dims(self):
        (g,) = self.layer.batch_wgrad_gemms(batch=32)
        assert (g.m, g.k, g.n) == (256, 32, 512)

    def test_example_wgrad_dims(self):
        (g,) = self.layer.example_wgrad_gemms(batch=32)
        assert (g.m, g.k, g.n, g.count) == (256, 1, 512, 32)

    def test_example_and_batch_wgrad_same_macs(self):
        """Reduction over B examples preserves total MAC count."""
        (batch,) = self.layer.batch_wgrad_gemms(batch=32)
        (example,) = self.layer.example_wgrad_gemms(batch=32)
        assert batch.macs == example.macs

    def test_params_with_bias(self):
        layer = Linear("fc", 10, 20, bias=True)
        assert layer.params == 10 * 20 + 20

    def test_out_elems(self):
        assert self.layer.out_elems == 512


class TestSeqLinearFigure6:
    """Time-series MLP row: fwd (B*L,I,O); example Bx(I,L,O)."""

    layer = SeqLinear("proj", in_features=768, out_features=768, seq_len=32,
                      bias=False)

    def test_forward_dims(self):
        (g,) = self.layer.forward_gemms(batch=8)
        assert (g.m, g.k, g.n) == (8 * 32, 768, 768)

    def test_batch_wgrad_dims(self):
        (g,) = self.layer.batch_wgrad_gemms(batch=8)
        assert (g.m, g.k, g.n) == (768, 8 * 32, 768)

    def test_example_wgrad_dims(self):
        (g,) = self.layer.example_wgrad_gemms(batch=8)
        assert (g.m, g.k, g.n, g.count) == (768, 32, 768, 8)

    def test_example_k_is_seq_len_not_batch(self):
        """The paper's key irregularity: K independent of B."""
        g8 = self.layer.example_wgrad_gemms(batch=8)[0]
        g64 = self.layer.example_wgrad_gemms(batch=64)[0]
        assert g8.k == g64.k == 32


class TestConv2DFigure6:
    """Convolution row: fwd (B*P*Q, Cin*R*S, Cout); example Bx(CinRS, PQ, Cout)."""

    layer = Conv2D("conv", in_channels=64, out_channels=128,
                   in_height=16, in_width=16, kernel=3, stride=1, padding=1)

    def test_output_shape(self):
        assert self.layer.out_height == 16
        assert self.layer.out_width == 16

    def test_forward_dims(self):
        (g,) = self.layer.forward_gemms(batch=4)
        assert (g.m, g.k, g.n) == (4 * 256, 64 * 9, 128)

    def test_act_grad_dims(self):
        (g,) = self.layer.act_grad_gemms(batch=4)
        assert (g.m, g.k, g.n) == (4 * 256, 128 * 9, 64)

    def test_batch_wgrad_dims(self):
        (g,) = self.layer.batch_wgrad_gemms(batch=4)
        assert (g.m, g.k, g.n) == (64 * 9, 4 * 256, 128)

    def test_example_wgrad_dims(self):
        (g,) = self.layer.example_wgrad_gemms(batch=4)
        assert (g.m, g.k, g.n, g.count) == (64 * 9, 256, 128, 4)

    def test_params(self):
        assert self.layer.params == 128 * 64 * 9

    def test_out_elems(self):
        assert self.layer.out_elems == 128 * 16 * 16

    def test_stride_two_shrinks_example_k(self):
        strided = Conv2D("s2", 64, 128, 16, 16, kernel=3, stride=2, padding=1)
        (g,) = strided.example_wgrad_gemms(batch=1)
        assert g.k == 8 * 8

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2D("bad", 10, 16, 8, 8, groups=3)


class TestGroupedConvLowering:
    def _depthwise(self, dense: bool) -> Conv2D:
        return Conv2D("dw", 32, 32, 8, 8, kernel=3, groups=32,
                      dense_group_lowering=dense)

    def test_dense_lowering_full_channels(self):
        (g,) = self._depthwise(True).forward_gemms(batch=2)
        assert (g.k, g.n, g.count) == (32 * 9, 32, 1)

    def test_native_lowering_per_group(self):
        (g,) = self._depthwise(False).forward_gemms(batch=2)
        assert (g.k, g.n, g.count) == (9, 1, 32)

    def test_dense_lowering_inflates_macs(self):
        dense = self._depthwise(True).forward_gemms(batch=2)[0]
        native = self._depthwise(False).forward_gemms(batch=2)[0]
        assert dense.macs == native.macs * 32

    def test_params_independent_of_lowering(self):
        assert self._depthwise(True).params == self._depthwise(False).params

    def test_native_example_wgrad_count(self):
        (g,) = self._depthwise(False).example_wgrad_gemms(batch=4)
        assert g.count == 4 * 32


class TestMatmulOp:
    op = MatmulOp("qk", m=32, k=64, n=32, count=12)

    def test_no_weight_grads(self):
        assert self.op.batch_wgrad_gemms(8) == []
        assert self.op.example_wgrad_gemms(8) == []
        assert self.op.params == 0

    def test_forward_count_scales_with_batch(self):
        (g,) = self.op.forward_gemms(batch=8)
        assert g.count == 12 * 8

    def test_act_grad_two_gemms(self):
        gemms = self.op.act_grad_gemms(batch=8)
        assert len(gemms) == 2
        da, db = gemms
        assert (da.m, da.k, da.n) == (32, 32, 64)
        assert (db.m, db.k, db.n) == (64, 32, 32)


class TestMemoryOnlyLayers:
    def test_pool_shape(self):
        pool = Pool2D("p", channels=64, in_height=16, in_width=16)
        assert pool.out_height == 8
        assert pool.out_elems == 64 * 64
        assert pool.forward_gemms(4) == []

    def test_elementwise(self):
        relu = Elementwise("r", elems=100)
        assert relu.out_elems == 100
        assert not relu.has_weights

    def test_norm_params(self):
        norm = Norm("bn", elems=1024, num_features=64)
        assert norm.params == 128
        assert norm.has_weights
        assert norm.forward_gemms(4) == []

    def test_embedding(self):
        emb = Embedding("tok", vocab_size=1000, dim=64, seq_len=16)
        assert emb.params == 64000
        assert emb.out_elems == 16 * 64
        assert emb.forward_gemms(4) == []
