"""Tests for the RDP accountant (repro.dpml.accountant)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpml import (
    DEFAULT_ORDERS,
    RdpAccountant,
    compute_rdp,
    epsilon_for_steps,
    max_steps_for_budget,
    noise_multiplier_for_epsilon,
    rdp_sampled_gaussian,
    rdp_to_epsilon,
)


class TestRdpClosedForms:
    def test_q_zero_is_free(self):
        assert rdp_sampled_gaussian(0.0, 1.0, 8) == 0.0

    def test_q_one_is_gaussian(self):
        """q=1 reduces to the Gaussian mechanism: alpha / (2 sigma^2)."""
        for order in (2, 8, 32):
            for sigma in (0.5, 1.0, 4.0):
                assert rdp_sampled_gaussian(1.0, sigma, order) == \
                    pytest.approx(order / (2 * sigma**2))

    def test_sigma_zero_infinite(self):
        assert rdp_sampled_gaussian(0.5, 0.0, 4) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(1.5, 1.0, 4)
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(0.5, 1.0, 1)
        with pytest.raises(ValueError):
            rdp_sampled_gaussian(0.5, 1.0, 2.5)


class TestRdpMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(q=st.floats(0.001, 0.5), sigma=st.floats(0.5, 8.0),
           order=st.sampled_from([2, 4, 8, 16, 64]))
    def test_increasing_in_q(self, q, sigma, order):
        assert (rdp_sampled_gaussian(q, sigma, order)
                <= rdp_sampled_gaussian(min(1.0, q * 1.5), sigma, order)
                + 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(q=st.floats(0.001, 0.5), sigma=st.floats(0.5, 8.0),
           order=st.sampled_from([2, 4, 8, 16]))
    def test_decreasing_in_sigma(self, q, sigma, order):
        assert (rdp_sampled_gaussian(q, sigma, order)
                >= rdp_sampled_gaussian(q, sigma * 2, order) - 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(q=st.floats(0.001, 0.3), sigma=st.floats(0.5, 4.0))
    def test_nonnegative(self, q, sigma):
        assert rdp_sampled_gaussian(q, sigma, 8) >= 0.0


class TestComposition:
    def test_linear_in_steps(self):
        one = compute_rdp(0.01, 1.0, 1)
        many = compute_rdp(0.01, 1.0, 500)
        np.testing.assert_allclose(many, 500 * one)

    def test_zero_steps(self):
        np.testing.assert_allclose(compute_rdp(0.01, 1.0, 0), 0.0)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            compute_rdp(0.01, 1.0, -1)


class TestConversion:
    def test_validation(self):
        rdp = compute_rdp(0.01, 1.0, 10)
        with pytest.raises(ValueError):
            rdp_to_epsilon(DEFAULT_ORDERS, rdp, delta=0.0)
        with pytest.raises(ValueError):
            rdp_to_epsilon((2, 3), rdp, delta=1e-5)

    def test_epsilon_grows_with_steps(self):
        eps = [
            rdp_to_epsilon(DEFAULT_ORDERS,
                           compute_rdp(0.01, 1.0, steps), 1e-5)[0]
            for steps in (10, 100, 1000)
        ]
        assert eps[0] < eps[1] < eps[2]

    def test_epsilon_shrinks_with_sigma(self):
        eps = [
            rdp_to_epsilon(DEFAULT_ORDERS,
                           compute_rdp(0.01, sigma, 1000), 1e-5)[0]
            for sigma in (0.8, 1.5, 4.0)
        ]
        assert eps[0] > eps[1] > eps[2]

    def test_reference_value(self):
        """The canonical TF-Privacy example: q=0.01, sigma=1.1,
        10k steps, delta=1e-5 gives epsilon in the low single digits."""
        rdp = compute_rdp(0.01, 1.1, 10_000)
        eps, order = rdp_to_epsilon(DEFAULT_ORDERS, rdp, 1e-5)
        assert 3.0 < eps < 9.0
        assert order in DEFAULT_ORDERS


class TestAccountant:
    def test_zero_steps_zero_epsilon(self):
        acct = RdpAccountant(0.01, 1.0)
        assert acct.epsilon(1e-5) == 0.0

    def test_record_accumulates(self):
        acct = RdpAccountant(0.02, 1.0)
        acct.record_steps(10)
        early = acct.epsilon(1e-5)
        acct.record_steps(990)
        assert acct.epsilon(1e-5) > early
        assert acct.steps == 1000

    def test_matches_direct_computation(self):
        acct = RdpAccountant(0.05, 1.2)
        acct.record_steps(250)
        direct = rdp_to_epsilon(DEFAULT_ORDERS,
                                compute_rdp(0.05, 1.2, 250), 1e-5)[0]
        assert acct.epsilon(1e-5) == pytest.approx(direct)

    def test_privacy_spent_pair(self):
        acct = RdpAccountant(0.01, 1.0)
        acct.record_steps(5)
        eps, delta = acct.privacy_spent(1e-6)
        assert delta == 1e-6
        assert eps > 0

    def test_negative_record_rejected(self):
        with pytest.raises(ValueError):
            RdpAccountant(0.01, 1.0).record_steps(-1)


class TestEpsilonForSteps:
    def test_zero_steps_spend_nothing(self):
        assert epsilon_for_steps(0.01, 1.0, 0, 1e-5) == 0.0

    def test_matches_direct_conversion(self):
        direct = rdp_to_epsilon(DEFAULT_ORDERS,
                                compute_rdp(0.02, 1.1, 300), 1e-5)[0]
        assert epsilon_for_steps(0.02, 1.1, 300, 1e-5) == \
            pytest.approx(direct)


class TestMaxStepsForBudget:
    def test_invalid_target(self):
        with pytest.raises(ValueError):
            max_steps_for_budget(0.01, 1.0, 0.0, 1e-5)

    def test_q_zero_is_unbounded(self):
        assert max_steps_for_budget(0.0, 1.0, 1.0, 1e-5,
                                    max_steps=777) == 777

    def test_sigma_zero_affords_nothing(self):
        assert max_steps_for_budget(0.01, 0.0, 3.0, 1e-5) == 0

    def test_cap_respected(self):
        assert max_steps_for_budget(0.001, 4.0, 50.0, 1e-5,
                                    max_steps=123) == 123

    @settings(max_examples=20, deadline=None)
    @given(q=st.floats(0.002, 0.05), sigma=st.floats(0.8, 3.0),
           target=st.floats(0.5, 8.0))
    def test_inverse_consistent_with_epsilon_for_steps(
            self, q, sigma, target):
        """The crossover property: the returned step count fits the
        budget and one more step would overshoot."""
        delta = 1e-5
        steps = max_steps_for_budget(q, sigma, target, delta,
                                     max_steps=5000)
        assert epsilon_for_steps(q, sigma, steps, delta) <= target
        if steps < 5000:
            assert epsilon_for_steps(q, sigma, steps + 1, delta) > target

    @settings(max_examples=20, deadline=None)
    @given(q=st.floats(0.002, 0.05), sigma=st.floats(0.8, 2.5),
           target=st.floats(0.5, 6.0))
    def test_monotone_in_sigma(self, q, sigma, target):
        """More noise buys at least as many steps."""
        fewer = max_steps_for_budget(q, sigma, target, 1e-5,
                                     max_steps=5000)
        more = max_steps_for_budget(q, sigma * 1.5, target, 1e-5,
                                    max_steps=5000)
        assert more >= fewer

    @settings(max_examples=20, deadline=None)
    @given(q=st.floats(0.002, 0.05), sigma=st.floats(0.8, 2.5),
           target=st.floats(0.5, 4.0))
    def test_monotone_in_target(self, q, sigma, target):
        loose = max_steps_for_budget(q, sigma, 2.0 * target, 1e-5,
                                     max_steps=5000)
        tight = max_steps_for_budget(q, sigma, target, 1e-5,
                                     max_steps=5000)
        assert loose >= tight

    def test_base_rdp_reduces_affordability(self):
        fresh = max_steps_for_budget(0.01, 1.0, 3.0, 1e-5)
        spent = compute_rdp(0.01, 1.0, 500)
        remaining = max_steps_for_budget(0.01, 1.0, 3.0, 1e-5,
                                         base_rdp=spent)
        assert remaining <= fresh - 500 + 1  # linear composition
        assert remaining < fresh

    def test_base_rdp_shape_validated(self):
        with pytest.raises(ValueError):
            max_steps_for_budget(0.01, 1.0, 3.0, 1e-5,
                                 base_rdp=np.zeros(3))

    def test_accountant_method_tracks_recorded_steps(self):
        target, delta = 3.0, 1e-5
        acct = RdpAccountant(0.01, 1.0)
        total = acct.max_steps_for_budget(target, delta)
        assert total == max_steps_for_budget(0.01, 1.0, target, delta)
        acct.record_steps(total)
        assert acct.epsilon(delta) <= target
        assert acct.max_steps_for_budget(target, delta) == 0


class TestNoiseCalibration:
    def test_inverse_property(self):
        """The calibrated sigma achieves (just under) the target."""
        target = 4.0
        sigma = noise_multiplier_for_epsilon(target, 1e-5, 0.02, 1000)
        rdp = compute_rdp(0.02, sigma, 1000)
        eps, _ = rdp_to_epsilon(DEFAULT_ORDERS, rdp, 1e-5)
        assert eps <= target
        assert eps > target * 0.8  # not wastefully noisy

    def test_tighter_target_needs_more_noise(self):
        loose = noise_multiplier_for_epsilon(8.0, 1e-5, 0.02, 1000)
        tight = noise_multiplier_for_epsilon(1.0, 1e-5, 0.02, 1000)
        assert tight > loose

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            noise_multiplier_for_epsilon(0.0, 1e-5, 0.02, 100)
