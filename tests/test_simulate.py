"""Tests for the training-step simulation driver (repro.training.simulate)."""

import pytest

from repro.core import build_accelerator
from repro.training import (
    PHASE_ORDER,
    Algorithm,
    Phase,
    simulate_training_step,
    stage_utilization,
)
from repro.workloads import GemmKind, build_model

NET = build_model("SqueezeNet")
BATCH = 32


def report(kind="ws", with_ppu=False, algo=Algorithm.DP_SGD_R, net=NET,
           batch=BATCH):
    accel = (build_accelerator("ws") if kind == "ws"
             else build_accelerator(kind, with_ppu=with_ppu))
    return simulate_training_step(net, algo, accel, batch)


class TestReportStructure:
    def test_sgd_has_no_private_phases(self):
        r = report(algo=Algorithm.SGD)
        assert r.phase_cycles(Phase.BWD_EXAMPLE_GRAD) == 0
        assert r.phase_cycles(Phase.BWD_GRAD_NORM) == 0
        assert r.phase_cycles(Phase.BWD_GRAD_CLIP) == 0

    def test_dp_sgd_has_clip_and_reduce(self):
        r = report(algo=Algorithm.DP_SGD)
        assert r.phase_cycles(Phase.BWD_GRAD_CLIP) > 0
        assert r.phase_cycles(Phase.BWD_REDUCE_NOISE) > 0
        assert r.phase_cycles(Phase.BWD_ACT_2) == 0

    def test_dp_sgd_r_has_second_pass(self):
        r = report(algo=Algorithm.DP_SGD_R)
        assert r.phase_cycles(Phase.BWD_ACT_2) > 0
        assert r.phase_cycles(Phase.BWD_BATCH_GRAD) > 0
        assert r.phase_cycles(Phase.BWD_GRAD_CLIP) == 0

    def test_total_is_phase_sum(self):
        r = report()
        assert r.total_cycles == sum(
            r.phase_cycles(p) for p in Phase)

    def test_seconds_conversion(self):
        r = report()
        assert r.total_seconds == pytest.approx(
            r.total_cycles / r.frequency_hz)

    def test_breakdown_keys(self):
        # Single-chip breakdowns cover the paper phases; the
        # cluster-only COMM phase appears only in sharded reports.
        r = report()
        assert set(r.breakdown()) == {str(p) for p in PHASE_ORDER}
        assert str(Phase.COMM) not in r.breakdown()

    def test_deterministic(self):
        a, b = report(), report()
        assert a.total_cycles == b.total_cycles


class TestPaperShapes:
    def test_dp_backprop_dominates(self):
        """Section III-B: backprop ~99% of DP training time."""
        r = report(algo=Algorithm.DP_SGD)
        assert r.backprop_fraction > 0.9

    def test_sgd_backprop_share(self):
        """Non-private SGD: backprop 60-77% of the step."""
        r = report(algo=Algorithm.SGD)
        assert 0.5 < r.backprop_fraction < 0.85

    def test_dp_sgd_slower_than_sgd(self):
        assert (report(algo=Algorithm.DP_SGD).total_cycles
                > 3 * report(algo=Algorithm.SGD).total_cycles)

    def test_dp_sgd_r_beats_dp_sgd_on_ws(self):
        """Section III-B: DP-SGD(R) outperforms DP-SGD on the baseline."""
        assert (report(algo=Algorithm.DP_SGD_R).total_cycles
                < report(algo=Algorithm.DP_SGD).total_cycles)

    def test_diva_beats_ws_on_dp(self):
        ws = report("ws")
        diva = report("diva", with_ppu=True)
        assert diva.total_cycles < ws.total_cycles / 1.5

    def test_ppu_removes_norm_stage(self):
        without = report("diva", with_ppu=False)
        with_ppu = report("diva", with_ppu=True)
        assert (with_ppu.phase_cycles(Phase.BWD_GRAD_NORM)
                < without.phase_cycles(Phase.BWD_GRAD_NORM) / 10)

    def test_ws_spills_example_gradients(self):
        """Figure 10(a): WS writes per-example grads off-chip under
        DP-SGD(R); an OS drain does not."""
        ws = report("ws")
        diva = report("diva", with_ppu=True)
        spill_ws = ws.phases[Phase.BWD_EXAMPLE_GRAD].dram_write_bytes
        spill_diva = diva.phases[Phase.BWD_EXAMPLE_GRAD].dram_write_bytes
        assert spill_ws > 100 * spill_diva

    def test_dp_sgd_keeps_gradients_even_on_diva(self):
        """Plain DP-SGD must materialize gradients for clipping."""
        r = report("diva", with_ppu=True, algo=Algorithm.DP_SGD)
        spill = r.phases[Phase.BWD_EXAMPLE_GRAD].dram_write_bytes
        assert spill >= NET.gemm_params * 4 * BATCH

    def test_postprocessing_traffic_reduction(self):
        """Section I: ~99% less post-processing off-chip traffic."""
        ws = report("ws")
        diva = report("diva", with_ppu=True)
        assert (diva.postprocessing_dram_bytes
                < 0.1 * ws.postprocessing_dram_bytes)


class TestStageUtilization:
    def test_empty_list(self):
        accel = build_accelerator("ws")
        assert stage_utilization(accel, []) == 0.0

    def test_matches_engine_for_single_gemm(self):
        accel = build_accelerator("ws")
        gemms = NET.gemms(GemmKind.FORWARD, 8)[:1]
        assert stage_utilization(accel, gemms) == pytest.approx(
            accel.engine.utilization(gemms[0]))

    def test_example_stage_worst_on_ws(self):
        """Figure 7's ordering."""
        accel = build_accelerator("ws")
        fwd = stage_utilization(accel, NET.gemms(GemmKind.FORWARD, BATCH))
        ex = stage_utilization(accel,
                               NET.gemms(GemmKind.WGRAD_EXAMPLE, BATCH))
        assert ex < fwd
