"""Tests for the Figure 4 / Section III-A memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import Algorithm, max_batch_size, memory_breakdown
from repro.workloads import build_model

NET = build_model("ResNet-152")


class TestMemoryBreakdown:
    def test_batch_validation(self):
        with pytest.raises(ValueError):
            memory_breakdown(NET, Algorithm.SGD, 0)

    def test_total_is_sum(self):
        b = memory_breakdown(NET, Algorithm.DP_SGD, 8)
        assert b.total == (b.weights + b.activations + b.batch_gradients
                           + b.example_gradients + b.other)

    def test_sgd_no_example_gradients(self):
        assert memory_breakdown(NET, Algorithm.SGD, 8).example_gradients == 0

    def test_dp_sgd_example_gradients_scale(self):
        """DP-SGD needs B x sizeof(G(W)) (Section II-C)."""
        b8 = memory_breakdown(NET, Algorithm.DP_SGD, 8)
        b16 = memory_breakdown(NET, Algorithm.DP_SGD, 16)
        assert b16.example_gradients == 2 * b8.example_gradients
        assert b8.example_gradients == NET.params * 4 * 8

    def test_dp_sgd_r_transient_buffer(self):
        """DP-SGD(R) holds only the largest layer's per-example grads."""
        b = memory_breakdown(NET, Algorithm.DP_SGD_R, 8)
        assert b.example_gradients == NET.max_layer_params * 4 * 8
        assert b.example_gradients < memory_breakdown(
            NET, Algorithm.DP_SGD, 8).example_gradients

    def test_weights_independent_of_batch(self):
        a = memory_breakdown(NET, Algorithm.SGD, 8)
        b = memory_breakdown(NET, Algorithm.SGD, 8000)
        assert a.weights == b.weights

    def test_fraction(self):
        b = memory_breakdown(NET, Algorithm.DP_SGD, 32)
        assert b.fraction("example_gradients") == pytest.approx(
            b.example_gradients / b.total)

    def test_as_dict_keys(self):
        d = memory_breakdown(NET, Algorithm.SGD, 4).as_dict()
        assert set(d) == {"weights", "activations", "batch_gradients",
                          "example_gradients", "other"}

    @given(batch=st.integers(1, 512))
    @settings(deadline=None)
    def test_total_monotone_in_batch(self, batch):
        a = memory_breakdown(NET, Algorithm.DP_SGD, batch).total
        b = memory_breakdown(NET, Algorithm.DP_SGD, batch + 1).total
        assert b > a


class TestMaxBatch:
    def test_paper_anchor_resnet152(self):
        """Section III-A: DP-SGD trains ResNet-152 at mini-batch 32."""
        assert max_batch_size(NET, Algorithm.DP_SGD) == 32

    def test_dp_much_smaller_than_sgd(self):
        """The memory-bloat headline: orders of magnitude."""
        sgd = max_batch_size(NET, Algorithm.SGD)
        dp = max_batch_size(NET, Algorithm.DP_SGD)
        assert sgd >= 64 * dp

    def test_dp_sgd_r_restores_batch(self):
        """DP-SGD(R) enables much larger mini-batches (Section III-A)."""
        dp = max_batch_size(NET, Algorithm.DP_SGD)
        dp_r = max_batch_size(NET, Algorithm.DP_SGD_R)
        assert dp_r >= 4 * dp

    def test_power_of_two_default(self):
        b = max_batch_size(NET, Algorithm.DP_SGD)
        assert b & (b - 1) == 0

    def test_exact_search(self):
        exact = max_batch_size(NET, Algorithm.DP_SGD, power_of_two=False)
        pow2 = max_batch_size(NET, Algorithm.DP_SGD, power_of_two=True)
        assert pow2 <= exact < 2 * pow2

    def test_capacity_scaling(self):
        small = max_batch_size(NET, Algorithm.DP_SGD,
                               capacity_bytes=8 * 2**30)
        large = max_batch_size(NET, Algorithm.DP_SGD,
                               capacity_bytes=32 * 2**30)
        assert small < large

    def test_too_small_capacity_raises(self):
        with pytest.raises(ValueError):
            max_batch_size(NET, Algorithm.DP_SGD, capacity_bytes=2**20)

    def test_feasible_at_reported_batch(self):
        """The returned batch really fits; the next power of two doesn't."""
        budget = 16 * 2**30 * 0.9
        b = max_batch_size(NET, Algorithm.DP_SGD)
        assert memory_breakdown(NET, Algorithm.DP_SGD, b).total <= budget
        assert memory_breakdown(NET, Algorithm.DP_SGD, 2 * b).total > budget
