"""Batched closed-form engine vs the scalar oracles (repro.arch.batch).

The batched evaluators must be *identical* to the scalar paths — same
integers, same floats — on every configuration; these tests pin that
with hypothesis-driven random grids plus handcrafted edge shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.batch import (
    allreduce_seconds_batch,
    first_bucket_seconds_batch,
    gemm_stats_batch,
    link_bytes_per_chip_batch,
    n_buckets_batch,
    topology_codes,
)
from repro.arch.engine import ArrayConfig
from repro.arch.interconnect import Interconnect, InterconnectConfig
from repro.arch.systolic import (
    OutputStationaryEngine,
    WeightStationaryEngine,
)
from repro.core import build_accelerator
from repro.core.outer_product import OuterProductEngine
from repro.workloads.gemms import Gemm

ENGINE_KINDS = ("ws", "os", "diva")

#: Edge shapes: exact-fit, remainders in each dimension, unit dims,
#: sub-array dims, multi-count.
EDGE_SHAPES = (
    (1, 1, 1, 1),
    (128, 128, 128, 1),
    (127, 129, 255, 3),
    (256, 256, 256, 2),
    (1, 128, 1, 5),
    (129, 1, 129, 1),
    (64, 700, 31, 7),
)


def _engine(kind: str):
    accel = (build_accelerator("ws") if kind == "ws"
             else build_accelerator(kind))
    return accel.engine


def _assert_batch_equals_scalar(engine, dims):
    m, k, n, c = (np.array(column) for column in zip(*dims))
    batch = gemm_stats_batch(engine, m, k, n, c)
    for i, (mi, ki, ni, ci) in enumerate(dims):
        scalar = engine.gemm_stats(Gemm(mi, ki, ni, ci))
        for field in ("compute_cycles", "macs", "tiles",
                      "sram_read_bytes", "sram_write_bytes"):
            assert int(getattr(batch, field)[i]) == getattr(scalar, field), \
                (engine.name, dims[i], field)


class TestGemmStatsBatch:
    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_edge_shapes(self, kind):
        _assert_batch_equals_scalar(_engine(kind), EDGE_SHAPES)

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    @settings(max_examples=25, deadline=None)
    @given(dims=st.lists(
        st.tuples(st.integers(1, 600), st.integers(1, 600),
                  st.integers(1, 600), st.integers(1, 16)),
        min_size=1, max_size=12))
    def test_random_grids_match_scalar(self, kind, dims):
        _assert_batch_equals_scalar(_engine(kind), dims)

    @pytest.mark.parametrize("engine_cls", [WeightStationaryEngine,
                                            OutputStationaryEngine,
                                            OuterProductEngine])
    def test_without_double_buffering(self, engine_cls):
        engine = engine_cls(ArrayConfig(weight_double_buffer=False,
                                        accum_double_buffer=False))
        _assert_batch_equals_scalar(engine, EDGE_SHAPES)

    def test_utilization_matches_scalar(self):
        engine = _engine("diva")
        batch = gemm_stats_batch(engine, [576, 300], [16, 77],
                                 [512, 128], [32, 1])
        for i, dims in enumerate([(576, 16, 512, 32), (300, 77, 128, 1)]):
            assert batch.utilization[i] == pytest.approx(
                engine.gemm_stats(Gemm(*dims)).utilization)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            gemm_stats_batch(_engine("diva"), [0], [1], [1], [1])

    def test_scalar_fallback_without_grid_axes(self):
        engine = _engine("diva")

        class NoGrid(type(engine)):
            grid_axes = None

        fallback = NoGrid(engine.config)
        _assert_batch_equals_scalar(fallback, EDGE_SHAPES[:3])


class TestCollectiveBatch:
    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.integers(0, 10**9),
        n_chips=st.integers(1, 64),
        topology=st.sampled_from(["ring", "all_to_all", "hierarchical"]),
        bucket_mb=st.sampled_from([None, 1, 4, 25]),
        node_pow=st.integers(0, 3),
    )
    def test_matches_scalar_interconnect(self, payload, n_chips, topology,
                                         bucket_mb, node_pow):
        chips_per_node = 2 ** node_pow if topology == "hierarchical" else 1
        if topology == "hierarchical" and n_chips % chips_per_node:
            n_chips = chips_per_node * max(1, n_chips // chips_per_node)
        bucket = bucket_mb * 2**20 if bucket_mb else None
        config = InterconnectConfig(
            topology=topology, bucket_bytes=bucket,
            chips_per_node=chips_per_node)
        scalar = Interconnect(config)

        p = np.array([payload])
        n = np.array([n_chips])
        topo = topology_codes([topology])
        b = np.array([0 if bucket is None else bucket])
        cpn = np.array([chips_per_node])

        assert allreduce_seconds_batch(p, n, topo, b, cpn)[0] == \
            scalar.allreduce_seconds(payload, n_chips)
        assert first_bucket_seconds_batch(p, n, topo, b, cpn)[0] == \
            scalar.first_bucket_seconds(payload, n_chips)
        assert int(link_bytes_per_chip_batch(p, n, topo, b, cpn)[0]) == \
            scalar.link_bytes_per_chip(payload, n_chips)
        assert int(n_buckets_batch(p, b)[0]) == scalar.n_buckets(payload)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            topology_codes(["torus"])
