"""Seed-determinism and statistical sanity of the trace shapes.

Every arrival shape in :data:`repro.serve.TRACE_SHAPES` must be a
*seeded deterministic* sampler (same config, same trace — the
differential fleet tests depend on it) whose long-run arrival rate
matches the configured ``1 / mean_interarrival_s`` — the shapes
redistribute arrivals in time, they do not change how many there are.
Shape-specific signatures (diurnal peak/trough contrast, bursty
overdispersion, multiregion tenant partitioning) are pinned too, so a
generator that quietly degenerates to plain Poisson fails loudly.
"""

import numpy as np
import pytest

from repro.serve import (
    TRACE_SHAPES,
    TraceConfig,
    generate_trace,
    generate_trace_arrays,
)

#: Enough arrivals that empirical rates settle within the tolerance
#: below for every shape (bursty converges slowest: the rate estimate
#: mixes at the sojourn, not the arrival, timescale).
_JOBS = 20_000
_RATE_TOLERANCE = 0.15


def _shape_config(shape: str, seed: int = 7) -> TraceConfig:
    return TraceConfig(jobs=_JOBS, seed=seed, shape=shape,
                       mean_interarrival_s=2.0,
                       diurnal_period_s=1200.0,
                       burst_mean_s=20.0)


class TestSeedDeterminism:
    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    def test_scalar_same_seed_identical(self, shape):
        config = TraceConfig(jobs=300, seed=11, shape=shape)
        assert generate_trace(config) == generate_trace(config)

    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    def test_arrays_same_seed_identical(self, shape):
        config = TraceConfig(jobs=3000, seed=11, shape=shape)
        a = generate_trace_arrays(config)
        b = generate_trace_arrays(config)
        np.testing.assert_array_equal(a.arrival_s, b.arrival_s)
        np.testing.assert_array_equal(a.tenant, b.tenant)
        np.testing.assert_array_equal(a.model, b.model)
        np.testing.assert_array_equal(a.steps, b.steps)

    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    def test_seed_changes_stream(self, shape):
        a = generate_trace_arrays(
            TraceConfig(jobs=500, seed=1, shape=shape))
        b = generate_trace_arrays(
            TraceConfig(jobs=500, seed=2, shape=shape))
        assert not np.array_equal(a.arrival_s, b.arrival_s)

    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    def test_arrivals_nondecreasing_and_positive(self, shape):
        for trace_arrivals in (
            np.array([job.arrival_s for job in generate_trace(
                TraceConfig(jobs=500, seed=3, shape=shape))]),
            generate_trace_arrays(
                TraceConfig(jobs=500, seed=3, shape=shape)).arrival_s,
        ):
            assert trace_arrivals.shape == (500,)
            assert trace_arrivals[0] > 0.0
            assert (np.diff(trace_arrivals) >= 0.0).all()

    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    def test_empty_trace(self, shape):
        config = TraceConfig(jobs=0, shape=shape)
        assert generate_trace(config) == ()
        assert len(generate_trace_arrays(config)) == 0


class TestStatisticalSanity:
    @pytest.mark.parametrize("shape", TRACE_SHAPES)
    @pytest.mark.parametrize("generator", ("scalar", "arrays"))
    def test_empirical_rate_matches_configured(self, shape, generator):
        config = _shape_config(shape)
        if generator == "scalar":
            trace = generate_trace(config)
            arrivals = np.array([job.arrival_s for job in trace])
        else:
            arrivals = generate_trace_arrays(config).arrival_s
        empirical_mean = arrivals[-1] / len(arrivals)
        assert empirical_mean == pytest.approx(
            config.mean_interarrival_s, rel=_RATE_TOLERANCE)

    def test_diurnal_peak_trough_contrast(self):
        """Arrivals crowd the rate peak and thin out at the trough."""
        config = _shape_config("diurnal")
        arrivals = generate_trace_arrays(config).arrival_s
        phase = np.mod(arrivals / config.diurnal_period_s, 1.0)
        # sin peaks at phase 0.25, troughs at 0.75.
        peak = np.sum(np.abs(phase - 0.25) < 0.125)
        trough = np.sum(np.abs(phase - 0.75) < 0.125)
        expected = (1.0 + config.diurnal_amplitude) \
            / (1.0 - config.diurnal_amplitude)
        ratio = peak / trough
        assert ratio > 1.0 + (expected - 1.0) / 3.0

    def test_bursty_is_overdispersed(self):
        """Windowed counts far exceed Poisson variance (CV > 1)."""
        config = _shape_config("bursty")
        arrivals = generate_trace_arrays(config).arrival_s
        window_s = config.burst_mean_s
        counts = np.bincount((arrivals / window_s).astype(int))
        poisson_config = _shape_config("poisson")
        poisson_arrivals = generate_trace_arrays(poisson_config).arrival_s
        poisson_counts = np.bincount(
            (poisson_arrivals / window_s).astype(int))
        bursty_dispersion = counts.var() / counts.mean()
        poisson_dispersion = poisson_counts.var() / poisson_counts.mean()
        assert poisson_dispersion < 2.0  # sanity: Poisson index ~ 1
        assert bursty_dispersion > 2.0 * poisson_dispersion

    def test_multiregion_partitions_tenants(self):
        """Tenant i belongs to region i % regions, both generators."""
        config = _shape_config("multiregion")
        arrays = generate_trace_arrays(config)
        assert set(np.unique(arrays.tenant)) <= set(
            range(config.n_tenants))
        scalar = generate_trace(TraceConfig(
            jobs=2000, seed=5, shape="multiregion", n_tenants=6,
            regions=3))
        seen = {job.tenant for job in scalar}
        assert seen == {f"tenant-{i}" for i in range(6)}

    def test_multiregion_total_rate_flat(self):
        """Evenly spaced phases superpose to a near-constant rate."""
        config = _shape_config("multiregion")
        arrivals = generate_trace_arrays(config).arrival_s
        phase = np.mod(arrivals / config.diurnal_period_s, 1.0)
        quarters = np.bincount((phase * 4).astype(int), minlength=4)
        # A single diurnal stream at amplitude 0.8 would load its peak
        # quarter ~3x its trough quarter; superposition flattens that.
        assert quarters.max() < 1.5 * quarters.min()


class TestShapeValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            TraceConfig(shape="weekly")

    def test_multiregion_needs_enough_tenants(self):
        with pytest.raises(ValueError, match="regions"):
            TraceConfig(shape="multiregion", n_tenants=2, regions=3)

    @pytest.mark.parametrize("field,value", [
        ("diurnal_period_s", 0.0),
        ("diurnal_amplitude", 1.5),
        ("burst_rate_ratio", 0.5),
        ("burst_fraction", 0.0),
        ("burst_fraction", 1.0),
        ("burst_mean_s", -1.0),
        ("regions", 0),
    ])
    def test_bad_shape_knobs_rejected(self, field, value):
        with pytest.raises(ValueError):
            TraceConfig(**{field: value})
