"""Tests for virtual batching and the GEMM robustness sweep."""

import numpy as np
import pytest

from repro.dpml import (
    Dense,
    DpSgdOptimizer,
    MicrobatchDpSgdOptimizer,
    PrivacyParams,
    ReLU,
    Sequential,
    synthetic_classification,
)
from repro.experiments import gemm_sweep


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 24, rng=rng), ReLU(),
                       Dense(24, 4, rng=rng)])


class TestMicrobatching:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobatchDpSgdOptimizer(_net(), microbatch_size=0)

    @pytest.mark.parametrize("microbatch", [1, 4, 7, 16, 64])
    def test_equivalent_to_full_batch(self, microbatch):
        """Any micro-batch split yields the same logical update."""
        data = synthetic_classification(64, 16, 4, seed=2)
        x, y = data.x[:32], data.y[:32]
        full_net, micro_net = _net(1), _net(1)
        privacy = PrivacyParams(clip_norm=1.0, noise_multiplier=1.0)
        full = DpSgdOptimizer(full_net, privacy=privacy,
                              rng=np.random.default_rng(5))
        micro = MicrobatchDpSgdOptimizer(
            micro_net, privacy=privacy, rng=np.random.default_rng(5),
            microbatch_size=microbatch)
        r_full = full.step_dpsgd(x, y)
        r_micro = micro.step_dpsgd(x, y)
        for la, lb in zip(full_net.weight_layers, micro_net.weight_layers):
            for name in la.params:
                np.testing.assert_allclose(la.params[name], lb.params[name],
                                           atol=1e-9)
        assert r_micro.mean_loss == pytest.approx(r_full.mean_loss)
        assert r_micro.clipped_fraction == r_full.clipped_fraction

    def test_telemetry_covers_all_examples(self):
        data = synthetic_classification(64, 16, 4, seed=3)
        opt = MicrobatchDpSgdOptimizer(
            _net(2), microbatch_size=8,
            privacy=PrivacyParams(1.0, 0.0),
            rng=np.random.default_rng(0))
        result = opt.step_dpsgd(data.x[:24], data.y[:24])
        assert 0.0 <= result.clipped_fraction <= 1.0
        assert result.mean_grad_norm > 0


class TestGemmSweep:
    points = gemm_sweep.k_sweep(m=512, n=256, ks=(1, 8, 64, 512))

    def test_diva_monotone_advantage_shrinks_with_k(self):
        """DiVa's edge over WS is largest at the smallest K."""
        advantages = [p.diva_advantage for p in self.points]
        assert advantages[0] > advantages[-1]
        assert advantages[0] > 5.0

    def test_ws_utilization_grows_with_k(self):
        ws = [p.utilization["WS"] for p in self.points]
        assert all(a <= b + 1e-9 for a, b in zip(ws, ws[1:]))

    def test_diva_flat_across_k(self):
        """The outer product's defining robustness: above the drain
        bound (K >= 128/R = 16), utilization is K-independent."""
        diva = [p.utilization["DiVa"] for p in self.points
                if p.gemm.k >= 16]
        assert max(diva) / min(diva) < 1.5

    def test_aspect_sweep_runs(self):
        points = gemm_sweep.aspect_sweep()
        assert len(points) == 5
        for p in points:
            for value in p.utilization.values():
                assert 0 < value <= 1

    def test_render(self):
        text = gemm_sweep.render(self.points)
        assert "DiVa/WS" in text
