"""Tests for virtual batching and the GEMM robustness sweep."""

import numpy as np
import pytest

from repro.dpml import (
    Dense,
    DpSgdOptimizer,
    MicrobatchDpSgdOptimizer,
    PrivacyParams,
    ReLU,
    Sequential,
    synthetic_classification,
)
from repro.dpml.microbatch import clipped_grad_sum, clipped_grad_sum_loop
from repro.experiments import gemm_sweep


class TestClippedGradSum:
    """The stacked einsum/tensordot contraction vs its loop oracle."""

    @pytest.mark.parametrize("shape", [(1, 3), (8, 5), (16, 4, 6),
                                       (32, 2, 3, 4)])
    def test_matches_loop_oracle(self, shape):
        rng = np.random.default_rng(7)
        per_example = rng.normal(size=shape)
        scales = rng.uniform(0.1, 1.0, size=shape[0])
        np.testing.assert_allclose(
            clipped_grad_sum(per_example, scales),
            clipped_grad_sum_loop(per_example, scales),
            rtol=1e-12, atol=1e-12)

    def test_matches_broadcast_reduce(self):
        # The pre-vectorization formulation (materialize B x params,
        # then reduce) — kept as a second oracle.
        rng = np.random.default_rng(3)
        per_example = rng.normal(size=(24, 6, 5))
        scales = rng.uniform(0.0, 2.0, size=24)
        reference = (per_example
                     * scales.reshape(24, 1, 1)).sum(axis=0)
        np.testing.assert_allclose(
            clipped_grad_sum(per_example, scales), reference,
            rtol=1e-12, atol=1e-12)


def _net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(16, 24, rng=rng), ReLU(),
                       Dense(24, 4, rng=rng)])


class TestMicrobatching:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobatchDpSgdOptimizer(_net(), microbatch_size=0)

    @pytest.mark.parametrize("microbatch", [1, 4, 7, 16, 64])
    def test_equivalent_to_full_batch(self, microbatch):
        """Any micro-batch split yields the same logical update."""
        data = synthetic_classification(64, 16, 4, seed=2)
        x, y = data.x[:32], data.y[:32]
        full_net, micro_net = _net(1), _net(1)
        privacy = PrivacyParams(clip_norm=1.0, noise_multiplier=1.0)
        full = DpSgdOptimizer(full_net, privacy=privacy,
                              rng=np.random.default_rng(5))
        micro = MicrobatchDpSgdOptimizer(
            micro_net, privacy=privacy, rng=np.random.default_rng(5),
            microbatch_size=microbatch)
        r_full = full.step_dpsgd(x, y)
        r_micro = micro.step_dpsgd(x, y)
        for la, lb in zip(full_net.weight_layers, micro_net.weight_layers):
            for name in la.params:
                np.testing.assert_allclose(la.params[name], lb.params[name],
                                           atol=1e-9)
        assert r_micro.mean_loss == pytest.approx(r_full.mean_loss)
        assert r_micro.clipped_fraction == r_full.clipped_fraction

    def test_telemetry_covers_all_examples(self):
        data = synthetic_classification(64, 16, 4, seed=3)
        opt = MicrobatchDpSgdOptimizer(
            _net(2), microbatch_size=8,
            privacy=PrivacyParams(1.0, 0.0),
            rng=np.random.default_rng(0))
        result = opt.step_dpsgd(data.x[:24], data.y[:24])
        assert 0.0 <= result.clipped_fraction <= 1.0
        assert result.mean_grad_norm > 0


class TestGemmSweep:
    points = gemm_sweep.k_sweep(m=512, n=256, ks=(1, 8, 64, 512))

    def test_diva_monotone_advantage_shrinks_with_k(self):
        """DiVa's edge over WS is largest at the smallest K."""
        advantages = [p.diva_advantage for p in self.points]
        assert advantages[0] > advantages[-1]
        assert advantages[0] > 5.0

    def test_ws_utilization_grows_with_k(self):
        ws = [p.utilization["WS"] for p in self.points]
        assert all(a <= b + 1e-9 for a, b in zip(ws, ws[1:]))

    def test_diva_flat_across_k(self):
        """The outer product's defining robustness: above the drain
        bound (K >= 128/R = 16), utilization is K-independent."""
        diva = [p.utilization["DiVa"] for p in self.points
                if p.gemm.k >= 16]
        assert max(diva) / min(diva) < 1.5

    def test_aspect_sweep_runs(self):
        points = gemm_sweep.aspect_sweep()
        assert len(points) == 5
        for p in points:
            for value in p.utilization.values():
                assert 0 < value <= 1

    def test_render(self):
        text = gemm_sweep.render(self.points)
        assert "DiVa/WS" in text
