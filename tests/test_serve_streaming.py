"""Streaming serve path: array traces, batched admission, P² metrics.

Equivalence contract: on traces the scalar simulator can afford, the
streaming path must reproduce its decisions and counts *exactly*
(admission is decision-identical by construction) and its percentiles
exactly below the warmup buffer; only aggregate floats accumulated in
a different order (utilization) get a tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from functools import lru_cache

from repro.serve import (
    AdmissionController,
    AutoscalerPolicy,
    FleetConfig,
    P2Quantile,
    StreamingStats,
    TenantBudget,
    TraceArrays,
    TraceConfig,
    generate_trace,
    generate_trace_arrays,
    percentile,
    simulate_fleet,
    simulate_fleet_streaming,
)
from repro.serve.budget import BatchAdmissionDecisions

_STATUS_CODE = {"admitted": BatchAdmissionDecisions.ADMITTED,
                "truncated": BatchAdmissionDecisions.TRUNCATED,
                "rejected": BatchAdmissionDecisions.REJECTED}


class TestTraceArrays:
    def test_round_trip_preserves_jobs(self):
        trace = generate_trace(TraceConfig(jobs=40, seed=3))
        assert TraceArrays.from_jobs(trace).jobs() == trace

    def test_generate_deterministic_and_shaped(self):
        config = TraceConfig(jobs=500, seed=11)
        a = generate_trace_arrays(config)
        b = generate_trace_arrays(config)
        assert len(a) == 500
        np.testing.assert_array_equal(a.arrival_s, b.arrival_s)
        np.testing.assert_array_equal(a.steps, b.steps)
        assert (np.diff(a.arrival_s) >= 0).all()
        assert set(np.unique(a.batch)) <= set(config.batches)
        lo, hi = config.steps_range
        assert a.steps.min() >= lo and a.steps.max() <= hi

    def test_seed_changes_stream(self):
        a = generate_trace_arrays(TraceConfig(jobs=100, seed=1))
        b = generate_trace_arrays(TraceConfig(jobs=100, seed=2))
        assert not np.array_equal(a.arrival_s, b.arrival_s)

    def test_empty(self):
        assert len(generate_trace_arrays(TraceConfig(jobs=0))) == 0

    def test_private_mask_and_sampling_rate(self):
        trace = generate_trace(TraceConfig(jobs=30, seed=5))
        arrays = TraceArrays.from_jobs(trace)
        for i, job in enumerate(trace):
            assert bool(arrays.is_private[i]) == job.is_private
            assert float(arrays.sampling_rate[i]) == job.sampling_rate


class TestBatchAdmission:
    @pytest.mark.parametrize("epsilon,truncation", [
        (3.0, True),      # demo regime: admits, truncations, rejections
        (3.0, False),     # rejection instead of truncation
        (0.005, True),    # budget below the conversion floor: all reject
        (1000.0, True),   # everything admitted in full
    ])
    def test_decisions_identical_to_sequential(self, epsilon, truncation):
        trace = generate_trace(TraceConfig(jobs=150, seed=7))
        arrays = TraceArrays.from_jobs(trace)
        sequential = AdmissionController(TenantBudget(epsilon=epsilon),
                                         allow_truncation=truncation)
        expected = [sequential.admit(job) for job in trace]
        batched = AdmissionController(TenantBudget(epsilon=epsilon),
                                      allow_truncation=truncation)
        result = batched.admit_batch(arrays)
        for i, decision in enumerate(expected):
            assert int(result.status[i]) == \
                _STATUS_CODE[decision.status.value], (i, trace[i])
            assert int(result.granted_steps[i]) == decision.granted_steps
            assert float(result.epsilon_after[i]) == decision.epsilon_after
        assert sequential.seen_tenants() == batched.seen_tenants()
        for tenant in sequential.seen_tenants():
            assert sequential.counts(tenant) == batched.counts(tenant)
            assert sequential.epsilon_spent(tenant) == \
                batched.epsilon_spent(tenant)

    def test_empty_trace(self):
        controller = AdmissionController()
        result = controller.admit_batch(
            generate_trace_arrays(TraceConfig(jobs=0)))
        assert len(result) == 0


class TestStreamingQuantiles:
    def test_exact_below_warmup(self):
        rng = np.random.default_rng(0)
        data = np.concatenate([np.zeros(150), rng.exponential(5.0, 350)])
        rng.shuffle(data)
        stats = StreamingStats()
        for value in data:
            stats.add(float(value))
        for pct in (0.5, 0.95, 0.99):
            assert stats.quantile(pct) == percentile(list(data), pct * 100)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), zero_frac=st.floats(0.0, 0.8))
    def test_p2_within_tolerance_past_warmup(self, seed, zero_frac):
        rng = np.random.default_rng(seed)
        total = 20_000
        zeros = int(total * zero_frac)
        data = np.concatenate([np.zeros(zeros),
                               rng.exponential(10.0, total - zeros)])
        rng.shuffle(data)
        stats = StreamingStats()
        for value in data:
            stats.add(float(value))
        scale = float(np.max(data))
        for pct in (0.5, 0.95, 0.99):
            exact = percentile(list(data), pct * 100)
            estimate = stats.quantile(pct)
            # 5% of the stream's range covers the stationary-stream
            # P² error with a wide margin.
            assert abs(estimate - exact) <= 0.05 * scale + 1e-12

    def test_p2_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)

    def test_mean_and_extremes(self):
        stats = StreamingStats()
        for value in (0.0, 1.0, 3.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.maximum == 3.0
        assert stats.mean == pytest.approx(4.0 / 3.0)


class TestStreamingFleetEquivalence:
    @pytest.mark.parametrize("policy", ("fifo", "sjf", "budget"))
    def test_matches_scalar_simulator(self, policy):
        trace = generate_trace(TraceConfig(jobs=120, seed=7))
        arrays = TraceArrays.from_jobs(trace)
        fleet = FleetConfig(chips=4, chips_per_cluster=2)
        scalar = simulate_fleet(
            trace, fleet, policy=policy,
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        streaming = simulate_fleet_streaming(
            arrays, fleet, policy=policy,
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        a, b = scalar.to_dict(), streaming.to_dict()
        # busy time accumulates in dispatch order instead of record
        # order, so utilization may differ in the last ulp.
        assert b.pop("utilization") == pytest.approx(
            a.pop("utilization"), rel=1e-12)
        assert b.pop("throughput_jobs_per_h") == pytest.approx(
            a.pop("throughput_jobs_per_h"), rel=1e-12)
        assert b.pop("makespan_s") == pytest.approx(
            a.pop("makespan_s"), rel=1e-12)
        assert a == b
        assert streaming.records == ()

    def test_empty_trace(self):
        report = simulate_fleet_streaming(
            generate_trace_arrays(TraceConfig(jobs=0)),
            FleetConfig(chips=2))
        assert report.submitted == 0
        assert report.completed == 0
        assert report.makespan_s == 0.0

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            simulate_fleet_streaming(
                generate_trace_arrays(TraceConfig(jobs=0)),
                policy="priority")

    def test_decisions_reused_across_policies(self):
        arrays = generate_trace_arrays(TraceConfig(jobs=200, seed=9))
        admission = AdmissionController(TenantBudget(epsilon=3.0))
        decisions = admission.admit_batch(arrays)
        reports = [
            simulate_fleet_streaming(arrays, FleetConfig(chips=2),
                                     policy=policy, admission=admission,
                                     decisions=decisions)
            for policy in ("fifo", "sjf", "budget")
        ]
        ledgers = [[t.to_dict() for t in r.tenants] for r in reports]
        assert ledgers[0] == ledgers[1] == ledgers[2]
        assert len({r.completed for r in reports}) == 1

    def test_service_times_match_scalar_prediction(self):
        from repro.serve import predict_step_seconds_batch
        from repro.serve.scheduler import predict_step_seconds

        fleet = FleetConfig(chips=4, chips_per_cluster=2,
                            bucket_bytes=2**20)
        trace = generate_trace(TraceConfig(jobs=25, seed=3))
        batches = [job.batch for job in trace]
        batched = predict_step_seconds_batch(
            fleet, [job.model for job in trace],
            [job.algorithm for job in trace],
            [-(-batch // 2) * 2 for batch in batches])
        for i, job in enumerate(trace):
            assert float(batched[i]) == predict_step_seconds(fleet, job)


@lru_cache(maxsize=1)
def _differential_trace() -> tuple[TraceArrays, tuple]:
    """One shared 10k-job trace; arrays and jobs carry identical floats."""
    arrays = generate_trace_arrays(
        TraceConfig(jobs=10_000, seed=13, mean_interarrival_s=0.5))
    return arrays, arrays.jobs()


class TestAutoscaledDifferential:
    """simulate_fleet vs simulate_fleet_streaming, decision for decision.

    The acceptance contract of the autoscaler: on the same 10k-job
    trace, both simulators admit the same jobs, dispatch them in the
    same order at the same times, emit the same scale events, and
    settle the same per-tenant ledger — for every policy, with and
    without autoscaling.
    """

    POLICY = AutoscalerPolicy(max_clusters=32, provision_delay_s=30.0,
                              cooldown_s=20.0, target_p99_wait_s=60.0)

    @pytest.mark.parametrize("policy", ("fifo", "sjf", "budget"))
    @pytest.mark.parametrize("autoscaled", (False, True),
                             ids=("static", "autoscaled"))
    def test_decision_identical_on_10k_jobs(self, policy, autoscaled):
        arrays, jobs = _differential_trace()
        fleet = FleetConfig(chips=4)
        autoscaler = self.POLICY if autoscaled else None
        scalar_log: list = []
        streaming_log: list = []
        scalar = simulate_fleet(
            jobs, fleet, policy=policy, autoscaler=autoscaler,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            dispatch_log=scalar_log)
        streaming = simulate_fleet_streaming(
            arrays, fleet, policy=policy, autoscaler=autoscaler,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            dispatch_log=streaming_log)
        # Dispatch order and times, job for job.
        assert scalar_log == streaming_log
        a, b = scalar.to_dict(), streaming.to_dict()
        # Aggregates folded in a different order tolerate float drift;
        # everything else (admissions, counts, scale events, ledger,
        # percentiles below the warmup buffer) must match exactly.
        for key in ("utilization", "throughput_jobs_per_h",
                    "makespan_s", "chip_hours", "cost"):
            assert b.pop(key) == pytest.approx(a.pop(key), rel=1e-9)
        assert a == b
        if autoscaled:
            assert scalar.scale_events
            assert scalar.peak_clusters > fleet.n_clusters
        else:
            assert scalar.scale_events == ()
            assert scalar.chip_hours == 0.0

    def test_static_run_identical_to_pre_autoscaler_model(self):
        """autoscaler=None is byte-for-byte the original simulator."""
        arrays, jobs = _differential_trace()
        fleet = FleetConfig(chips=4)
        log: list = []
        default = simulate_fleet(
            jobs, fleet, policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        explicit = simulate_fleet(
            jobs, fleet, policy="fifo", autoscaler=None,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            dispatch_log=log)
        assert default.to_dict() == explicit.to_dict()
        assert len(log) == default.completed


class TestServeExperimentStreaming:
    def test_streaming_run_smoke(self):
        from repro.experiments import serve as serve_experiment

        rows = serve_experiment.run(policies=("fifo",), trace_jobs=300,
                                    chips=2, streaming=True)
        assert len(rows) == 1
        assert rows[0]["submitted"] == 300
        assert rows[0]["completed"] + rows[0]["rejected"] == 300
        text = serve_experiment.render(rows)
        assert "Policy" in text

    def test_auto_threshold_prefers_scalar_for_small_traces(self):
        from repro.experiments import serve as serve_experiment

        scalar_rows = serve_experiment.run(policies=("fifo",),
                                           trace_jobs=20, chips=2)
        explicit = serve_experiment.run(policies=("fifo",),
                                        trace_jobs=20, chips=2,
                                        streaming=False)
        assert scalar_rows == explicit
