"""Tests for the WS/OS systolic cycle models (repro.arch.systolic)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.engine import ArrayConfig
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.workloads.gemms import Gemm

SMALL = ArrayConfig(height=8, width=8, fill_rows_per_cycle=2,
                    drain_rows_per_cycle=2, tile_startup_cycles=0,
                    gemm_startup_cycles=0)


class TestWsTiling:
    def test_single_tile(self):
        engine = WeightStationaryEngine(SMALL)
        tiles = engine.tiles(Gemm(100, 8, 8))
        assert len(tiles) == 1
        assert (tiles[0].m, tiles[0].k, tiles[0].n) == (100, 8, 8)

    def test_k_and_n_tiled(self):
        engine = WeightStationaryEngine(SMALL)
        tiles = engine.tiles(Gemm(10, 20, 17))
        # ceil(20/8)=3 k-chunks x ceil(17/8)=3 n-chunks.
        assert len(tiles) == 9
        assert sum(t.k * t.n for t in tiles) == 20 * 17

    def test_m_never_tiled(self):
        engine = WeightStationaryEngine(SMALL)
        for tile in engine.tiles(Gemm(100_000, 4, 4)):
            assert tile.m == 100_000


class TestWsCycles:
    def test_fill_rate(self):
        engine = WeightStationaryEngine(SMALL)
        fill, _ = engine.tile_cycle_phases(engine.tiles(Gemm(4, 8, 8))[0])
        assert fill == math.ceil(8 / 2)

    def test_stream_formula(self):
        """Figure 3(c): stream = M + K + PE_W - 1."""
        engine = WeightStationaryEngine(SMALL)
        _, stream = engine.tile_cycle_phases(engine.tiles(Gemm(10, 8, 8))[0])
        assert stream == 10 + 8 + 8 - 1

    def test_small_k_hurts_utilization(self):
        """The paper's core observation (Section II-D)."""
        engine = WeightStationaryEngine()
        full = engine.utilization(Gemm(4096, 128, 128))
        skinny = engine.utilization(Gemm(4096, 1, 128))
        assert skinny < full / 50

    def test_utilization_improves_with_m(self):
        engine = WeightStationaryEngine()
        assert (engine.utilization(Gemm(10_000, 64, 128))
                > engine.utilization(Gemm(100, 64, 128)))


class TestOsCycles:
    def test_wavefront_formula(self):
        """Figure 3(b): K + m + n - 1 for one tile."""
        engine = OutputStationaryEngine(SMALL)
        drain, wave = engine.tile_cycle_phases(
            engine.tiles(Gemm(8, 100, 8))[0])
        assert wave == 100 + 8 + 8 - 1
        assert drain == math.ceil(8 / 2)

    def test_m_and_n_tiled(self):
        engine = OutputStationaryEngine(SMALL)
        tiles = engine.tiles(Gemm(20, 5, 17))
        assert len(tiles) == 3 * 3
        assert all(t.k == 5 for t in tiles)

    def test_small_k_hurts_os_too(self):
        """Section IV-B: OS alone does not fix the small-K problem."""
        engine = OutputStationaryEngine()
        assert engine.utilization(Gemm(4096, 1, 128)) < 0.01


class TestWsVsOs:
    @given(m=st.integers(1, 2000), k=st.integers(1, 128),
           n=st.integers(1, 300))
    def test_identical_output_traffic_when_k_fits(self, m, k, n):
        """With K <= PE_H both dataflows write each output once."""
        ws = WeightStationaryEngine()
        os_ = OutputStationaryEngine()
        g = Gemm(m, k, n)
        ws_stats = ws.gemm_stats(g)
        os_stats = os_.gemm_stats(g)
        assert ws_stats.sram_write_bytes == os_stats.sram_write_bytes

    def test_ws_writes_partial_sums_when_k_tiled(self):
        """With K > PE_H the WS array emits one partial-sum set per
        K-chunk; the OS array accumulates over time and writes once."""
        ws = WeightStationaryEngine()
        os_ = OutputStationaryEngine()
        g = Gemm(64, 300, 64)  # ceil(300/128) = 3 K-chunks
        assert (ws.gemm_stats(g).sram_write_bytes
                == 3 * os_.gemm_stats(g).sram_write_bytes)

    def test_ws_beats_os_on_large_m_small_k(self):
        """WS amortizes small K over long streams; OS pays the wavefront
        per output tile."""
        ws = WeightStationaryEngine()
        os_ = OutputStationaryEngine()
        g = Gemm(32768, 27, 64)
        assert ws.utilization(g) > os_.utilization(g)


class TestDoubleBufferToggle:
    def test_no_overlap_is_slower(self):
        base = ArrayConfig()
        no_db = ArrayConfig(weight_double_buffer=False)
        g = Gemm(64, 1024, 1024)
        fast = WeightStationaryEngine(base).gemm_stats(g).compute_cycles
        slow = WeightStationaryEngine(no_db).gemm_stats(g).compute_cycles
        assert slow > fast
