"""Tests for the extended dpml layers: LSTM, Embedding, LayerNorm, MaxPool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpml import (
    LSTM,
    Dense,
    DpSgdOptimizer,
    Embedding,
    GradMode,
    LayerNorm,
    MaxPool2D,
    MeanOverTime,
    PrivacyParams,
    Sequential,
    softmax_cross_entropy,
)

RNG = np.random.default_rng(0)


def numeric_weight_grad(layer, x, grad_out, name, eps=1e-6):
    param = layer.params[name]
    numeric = np.zeros_like(param)
    flat, num = param.reshape(-1), numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float((layer.forward(x, train=False) * grad_out).sum())
        flat[i] = orig - eps
        down = float((layer.forward(x, train=False) * grad_out).sum())
        flat[i] = orig
        num[i] = (up - down) / (2 * eps)
    return numeric


class TestLstmForward:
    def test_output_shape(self):
        lstm = LSTM(6, 8, rng=RNG)
        y = lstm.forward(RNG.normal(size=(3, 5, 6)))
        assert y.shape == (3, 5, 8)

    def test_input_validation(self):
        lstm = LSTM(6, 8, rng=RNG)
        with pytest.raises(ValueError):
            lstm.forward(RNG.normal(size=(3, 6)))

    def test_hidden_bounded_by_tanh(self):
        lstm = LSTM(4, 4, rng=RNG)
        y = lstm.forward(RNG.normal(size=(2, 10, 4)) * 10)
        assert np.all(np.abs(y) <= 1.0)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            LSTM(2, 2).backward(np.zeros((1, 1, 2)))


class TestLstmGradients:
    def _setup(self, seed=1, batch=3, seq=4, inp=3, hid=5):
        rng = np.random.default_rng(seed)
        lstm = LSTM(inp, hid, rng=rng)
        x = rng.normal(size=(batch, seq, inp))
        g = rng.normal(size=(batch, seq, hid))
        return lstm, x, g

    @pytest.mark.parametrize("name", ["weight_ih", "weight_hh", "bias"])
    def test_weight_grads_match_finite_diff(self, name):
        lstm, x, g = self._setup()
        lstm.forward(x)
        lstm.backward(g, mode=GradMode.BATCH)
        numeric = numeric_weight_grad(lstm, x, g, name)
        np.testing.assert_allclose(lstm.grads[name], numeric, atol=1e-5)

    def test_input_grad_matches_finite_diff(self):
        lstm, x, g = self._setup(batch=2, seq=3)
        lstm.forward(x)
        dx = lstm.backward(g)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(*x.shape):
            xp = x.copy()
            xp[idx] += eps
            up = float((lstm.forward(xp, train=False) * g).sum())
            xp[idx] -= 2 * eps
            down = float((lstm.forward(xp, train=False) * g).sum())
            numeric[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(dx, numeric, atol=1e-5)

    def test_per_example_grads_sum_to_batch(self):
        lstm, x, g = self._setup()
        lstm.forward(x)
        lstm.backward(g, mode=GradMode.PER_EXAMPLE)
        for name in ("weight_ih", "weight_hh", "bias"):
            np.testing.assert_allclose(
                lstm.per_example_grads[name].sum(axis=0),
                lstm.grads[name], atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_ghost_norm_equals_direct(self, seed):
        lstm, x, g = self._setup(seed=seed)
        lstm.forward(x)
        lstm.backward(g, mode=GradMode.PER_EXAMPLE)
        direct = lstm.sq_norms.copy()
        lstm.forward(x)
        lstm.backward(g, mode=GradMode.GHOST_NORM)
        np.testing.assert_allclose(lstm.sq_norms, direct, rtol=1e-8)

    def test_ghost_mode_materializes_nothing(self):
        lstm, x, g = self._setup()
        lstm.forward(x)
        lstm.backward(g, mode=GradMode.GHOST_NORM)
        assert lstm.per_example_grads == {}


class TestLstmDpTraining:
    def test_dpsgd_equals_reweighted_on_char_lstm(self):
        """The Opacus char-LSTM scenario, end to end."""
        rng = np.random.default_rng(4)
        vocab, seq, hid, classes, batch = 20, 6, 8, 3, 5
        tokens = rng.integers(0, vocab, size=(batch, seq))
        labels = rng.integers(0, classes, size=batch)

        def build():
            r = np.random.default_rng(7)
            return Sequential([
                Embedding(vocab, 6, rng=r),
                LSTM(6, hid, rng=r),
                MeanOverTime(),
                Dense(hid, classes, rng=r),
            ])

        nets = [build(), build()]
        opts = [DpSgdOptimizer(n, privacy=PrivacyParams(1.0, 1.0),
                               rng=np.random.default_rng(11)) for n in nets]
        opts[0].step_dpsgd(tokens, labels)
        opts[1].step_reweighted(tokens, labels)
        for la, lb in zip(nets[0].weight_layers, nets[1].weight_layers):
            for name in la.params:
                np.testing.assert_allclose(la.params[name], lb.params[name],
                                           atol=1e-9)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=RNG)
        tokens = np.array([[1, 2], [3, 1]])
        out = emb.forward(tokens)
        np.testing.assert_allclose(out[0, 0], emb.params["weight"][1])

    def test_out_of_range(self):
        emb = Embedding(10, 4, rng=RNG)
        with pytest.raises(ValueError):
            emb.forward(np.array([[11]]))

    def test_batch_grad_scatter(self):
        emb = Embedding(5, 3, rng=RNG)
        tokens = np.array([[0, 0], [2, 4]])
        emb.forward(tokens)
        g = np.ones((2, 2, 3))
        emb.backward(g, mode=GradMode.BATCH)
        np.testing.assert_allclose(emb.grads["weight"][0], [2, 2, 2])
        np.testing.assert_allclose(emb.grads["weight"][1], 0)

    def test_per_example_norms(self):
        emb = Embedding(5, 3, rng=RNG)
        tokens = np.array([[0, 1], [2, 2]])
        emb.forward(tokens)
        g = RNG.normal(size=(2, 2, 3))
        emb.backward(g, mode=GradMode.PER_EXAMPLE)
        # Example 1 scatters both timesteps onto row 2 -> they add up.
        expected = float(((g[1, 0] + g[1, 1]) ** 2).sum())
        assert emb.sq_norms[1] == pytest.approx(expected)

    def test_ghost_equals_direct(self):
        emb = Embedding(6, 4, rng=RNG)
        tokens = np.array([[0, 1, 0], [2, 3, 3]])
        emb.forward(tokens)
        g = RNG.normal(size=(2, 3, 4))
        emb.backward(g, mode=GradMode.PER_EXAMPLE)
        direct = emb.sq_norms.copy()
        emb.forward(tokens)
        emb.backward(g, mode=GradMode.GHOST_NORM)
        np.testing.assert_allclose(emb.sq_norms, direct)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        y = ln.forward(RNG.normal(size=(4, 8)) * 5 + 3)
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-10)
        np.testing.assert_allclose(y.std(axis=-1), 1, atol=1e-3)

    def test_affine_grads_match_finite_diff(self):
        ln = LayerNorm(5)
        ln.params["gamma"] = RNG.normal(size=5)
        ln.params["beta"] = RNG.normal(size=5)
        x = RNG.normal(size=(3, 5))
        g = RNG.normal(size=(3, 5))
        ln.forward(x)
        ln.backward(g, mode=GradMode.BATCH)
        for name in ("gamma", "beta"):
            numeric = numeric_weight_grad(ln, x, g, name)
            np.testing.assert_allclose(ln.grads[name], numeric, atol=1e-5)

    def test_input_grad_matches_finite_diff(self):
        ln = LayerNorm(4)
        x = RNG.normal(size=(2, 4))
        g = RNG.normal(size=(2, 4))
        ln.forward(x)
        dx = ln.backward(g)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(*x.shape):
            xp = x.copy()
            xp[idx] += eps
            up = float((ln.forward(xp, train=False) * g).sum())
            xp[idx] -= 2 * eps
            down = float((ln.forward(xp, train=False) * g).sum())
            numeric[idx] = (up - down) / (2 * eps)
        np.testing.assert_allclose(dx, numeric, atol=1e-5)

    def test_sequence_input_per_example_norms(self):
        ln = LayerNorm(4)
        x = RNG.normal(size=(2, 3, 4))
        ln.forward(x)
        ln.backward(RNG.normal(size=(2, 3, 4)), mode=GradMode.GHOST_NORM)
        assert ln.sq_norms.shape == (2,)
        assert np.all(ln.sq_norms >= 0)


class TestMaxPool2D:
    def test_forward_max(self):
        pool = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y = pool.forward(x)
        np.testing.assert_allclose(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool.forward(x)
        dx = pool.backward(np.ones((1, 1, 2, 2)))
        assert dx[0, 0, 1, 1] == 1.0  # position of 5
        assert dx[0, 0, 0, 0] == 0.0
        assert dx.sum() == 4.0

    def test_gradient_conserved(self):
        pool = MaxPool2D(2)
        x = RNG.normal(size=(2, 3, 6, 6))
        pool.forward(x)
        g = RNG.normal(size=(2, 3, 3, 3))
        assert pool.backward(g).sum() == pytest.approx(g.sum())


class TestMomentum:
    def test_invalid_momentum(self):
        net = Sequential([Dense(2, 2, rng=RNG)])
        with pytest.raises(ValueError):
            DpSgdOptimizer(net, momentum=1.0)

    def test_momentum_accumulates(self):
        """Two identical steps: with momentum, the 2nd moves further."""
        from repro.dpml import synthetic_classification

        data = synthetic_classification(16, 4, 2, seed=0)
        x, y = data.x[:8], data.y[:8]

        def run(momentum):
            rng = np.random.default_rng(1)
            net = Sequential([Dense(4, 2, rng=rng)])
            w0 = net.weight_layers[0].params["weight"].copy()
            opt = DpSgdOptimizer(net, lr=0.1, momentum=momentum,
                                 privacy=PrivacyParams(1.0, 0.0),
                                 rng=np.random.default_rng(0))
            first = None
            for _ in range(2):
                before = net.weight_layers[0].params["weight"].copy()
                opt.step_dpsgd(x, y)
                moved = np.abs(net.weight_layers[0].params["weight"]
                               - before).sum()
                if first is None:
                    first = moved
            return first, moved

        _, plain_second = run(0.0)
        _, momentum_second = run(0.9)
        assert momentum_second > plain_second
