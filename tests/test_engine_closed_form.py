"""Closed-form GEMM cycle engine vs the per-tile reference oracle.

The closed-form path (:meth:`GemmEngine.gemm_stats`) derives phase
counts analytically from the chunk decomposition; these tests pin it to
the per-tile reference (:meth:`GemmEngine.gemm_stats_reference`) across
all three dataflows, remainder tile shapes, batched GEMMs and packing
factors — plus hand-computed pipelines that lock in the corrected
overlapped-regime formula (each tile's fill/drain phase pairs with the
*neighbouring* tile's main phase, one boundary instance exposed).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.engine import (
    ArrayConfig,
    GEMM_STATS_CACHE_MAXSIZE,
    chunk_spec,
    clear_gemm_stats_cache,
    gemm_stats_cache_len,
)
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.core.outer_product import OuterProductEngine
from repro.core.packing import PackedOuterProductEngine
from repro.workloads.gemms import Gemm, GemmKind

ENGINES = (
    WeightStationaryEngine,
    OutputStationaryEngine,
    OuterProductEngine,
    PackedOuterProductEngine,
)

#: Exact-multiple, single-remainder and double-remainder shapes.
SHAPES = (
    (1, 1, 1),
    (128, 128, 128),
    (256, 384, 512),
    (300, 77, 128),      # m and k remainders
    (128, 300, 500),     # k and n remainders
    (5, 1000, 3),        # sub-array tiles
    (257, 129, 131),     # remainder in every dimension
    (64, 16, 512),       # the per-example wgrad regime
    (2048, 4, 300),      # tiny K, many M tiles (drain-dominated)
)

CONFIGS = (
    ArrayConfig(),
    ArrayConfig(weight_double_buffer=False, accum_double_buffer=False),
    ArrayConfig(height=32, width=64, fill_rows_per_cycle=1,
                drain_rows_per_cycle=1),
    ArrayConfig(tile_startup_cycles=0, gemm_startup_cycles=0),
)


def assert_stats_equal(fast, oracle):
    assert fast.compute_cycles == oracle.compute_cycles
    assert fast.tiles == oracle.tiles
    assert fast.sram_read_bytes == oracle.sram_read_bytes
    assert fast.sram_write_bytes == oracle.sram_write_bytes
    assert fast.macs == oracle.macs
    assert fast.engine == oracle.engine


class TestChunkSpec:
    def test_exact_division(self):
        spec = chunk_spec(256, 128)
        assert (spec.full_size, spec.full_count, spec.remainder) == (128, 2, 0)
        assert spec.count == 2 and spec.total == 256

    def test_remainder(self):
        spec = chunk_spec(300, 128)
        assert spec.entries() == [(128, 2), (44, 1)]
        assert spec.count == 3 and spec.total == 300

    def test_smaller_than_chunk(self):
        spec = chunk_spec(5, 128)
        assert spec.entries() == [(5, 1)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_spec(0, 128)


class TestEquivalenceSweep:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("count", (1, 3, 32))
    def test_matches_reference(self, engine_cls, config, count):
        engine = engine_cls(config)
        for m, k, n in SHAPES:
            gemm = Gemm(m, k, n, count=count)
            assert_stats_equal(engine.gemm_stats(gemm),
                               engine.gemm_stats_reference(gemm))

    @pytest.mark.parametrize("bus_segments", (1, 2, 4, 16))
    def test_packed_factors_match_reference(self, bus_segments):
        engine = PackedOuterProductEngine(bus_segments=bus_segments)
        for gemm in (Gemm(64, 16, 512, count=32),   # packs (fits 2x along M)
                     Gemm(16, 8, 16, count=64),     # packs heavily
                     Gemm(300, 20, 300, count=8)):  # too big to pack
            assert_stats_equal(engine.gemm_stats(gemm),
                               engine.gemm_stats_reference(gemm))

    @settings(max_examples=60, deadline=None)
    @given(m=st.integers(1, 700), k=st.integers(1, 700),
           n=st.integers(1, 700), count=st.integers(1, 4))
    def test_property_equivalence(self, m, k, n, count):
        gemm = Gemm(m, k, n, count=count)
        for engine_cls in ENGINES:
            engine = engine_cls()
            assert_stats_equal(engine.gemm_stats(gemm),
                               engine.gemm_stats_reference(gemm))

    def test_single_gemm_cycles_paths_agree(self):
        for engine_cls in ENGINES:
            engine = engine_cls()
            for m, k, n in SHAPES:
                gemm = Gemm(m, k, n)
                assert (engine.single_gemm_cycles(gemm)
                        == engine.single_gemm_cycles_reference(gemm))


class TestOverlapFormulaHandComputed:
    """Satellite bugfix: the boundary phase was counted twice."""

    def test_two_uniform_diva_tiles(self):
        """DiVa, drain (16) > main (K=4): the old formula added the
        exposed drain *and* max(drain, main) per tile."""
        engine = OuterProductEngine()          # 128x128, drain 8 rows/clk
        gemm = Gemm(256, 4, 64)                # two (128, 4, 64) M-tiles
        # Phases per tile: drain = ceil(128/8) = 16, main = K = 4.
        # Pipeline: main0 | max(drain0, main1) | drain1 exposed
        #         = 4 + max(16, 4) + 16 = 36
        # Fixed: gemm startup 16 + 2 tiles * 2 = 20.  Total 56.
        assert engine.single_gemm_cycles(gemm) == (56, 2)
        assert engine.single_gemm_cycles_reference(gemm) == (56, 2)
        # The pre-fix formula charged 16 + 16 + 2*(max(16,4)+2) = 68.

    def test_two_heterogeneous_diva_tiles(self):
        engine = OuterProductEngine()
        gemm = Gemm(200, 4, 64)                # M-tiles of 128 and 72
        # Tile 0: drain ceil(128/8)=16, main 4; tile 1: drain 9, main 4.
        # 4 + max(16, 4) + 9 = 29, plus 16 startup + 2*2 = 49.
        assert engine.single_gemm_cycles(gemm) == (49, 2)
        assert engine.single_gemm_cycles_reference(gemm) == (49, 2)

    def test_two_ws_tiles(self):
        """WS, remainder K chunk: fill0 exposed, fill1 hides in stream0."""
        engine = WeightStationaryEngine(ArrayConfig(width=4))
        gemm = Gemm(10, 192, 4)                # K-tiles of 128 and 64
        # Tile 0: fill ceil(128/8)=16, stream 10+128+3=141;
        # tile 1: fill 8, stream 10+64+3=77.
        # 16 + max(141, 8) + 77 = 234, plus 16 startup + 2*2 = 254.
        assert engine.single_gemm_cycles(gemm) == (254, 2)
        assert engine.single_gemm_cycles_reference(gemm) == (254, 2)

    def test_single_tile_has_no_overlap_benefit(self):
        """With one tile both phases are exposed, double-buffer or not."""
        overlapped = OuterProductEngine()
        serial = OuterProductEngine(ArrayConfig(accum_double_buffer=False))
        gemm = Gemm(64, 32, 64)
        assert (overlapped.single_gemm_cycles(gemm)
                == serial.single_gemm_cycles(gemm))


class TestStatsCache:
    def setup_method(self):
        clear_gemm_stats_cache()

    def test_cache_hits_are_equal(self):
        engine = OuterProductEngine()
        gemm = Gemm(300, 77, 128, count=3)
        first = engine.gemm_stats(gemm)
        assert engine.gemm_stats(gemm) == first

    def test_shared_across_instances(self):
        a = OuterProductEngine()
        b = OuterProductEngine()
        a.gemm_stats(Gemm(128, 128, 128))
        before = gemm_stats_cache_len()
        b.gemm_stats(Gemm(128, 128, 128))
        assert gemm_stats_cache_len() == before

    def test_hit_retags_kind_and_layer(self):
        engine = OuterProductEngine()
        plain = engine.gemm_stats(Gemm(64, 16, 512))
        tagged = engine.gemm_stats(
            Gemm(64, 16, 512, kind=GemmKind.WGRAD_EXAMPLE, layer="conv3"))
        assert tagged.gemm.layer == "conv3"
        assert tagged.compute_cycles == plain.compute_cycles

    def test_distinct_configs_do_not_collide(self):
        small = OuterProductEngine(ArrayConfig(height=32, width=32))
        large = OuterProductEngine()
        gemm = Gemm(128, 128, 128)
        assert (small.gemm_stats(gemm).compute_cycles
                != large.gemm_stats(gemm).compute_cycles)

    def test_packed_segments_do_not_collide(self):
        wide = PackedOuterProductEngine(bus_segments=8)
        narrow = PackedOuterProductEngine(bus_segments=1)
        gemm = Gemm(16, 8, 16, count=64)
        assert (wide.gemm_stats(gemm).compute_cycles
                != narrow.gemm_stats(gemm).compute_cycles)

    def test_bounded(self):
        engine = OuterProductEngine()
        for m in range(1, GEMM_STATS_CACHE_MAXSIZE + 50):
            engine.gemm_stats(Gemm(m, 1, 1))
        assert gemm_stats_cache_len() <= GEMM_STATS_CACHE_MAXSIZE
