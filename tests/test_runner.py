"""Tests for the parallel experiment runner (repro.experiments.runner)."""

import json

import pytest

from repro.experiments import runner
from repro.experiments.design_space import evaluate_point


def square(x):
    return x * x


def add(a, b):
    return a + b


class TestSweep:
    def test_serial_preserves_order(self):
        assert runner.sweep(square, [3, 1, 2], parallel=False) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert runner.sweep(square, items, jobs=4, parallel=True) \
            == [x * x for x in items]

    def test_star_unpacks_tuples(self):
        assert runner.sweep(add, [(1, 2), (3, 4)], star=True,
                            parallel=False) == [3, 7]

    def test_star_parallel(self):
        assert runner.sweep(add, [(1, 2), (3, 4)], star=True, jobs=2,
                            parallel=True) == [3, 7]

    def test_empty(self):
        assert runner.sweep(square, [], parallel=True) == []

    def test_env_disables_parallelism(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert not runner.parallel_enabled()
        assert runner.sweep(square, [1, 2]) == [1, 4]

    def test_env_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.default_jobs() == 3

    def test_env_jobs_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4x")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            runner.default_jobs()


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert (runner.config_hash({"a": 1, "b": (2, 3)})
                == runner.config_hash({"b": (2, 3), "a": 1}))

    def test_distinguishes_values(self):
        assert (runner.config_hash({"a": 1})
                != runner.config_hash({"a": 2}))

    def test_handles_dataclasses_and_enums(self):
        from repro.arch.engine import ArrayConfig
        from repro.training import Algorithm

        first = runner.config_hash(
            {"array": ArrayConfig(), "algo": Algorithm.DP_SGD_R})
        second = runner.config_hash(
            {"array": ArrayConfig(), "algo": Algorithm.DP_SGD_R})
        other = runner.config_hash(
            {"array": ArrayConfig(height=64), "algo": Algorithm.DP_SGD_R})
        assert first == second != other


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        cache.put("abc123", {"k": 1}, [{"speedup": 2.5}])
        assert cache.get("abc123") == [{"speedup": 2.5}]

    def test_missing_returns_none(self, tmp_path):
        assert runner.ResultCache(tmp_path).get("nope") is None

    def test_corrupt_returns_none(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        cache.root.mkdir(exist_ok=True)
        cache.path("bad").write_text("{not json")
        assert cache.get("bad") is None

    def test_entry_keeps_key_for_debugging(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        cache.put("abc", {"model": "VGG-16"}, 42)
        payload = json.loads(cache.path("abc").read_text())
        assert payload["key"] == {"model": "VGG-16"}

    def test_run_cached_computes_once(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        calls = []

        def producer():
            calls.append(1)
            return {"x": 7}

        key = {"sweep": [1, 2, 3]}
        assert runner.run_cached(key, producer, cache=cache) == {"x": 7}
        assert runner.run_cached(key, producer, cache=cache) == {"x": 7}
        assert len(calls) == 1

    def test_run_cached_without_cache_recomputes(self):
        calls = []

        def producer():
            calls.append(1)
            return 1

        runner.run_cached({"k": 1}, producer, cache=None)
        runner.run_cached({"k": 1}, producer, cache=None)
        assert len(calls) == 2

    def test_cached_sweep_per_item_entries(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        calls = []

        def record(x):
            calls.append(x)
            return x * 10

        key_fn = lambda x: {"item": x}  # noqa: E731
        first = runner.cached_sweep(record, [1, 2], key_fn=key_fn,
                                    cache=cache, parallel=False)
        assert first == [10, 20]
        # Growing the sweep only computes the new point.
        second = runner.cached_sweep(record, [1, 2, 3], key_fn=key_fn,
                                     cache=cache, parallel=False)
        assert second == [10, 20, 30]
        assert calls == [1, 2, 3]
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_cached_sweep_without_cache_is_plain_sweep(self):
        assert runner.cached_sweep(square, [2, 3],
                                   key_fn=lambda x: x,
                                   cache=None, parallel=False) == [4, 9]

    def test_put_many_roundtrip_and_single_batch(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        entries = [(f"h{i}", {"k": i}, i * 10) for i in range(5)]
        cache.put_many(entries)
        assert cache.get_many([h for h, _, _ in entries]) == \
            [0, 10, 20, 30, 40]
        # Entries stay debuggable (key persisted alongside the value).
        payload = json.loads(cache.path("h3").read_text())
        assert payload["key"] == {"k": 3}
        assert not list(tmp_path.glob("*.tmp"))

    def test_put_many_empty_is_noop(self, tmp_path):
        cache = runner.ResultCache(tmp_path / "never-created")
        cache.put_many([])
        assert not (tmp_path / "never-created").exists()

    def test_put_many_failure_leaves_no_temp_files(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        with pytest.raises(TypeError):
            cache.put_many([("ok", {"k": 1}, 1),
                            ("bad", {"k": 2}, object())])
        assert not list(tmp_path.glob("*.tmp"))

    def test_cached_batch_computes_only_misses(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        calls = []

        def batch_fn(items):
            calls.append(list(items))
            return [x * 10 for x in items]

        key_fn = lambda x: {"item": x}  # noqa: E731
        first = runner.cached_batch(batch_fn, [1, 2], key_fn=key_fn,
                                    cache=cache)
        assert first == [10, 20]
        second = runner.cached_batch(batch_fn, [1, 2, 3], key_fn=key_fn,
                                     cache=cache)
        assert second == [10, 20, 30]
        # One batched call per grid, covering only the misses.
        assert calls == [[1, 2], [3]]
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_cached_batch_without_cache_calls_through(self):
        assert runner.cached_batch(
            lambda items: [x + 1 for x in items], [1, 2],
            key_fn=lambda x: x, cache=None) == [2, 3]

    def test_cached_batch_rejects_wrong_length(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        with pytest.raises(ValueError, match="batch_fn returned"):
            runner.cached_batch(lambda items: [], [1],
                                key_fn=lambda x: x, cache=cache)

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Hammer one entry from many threads while reading it back:
        every read must observe a complete payload (old or new), never
        torn JSON, and no temp files may leak."""
        import threading

        cache = runner.ResultCache(tmp_path)
        payloads = [[{"writer": w, "blob": "x" * 4096}] * 8
                    for w in range(4)]
        errors = []

        def writer(payload):
            for _ in range(25):
                cache.put("contended", {"k": 1}, payload)

        def reader():
            # Parse the raw file directly: going through get() would
            # mask a torn write as None and hide the very bug this
            # test exists to catch.
            path = cache.path("contended")
            for _ in range(200):
                try:
                    payload = json.loads(path.read_text())
                except FileNotFoundError:
                    continue  # no write published yet
                except json.JSONDecodeError as err:
                    errors.append(f"torn JSON: {err}")
                    continue
                if payload["value"] not in payloads:
                    errors.append(payload["value"])

        threads = [threading.Thread(target=writer, args=(p,))
                   for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.get("contended") in payloads
        assert not list(tmp_path.glob("*.tmp"))

    def test_put_failure_leaves_no_temp_files(self, tmp_path):
        cache = runner.ResultCache(tmp_path)
        with pytest.raises(TypeError):
            cache.put("bad", {"k": 1}, object())  # not JSON-serializable
        assert not list(tmp_path.glob("*.tmp"))
        assert cache.get("bad") is None

    def test_default_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = runner.default_cache()
        assert cache is not None and cache.root == tmp_path
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert runner.default_cache() is None


class TestDesignSpace:
    def test_evaluate_point_is_json_serializable(self):
        row = evaluate_point("SqueezeNet", 128, 128)
        json.dumps(row)
        assert row["speedup"] > 1.0
        assert row["ws_ms"] > row["diva_ms"]

    def test_run_uses_cache(self, tmp_path):
        from repro.experiments import design_space

        cache = runner.ResultCache(tmp_path)
        rows = design_space.run(models=("SqueezeNet",), heights=(128,),
                                cache=cache, jobs=1)
        again = design_space.run(models=("SqueezeNet",), heights=(128,),
                                 cache=cache, jobs=1)
        assert rows == again
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_render_includes_rows(self):
        from repro.experiments import design_space

        rows = [{"model": "SqueezeNet", "height": 128, "width": 128,
                 "batch": 4096, "ws_ms": 2.0, "diva_ms": 1.0,
                 "speedup": 2.0}]
        text = design_space.render(rows)
        assert "SqueezeNet" in text and "128x128" in text
