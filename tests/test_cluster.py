"""Tests for the multi-chip cluster model: interconnect cost formulas,
the data-parallel sharded training step, and the scaling experiment."""

import math

import pytest

from repro.arch import Cluster, Interconnect, InterconnectConfig, OpRun
from repro.arch.engine import ArrayConfig
from repro.core import build_accelerator, build_cluster
from repro.core.config import DivaConfig
from repro.experiments import scaling
from repro.training import (
    Algorithm,
    Phase,
    allreduce_payload_bytes,
    simulate_sharded_training_step,
    simulate_training_step,
)
from repro.training.simulate import GRAD_BYTES
from repro.workloads import build_model


class TestInterconnect:
    def test_ring_allreduce_seconds_closed_form(self):
        cfg = InterconnectConfig(topology="ring",
                                 link_bandwidth_bytes_per_s=100e9,
                                 link_latency_s=1e-6)
        payload, n = 10**8, 4
        expected = 2 * (n - 1) * (payload / (n * 100e9) + 1e-6)
        assert Interconnect(cfg).allreduce_seconds(payload, n) \
            == pytest.approx(expected)

    def test_all_to_all_allreduce_seconds_closed_form(self):
        cfg = InterconnectConfig(topology="all_to_all",
                                 link_bandwidth_bytes_per_s=100e9,
                                 link_latency_s=1e-6)
        payload, n = 10**8, 4
        expected = 2 * (payload / (n * 100e9) + 1e-6)
        assert Interconnect(cfg).allreduce_seconds(payload, n) \
            == pytest.approx(expected)

    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16])
    def test_allreduce_bytes_round_shard_first(self, n):
        # The schedule moves 2*(N-1) transfers of a ceil(payload/N)-byte
        # shard; rounding the product instead could undercount them.
        payload = 4 * 10**6
        assert Interconnect.allreduce_bytes_per_chip(payload, n) \
            == 2 * (n - 1) * math.ceil(payload / n)
        assert Interconnect.allreduce_bytes_per_chip(payload, n) \
            >= math.ceil(2 * (n - 1) * payload / n)

    def test_single_chip_collectives_are_free(self):
        fabric = Interconnect()
        assert fabric.allreduce_seconds(10**9, 1) == 0.0
        assert Interconnect.allreduce_bytes_per_chip(10**9, 1) == 0

    def test_all_to_all_beats_ring_on_latency(self):
        # Same wire bytes, fewer latency hops: a latency-bound payload
        # finishes faster on the fully connected fabric.
        ring = Interconnect(InterconnectConfig(topology="ring"))
        a2a = Interconnect(InterconnectConfig(topology="all_to_all"))
        assert a2a.allreduce_seconds(4096, 8) < ring.allreduce_seconds(4096, 8)

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="topology"):
            InterconnectConfig(topology="torus")


class TestCluster:
    def test_needs_at_least_one_chip(self):
        with pytest.raises(ValueError, match="at least one chip"):
            Cluster([])

    def test_rejects_mixed_frequencies(self):
        fast = build_accelerator(
            "diva", config=DivaConfig(array=ArrayConfig(frequency_hz=1e9)))
        slow = build_accelerator(
            "diva", config=DivaConfig(array=ArrayConfig(frequency_hz=5e8)))
        with pytest.raises(ValueError, match="frequency"):
            Cluster([fast, slow])

    def test_allreduce_oprun_records_link_bytes(self):
        cluster = build_cluster("diva", n_chips=4)
        payload = 10**7
        run = cluster.allreduce(payload)
        assert run.link_bytes \
            == Interconnect.allreduce_bytes_per_chip(payload, 4)
        assert run.cycles == math.ceil(
            cluster.interconnect.allreduce_seconds(payload, 4)
            * cluster.frequency_hz)
        assert run.dram_bytes == 0

    def test_factory_validates_chip_count(self):
        with pytest.raises(ValueError, match="n_chips"):
            build_cluster("diva", n_chips=0)


class TestShardedStep:
    @pytest.mark.parametrize("algorithm", list(Algorithm))
    def test_single_chip_cluster_matches_bare_accelerator(self, algorithm):
        network = build_model("SqueezeNet")
        bare = simulate_training_step(
            network, algorithm, build_accelerator("diva"), 32)
        clustered = simulate_sharded_training_step(
            network, algorithm, build_cluster("diva", n_chips=1), 32)
        assert clustered.comm == OpRun.zero()
        assert clustered.shard.phases == bare.phases
        assert clustered.total_cycles == bare.total_cycles
        assert clustered.total_seconds == bare.total_seconds

    def test_simulate_training_step_dispatches_on_cluster(self):
        network = build_model("SqueezeNet")
        cluster = build_cluster("diva", n_chips=4)
        via_dispatch = simulate_training_step(
            network, Algorithm.DP_SGD, cluster, 64)
        direct = simulate_sharded_training_step(
            network, Algorithm.DP_SGD, cluster, 64)
        assert via_dispatch.phases == direct.phases
        assert via_dispatch.n_chips == 4
        assert via_dispatch.local_batch == 16

    def test_rejects_indivisible_global_batch(self):
        network = build_model("SqueezeNet")
        cluster = build_cluster("diva", n_chips=3)
        with pytest.raises(ValueError, match="divide"):
            simulate_sharded_training_step(
                network, Algorithm.DP_SGD, cluster, 32)
        with pytest.raises(ValueError, match="positive"):
            simulate_sharded_training_step(
                network, Algorithm.DP_SGD, cluster, 0)

    def test_allreduce_payloads(self):
        network = build_model("SqueezeNet")
        grad = network.params * GRAD_BYTES
        assert allreduce_payload_bytes(network, Algorithm.SGD, 64) == [grad]
        assert allreduce_payload_bytes(network, Algorithm.DP_SGD, 64) \
            == [grad, 64 * GRAD_BYTES]
        assert allreduce_payload_bytes(network, Algorithm.DP_SGD_R, 64) \
            == [grad, 64 * GRAD_BYTES]

    def test_comm_phase_only_on_multi_chip(self):
        network = build_model("SqueezeNet")
        r1 = simulate_sharded_training_step(
            network, Algorithm.DP_SGD, build_cluster("diva", 1), 64)
        r4 = simulate_sharded_training_step(
            network, Algorithm.DP_SGD, build_cluster("diva", 4), 64)
        assert r1.phase_cycles(Phase.COMM) == 0
        assert r4.phase_cycles(Phase.COMM) > 0
        assert r4.comm_fraction > 0
        assert str(Phase.COMM) in r4.breakdown()

    def test_cluster_wide_traffic_aggregates(self):
        network = build_model("SqueezeNet")
        report = simulate_sharded_training_step(
            network, Algorithm.DP_SGD, build_cluster("diva", 4), 64)
        assert report.cluster_dram_bytes \
            == report.shard.total.dram_bytes * 4
        assert report.cluster_link_bytes == report.comm.link_bytes * 4

    @pytest.mark.parametrize("algorithm",
                             [Algorithm.DP_SGD, Algorithm.DP_SGD_R])
    def test_strong_scaling_efficiency_monotonically_non_increasing(
            self, algorithm):
        network = build_model("SqueezeNet")
        batch = 64
        base = simulate_sharded_training_step(
            network, algorithm, build_cluster("diva", 1), batch)
        efficiencies = []
        for n in (1, 2, 4, 8):
            report = simulate_sharded_training_step(
                network, algorithm, build_cluster("diva", n), batch)
            efficiencies.append(
                base.total_seconds / (n * report.total_seconds))
        for previous, current in zip(efficiencies, efficiencies[1:]):
            assert current <= previous + 1e-9


class TestScalingExperiment:
    def test_run_annotate_and_render(self):
        rows = scaling.run(models=("SqueezeNet",), chips=(1, 2),
                           algorithms=("DP-SGD",), jobs=1)
        assert len(rows) == 2
        annotated = scaling.annotate(rows)
        baseline = next(r for r in annotated if r["chips"] == 1)
        assert baseline["speedup"] == pytest.approx(1.0)
        assert baseline["efficiency"] == pytest.approx(1.0)
        scaled = next(r for r in annotated if r["chips"] == 2)
        assert 1.0 < scaled["speedup"] <= 2.0
        text = scaling.render(rows)
        assert "Speedup" in text and "Comm" in text

    def test_weak_scaling_grows_global_batch(self):
        rows = scaling.run(models=("SqueezeNet",), chips=(1, 2),
                           algorithms=("DP-SGD",), mode="weak",
                           batch=32, jobs=1)
        by_chips = {row["chips"]: row for row in rows}
        assert by_chips[1]["global_batch"] == 32
        assert by_chips[2]["global_batch"] == 64
        assert by_chips[1]["local_batch"] == by_chips[2]["local_batch"] == 32

    def test_default_global_batch_divisible_by_all_chip_counts(self):
        batch = scaling.default_global_batch("BERT-large", (1, 2, 4, 8))
        assert batch >= 8
        for n in (1, 2, 4, 8):
            assert batch % n == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            scaling.run(mode="diagonal")

    def test_validates_inputs_before_fanning_out(self):
        with pytest.raises(ValueError, match=">= 1"):
            scaling.run(chips=(0, 2))
        with pytest.raises(ValueError, match="at least one"):
            scaling.run(chips=())
        with pytest.raises(ValueError, match="batch"):
            scaling.run(chips=(1, 2), batch=0)
        with pytest.raises(ValueError, match="divide"):
            scaling.run(models=("SqueezeNet",), chips=(1, 8), batch=100)
        # Weak scaling shards per chip, so any positive batch is fine.
        rows = scaling.run(models=("SqueezeNet",), chips=(1, 8),
                           algorithms=("SGD",), mode="weak", batch=100,
                           jobs=1)
        assert [row["global_batch"] for row in rows] == [100, 800]

    def test_results_persist_in_json_cache(self, tmp_path):
        from repro.experiments.runner import ResultCache
        cache = ResultCache(tmp_path)
        rows = scaling.run(models=("SqueezeNet",), chips=(1, 2),
                           algorithms=("DP-SGD",), jobs=1, cache=cache)
        assert len(list(tmp_path.glob("*.json"))) == 2
        again = scaling.run(models=("SqueezeNet",), chips=(1, 2),
                            algorithms=("DP-SGD",), jobs=1, cache=cache)
        assert again == rows
