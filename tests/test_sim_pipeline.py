"""Tests for the event-driven pipeline simulator (repro.sim)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_accelerator
from repro.sim import PipelineSimulator, TimedOp, pipeline_training_step
from repro.training import Algorithm
from repro.workloads import build_model


def op(compute, dma=0, resource="gemm", label="op", tag="t"):
    return TimedOp(label=label, resource=resource,
                   compute_cycles=compute, dma_cycles=dma, tag=tag)


class TestTimedOpValidation:
    def test_unknown_resource(self):
        with pytest.raises(ValueError):
            op(1, resource="fpga")

    def test_negative_cycles(self):
        with pytest.raises(ValueError):
            op(-1)

    def test_negative_depth(self):
        with pytest.raises(ValueError):
            PipelineSimulator(-1)


class TestScheduling:
    def test_empty_program(self):
        assert PipelineSimulator().run([]).total_cycles == 0

    def test_single_op(self):
        timeline = PipelineSimulator().run([op(10, 5)])
        assert timeline.total_cycles == 15

    def test_perfect_overlap(self):
        """Balanced compute/DMA pipelines: n ops cost (n+1) stages."""
        ops = [op(10, 10) for _ in range(8)]
        timeline = PipelineSimulator(prefetch_depth=1).run(ops)
        assert timeline.total_cycles == 10 * 9
        assert timeline.serialized_cycles == 160

    def test_zero_depth_serializes(self):
        """Without prefetch, each transfer waits for prior compute."""
        ops = [op(10, 10) for _ in range(4)]
        timeline = PipelineSimulator(prefetch_depth=0).run(ops)
        assert timeline.total_cycles == 80

    def test_dma_bound_program(self):
        ops = [op(1, 100) for _ in range(5)]
        timeline = PipelineSimulator().run(ops)
        # DMA engine is serial: total >= 500.
        assert timeline.total_cycles >= 500

    def test_compute_bound_program(self):
        ops = [op(100, 1) for _ in range(5)]
        timeline = PipelineSimulator().run(ops)
        assert timeline.total_cycles == pytest.approx(501, abs=2)

    def test_distinct_resources_still_program_ordered(self):
        """Compute starts follow program order even across resources."""
        ops = [op(50, 0, "gemm"), op(10, 0, "vector"), op(50, 0, "gemm")]
        timeline = PipelineSimulator().run(ops)
        starts = [t.compute_start for t in timeline.timings]
        assert starts == sorted(starts)

    @settings(max_examples=30, deadline=None)
    @given(cycles=st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)),
        min_size=1, max_size=20), depth=st.integers(0, 4))
    def test_bounds(self, cycles, depth):
        """Overlapped latency is between the two analytic bounds."""
        ops = [op(c, d) for c, d in cycles]
        timeline = PipelineSimulator(depth).run(ops)
        total_compute = sum(c for c, _ in cycles)
        total_dma = sum(d for _, d in cycles)
        assert timeline.total_cycles <= timeline.serialized_cycles
        assert timeline.total_cycles >= max(total_compute, total_dma) \
            or total_compute == total_dma == 0

    def test_busy_accounting(self):
        ops = [op(10, 0, "gemm"), op(20, 0, "vector"), op(30, 0, "gemm")]
        timeline = PipelineSimulator().run(ops)
        assert timeline.busy_cycles("gemm") == 40
        assert timeline.busy_cycles("vector") == 20
        assert 0 < timeline.utilization("gemm") <= 1.0

    def test_tag_cycles_cover_total(self):
        ops = [op(10, 5, tag="a"), op(10, 5, tag="b"), op(10, 5, tag="a")]
        timeline = PipelineSimulator().run(ops)
        assert sum(timeline.tag_cycles().values()) == timeline.total_cycles

    def test_tag_cycles_out_of_program_order(self):
        """Ops on different resources can finish out of program order; the
        span attribution must follow completion order, not list order."""
        # gemm occupies [0, 100); the vector op starts at 0 (program
        # order only constrains starts) and finishes at 10 — before the
        # gemm op that precedes it in the list.
        ops = [op(100, 0, resource="gemm", tag="gemm"),
               op(10, 0, resource="vector", tag="vector")]
        timeline = PipelineSimulator().run(ops)
        ends = [t.compute_end for t in timeline.timings]
        assert ends == [100, 10]  # genuinely out of order
        tags = timeline.tag_cycles()
        # Pre-fix, the vector span collapsed to 0 and its wall-clock
        # was credited to whichever tag ended the timeline.
        assert tags["vector"] == 10
        assert tags["gemm"] == 90
        assert sum(tags.values()) == timeline.total_cycles

    def test_tag_cycles_overlapping_gemm_vector(self):
        ops = [op(50, 0, resource="gemm", tag="fwd"),
               op(30, 0, resource="vector", tag="norm"),
               op(40, 0, resource="gemm", tag="bwd")]
        timeline = PipelineSimulator().run(ops)
        tags = timeline.tag_cycles()
        assert sum(tags.values()) == timeline.total_cycles
        assert all(span >= 0 for span in tags.values())
        # The vector op [0? no — starts after fwd's start] finishes at
        # 30, inside fwd's [0, 50) span; bwd runs [50, 90).
        assert tags == {"norm": 30, "fwd": 20, "bwd": 40}


class TestPipelineTrainingStep:
    net = build_model("SqueezeNet")

    def _run(self, kind="diva", with_ppu=True, algo=Algorithm.DP_SGD_R,
             depth=1):
        accel = (build_accelerator("ws") if kind == "ws"
                 else build_accelerator(kind, with_ppu=with_ppu))
        return pipeline_training_step(self.net, algo, accel, 32,
                                      prefetch_depth=depth)

    def test_deeper_buffering_monotonically_faster(self):
        """More staging buffers -> strictly no worse latency, converging
        toward the idealized per-op max(compute, dma) bound."""
        totals = [self._run(depth=d).total_cycles for d in (0, 1, 2, 4)]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_per_op_model_is_an_overlap_lower_bound(self):
        """The phase-level model assumes unlimited buffering; the
        event-driven pipeline can only approach it from above."""
        report = self._run(depth=8)
        assert report.total_cycles >= report.per_op_cycles * 0.8
        assert report.total_cycles <= report.per_op_cycles * 1.3

    @pytest.mark.parametrize("algo", list(Algorithm))
    def test_all_algorithms_supported(self, algo):
        report = self._run(algo=algo)
        assert report.total_cycles > 0
        assert report.algorithm is algo

    def test_diva_still_beats_ws_under_overlap(self):
        """The paper's ranking survives the tighter overlap model."""
        diva = self._run("diva")
        ws = self._run("ws")
        assert diva.total_cycles < ws.total_cycles

    def test_timeline_tags_match_phases(self):
        report = self._run()
        tags = set(report.timeline.tag_cycles())
        assert "Fwdprop" in tags
        assert "Bwd(per-example grad)" in tags
