"""Failure-aware fleet: faults, checkpoint/restart, retries, degradation.

Pins the three contracts ``repro.serve.faults`` makes:

* **Zero-failure identity** — with ``faults=None`` both simulators
  reproduce the pre-faults golden dispatch logs and reports byte for
  byte (``tests/data/golden_fleet_zero_fault.json``).
* **Decision identity under faults** — the scalar and streaming
  simulators draw the same failures, make the same ledger
  transactions, and emit identical dispatch logs and reports, across
  every policy, with and without the autoscaler, up to a 10k-job
  trace.
* **Budget safety** — no crash/retry/refund interleaving ever pushes
  a tenant's spent epsilon past its ``(epsilon, delta)`` budget
  (hypothesis property), and the checkpoint math behaves (overhead
  vanishes with the interval, the closed form tracks the
  discrete-event mean, Young/Daly minimizes expected completion).
"""

import hashlib
import json
import math
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Project, run_rules
from repro.analysis.faultrng import FaultPathRNGRule
from repro.serve import (
    AdmissionController,
    AutoscalerPolicy,
    FaultConfig,
    FaultModel,
    FaultRun,
    FleetConfig,
    TenantBudget,
    TraceArrays,
    TraceConfig,
    generate_trace,
    generate_trace_arrays,
    simulate_fleet,
    simulate_fleet_streaming,
)
from repro.serve.faults import _keyed_uniform
from repro.serve.metrics import _available_seconds
from repro.serve.scheduler import POLICIES
from repro.training import (
    CheckpointConfig,
    checkpoint_bytes,
    checkpoint_write_seconds,
    checkpointed_step_seconds,
    expected_completion_seconds,
    simulate_checkpointed_run,
    young_daly_interval_s,
)
from repro.workloads import build_model

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "data" / "golden_fleet_zero_fault.json"

#: Failure process hot enough to exercise every branch of the state
#: machine (crashes, stragglers, node-scope failures, degradation,
#: retries, aborts) on short traces.
AGGRESSIVE = FaultConfig(
    mtbf_hours=0.05, straggler_rate=0.2, correlated_fraction=0.3,
    degrade_fraction=0.7, repair_hours=0.02,
    checkpoint=CheckpointConfig(interval_steps=100), seed=3)


def _digest(dispatch_log):
    return hashlib.sha256(json.dumps(dispatch_log).encode()).hexdigest()


def _private_job():
    from repro.serve import TrainingJob

    return TrainingJob(job_id=0, tenant="tenant-0", model="SqueezeNet",
                       algorithm="DP-SGD", batch=32, steps=400,
                       noise_multiplier=1.1, dataset_size=50_000,
                       arrival_s=0.0)


# ---------------------------------------------------------------------------
# Keyed draws and the fault model
# ---------------------------------------------------------------------------


class TestKeyedDraws:
    def test_pure_function_of_key(self):
        a = _keyed_uniform(7, 3, 1, 0)
        assert a == _keyed_uniform(7, 3, 1, 0)
        assert 0.0 < a < 1.0

    def test_key_components_all_matter(self):
        base = _keyed_uniform(7, 3, 1, 0)
        assert base != _keyed_uniform(8, 3, 1, 0)
        assert base != _keyed_uniform(7, 4, 1, 0)
        assert base != _keyed_uniform(7, 3, 2, 0)
        assert base != _keyed_uniform(7, 3, 1, 1)

    def test_roughly_uniform(self):
        draws = [_keyed_uniform(0, job, 1, 0) for job in range(4000)]
        assert abs(np.mean(draws) - 0.5) < 0.02
        assert min(draws) < 0.01 and max(draws) > 0.99


class TestFaultModel:
    def test_cluster_mtbf_min_stability(self):
        model = FaultModel(FaultConfig(mtbf_hours=168.0))
        chip = model.cluster_mtbf_s(1)
        assert chip == pytest.approx(168.0 * 3600.0)
        # Exponential (shape 1): min of C draws divides the mean by C.
        assert model.cluster_mtbf_s(4) == pytest.approx(chip / 4.0)
        wearout = FaultModel(FaultConfig(mtbf_hours=168.0,
                                         weibull_shape=2.0))
        assert wearout.cluster_mtbf_s(4) == pytest.approx(
            168.0 * 3600.0 / math.sqrt(4.0))

    def test_time_to_failure_deterministic_and_scaled(self):
        model = FaultModel(FaultConfig(mtbf_hours=10.0))
        t = model.time_to_failure_s(5, 1, 4)
        assert t == model.time_to_failure_s(5, 1, 4)
        # Same uniform draw, quarter the scale.
        assert model.time_to_failure_s(5, 1, 1) == pytest.approx(4.0 * t)

    def test_time_to_failure_matches_mean(self):
        model = FaultModel(FaultConfig(mtbf_hours=1.0))
        draws = [model.time_to_failure_s(job, 1, 1) for job in range(4000)]
        assert np.mean(draws) == pytest.approx(3600.0, rel=0.05)

    def test_straggler_gates(self):
        off = FaultModel(FaultConfig(straggler_rate=0.0))
        assert off.straggler_multiplier(1, 1) == 1.0
        on = FaultModel(FaultConfig(straggler_rate=1.0,
                                    straggler_factor=4.0))
        assert on.straggler_multiplier(1, 1) == 4.0

    def test_chips_lost_scope(self):
        solo = FaultModel(FaultConfig(correlated_fraction=1.0))
        assert solo.chips_lost(1, 1, chips_per_node=1,
                               chips_per_cluster=8) == 1
        node = FaultModel(FaultConfig(correlated_fraction=1.0))
        assert node.chips_lost(1, 1, chips_per_node=4,
                               chips_per_cluster=8) == 4
        assert node.chips_lost(1, 1, chips_per_node=4,
                               chips_per_cluster=2) == 2

    def test_backoff_doubles_then_caps(self):
        model = FaultModel(FaultConfig(backoff_base_s=30.0,
                                       backoff_cap_s=100.0))
        assert model.backoff_s(1) == 30.0
        assert model.backoff_s(2) == 60.0
        assert model.backoff_s(3) == 100.0
        assert model.backoff_s(10) == 100.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(mtbf_hours=0.0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)


# ---------------------------------------------------------------------------
# Checkpoint/restart cost model
# ---------------------------------------------------------------------------


class TestCheckpointMath:
    def test_checkpoint_bytes_formula(self):
        net = build_model("SqueezeNet")
        assert checkpoint_bytes(net) == net.params * 8
        assert checkpoint_bytes(net, grad_bytes=4, master_bytes=4,
                                optimizer_slots=2) == net.params * 12
        assert checkpoint_bytes(net, optimizer_slots=0) == net.params * 4
        with pytest.raises(ValueError):
            checkpoint_bytes(net, optimizer_slots=-1)

    def test_write_seconds(self):
        net = build_model("SqueezeNet")
        config = CheckpointConfig(storage_bytes_per_s=2.0 * 2**30)
        assert checkpoint_write_seconds(net, config) == pytest.approx(
            checkpoint_bytes(net) / (2.0 * 2**30))

    def test_overhead_vanishes_with_interval(self):
        # Satellite property: amortized overhead -> 0 as interval -> inf.
        step, write = 0.05, 2.0
        last = math.inf
        for interval in (1, 10, 100, 1_000, 10_000, 1_000_000):
            eff = checkpointed_step_seconds(step, write, interval)
            assert step < eff < last
            last = eff
        assert last == pytest.approx(step, rel=1e-4)

    def test_young_daly_formula(self):
        assert young_daly_interval_s(8.0, 10_000.0) == pytest.approx(
            math.sqrt(2.0 * 8.0 * 10_000.0))

    def test_closed_form_no_failure_limit(self):
        # With an astronomically long MTBF the expectation collapses to
        # the work plus one checkpoint write per full interval (the
        # 50s tail segment finishes the job and never checkpoints).
        total = expected_completion_seconds(
            950.0, mtbf_s=1e15, interval_s=100.0, write_s=1.0,
            restart_s=5.0)
        assert total == pytest.approx(950.0 + 9 * 1.0, rel=1e-6)

    def test_discrete_twin_without_failures(self):
        sim = simulate_checkpointed_run(
            950.0, [math.inf], interval_s=100.0, write_s=1.0,
            restart_s=5.0)
        assert sim == pytest.approx(950.0 + 9 * 1.0)

    def test_discrete_twin_replays_lost_work(self):
        # One failure 150s in: segment 1 (100s work + 1s write) landed,
        # 49s of segment 2 is lost; restart, rerun it, finish the rest.
        clean = simulate_checkpointed_run(
            300.0, [math.inf], interval_s=100.0, write_s=1.0)
        failing = simulate_checkpointed_run(
            300.0, [150.0, math.inf], interval_s=100.0, write_s=1.0,
            restart_s=5.0)
        assert failing == pytest.approx(clean + 49.0 + 5.0)

    def test_closed_form_brackets_discrete_event_mean(self):
        # Satellite property: the closed-form expectation matches the
        # discrete-event twin's mean over many seeded failure histories
        # (tests are exempt from R004/R008, so a local RNG is fine).
        mtbf, interval, write, restart, work = 500.0, 120.0, 4.0, 20.0, 900.0
        closed = expected_completion_seconds(
            work, mtbf_s=mtbf, interval_s=interval, write_s=write,
            restart_s=restart)
        rng = np.random.default_rng(42)
        trials = np.empty(3000)
        for i in range(len(trials)):
            gaps = rng.exponential(mtbf, size=64).tolist()
            trials[i] = simulate_checkpointed_run(
                work, gaps, interval_s=interval, write_s=write,
                restart_s=restart)
        sem = trials.std(ddof=1) / math.sqrt(len(trials))
        assert abs(trials.mean() - closed) < 5.0 * sem

    def test_young_daly_minimizes_expected_completion(self):
        # Satellite property: the Young/Daly cadence is the argmin of
        # the closed-form expectation over a broad interval sweep.
        mtbf, write, work = 2_000.0, 10.0, 50_000.0
        optimum = young_daly_interval_s(write, mtbf)
        sweep = [optimum * f for f in
                 (0.125, 0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0, 8.0)]
        costs = [expected_completion_seconds(
            work, mtbf_s=mtbf, interval_s=interval, write_s=write,
            restart_s=30.0) for interval in sweep]
        assert min(range(len(sweep)), key=costs.__getitem__) \
            == sweep.index(optimum)


# ---------------------------------------------------------------------------
# The attempt state machine
# ---------------------------------------------------------------------------


def _run(config, fleet=None, epsilon=3.0):
    fleet = fleet or FleetConfig(chips=2, chips_per_cluster=2)
    admission = AdmissionController(TenantBudget(epsilon=epsilon))
    return FaultRun(FaultModel(config), fleet, admission), admission


def _attempt(frun, *, job_id=0, now=0.0, step_s=0.05, granted=200,
             requested=200, private=False, tenant="tenant-0",
             batch=32):
    return frun.begin_attempt(
        job_id, now, step_s=step_s, granted=granted, requested=requested,
        tenant=tenant, sampling_rate=0.01, noise_multiplier=1.1,
        private=private, model_name="SqueezeNet", algorithm="SGD",
        batch=batch)


class TestFaultRun:
    def test_clean_completion(self):
        frun, _ = _run(FaultConfig(
            mtbf_hours=1e9, checkpoint=CheckpointConfig(interval_steps=50)))
        eff = frun.effective_step_seconds("SqueezeNet", 0.05)
        out = _attempt(frun, granted=100, requested=100)
        assert out.completed and not out.failed
        assert out.finish_s == pytest.approx(100 * eff)
        assert out.free_s == out.finish_s and out.retry_s is None
        assert frun.completed == 1 and frun.failures == 0
        assert frun.busy_s == pytest.approx(100 * eff)
        assert not frun.events and frun.wasted_s == 0.0

    def test_crash_then_retry_resumes_from_checkpoint(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=0.0, max_retries=3,
            repair_hours=0.01, backoff_base_s=30.0,
            checkpoint=CheckpointConfig(interval_steps=10))
        frun, _ = _run(config)
        out = _attempt(frun, granted=500, requested=500)
        assert not out.completed and not out.failed
        assert out.crash_s is not None and out.retry_s is not None
        assert out.retry_s == pytest.approx(out.crash_s + 30.0)
        assert out.free_s > out.crash_s  # repair downtime
        assert frun.failures == 1 and frun.retries == 1
        # Non-private jobs re-buy lost steps for free: the reservation
        # shrank only by what survived in checkpoints (whole intervals).
        remaining = frun.remaining_steps(0, 500)
        assert 0 < remaining <= 500
        assert (500 - remaining) % 10 == 0
        assert frun.ready_s(0, 0.0) == out.retry_s
        assert frun.downtime == [(out.crash_s, out.free_s)]

    def test_max_retries_exhausted_fails(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=0.0, max_retries=0,
            checkpoint=CheckpointConfig(interval_steps=1_000_000))
        frun, _ = _run(config)
        out = _attempt(frun, granted=500, requested=500)
        assert out.failed and not out.completed and out.retry_s is None
        assert frun.failed == 1 and frun.completed == 0

    def test_abort_refunds_private_reservation(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=0.0, max_retries=0,
            checkpoint=CheckpointConfig(interval_steps=1_000_000))
        frun, admission = _run(config)
        job = _private_job()
        decision = admission.admit(job)
        spent_after_admit = admission.epsilon_spent(job.tenant)
        assert decision.granted_steps > 0 and spent_after_admit > 0
        out = frun.begin_attempt(
            0, 0.0, step_s=0.05, granted=decision.granted_steps,
            requested=job.steps, tenant=job.tenant,
            sampling_rate=job.sampling_rate,
            noise_multiplier=job.noise_multiplier, private=True,
            model_name=job.model, algorithm=job.algorithm,
            batch=job.batch)
        assert out.failed
        # The un-run tail came back; only the crashed attempt's
        # executed-but-lost steps stay spent.
        assert admission.epsilon_spent(job.tenant) < spent_after_admit

    def test_degrade_continues_on_surviving_replicas(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=1.0, repair_hours=0.5,
            checkpoint=CheckpointConfig(interval_steps=10))
        frun, _ = _run(config, fleet=FleetConfig(chips=4,
                                                 chips_per_cluster=4))
        out = _attempt(frun, granted=500, requested=500)
        assert out.completed and out.crash_s is not None
        assert frun.degradations == 1 and frun.completed == 1
        # The degraded tail runs slower than the healthy plan would.
        healthy_eff = frun.effective_step_seconds("SqueezeNet", 0.05)
        assert out.finish_s > out.crash_s
        assert out.finish_s - out.crash_s > \
            frun.remaining_steps(0, 0) * healthy_eff  # state popped -> 0

    def test_degrade_infeasible_at_dp1_requeues(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=1.0, max_retries=3,
            checkpoint=CheckpointConfig(interval_steps=10))
        frun, _ = _run(config, fleet=FleetConfig(chips=1,
                                                 chips_per_cluster=1))
        out = _attempt(frun, granted=500, requested=500)
        assert not out.completed and out.retry_s is not None
        assert frun.degradations == 0 and frun.retries == 1

    def test_downtime_clipping_and_mttr(self):
        config = FaultConfig(
            mtbf_hours=1e-4, degrade_fraction=0.0, max_retries=1,
            repair_hours=0.01,
            checkpoint=CheckpointConfig(interval_steps=10))
        frun, _ = _run(config)
        out = _attempt(frun, granted=500, requested=500)
        full = frun.downtime_seconds()
        assert full == pytest.approx(out.free_s - out.crash_s)
        half = (out.crash_s + out.free_s) / 2.0
        assert frun.downtime_seconds(cap_s=half) == \
            pytest.approx(half - out.crash_s)
        assert frun.downtime_seconds(cap_s=out.crash_s) == 0.0
        assert frun.mttr_s == pytest.approx(frun.repair_total_s)

    def test_young_daly_cadence_derived_per_workload(self):
        frun, _ = _run(FaultConfig(mtbf_hours=10.0))
        write_s, interval = frun._checkpoint("SqueezeNet", 0.05)
        mtbf_s = frun.model.cluster_mtbf_s(2)
        expected = max(1, round(
            young_daly_interval_s(write_s, mtbf_s) / 0.05))
        assert interval == expected
        fixed, _ = _run(FaultConfig(
            mtbf_hours=10.0, checkpoint=CheckpointConfig(interval_steps=7)))
        assert fixed._checkpoint("SqueezeNet", 0.05)[1] == 7


# ---------------------------------------------------------------------------
# Budget safety (hypothesis)
# ---------------------------------------------------------------------------


class TestLedgerNeverOverspends:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           fault_seed=st.integers(0, 2**31 - 1),
           mtbf_hours=st.floats(1e-4, 0.05),
           max_retries=st.integers(0, 4),
           degrade=st.floats(0.0, 1.0))
    def test_fleet_under_fire_respects_epsilon(self, seed, fault_seed,
                                               mtbf_hours, max_retries,
                                               degrade):
        # Satellite property: however crashes, retries, re-pricing and
        # refunds interleave, no tenant's spent epsilon exceeds its
        # budget.
        trace = generate_trace(TraceConfig(jobs=30, seed=seed,
                                           shape="bursty",
                                           mean_interarrival_s=0.2))
        admission = AdmissionController(TenantBudget(epsilon=2.0))
        faults = FaultModel(FaultConfig(
            mtbf_hours=mtbf_hours, degrade_fraction=degrade,
            max_retries=max_retries, repair_hours=0.01,
            checkpoint=CheckpointConfig(interval_steps=50),
            seed=fault_seed))
        simulate_fleet(trace, FleetConfig(chips=4, chips_per_cluster=2),
                       policy="fifo", admission=admission, faults=faults)
        for tenant in admission.seen_tenants():
            budget = admission.budget_for(tenant)
            assert admission.epsilon_spent(tenant) \
                <= budget.epsilon + 1e-9

    def test_reprice_never_exceeds_request_and_refund_floors(self):
        admission = AdmissionController(TenantBudget(epsilon=1.0))
        job = _private_job()
        admission.admit(job)
        granted = admission.reprice_steps(
            job.tenant, job.sampling_rate, job.noise_multiplier, 100)
        assert 0 <= granted <= 100
        # Refunding more than was ever spent floors at zero, never
        # goes negative.
        admission.refund_steps(job.tenant, job.sampling_rate,
                               job.noise_multiplier, 10**9)
        assert admission.epsilon_spent(job.tenant) == 0.0
        assert admission.reprice_steps(
            job.tenant, job.sampling_rate, job.noise_multiplier, 0) == 0


# ---------------------------------------------------------------------------
# Zero-failure byte identity (golden pin)
# ---------------------------------------------------------------------------


class TestZeroFailureGolden:
    def test_fault_free_runs_match_pre_faults_golden(self):
        golden = json.loads(GOLDEN.read_text())
        config = TraceConfig(jobs=400, seed=13, mean_interarrival_s=0.5,
                             shape="bursty")
        fleet = FleetConfig(chips=8, chips_per_cluster=2)
        for policy in POLICIES:
            for auto in (False, True):
                scaler = AutoscalerPolicy(max_clusters=12,
                                          provision_delay_s=30.0) \
                    if auto else None
                key = f"{policy}-{'auto' if auto else 'static'}"
                log = []
                report = simulate_fleet(
                    generate_trace(config), fleet, policy=policy,
                    admission=AdmissionController(TenantBudget(epsilon=3.0)),
                    autoscaler=scaler, dispatch_log=log)
                assert _digest(log) \
                    == golden[f"scalar/{key}"]["dispatch_sha256"], key
                assert report.to_dict() \
                    == golden[f"scalar/{key}"]["report"], key
                log = []
                report = simulate_fleet_streaming(
                    generate_trace_arrays(config), fleet, policy=policy,
                    admission=AdmissionController(TenantBudget(epsilon=3.0)),
                    autoscaler=scaler, dispatch_log=log)
                assert _digest(log) \
                    == golden[f"streaming/{key}"]["dispatch_sha256"], key
                assert report.to_dict() \
                    == golden[f"streaming/{key}"]["report"], key


# ---------------------------------------------------------------------------
# Scalar/streaming decision identity under faults
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shared_trace():
    trace = generate_trace(TraceConfig(jobs=1_500, seed=5, shape="bursty",
                                       mean_interarrival_s=0.3))
    return trace, TraceArrays.from_jobs(trace)


class TestFaultyDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("auto", [False, True],
                             ids=["static", "autoscaled"])
    def test_policies_match_under_fire(self, shared_trace, policy, auto):
        trace, arrays = shared_trace
        fleet = FleetConfig(chips=8, chips_per_cluster=2)
        faults = FaultModel(AGGRESSIVE)
        scaler = AutoscalerPolicy(max_clusters=10,
                                  provision_delay_s=20.0) if auto else None
        scalar_log, stream_log = [], []
        scalar = simulate_fleet(
            trace, fleet, policy=policy,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            autoscaler=scaler, faults=faults, dispatch_log=scalar_log)
        stream = simulate_fleet_streaming(
            arrays, fleet, policy=policy,
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            autoscaler=scaler, faults=faults, dispatch_log=stream_log)
        assert scalar_log == stream_log
        assert scalar.to_dict() == stream.to_dict()
        assert scalar.faults_enabled
        assert scalar.retries > 0  # the trace actually exercised faults

    def test_ten_thousand_jobs_identical(self):
        # Satellite: the 10k-job differential (kept to one policy so
        # the suite stays fast; the policy grid above covers the rest).
        trace = generate_trace(TraceConfig(jobs=10_000, seed=5,
                                           shape="bursty",
                                           mean_interarrival_s=0.3))
        fleet = FleetConfig(chips=8, chips_per_cluster=2)
        faults = FaultModel(FaultConfig(
            mtbf_hours=0.2, straggler_rate=0.1, degrade_fraction=0.5,
            repair_hours=0.02,
            checkpoint=CheckpointConfig(interval_steps=100), seed=3))
        scalar_log, stream_log = [], []
        scalar = simulate_fleet(
            trace, fleet, policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            faults=faults, dispatch_log=scalar_log)
        stream = simulate_fleet_streaming(
            TraceArrays.from_jobs(trace), fleet, policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            faults=faults, dispatch_log=stream_log)
        assert scalar_log == stream_log
        assert scalar.to_dict() == stream.to_dict()
        assert scalar.failed + scalar.retries + scalar.degradations > 0


# ---------------------------------------------------------------------------
# Reporting: fault fields, utilization accounting
# ---------------------------------------------------------------------------


class TestFaultReporting:
    def _faulty_report(self):
        trace = generate_trace(TraceConfig(jobs=120, seed=5,
                                           shape="bursty",
                                           mean_interarrival_s=0.3))
        return simulate_fleet(
            trace, FleetConfig(chips=4, chips_per_cluster=2),
            policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            faults=FaultModel(AGGRESSIVE))

    def test_to_dict_gains_faults_only_when_enabled(self):
        trace = generate_trace(TraceConfig(jobs=30, seed=1))
        plain = simulate_fleet(
            trace, FleetConfig(chips=2),
            admission=AdmissionController(TenantBudget(epsilon=3.0)))
        assert not plain.faults_enabled
        assert "faults" not in plain.to_dict()
        faulty = self._faulty_report()
        data = faulty.to_dict()["faults"]
        assert set(data) == {"failed", "retries", "degradations",
                             "goodput", "wasted_chip_hours",
                             "repair_chip_hours", "mttr_s",
                             "retries_per_job"}
        assert "Faults:" in faulty.render()

    def test_goodput_excludes_wasted_work(self):
        report = self._faulty_report()
        assert report.wasted_chip_hours > 0
        assert 0.0 < report.goodput < report.utilization <= 1.0

    def test_available_seconds_subtracts_downtime(self):
        base = _available_seconds(4, 100.0, None, 0.0)
        assert base == 400.0
        assert _available_seconds(4, 100.0, None, 30.0) == 370.0
        assert _available_seconds(4, 100.0, None, 10**9) == 0.0

    def test_repair_downtime_still_billed(self):
        # The utilization denominator shrinks by the downtime, but the
        # chip-hour/cost ledger keeps billing the cluster under repair.
        trace = generate_trace(TraceConfig(jobs=120, seed=5,
                                           shape="bursty",
                                           mean_interarrival_s=0.3))
        report = simulate_fleet(
            trace, FleetConfig(chips=4, chips_per_cluster=2),
            policy="fifo",
            admission=AdmissionController(TenantBudget(epsilon=3.0)),
            autoscaler=AutoscalerPolicy(max_clusters=6,
                                        provision_delay_s=20.0),
            faults=FaultModel(AGGRESSIVE))
        assert report.repair_chip_hours > 0
        # Billed capacity (the chip-hour ledger) keeps accruing while
        # clusters repair; the goodput denominator does not, so goodput
        # stays a fraction of the utilization it refines.
        assert report.chip_hours > 0 and report.cost > 0
        assert 0.0 < report.goodput <= report.utilization


# ---------------------------------------------------------------------------
# Lint rule R008
# ---------------------------------------------------------------------------


def _r008(tmp_path, source):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source))
    project = Project.load(REPO_ROOT, [path])
    return run_rules(project, [FaultPathRNGRule()])


class TestFaultPathRNGRule:
    def test_flags_any_rng_in_fault_importers(self, tmp_path):
        findings = _r008(tmp_path, """
            import numpy as np
            import random
            from repro.serve.faults import FaultModel

            def draw():
                a = np.random.default_rng(3).uniform()
                b = random.random()
                return a + b
        """)
        assert len(findings) == 2
        assert all(f.rule_id == "R008" for f in findings)

    def test_seeded_rng_fine_without_the_import(self, tmp_path):
        findings = _r008(tmp_path, """
            import numpy as np

            def draw():
                return np.random.default_rng(3).uniform()
        """)
        assert findings == []

    def test_from_serve_import_faults_counts(self, tmp_path):
        findings = _r008(tmp_path, """
            from numpy.random import default_rng
            from repro.serve import faults

            def draw():
                return default_rng(1).uniform()
        """)
        assert len(findings) == 1


# ---------------------------------------------------------------------------
# Experiment harness plumbing
# ---------------------------------------------------------------------------


class TestServeExperiment:
    def test_run_threads_fault_parameters(self):
        from repro.experiments import serve

        rows = serve.run(policies=("fifo",), trace_jobs=60, seed=7,
                         chips=4, chips_per_cluster=2,
                         trace_shape="bursty", mean_interarrival_s=0.5,
                         mtbf_hours=0.05, checkpoint_interval=100,
                         straggler_rate=0.2)
        assert "faults" in rows[0]
        rendered = serve.render(rows)
        assert "Goodput %" in rendered

    def test_run_without_mtbf_is_fault_free(self):
        from repro.experiments import serve

        rows = serve.run(policies=("fifo",), trace_jobs=40, seed=7)
        assert "faults" not in rows[0]
