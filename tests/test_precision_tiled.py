"""Tests for BF16 emulation and the tiled functional GEMM runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import (
    bf16_matmul,
    bf16_relative_error,
    tiled_matmul,
    to_bfloat16,
)

RNG = np.random.default_rng(0)


class TestBfloat16:
    def test_idempotent(self):
        x = RNG.normal(size=100).astype(np.float32)
        once = to_bfloat16(x)
        np.testing.assert_array_equal(to_bfloat16(once), once)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=1e-30, max_value=1e30,
                           allow_nan=False, allow_infinity=False))
    def test_relative_error_bounded(self, value):
        """BF16 keeps 8 mantissa bits: relative error < 2^-8."""
        err = bf16_relative_error(np.array([value]))
        assert err[0] <= 2.0**-8

    def test_zero_preserved(self):
        assert to_bfloat16(np.array([0.0]))[0] == 0.0

    def test_powers_of_two_exact(self):
        x = np.array([1.0, 2.0, 0.5, 1024.0, 2.0**-20])
        np.testing.assert_array_equal(to_bfloat16(x), x)

    def test_sign_preserved(self):
        x = np.array([-3.14159, 3.14159])
        quantized = to_bfloat16(x)
        assert quantized[0] == -quantized[1]

    def test_inf_preserved(self):
        quantized = to_bfloat16(np.array([np.inf, -np.inf]))
        assert np.isinf(quantized).all()

    def test_nan_preserved(self):
        assert np.isnan(to_bfloat16(np.array([np.nan]))[0])

    def test_round_to_nearest_even(self):
        """A value exactly between two bf16 codes rounds to even."""
        # 1.0 + 2^-9 is halfway between 1.0 and 1.0 + 2^-8.
        halfway = np.float32(1.0 + 2.0**-9)
        assert to_bfloat16(np.array([halfway]))[0] == np.float32(1.0)

    def test_matmul_error_small(self):
        a = RNG.normal(size=(32, 64))
        b = RNG.normal(size=(64, 16))
        exact = a @ b
        approx = bf16_matmul(a, b)
        rel = np.abs(approx - exact) / (np.abs(exact) + 1e-9)
        assert np.median(rel) < 0.02

    def test_dp_step_survives_bf16(self):
        """DP-SGD's clipped/noisy update tolerates the BF16 datapath."""
        from repro.dpml import clip_scales

        grads = RNG.normal(size=(16, 200))
        sq = (grads**2).sum(axis=1)
        exact = (grads * clip_scales(sq, 1.0)[:, None]).sum(axis=0)
        quant_grads = to_bfloat16(grads).astype(np.float64)
        sq_q = (quant_grads**2).sum(axis=1)
        approx = (quant_grads * clip_scales(sq_q, 1.0)[:, None]).sum(axis=0)
        assert np.abs(approx - exact).max() < 0.05 * np.abs(exact).max() + 0.05


shapes = st.tuples(st.integers(1, 30), st.integers(1, 30),
                   st.integers(1, 30))


class TestTiledMatmul:
    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 50))
    def test_ws_tiling_numerics(self, shape, seed):
        m, k, n = shape
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        result = tiled_matmul(a, b, height=8, width=8, dataflow="ws",
                              fill_rows_per_cycle=2)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 50))
    def test_os_tiling_numerics(self, shape, seed):
        m, k, n = shape
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        result = tiled_matmul(a, b, height=8, width=8, dataflow="os",
                              drain_rows_per_cycle=2)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, seed=st.integers(0, 50))
    def test_outer_product_tiling_numerics(self, shape, seed):
        m, k, n = shape
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(m, k)), rng.normal(size=(k, n))
        result = tiled_matmul(a, b, height=8, width=8)
        np.testing.assert_allclose(result.output, a @ b, atol=1e-9)

    def test_tile_counts_match_analytic_tiling(self):
        """The functional runner uses the same tiling as the engines."""
        from repro.arch.engine import ArrayConfig
        from repro.arch.systolic import WeightStationaryEngine
        from repro.core.outer_product import OuterProductEngine
        from repro.workloads.gemms import Gemm

        cfg = ArrayConfig(height=8, width=8)
        a = RNG.normal(size=(20, 19))
        b = RNG.normal(size=(19, 21))
        ws = tiled_matmul(a, b, 8, 8, dataflow="ws")
        op = tiled_matmul(a, b, 8, 8, dataflow="outer_product")
        assert ws.tiles == len(WeightStationaryEngine(cfg).tiles(
            Gemm(20, 19, 21)))
        assert op.tiles == len(OuterProductEngine(cfg).tiles(
            Gemm(20, 19, 21)))

    def test_cycles_positive(self):
        a, b = RNG.normal(size=(9, 9)), RNG.normal(size=(9, 9))
        assert tiled_matmul(a, b, 8, 8).total_cycles > 0

    def test_unknown_dataflow(self):
        a, b = RNG.normal(size=(4, 4)), RNG.normal(size=(4, 4))
        with pytest.raises(ValueError):
            tiled_matmul(a, b, 8, 8, dataflow="rs")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            tiled_matmul(RNG.normal(size=(4, 5)), RNG.normal(size=(6, 4)),
                         8, 8)
