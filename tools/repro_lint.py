"""Repo invariant linter CLI (see ``src/repro/analysis``).

Run from anywhere::

    python tools/repro_lint.py               # report findings
    python tools/repro_lint.py --strict      # exit 1 on any new finding
    python tools/repro_lint.py --list-rules  # registered rules
    python tools/repro_lint.py --select R001,R004 src/repro/serve

Findings already recorded in the baseline file (default
``tools/lint_baseline.txt``, one ``path::rule::message`` key per line)
are reported as baselined and never fail the run; ``--write-baseline``
rewrites that file from the current findings.  Inline suppressions use
``# repro-lint: ignore[R001] reason`` on the flagged line.  The CI
``lint`` job runs ``--strict`` and also treats *stale* baseline entries
(fixed findings that nobody removed) as failures, so the baseline can
only shrink.
"""

from __future__ import annotations

import argparse
from pathlib import Path
import sys

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402  (path bootstrap above)
    Project, all_rules, load_baseline, run_rules, split_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint", description="AST invariant linter for src/repro")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any non-baselined finding or stale baseline entry")
    parser.add_argument(
        "--baseline", type=Path,
        default=REPO_ROOT / "tools" / "lint_baseline.txt",
        help="baseline file of accepted finding keys")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings")
    parser.add_argument(
        "--select", default="",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    if options.select:
        wanted = {token.strip() for token in options.select.split(",")}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            parser.error(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.rule_id in wanted]

    paths = options.paths or [REPO_ROOT / "src" / "repro"]
    project = Project.load(REPO_ROOT, paths)
    findings = run_rules(project, rules)

    if options.write_baseline:
        lines = ["# repro-lint baseline: one accepted finding key per "
                 "line (path::rule::message).",
                 "# Entries may only be removed (by fixing the finding);"
                 " --strict fails on stale ones."]
        lines += [finding.key for finding in findings]
        options.baseline.write_text("\n".join(lines) + "\n")
        print(f"repro-lint: wrote {len(findings)} baseline entries to "
              f"{options.baseline.relative_to(REPO_ROOT)}")
        return 0

    baseline = load_baseline(options.baseline)
    new, baselined, stale = split_baseline(findings, baseline)
    for finding in new:
        print(finding.render())
    if baselined:
        print(f"repro-lint: {len(baselined)} baselined finding(s) "
              "suppressed")
    for key in stale:
        print(f"repro-lint: stale baseline entry (already fixed — "
              f"remove it): {key}")
    status = (f"repro-lint: {len(project.modules)} files, "
              f"{len(rules)} rules, {len(new)} new finding(s)")
    failed = bool(new) or (options.strict and bool(stale))
    print(status + (" — FAIL" if failed and options.strict else ""))
    return 1 if (options.strict and failed) else (1 if new else 0)


if __name__ == "__main__":
    raise SystemExit(main())
