#!/usr/bin/env python3
"""CI perf-regression guard over the ``BENCH_*.json`` throughput records.

The benchmark modules persist machine-local throughput records at the
repo root (``BENCH_gemm_sweep.json``, ``BENCH_scaling.json``,
``BENCH_serve.json``).  This checker reads whichever records exist and
fails (exit 1) if any recorded throughput falls below its conservative
floor — an order of magnitude under what a stock CI runner measures, so
only a real regression (e.g. the batched engine silently falling back
to a scalar loop, or the streaming scheduler re-growing per-job lists)
trips it, not runner-to-runner noise.

Run after the benchmarks::

    python -m pytest benchmarks/bench_gemm_sweep.py benchmarks/bench_scaling.py \
        benchmarks/bench_serve.py -q
    python tools/check_bench.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Conservative floors — see module docstring for the calibration idea.
GEMM_OPS_PER_SEC_FLOOR = 2_000.0
SCALING_POINTS_PER_SEC_FLOOR = 2.0
#: The batched 3D grid pays one pipeline-schedule build per distinct
#: (shard, pp) — far fewer than its point count, so a modest per-point
#: floor still catches a fallback to per-point scheduling.
GRID3D_POINTS_PER_SEC_FLOOR = 10.0
BATCHED_VS_POOL_SPEEDUP_FLOOR = 5.0
#: Small traces are dominated by fixed setup (service table, RDP
#: curves), so they get a lower floor than the million-job point where
#: per-job throughput is the signal.
SERVE_JOBS_PER_SEC_FLOOR_SMALL = 2_000.0
SERVE_JOBS_PER_SEC_FLOOR = 10_000.0
#: The autoscaled run pays a per-event scale decision on top of the
#: static streaming loop, so its floor sits below the static one.
SERVE_AUTOSCALE_JOBS_PER_SEC_FLOOR = 5_000.0
#: Observability in-loop overhead ceiling: the instrumented 1M-job
#: run (repro.obs tracing + metrics attached, export deferred) must
#: stay within 10% of the uninstrumented wall time — instrumentation
#: that slows the hot loop more than that is a regression.
OVERHEAD_CEILING = 1.10
#: The faulty 1M-job run walks per-dispatch failure draws, checkpoint
#: amortization and ledger transactions in Python, so its floor sits
#: an order of magnitude under the measured ~150k jobs/s.
SERVE_FAULTS_JOBS_PER_SEC_FLOOR = 10_000.0
#: With fault injection attached but an MTBF no attempt can reach,
#: every run stays clean — the wall-clock ratio against the
#: ``faults=None`` twin prices the pure bookkeeping tax (measured
#: ~1.6x; the event loop trades vectorized dispatch for per-attempt
#: draws).  Above the ceiling, the clean-path machinery regressed.
FAULT_OVERHEAD_CEILING = 3.0


def _load(name: str) -> dict | None:
    path = ROOT / name
    if not path.exists():
        print(f"check_bench: {name} missing, skipped")
        return None
    return json.loads(path.read_text())


def check_gemm(failures: list[str]) -> None:
    record = _load("BENCH_gemm_sweep.json")
    if record is None:
        return
    for engine, stats in record.get("engines", {}).items():
        rate = stats.get("ops_per_sec", 0.0)
        if rate < GEMM_OPS_PER_SEC_FLOOR:
            failures.append(
                f"gemm_stats throughput ({engine}): {rate:.0f}/s "
                f"< floor {GEMM_OPS_PER_SEC_FLOOR:.0f}/s")


def check_scaling(failures: list[str]) -> None:
    record = _load("BENCH_scaling.json")
    if record is None:
        return
    rate = record.get("points_per_sec")
    if rate is not None and rate < SCALING_POINTS_PER_SEC_FLOOR:
        failures.append(
            f"scaling smoke sweep: {rate:.1f} points/s "
            f"< floor {SCALING_POINTS_PER_SEC_FLOOR:.0f}/s")
    grid3d = record.get("grid3d")
    if grid3d is not None:
        rate = grid3d.get("points_per_sec", 0.0)
        if rate < GRID3D_POINTS_PER_SEC_FLOOR:
            failures.append(
                f"3D-grid sweep: {rate:.1f} points/s "
                f"< floor {GRID3D_POINTS_PER_SEC_FLOOR:.0f}/s")
    for name, section in record.get("batched_vs_pool", {}).items():
        speedup = section.get("speedup", 0.0)
        if speedup < BATCHED_VS_POOL_SPEEDUP_FLOOR:
            failures.append(
                f"batched {name} sweep speedup vs process pool: "
                f"{speedup:.1f}x < floor "
                f"{BATCHED_VS_POOL_SPEEDUP_FLOOR:.0f}x")


def check_serve(failures: list[str]) -> None:
    record = _load("BENCH_serve.json")
    if record is None:
        return
    for point in record.get("points", []):
        if point.get("instrumented"):
            # Instrumented points are measured for overhead, not raw
            # throughput — the uninstrumented twin owns the floor.
            ratio = point.get("overhead_ratio")
            if ratio is None:
                failures.append(
                    f"serve streaming instrumented point "
                    f"({point.get('jobs')} jobs) lacks overhead_ratio")
            elif ratio > OVERHEAD_CEILING:
                failures.append(
                    f"serve streaming observability overhead "
                    f"({point.get('jobs')} jobs): {ratio:.3f}x > "
                    f"ceiling {OVERHEAD_CEILING:.2f}x")
            continue
        if point.get("faults"):
            rate = point.get("jobs_per_sec", 0.0)
            if rate < SERVE_FAULTS_JOBS_PER_SEC_FLOOR:
                failures.append(
                    f"serve streaming faulty ({point.get('jobs')} jobs): "
                    f"{rate:.0f} jobs/s < floor "
                    f"{SERVE_FAULTS_JOBS_PER_SEC_FLOOR:.0f}/s")
            ratio = point.get("fault_overhead_ratio")
            if ratio is None:
                failures.append(
                    f"serve streaming faulty point "
                    f"({point.get('jobs')} jobs) lacks "
                    f"fault_overhead_ratio")
            elif ratio > FAULT_OVERHEAD_CEILING:
                failures.append(
                    f"serve streaming zero-failure fault overhead "
                    f"({point.get('jobs')} jobs): {ratio:.3f}x > "
                    f"ceiling {FAULT_OVERHEAD_CEILING:.2f}x")
            continue
        rate = point.get("jobs_per_sec", 0.0)
        if point.get("autoscale"):
            floor = SERVE_AUTOSCALE_JOBS_PER_SEC_FLOOR
        elif point.get("jobs", 0) >= 100_000:
            floor = SERVE_JOBS_PER_SEC_FLOOR
        else:
            floor = SERVE_JOBS_PER_SEC_FLOOR_SMALL
        if rate < floor:
            tag = " autoscaled" if point.get("autoscale") else ""
            failures.append(
                f"serve streaming ({point.get('jobs')}{tag} jobs): "
                f"{rate:.0f} jobs/s < floor {floor:.0f}/s")


def main() -> int:
    failures: list[str] = []
    check_gemm(failures)
    check_scaling(failures)
    check_serve(failures)
    if failures:
        for failure in failures:
            print(f"check_bench: FAIL {failure}", file=sys.stderr)
        return 1
    print("check_bench: all recorded throughputs above their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
