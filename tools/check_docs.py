"""Docs health check: internal links resolve, CLI table can't rot.

Run from anywhere:
    python tools/check_docs.py

Checks, in order:

1. every relative link in ``README.md`` and ``docs/*.md`` points at a
   file or directory that exists in the repository;
2. the set of subcommands documented in the README's CLI table matches
   exactly the set ``python -m repro --help`` advertises;
3. every subcommand *declared* in ``src/repro/__main__.py``
   (``add_parser`` calls, found statically) appears in the README CLI
   table — a belt-and-braces check that does not depend on parsing
   argparse's ``--help`` output;
4. ``python -m repro --help`` and every documented subcommand's
   ``--help`` exit cleanly;
5. the lint-rule table in ``docs/static-analysis.md`` names exactly
   the rule ids registered in ``src/repro/analysis/`` (found
   statically via ``rule_id = "..."`` assignments).

Exits nonzero (listing every problem) on any failure, so CI can gate
on it; see the ``docs`` job in ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: First backticked token of a markdown table row: | `models` | ...
_CLI_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")
#: The subcommand set argparse prints: {models,experiments,...}
_HELP_CHOICES = re.compile(r"\{([a-z0-9_,-]+)\}")
#: Subparser declarations in __main__.py: sub.add_parser("name", ...)
_ADD_PARSER = re.compile(r"""add_parser\(\s*["']([a-z0-9_-]+)["']""")
#: Lint-rule ids in the static-analysis doc's table: | `R001` | ...
_RULE_ROW = re.compile(r"^\|\s*`(R\d{3})`\s*\|")
#: Rule registrations in src/repro/analysis/: rule_id = "R001"
_RULE_ID = re.compile(r"""^\s*rule_id\s*=\s*["'](R\d{3})["']""",
                      re.MULTILINE)


def iter_doc_files() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [path for path in docs if path.exists()]


def check_links(doc_files: list[Path]) -> list[str]:
    """Broken relative links, as human-readable problem strings."""
    problems = []
    for doc in doc_files:
        for line_no, line in enumerate(doc.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (doc.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    rel = doc.relative_to(REPO_ROOT)
                    problems.append(
                        f"{rel}:{line_no}: broken link -> {target}")
    return problems


def documented_subcommands(readme: Path) -> list[str]:
    """Subcommands named in the README's CLI table, in table order."""
    subs = []
    for line in readme.read_text().splitlines():
        match = _CLI_ROW.match(line.strip())
        if match:
            token = match.group(1).split()[0]
            if token not in subs:
                subs.append(token)
    return subs


def declared_subcommands(main_py: Path) -> list[str]:
    """Subcommands ``__main__.py`` declares, in declaration order."""
    return _ADD_PARSER.findall(main_py.read_text())


def check_declared_subcommands(readme: Path, main_py: Path) -> list[str]:
    """Declared-but-undocumented subcommands, as problem strings.

    Statically scans ``__main__.py`` for ``add_parser`` calls and
    requires each name in the README CLI table.  Unlike the
    ``--help``-based check this cannot be fooled by argparse output
    formatting, so a new subcommand can never land undocumented.
    """
    declared = declared_subcommands(main_py)
    if not declared:
        return [f"{main_py.name}: no add_parser declarations found "
                "(check_docs cannot verify CLI coverage)"]
    documented = set(documented_subcommands(readme))
    return [
        f"README CLI table is missing subcommand {name!r} "
        f"declared in {main_py.name}"
        for name in declared if name not in documented
    ]


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=REPO_ROOT)


def check_cli_table(readme: Path) -> list[str]:
    """CLI-table staleness and --help failures, as problem strings."""
    documented = documented_subcommands(readme)
    if not documented:
        return [f"{readme.name}: no CLI table rows found "
                "(expected lines like '| `models` | ... |')"]
    problems = []
    top = run_cli("--help")
    if top.returncode != 0:
        return [f"python -m repro --help failed:\n{top.stderr[-500:]}"]
    match = _HELP_CHOICES.search(top.stdout)
    actual = set(match.group(1).split(",")) if match else set()
    for missing in sorted(actual - set(documented)):
        problems.append(
            f"README CLI table is missing subcommand {missing!r}")
    for stale in sorted(set(documented) - actual):
        problems.append(
            f"README CLI table documents unknown subcommand {stale!r}")
    for sub in documented:
        if sub not in actual:
            continue  # already reported as stale
        result = run_cli(sub, "--help")
        if result.returncode != 0:
            problems.append(
                f"python -m repro {sub} --help failed:\n"
                f"{result.stderr[-500:]}")
    return problems


def check_rule_table(doc: Path, analysis_dir: Path) -> list[str]:
    """Static-analysis rule-table drift, as problem strings.

    The doc's rule table and the ``rule_id`` assignments under
    ``src/repro/analysis/`` must name exactly the same ids, so a new
    rule cannot land undocumented and the doc cannot advertise a rule
    that no longer exists.
    """
    if not doc.exists():
        return [f"{doc.name}: missing (lint rules are undocumented)"]
    documented = {match.group(1)
                  for line in doc.read_text().splitlines()
                  if (match := _RULE_ROW.match(line.strip()))}
    registered = set()
    for source in sorted(analysis_dir.rglob("*.py")):
        registered.update(_RULE_ID.findall(source.read_text()))
    if not registered:
        return [f"{analysis_dir}: no rule_id assignments found "
                "(check_docs cannot verify the rule table)"]
    rel = doc.relative_to(REPO_ROOT)
    problems = [
        f"{rel}: rule table is missing registered rule {rule_id!r}"
        for rule_id in sorted(registered - documented)
    ]
    problems += [
        f"{rel}: rule table documents unknown rule {rule_id!r}"
        for rule_id in sorted(documented - registered)
    ]
    return problems


def main() -> int:
    doc_files = iter_doc_files()
    if not doc_files:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    problems = check_links(doc_files)
    problems += check_declared_subcommands(
        REPO_ROOT / "README.md",
        REPO_ROOT / "src" / "repro" / "__main__.py")
    problems += check_cli_table(REPO_ROOT / "README.md")
    problems += check_rule_table(
        REPO_ROOT / "docs" / "static-analysis.md",
        REPO_ROOT / "src" / "repro" / "analysis")
    if problems:
        for problem in problems:
            print(f"check_docs: {problem}", file=sys.stderr)
        return 1
    names = ", ".join(str(p.relative_to(REPO_ROOT)) for p in doc_files)
    print(f"check_docs: OK ({names}; "
          f"{len(documented_subcommands(REPO_ROOT / 'README.md'))} "
          "CLI subcommands exercised)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
