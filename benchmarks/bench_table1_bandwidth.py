"""Benchmark: regenerate Table I (SRAM bandwidth requirements)."""

from benchmarks.conftest import run_once
from repro.experiments import table1_bandwidth


def test_table1_bandwidth(benchmark, capsys):
    result = run_once(benchmark, table1_bandwidth.run)
    # Paper's exact totals for the 128x128 array.
    assert result.ws.total == 2 * 128 + 20 * 128
    assert result.os_outer.total == 2 * 128 + 34 * 128
    with capsys.disabled():
        print("\n" + table1_bandwidth.render(result))
