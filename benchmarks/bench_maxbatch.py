"""Benchmark: regenerate the Section III-A max-batch table."""

from benchmarks.conftest import run_once
from repro.experiments import maxbatch


def test_maxbatch(benchmark, capsys):
    rows = run_once(benchmark, maxbatch.run)
    by_model = {r.model: r for r in rows}
    # Paper anchors: ResNet-152 DP-SGD at 32; SGD orders of magnitude up.
    assert by_model["ResNet-152"].dp_sgd == 32
    for row in rows:
        assert row.sgd >= 8 * row.dp_sgd
        assert row.dp_sgd_r >= row.dp_sgd
    with capsys.disabled():
        print("\n" + maxbatch.render(rows))
