"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures through
the experiment harness and asserts the paper-shape invariants, so
``pytest benchmarks/ --benchmark-only`` doubles as the full
reproduction run.  Use ``-s`` to see the rendered tables.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock.

    Experiment results are cached process-wide (the harness memoizes
    simulations), so multi-round timing would measure cache hits;
    a single warm-free round reflects the real regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
