"""Benchmark: functional DP-SGD step throughput (Algorithm 1).

Measures the NumPy substrate's per-step cost for both gradient
procedures — the software-side counterpart of the compute trade-off the
paper characterizes (DP-SGD(R) trades a second backprop for memory).
"""

import numpy as np

from repro.dpml import (
    Conv2D,
    Dense,
    DpSgdOptimizer,
    Flatten,
    PrivacyParams,
    ReLU,
    Sequential,
    compute_rdp,
    synthetic_images,
)


def _setup(seed=0):
    rng = np.random.default_rng(seed)
    net = Sequential([
        Conv2D(3, 16, rng=rng), ReLU(),
        Conv2D(16, 16, rng=rng), ReLU(), Flatten(),
        Dense(16 * 8 * 8, 10, rng=rng),
    ])
    data = synthetic_images(64, 3, 8, 10, seed=seed)
    opt = DpSgdOptimizer(net, privacy=PrivacyParams(1.0, 1.0),
                         rng=np.random.default_rng(seed))
    return opt, data.x[:32], data.y[:32]


def test_dpsgd_step(benchmark):
    opt, x, y = _setup()
    result = benchmark(opt.step_dpsgd, x, y)
    assert result.mean_loss > 0


def test_reweighted_step(benchmark):
    opt, x, y = _setup()
    result = benchmark(opt.step_reweighted, x, y)
    assert result.mean_loss > 0


def test_sgd_step(benchmark):
    opt, x, y = _setup()
    result = benchmark(opt.step_sgd, x, y)
    assert result.mean_loss > 0


def test_rdp_accounting(benchmark):
    rdp = benchmark(compute_rdp, 0.01, 1.1, 1000)
    assert rdp.min() >= 0
