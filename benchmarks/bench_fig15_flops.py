"""Benchmark: regenerate Figure 15 (FLOPS utilization improvement)."""

from benchmarks.conftest import run_once
from repro.experiments import fig15_flops


def test_fig15_flops(benchmark, capsys):
    rows = run_once(benchmark, fig15_flops.run)
    stats = fig15_flops.summarize()
    # Paper: 5.5x avg CNN improvement (max 28.9x), 2.2x for NLP.
    assert stats["cnn_example_grad_improvement"] > 3.0
    assert stats["nlp_example_grad_improvement"] > 1.5
    with capsys.disabled():
        print("\n" + fig15_flops.render(rows))
