"""Benchmark: regenerate the design ablations (drain rate, packing)."""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_drain_rate_ablation(benchmark, capsys):
    points = run_once(benchmark, ablation.drain_rate_sweep)
    speedups = [p.speedup_vs_ws for p in points]
    # A faster drain monotonically improves DiVa's advantage.
    assert all(a <= b for a, b in zip(speedups, speedups[1:]))
    with capsys.disabled():
        print("\ndrain sweep:", {p.label: round(p.speedup_vs_ws, 2)
                                 for p in points})


def test_packing_ablation(benchmark, capsys):
    result = run_once(benchmark, ablation.packing_study, "MobileNet", 8)
    # Section VII's future-work idea pays off on sliver GEMMs.
    assert result.improvement > 3.0
    with capsys.disabled():
        print(f"\npacking: {result.baseline_utilization * 100:.2f}% -> "
              f"{result.packed_utilization * 100:.2f}% "
              f"({result.improvement:.1f}x) at "
              f"{result.area_overhead_fraction * 100:.0f}% area")
