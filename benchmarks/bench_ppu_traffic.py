"""Benchmark: regenerate the Section I / IV-C PPU traffic-reduction claim."""

from benchmarks.conftest import run_once
from repro.experiments import ppu_traffic
from repro.experiments.report import mean


def test_ppu_traffic(benchmark, capsys):
    rows = run_once(benchmark, ppu_traffic.run)
    # Paper: ~99% reduction in post-processing off-chip data movement.
    assert mean([r.reduction for r in rows]) > 0.9
    with capsys.disabled():
        print("\n" + ppu_traffic.render(rows))
