"""Benchmark: streaming fleet-simulator throughput + memory record.

Replays a 10k-job and a 1M-job synthetic trace through the array-backed
streaming scheduler (vectorized trace generation, batched admission,
P²-streaming metrics) and persists jobs/sec and peak RSS to
``BENCH_serve.json`` at the repo root — gitignored locally, uploaded as
a CI artifact like the other perf records, and floor-checked by
``tools/check_bench.py`` so a throughput regression fails the build.

A final instrumented point replays the 1M-job trace with full
observability (``repro.obs.FleetObs`` tracing + metrics) attached and
records the in-loop overhead ratio against the uninstrumented run;
``tools/check_bench.py`` caps it at ``OVERHEAD_CEILING`` so the
zero-overhead-when-disabled contract cannot silently erode.
"""

import json
import resource
import sys
import time
from pathlib import Path

from repro.obs import FleetObs, MetricsRegistry, TraceRecorder
from repro.serve import (
    AdmissionController,
    AutoscalerPolicy,
    FaultConfig,
    FaultModel,
    FleetConfig,
    TenantBudget,
    TraceConfig,
    generate_trace_arrays,
    simulate_fleet_streaming,
)

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: Trace lengths recorded: a quick smoke point and the million-job
#: tentpole the streaming path exists for.
TRACE_SIZES = (10_000, 1_000_000)
#: Mean inter-arrival keeping a 16-chip fleet contended even at 1M jobs.
MEAN_INTERARRIVAL_S = 0.5


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak / 2**20 if sys.platform == "darwin" else peak / 1024


def test_streaming_serve_throughput(capsys):
    """Time the 10k and 1M traces end to end; persist the record.

    The 1M trace runs twice: on the static 16-chip fleet, and
    autoscaled from 4 clusters (the reactive controller makes a scale
    decision after every event, so its overhead is exactly what the
    autoscale floor in ``tools/check_bench.py`` guards).
    """
    points = []
    runs = [(jobs, None) for jobs in TRACE_SIZES]
    runs.append((TRACE_SIZES[-1],
                 AutoscalerPolicy(max_clusters=64,
                                  provision_delay_s=30.0,
                                  cooldown_s=30.0)))
    for jobs, autoscaler in runs:
        start = time.perf_counter()
        trace = generate_trace_arrays(TraceConfig(
            jobs=jobs, seed=7, mean_interarrival_s=MEAN_INTERARRIVAL_S))
        admission = AdmissionController(TenantBudget(epsilon=3.0))
        decisions = admission.admit_batch(trace)
        fleet = FleetConfig(chips=16) if autoscaler is None \
            else FleetConfig(chips=4)
        report = simulate_fleet_streaming(
            trace, fleet, policy="fifo",
            admission=admission, decisions=decisions,
            autoscaler=autoscaler)
        wall = time.perf_counter() - start

        # Streaming contract: every job accounted for, no per-job
        # records retained.
        assert report.submitted == jobs
        assert report.completed + report.rejected == jobs
        assert report.records == ()
        for usage in report.tenants:
            assert usage.epsilon_spent <= usage.budget_epsilon + 1e-9
        if autoscaler is not None:
            assert report.scale_events
            assert report.chip_hours > 0.0

        points.append({
            "jobs": jobs,
            "autoscale": autoscaler is not None,
            "wall_seconds": wall,
            "jobs_per_sec": jobs / wall,
            "peak_rss_mb": _peak_rss_mb(),
            "completed": report.completed,
            "rejected": report.rejected,
            "wait_p99_s": report.wait_p99_s,
            "peak_clusters": report.peak_clusters,
            "chip_hours": report.chip_hours,
        })

    # Instrumentation overhead: replay the 1M static trace back to
    # back with observability off and on (twice each, keeping the
    # best wall time) and record the in-loop overhead ratio.  Span
    # building and metric folding are deferred to ``FleetObs.export``
    # outside the event loop, so the loop only pays O(1) dispatch
    # bookkeeping — ``tools/check_bench.py`` holds the ratio under
    # ``OVERHEAD_CEILING``; the export cost is recorded alongside.
    jobs = TRACE_SIZES[-1]
    trace = generate_trace_arrays(TraceConfig(
        jobs=jobs, seed=7, mean_interarrival_s=MEAN_INTERARRIVAL_S))
    admission_budget = TenantBudget(epsilon=3.0)
    fleet = FleetConfig(chips=16)
    plain_wall = instrumented_wall = float("inf")
    obs = None
    for _ in range(3):
        for instrumented in (False, True):
            admission = AdmissionController(admission_budget)
            decisions = admission.admit_batch(trace)
            run_obs = FleetObs(recorder=TraceRecorder(),
                               metrics=MetricsRegistry()) \
                if instrumented else None
            start = time.perf_counter()
            report = simulate_fleet_streaming(
                trace, fleet, policy="fifo",
                admission=admission, decisions=decisions, obs=run_obs)
            wall = time.perf_counter() - start
            assert report.completed + report.rejected == jobs
            if instrumented:
                if wall < instrumented_wall:
                    instrumented_wall, obs = wall, run_obs
            else:
                plain_wall = min(plain_wall, wall)
    start = time.perf_counter()
    obs.export()
    export_wall = time.perf_counter() - start
    overhead = instrumented_wall / plain_wall
    points.append({
        "jobs": jobs,
        "autoscale": False,
        "instrumented": True,
        "wall_seconds": instrumented_wall,
        "plain_wall_seconds": plain_wall,
        "overhead_ratio": overhead,
        "export_seconds": export_wall,
        "trace_events": len(obs.recorder.events),
        "jobs_per_sec": jobs / instrumented_wall,
        "peak_rss_mb": _peak_rss_mb(),
    })

    # Fault injection: replay the 1M static trace with the failure
    # machinery attached — once with an MTBF no trace can reach (every
    # attempt stays clean, pricing the pure fault-bookkeeping overhead
    # against ``plain_wall``) and once under real fire (crashes,
    # checkpoint restarts, backed-off retries).  ``tools/check_bench.py``
    # floors the faulty jobs/s and caps the zero-failure overhead
    # ratio, so neither the faulty event loop nor the clean-run tax
    # can silently regress.
    fault_walls = {}
    fault_report = None
    for tag, mtbf_hours in (("zero_failure", 1e9), ("faulty", 2.0)):
        faults = FaultModel(FaultConfig(
            mtbf_hours=mtbf_hours, repair_hours=0.05,
            degrade_fraction=0.5, seed=11))
        admission = AdmissionController(admission_budget)
        decisions = admission.admit_batch(trace)
        start = time.perf_counter()
        report = simulate_fleet_streaming(
            trace, fleet, policy="fifo",
            admission=admission, decisions=decisions, faults=faults)
        fault_walls[tag] = time.perf_counter() - start
        assert report.completed + report.failed + report.rejected == jobs
        if tag == "faulty":
            fault_report = report
            assert report.retries > 0
        else:
            assert report.failed == 0 and report.retries == 0
    fault_overhead = fault_walls["zero_failure"] / plain_wall
    points.append({
        "jobs": jobs,
        "autoscale": False,
        "faults": True,
        "wall_seconds": fault_walls["faulty"],
        "jobs_per_sec": jobs / fault_walls["faulty"],
        "zero_failure_wall_seconds": fault_walls["zero_failure"],
        "fault_overhead_ratio": fault_overhead,
        "failed": fault_report.failed,
        "retries": fault_report.retries,
        "goodput": fault_report.goodput,
        "peak_rss_mb": _peak_rss_mb(),
    })

    payload = {
        "benchmark": "serve_streaming",
        "chips": 16,
        "policy": "fifo",
        "mean_interarrival_s": MEAN_INTERARRIVAL_S,
        "points": points,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        for point in points:
            tag = " autoscaled" if point["autoscale"] else ""
            if point.get("instrumented"):
                tag += " instrumented"
            if point.get("faults"):
                tag += " faulty"
            print(f"\nserve streaming — {point['jobs']:,}{tag} jobs in "
                  f"{point['wall_seconds']:.2f}s "
                  f"({point['jobs_per_sec']:,.0f} jobs/s, peak RSS "
                  f"{point['peak_rss_mb']:.0f} MB) -> {BENCH_JSON.name}")
        print(f"serve streaming — observability in-loop overhead "
              f"{overhead:.3f}x, export {export_wall:.1f}s for "
              f"{len(obs.recorder.events):,} events")
        print(f"serve streaming — fault machinery zero-failure "
              f"overhead {fault_overhead:.3f}x, "
              f"{fault_report.retries:,} retries under fire")
    # Loose in-test floors; the CI guard applies the real thresholds.
    assert points[-1]["jobs_per_sec"] > 1_000
    assert overhead < 2.0
    assert fault_overhead < 5.0
