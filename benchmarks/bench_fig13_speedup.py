"""Benchmark: regenerate Figure 13 (end-to-end speedup vs WS)."""

from benchmarks.conftest import run_once
from repro.experiments import fig13_speedup


def test_fig13_speedup(benchmark, capsys):
    rows = run_once(benchmark, fig13_speedup.run)
    stats = fig13_speedup.summarize(rows)
    # Paper: DiVa avg 3.6x (max 7.3x) over WS; DiVa-SGD 1.6x over WS-SGD.
    assert 2.0 < stats["diva_speedup_avg"] < 6.0
    assert stats["diva_speedup_max"] > 3.5
    assert stats["diva_sgd_speedup_avg"] > 1.1
    # DiVa DP approaches non-private WS-SGD performance (paper: 75%).
    assert stats["dp_vs_nonprivate_avg"] > 0.4
    with capsys.disabled():
        print("\n" + fig13_speedup.render(rows))
