"""Benchmark: regenerate Figure 14 (DP-SGD(R) latency breakdown)."""

from benchmarks.conftest import run_once
from repro.experiments import fig14_breakdown
from repro.experiments.report import mean


def test_fig14_breakdown(benchmark, capsys):
    rows = run_once(benchmark, fig14_breakdown.run)
    reductions = fig14_breakdown.example_grad_reduction(rows)
    # Paper: per-example-gradient latency reduced 7.0x avg (max 14.6x).
    assert mean(list(reductions.values())) > 3.0
    with capsys.disabled():
        print("\n" + fig14_breakdown.render(rows))
