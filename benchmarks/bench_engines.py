"""Benchmark: cycle-model throughput on the paper's GEMM classes.

A microbenchmark ablation across the three dataflows on the two GEMM
regimes that decide DP-SGD performance: regular forward GEMMs and
tall-skinny per-example weight-gradient GEMMs.
"""

import pytest

from repro.core import build_accelerator
from repro.workloads.gemms import Gemm

REGULAR = Gemm(32 * 1024, 576, 64)          # conv forward, B=32
SKINNY = Gemm(576, 16, 512, count=32)       # per-example conv wgrad

ENGINES = ("ws", "os", "diva")


@pytest.mark.parametrize("kind", ENGINES)
def test_regular_gemm(benchmark, kind):
    accel = (build_accelerator("ws") if kind == "ws"
             else build_accelerator(kind))
    stats = benchmark(accel.engine.gemm_stats, REGULAR)
    assert stats.utilization > 0.01


@pytest.mark.parametrize("kind", ENGINES)
def test_skinny_gemm(benchmark, kind):
    accel = (build_accelerator("ws") if kind == "ws"
             else build_accelerator(kind))
    stats = benchmark(accel.engine.gemm_stats, SKINNY)
    assert stats.utilization > 0.0005


def test_diva_skinny_advantage(benchmark):
    """The paper's core claim at the microbenchmark level."""
    ws = build_accelerator("ws")
    diva = build_accelerator("diva")

    def compare():
        return (ws.engine.utilization(SKINNY),
                diva.engine.utilization(SKINNY))

    ws_util, diva_util = benchmark(compare)
    assert diva_util > 3 * ws_util
