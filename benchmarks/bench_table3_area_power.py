"""Benchmark: regenerate Table III (power, area, effective TFLOPS)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import table3_area_power


def test_table3_area_power(benchmark, capsys):
    result = run_once(benchmark, table3_area_power.run)
    ws = result.profiles["ws"]
    diva = result.profiles["diva"]
    # Paper: 13.4/13.6/21.2 W; 68/70/82 mm2; DiVa 3.5x TFLOPS/W and
    # 4.6x TFLOPS/mm2 over WS.
    assert ws.power_w == pytest.approx(13.4, rel=0.02)
    assert diva.area_mm2 == pytest.approx(82, rel=0.02)
    assert diva.tflops_per_watt / ws.tflops_per_watt > 2.0
    assert diva.tflops_per_mm2 / ws.tflops_per_mm2 > 3.0
    with capsys.disabled():
        print("\n" + table3_area_power.render(result))
