"""Benchmark: regenerate Figure 4 (memory breakdown, all nine models)."""

from benchmarks.conftest import run_once
from repro.experiments import fig04_memory
from repro.training import Algorithm


def test_fig04_memory(benchmark, capsys):
    rows = run_once(benchmark, fig04_memory.run)
    stats = fig04_memory.summarize(rows)
    # Paper: per-example grads ~78% of DP-SGD memory; DP-SGD(R) ~3.8x
    # smaller than DP-SGD.
    assert stats["dp_sgd_example_grad_fraction"] > 0.6
    assert stats["dp_sgd_r_memory_reduction"] > 2.0
    with capsys.disabled():
        print("\n" + fig04_memory.render(rows))
