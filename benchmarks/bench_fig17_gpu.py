"""Benchmark: regenerate Figure 17 (DiVa vs V100/A100 GPUs)."""

from benchmarks.conftest import run_once
from repro.experiments import fig17_gpu


def test_fig17_gpu(benchmark, capsys):
    rows = run_once(benchmark, fig17_gpu.run)
    # Paper: DiVa competitive with Tensor-Core GPUs despite 4.2x/10.6x
    # lower peak throughput; MobileNet is the GPU-wins exception.
    mobilenet = next(r for r in rows if r.model == "MobileNet")
    assert mobilenet.speedup("DiVa (BF16)", "V100 (FP16)") < 1.0
    bert = next(r for r in rows if r.model == "BERT-large")
    assert bert.speedup("DiVa (BF16)", "V100 (FP16)") > 1.0
    with capsys.disabled():
        print("\n" + fig17_gpu.render(rows))
