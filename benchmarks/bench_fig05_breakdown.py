"""Benchmark: regenerate Figure 5 (WS training-time breakdown)."""

from benchmarks.conftest import run_once
from repro.experiments import fig05_breakdown


def test_fig05_breakdown(benchmark, capsys):
    rows = run_once(benchmark, fig05_breakdown.run)
    stats = fig05_breakdown.summarize(rows)
    # Paper: DP-SGD 9.1x / DP-SGD(R) 5.8x slower than SGD; backprop ~99%.
    assert 4.0 < stats["dp_sgd_slowdown"] < 20.0
    assert 3.0 < stats["dp_sgd_r_slowdown"] < stats["dp_sgd_slowdown"]
    assert stats["dp_backprop_fraction"] > 0.9
    with capsys.disabled():
        print("\n" + fig05_breakdown.render(rows))
