"""Benchmark: regenerate Figure 16 (training-step energy vs WS)."""

from benchmarks.conftest import run_once
from repro.experiments import fig16_energy


def test_fig16_energy(benchmark, capsys):
    rows = run_once(benchmark, fig16_energy.run)
    stats = fig16_energy.summarize()
    # Paper: DiVa reduces energy 2.6x avg (max 4.6x).
    assert 1.5 < stats["diva_energy_reduction_avg"] < 6.0
    assert stats["diva_energy_reduction_max"] > 3.0
    with capsys.disabled():
        print("\n" + fig16_energy.render(rows))
