"""Benchmark: regenerate the GEMM-shape robustness sweep."""

from benchmarks.conftest import run_once
from repro.experiments import gemm_sweep


def test_gemm_sweep(benchmark, capsys):
    points = run_once(benchmark, gemm_sweep.k_sweep)
    # DiVa's advantage peaks at small K and fades once the systolic
    # array is saturated — the crossover structure of Section IV-B.
    assert points[0].diva_advantage > 5.0
    assert points[-1].diva_advantage < 2.0
    with capsys.disabled():
        print("\n" + gemm_sweep.render(points))
