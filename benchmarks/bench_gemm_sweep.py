"""Benchmark: GEMM robustness sweep + cycle-engine throughput tracking.

Besides regenerating the paper-shape sweep, this module measures raw
``gemm_stats`` throughput (closed-form path, cold cache) and persists
it to ``BENCH_gemm_sweep.json`` at the repo root so CI can track the
perf trajectory of the cycle engine across commits.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core import build_accelerator
from repro.experiments import gemm_sweep
from repro.experiments.common import clear_caches
from repro.workloads.gemms import Gemm

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_gemm_sweep.json"

#: Shapes covering the regimes that matter: regular forward GEMMs,
#: remainder tiles in every dimension, and tall-skinny per-example
#: weight gradients.
THROUGHPUT_SHAPES = (
    Gemm(32 * 1024, 576, 64),
    Gemm(300, 77, 128),
    Gemm(257, 129, 131),
    Gemm(576, 16, 512, count=32),
    Gemm(2048, 4, 300),
)


def test_gemm_sweep(benchmark, capsys):
    points = run_once(benchmark, gemm_sweep.k_sweep)
    # DiVa's advantage peaks at small K and fades once the systolic
    # array is saturated — the crossover structure of Section IV-B.
    assert points[0].diva_advantage > 5.0
    assert points[-1].diva_advantage < 2.0
    with capsys.disabled():
        print("\n" + gemm_sweep.render(points))


def test_gemm_stats_throughput(capsys):
    """Smoke-measure closed-form gemm_stats ops/sec; persist to JSON."""
    engines = {kind: build_accelerator(kind, with_ppu=False).engine
               for kind in ("ws", "os", "diva")}
    rounds = 40
    results = {}
    for kind, engine in engines.items():
        calls = 0
        start = time.perf_counter()
        for _ in range(rounds):
            clear_caches()  # measure compute, not cache hits
            for gemm in THROUGHPUT_SHAPES:
                engine.gemm_stats(gemm)
                calls += 1
        elapsed = time.perf_counter() - start
        results[kind] = {
            "calls": calls,
            "seconds": elapsed,
            "ops_per_sec": calls / elapsed,
        }
    payload = {
        "benchmark": "gemm_stats_throughput",
        "shapes": [str(g) for g in THROUGHPUT_SHAPES],
        "engines": results,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        summary = ", ".join(f"{kind}: {r['ops_per_sec']:.0f} ops/s"
                            for kind, r in results.items())
        print(f"\ngemm_stats throughput — {summary} -> {BENCH_JSON.name}")
    # Loose floor: the closed-form path should sustain thousands of
    # stats computations per second even on slow CI machines.
    assert all(r["ops_per_sec"] > 1000 for r in results.values())
