"""Benchmark: regenerate Figure 7 (WS FLOPS utilization per GEMM class)."""

from benchmarks.conftest import run_once
from repro.experiments import fig07_utilization
from repro.workloads import GemmKind


def test_fig07_utilization(benchmark, capsys):
    rows = run_once(benchmark, fig07_utilization.run)
    # Paper: per-example grads show by far the lowest utilization.
    for row in rows:
        assert (row.utilization[GemmKind.WGRAD_EXAMPLE]
                < row.utilization[GemmKind.WGRAD_BATCH])
    with capsys.disabled():
        print("\n" + fig07_utilization.render(rows))
