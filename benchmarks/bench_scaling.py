"""Benchmark: multi-chip scaling smoke sweep + overlap model record.

Runs a small chips x topology x overlap sweep through the cached
experiment runner (in-process, serial) and persists both the modeled
step times and the sweep wall-clock to ``BENCH_scaling.json`` at the
repo root, so CI exercises the overlap-aware communication flags on
every commit and tracks the closed-form sweep's throughput.
"""

import json
import time
from pathlib import Path

from repro.experiments import scaling

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

#: One CNN keeps the sweep fast; the communication model is
#: workload-agnostic beyond the payload size.
MODEL = "SqueezeNet"
CHIPS = (1, 2, 4, 8)
BUCKET_BYTES = 2**20


def _sweep(topology: str, chips_per_node: int, overlap: bool) -> list[dict]:
    return scaling.run(
        models=(MODEL,), chips=CHIPS, algorithms=("DP-SGD",),
        topology=topology, chips_per_node=chips_per_node,
        bucket_bytes=BUCKET_BYTES, overlap=overlap, jobs=1)


def test_scaling_smoke_sweep(capsys):
    """Sweep chips x topology x overlap; persist the record to JSON."""
    configs = [
        ("ring", 1, True),
        ("ring", 1, False),
        ("hierarchical", 2, True),
        ("hierarchical", 2, False),
    ]
    start = time.perf_counter()
    points = []
    by_config: dict[tuple, list[dict]] = {}
    for topology, cpn, overlap in configs:
        rows = _sweep(topology, cpn, overlap)
        assert len(rows) == len(CHIPS)
        by_config[(topology, cpn, overlap)] = rows
        for row in rows:
            points.append({
                "model": row["model"],
                "chips": row["chips"],
                "topology": row["topology"],
                "chips_per_node": row["chips_per_node"],
                "overlap": row["overlap"],
                "bucket_mb": row["bucket_mb"],
                "step_ms": row["step_ms"],
                "comm_ms": row["comm_ms"],
                "comm_total_ms": row["comm_total_ms"],
            })
    wall = time.perf_counter() - start

    # The overlap model's core guarantee, exercised on every CI run:
    # exposed communication never exceeds the serial charge, and the
    # total wire time is schedule-invariant.
    for topology, cpn, _ in configs:
        for on, off in zip(by_config[(topology, cpn, True)],
                           by_config[(topology, cpn, False)]):
            assert on["chips"] == off["chips"]
            assert on["comm_ms"] <= off["comm_ms"] + 1e-9
            assert on["step_ms"] <= off["step_ms"] + 1e-9
            assert on["comm_total_ms"] == off["comm_total_ms"]

    payload = {
        "benchmark": "scaling_smoke_sweep",
        "model": MODEL,
        "chips": list(CHIPS),
        "bucket_bytes": BUCKET_BYTES,
        "points": points,
        "wall_seconds": wall,
        "points_per_sec": len(points) / wall,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print(f"\nscaling smoke sweep — {len(points)} points in "
              f"{wall:.2f}s -> {BENCH_JSON.name}")
    # Loose floor: the closed-form sweep should stay interactive.
    assert wall < 60.0


def _timed(fn, *args, **kwargs):
    from repro.arch.engine import clear_gemm_stats_cache

    clear_gemm_stats_cache()
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_batched_sweep_speedup_vs_pool(capsys):
    """Record the batched engine's speedup over the process pool.

    The ``scaling`` and ``design-space`` sweeps are fully analytic and
    route through the batched closed-form engine; this benchmark times
    the same grids through the legacy process-pool path, asserts the
    rows are value-identical, and appends the measured speedups to
    ``BENCH_scaling.json`` (floor-checked in CI).
    """
    from repro.experiments import design_space, runner

    scaling_work = []
    for model in ("SqueezeNet", "MobileNet", "VGG-16"):
        base, clamped = scaling.default_global_batch_info(
            model, (1, 2, 4, 8))
        for algorithm in ("DP-SGD", "DP-SGD(R)", "SGD"):
            for chips in (1, 2, 4, 8):
                for bucket in (None, 2**20, 4 * 2**20):
                    scaling_work.append(
                        (model, chips, algorithm, "strong", "ring", base,
                         True, bucket, 1, clamped, 1, 1, None))
    design_work = [(model, h, h)
                   for model in ("SqueezeNet", "MobileNet")
                   for h in (32, 48, 64, 96, 128, 160, 192, 256)]

    sections = {}
    for name, work, batched_fn, scalar_fn in (
        ("scaling", scaling_work, scaling.evaluate_points_batched,
         scaling.evaluate_point),
        ("design_space", design_work, design_space.evaluate_points_batched,
         design_space.evaluate_point),
    ):
        batched_rows, batched_s = _timed(batched_fn, work)
        pool_rows, pool_s = _timed(
            runner.sweep, scalar_fn, work, star=True)
        assert batched_rows == pool_rows  # value-identical, not close
        sections[name] = {
            "points": len(work),
            "batched_seconds": batched_s,
            "pool_seconds": pool_s,
            "speedup": pool_s / batched_s,
        }

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["batched_vs_pool"] = sections
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        for name, section in sections.items():
            print(f"\n{name}: batched {section['batched_seconds']*1e3:.0f}ms"
                  f" vs pool {section['pool_seconds']*1e3:.0f}ms -> "
                  f"{section['speedup']:.1f}x")
    for section in sections.values():
        assert section["speedup"] >= 5.0


def test_grid3d_sweep(capsys):
    """Time a batched DP x PP x TP grid and persist its throughput.

    Sweeps every (pp, tp) factorization of an 8-chip cluster across
    two fabrics, checks the batched rows stay value-identical to the
    scalar 3D simulator (the pinned oracle), and records a ``grid3d``
    section in ``BENCH_scaling.json`` (floor-checked in CI) so the
    pipeline-schedule path cannot silently fall back to a slow loop.
    """
    chips = 8
    grids = [(pp, tp) for pp in (1, 2, 4, 8) for tp in (1, 2, 4, 8)
             if pp * tp <= chips and chips % (pp * tp) == 0]
    work = []
    for model in ("SqueezeNet", "VGG-16"):
        base, clamped = scaling.default_global_batch_info(model, (chips,))
        for pp, tp in grids:
            for fabric in (None, "two-tier"):
                work.append((model, chips, "DP-SGD", "strong", "ring",
                             base, True, BUCKET_BYTES, 1, clamped,
                             pp, tp, fabric))

    batched_rows, wall = _timed(scaling.evaluate_points_batched, work)
    scalar_rows = [scaling.evaluate_point(*point) for point in work]
    assert batched_rows == scalar_rows  # value-identical, not close

    payload = {}
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
    payload["grid3d"] = {
        "points": len(work),
        "wall_seconds": wall,
        "points_per_sec": len(work) / wall,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print(f"\n3D-grid sweep — {len(work)} points in {wall*1e3:.0f}ms "
              f"({len(work) / wall:.0f}/s)")
