"""Benchmark: multi-chip scaling smoke sweep + overlap model record.

Runs a small chips x topology x overlap sweep through the cached
experiment runner (in-process, serial) and persists both the modeled
step times and the sweep wall-clock to ``BENCH_scaling.json`` at the
repo root, so CI exercises the overlap-aware communication flags on
every commit and tracks the closed-form sweep's throughput.
"""

import json
import time
from pathlib import Path

from repro.experiments import scaling

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

#: One CNN keeps the sweep fast; the communication model is
#: workload-agnostic beyond the payload size.
MODEL = "SqueezeNet"
CHIPS = (1, 2, 4, 8)
BUCKET_BYTES = 2**20


def _sweep(topology: str, chips_per_node: int, overlap: bool) -> list[dict]:
    return scaling.run(
        models=(MODEL,), chips=CHIPS, algorithms=("DP-SGD",),
        topology=topology, chips_per_node=chips_per_node,
        bucket_bytes=BUCKET_BYTES, overlap=overlap, jobs=1)


def test_scaling_smoke_sweep(capsys):
    """Sweep chips x topology x overlap; persist the record to JSON."""
    configs = [
        ("ring", 1, True),
        ("ring", 1, False),
        ("hierarchical", 2, True),
        ("hierarchical", 2, False),
    ]
    start = time.perf_counter()
    points = []
    by_config: dict[tuple, list[dict]] = {}
    for topology, cpn, overlap in configs:
        rows = _sweep(topology, cpn, overlap)
        assert len(rows) == len(CHIPS)
        by_config[(topology, cpn, overlap)] = rows
        for row in rows:
            points.append({
                "model": row["model"],
                "chips": row["chips"],
                "topology": row["topology"],
                "chips_per_node": row["chips_per_node"],
                "overlap": row["overlap"],
                "bucket_mb": row["bucket_mb"],
                "step_ms": row["step_ms"],
                "comm_ms": row["comm_ms"],
                "comm_total_ms": row["comm_total_ms"],
            })
    wall = time.perf_counter() - start

    # The overlap model's core guarantee, exercised on every CI run:
    # exposed communication never exceeds the serial charge, and the
    # total wire time is schedule-invariant.
    for topology, cpn, _ in configs:
        for on, off in zip(by_config[(topology, cpn, True)],
                           by_config[(topology, cpn, False)]):
            assert on["chips"] == off["chips"]
            assert on["comm_ms"] <= off["comm_ms"] + 1e-9
            assert on["step_ms"] <= off["step_ms"] + 1e-9
            assert on["comm_total_ms"] == off["comm_total_ms"]

    payload = {
        "benchmark": "scaling_smoke_sweep",
        "model": MODEL,
        "chips": list(CHIPS),
        "bucket_bytes": BUCKET_BYTES,
        "points": points,
        "wall_seconds": wall,
        "points_per_sec": len(points) / wall,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    with capsys.disabled():
        print(f"\nscaling smoke sweep — {len(points)} points in "
              f"{wall:.2f}s -> {BENCH_JSON.name}")
    # Loose floor: the closed-form sweep should stay interactive.
    assert wall < 60.0
