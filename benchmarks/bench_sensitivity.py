"""Benchmark: regenerate the Section VI-C sensitivity studies."""

from benchmarks.conftest import run_once
from repro.experiments import sensitivity


def test_sensitivity_images(benchmark, capsys):
    points = run_once(benchmark, sensitivity.run_images)
    avg = sensitivity.averages(points)
    # Paper: speedup decays as images grow (3.6x -> 2.1x -> 1.7x).
    sizes = sorted(avg, key=lambda s: int(s[3:]))
    values = [avg[s] for s in sizes]
    assert all(a >= b for a, b in zip(values, values[1:]))
    with capsys.disabled():
        print("\nimage sweep:", {k: round(v, 2) for k, v in avg.items()})


def test_sensitivity_sequences(benchmark, capsys):
    points = run_once(benchmark, sensitivity.run_sequences)
    avg = sensitivity.averages(points)
    # Paper: 2.0x / 1.6x / 1.5x for 2x/4x/8x sequence lengths.
    lens = sorted(avg, key=lambda s: int(s[3:]))
    values = [avg[s] for s in lens]
    assert all(a >= b for a, b in zip(values, values[1:]))
    with capsys.disabled():
        print("\nsequence sweep:", {k: round(v, 2) for k, v in avg.items()})
