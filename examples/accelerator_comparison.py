"""Compare every accelerator design point on one workload (Figs 13/16/17).

Run:
    python examples/accelerator_comparison.py [model]

Sweeps WS / OS (+-PPU) / DiVa (+-PPU) on DP-SGD(R), prices each step's
energy, and adds the V100/A100 GPU comparison on the backprop
bottleneck GEMMs.
"""

import sys

from repro.arch.gpu import A100, V100, GpuModel
from repro.core import build_accelerator
from repro.energy import EnergyModel
from repro.training import (
    Algorithm,
    bottleneck_gemms,
    max_batch_size,
    simulate_training_step,
)
from repro.workloads import build_model

DESIGNS = (
    ("WS systolic", "ws", False),
    ("OS systolic", "os", False),
    ("OS + PPU", "os", True),
    ("DiVa w/o PPU", "diva", False),
    ("DiVa + PPU", "diva", True),
)


def main(model_name: str = "ResNet-152") -> None:
    network = build_model(model_name)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    energy_model = EnergyModel()
    print(f"{network.describe()}, B={batch}, DP-SGD(R)\n")

    print(f"{'design':14s} {'time (ms)':>10s} {'speedup':>8s} "
          f"{'energy (J)':>11s} {'energy ratio':>12s}")
    base_time = base_energy = None
    for label, kind, with_ppu in DESIGNS:
        accel = (build_accelerator("ws") if kind == "ws"
                 else build_accelerator(kind, with_ppu=with_ppu))
        report = simulate_training_step(network, Algorithm.DP_SGD_R,
                                        accel, batch)
        energy = energy_model.training_energy(report, kind).total_j
        if base_time is None:
            base_time, base_energy = report.total_seconds, energy
        print(f"{label:14s} {report.total_seconds * 1e3:10.2f} "
              f"{base_time / report.total_seconds:7.2f}x "
              f"{energy:11.3f} {base_energy / energy:11.2f}x")

    # -- GPUs on the backpropagation bottleneck GEMMs (Figure 17) ------------
    print("\nBackprop bottleneck GEMMs vs GPUs:")
    gpu_network = build_model(model_name, native_groups=True)
    gemms = bottleneck_gemms(gpu_network, Algorithm.DP_SGD_R, batch)
    diva = build_accelerator("diva", with_ppu=True)
    diva_s = sum(diva.run_gemm(g).cycles for g in gemms) / diva.frequency_hz
    rows = [("DiVa (BF16, 29.5 peak TFLOPS)", diva_s)]
    for config, tc in ((V100, False), (V100, True), (A100, False),
                       (A100, True)):
        gpu = GpuModel(config, tensor_cores=tc)
        rows.append((gpu.name, gpu.gemms_seconds(gemms)))
    for label, seconds in rows:
        print(f"  {label:30s} {seconds * 1e3:9.2f} ms "
              f"(DiVa is {seconds / diva_s:4.2f}x faster)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet-152")
