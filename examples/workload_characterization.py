"""Workload characterization of DP-SGD, in the style of Section III.

Run:
    python examples/workload_characterization.py [model]

For one zoo model, reports: the memory breakdown and max-batch cliff
(Figure 4 / Section III-A), the WS training-time breakdown (Figure 5)
and the per-GEMM-class FLOPS utilization (Figure 7) — the evidence
chain that motivates DiVa.
"""

import sys

from repro.core import build_accelerator
from repro.training import (
    Algorithm,
    PHASE_ORDER,
    max_batch_size,
    memory_breakdown,
    simulate_training_step,
    stage_utilization,
)
from repro.workloads import GemmKind, build_model


def main(model_name: str = "BERT-base") -> None:
    network = build_model(model_name)
    print(f"Characterizing {network.describe()}\n")

    # -- Section III-A: memory and the batch cliff ---------------------------
    print("Max mini-batch under 16 GB HBM:")
    for algorithm in Algorithm:
        batch = max_batch_size(network, algorithm)
        print(f"  {str(algorithm):10s} {batch}")
    batch = max_batch_size(network, Algorithm.DP_SGD)
    print(f"\nMemory breakdown at B={batch} (GB):")
    header = f"  {'algorithm':10s} {'weights':>8s} {'acts':>8s} " \
             f"{'Gbatch':>8s} {'Gexample':>9s} {'else':>8s} {'total':>8s}"
    print(header)
    for algorithm in Algorithm:
        b = memory_breakdown(network, algorithm, batch)
        gb = 2**30
        print(f"  {str(algorithm):10s} {b.weights / gb:8.2f} "
              f"{b.activations / gb:8.2f} {b.batch_gradients / gb:8.2f} "
              f"{b.example_gradients / gb:9.2f} {b.other / gb:8.2f} "
              f"{b.total / gb:8.2f}")

    # -- Section III-B: where the time goes on a TPU-like baseline -----------
    baseline = build_accelerator("ws")
    print(f"\nWS training-step breakdown at B={batch} (ms):")
    reports = {
        algorithm: simulate_training_step(network, algorithm, baseline,
                                          batch)
        for algorithm in Algorithm
    }
    print(f"  {'phase':34s} " + " ".join(
        f"{str(a):>10s}" for a in Algorithm))
    for phase in PHASE_ORDER:
        cells = [reports[a].phase_seconds(phase) * 1e3 for a in Algorithm]
        if any(cells):
            print(f"  {str(phase):34s} "
                  + " ".join(f"{c:10.2f}" for c in cells))
    sgd_time = reports[Algorithm.SGD].total_seconds
    for algorithm in (Algorithm.DP_SGD, Algorithm.DP_SGD_R):
        ratio = reports[algorithm].total_seconds / sgd_time
        print(f"  -> {algorithm} is {ratio:.1f}x slower than SGD "
              f"(backprop {reports[algorithm].backprop_fraction * 100:.0f}%)")

    # -- Section III-C: root cause — per-GEMM-class utilization --------------
    print(f"\nWS FLOPS utilization per GEMM class at B={batch}:")
    for kind in (GemmKind.FORWARD, GemmKind.ACT_GRAD, GemmKind.WGRAD_BATCH,
                 GemmKind.WGRAD_EXAMPLE):
        util = stage_utilization(baseline, network.gemms(kind, batch))
        print(f"  {kind.value:16s} {util * 100:6.2f}%")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "BERT-base")
