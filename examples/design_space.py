"""Design-space ablations for DiVa's key architectural choices.

Run:
    python examples/design_space.py [model]

Sweeps the parameters DESIGN.md calls out: the drain rate R (how many
output rows per clock feed the PPU), the PE array geometry, and the
off-chip bandwidth — quantifying how sensitive DiVa's DP-SGD(R)
advantage is to each.
"""

import sys

from repro.arch.engine import ArrayConfig
from repro.arch.memory import MemoryConfig
from repro.core import DivaConfig, PpuConfig, build_accelerator
from repro.training import Algorithm, max_batch_size, simulate_training_step
from repro.workloads import build_model


def _speedup(network, batch, config: DivaConfig) -> float:
    ws = build_accelerator("ws", config=config)
    diva = build_accelerator("diva", with_ppu=True, config=config)
    base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, batch)
    ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva, batch)
    return base.total_seconds / ours.total_seconds


def main(model_name: str = "ResNet-50") -> None:
    network = build_model(model_name)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    print(f"{network.describe()}, B={batch}, DP-SGD(R); "
          "DiVa-over-WS speedup per design point\n")

    print("Drain rate R (rows/clock; paper default 8):")
    for drain in (2, 4, 8, 16, 32):
        config = DivaConfig(
            array=ArrayConfig(drain_rows_per_cycle=drain),
            ppu=PpuConfig(num_trees=drain),
        )
        print(f"  R={drain:<3d} speedup {_speedup(network, batch, config):.2f}x")

    print("\nPE array geometry (same 16384 MACs unless noted):")
    for height, width in ((64, 64), (64, 256), (128, 128), (256, 128),
                          (256, 256)):
        config = DivaConfig(
            array=ArrayConfig(height=height, width=width),
            ppu=PpuConfig(tree_width=width),
        )
        print(f"  {height}x{width:<4d} speedup "
              f"{_speedup(network, batch, config):.2f}x")

    print("\nOff-chip bandwidth (paper default 450 GB/s):")
    for gbps in (150, 300, 450, 900, 1800):
        config = DivaConfig(
            memory=MemoryConfig(bandwidth_bytes_per_s=gbps * 1e9))
        print(f"  {gbps:>4d} GB/s speedup "
              f"{_speedup(network, batch, config):.2f}x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet-50")
