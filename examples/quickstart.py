"""Quickstart: simulate one DP-SGD(R) training step on DiVa vs a TPU-like
weight-stationary baseline.

Run:
    python examples/quickstart.py [model]

This is the 60-second tour of the library: build a workload from the
zoo, pick the paper's batch policy, run the cycle-level simulation on
two accelerators and compare.
"""

import sys

from repro.core import DivaConfig, build_accelerator
from repro.training import (
    Algorithm,
    PHASE_ORDER,
    max_batch_size,
    simulate_training_step,
)
from repro.workloads import build_model


def main(model_name: str = "ResNet-50") -> None:
    network = build_model(model_name)
    print(f"Workload: {network.describe()}")

    # The paper's batch policy: the largest mini-batch plain DP-SGD fits
    # in TPUv3's 16 GB HBM (Section V).
    batch = max_batch_size(network, Algorithm.DP_SGD)
    print(f"Mini-batch (max feasible for DP-SGD under 16 GB): {batch}\n")

    print("DiVa configuration (Table II):")
    for key, value in DivaConfig().table2().items():
        print(f"  {key:28s} {value}")
    print()

    baseline = build_accelerator("ws")
    diva = build_accelerator("diva", with_ppu=True)

    ws_report = simulate_training_step(network, Algorithm.DP_SGD_R,
                                       baseline, batch)
    diva_report = simulate_training_step(network, Algorithm.DP_SGD_R,
                                         diva, batch)

    print(f"{'Phase':34s} {'WS (ms)':>10s} {'DiVa (ms)':>10s}")
    for phase in PHASE_ORDER:
        ws_ms = ws_report.phase_seconds(phase) * 1e3
        diva_ms = diva_report.phase_seconds(phase) * 1e3
        if ws_ms or diva_ms:
            print(f"{str(phase):34s} {ws_ms:10.3f} {diva_ms:10.3f}")
    print(f"{'TOTAL':34s} {ws_report.total_seconds * 1e3:10.3f} "
          f"{diva_report.total_seconds * 1e3:10.3f}")

    speedup = ws_report.total_seconds / diva_report.total_seconds
    traffic = (1.0 - diva_report.postprocessing_dram_bytes
               / ws_report.postprocessing_dram_bytes)
    print(f"\nDiVa speedup over WS systolic: {speedup:.2f}x "
          f"(paper: avg 3.6x)")
    print(f"Post-processing DRAM traffic removed by the PPU: "
          f"{traffic * 100:.1f}% (paper: ~99%)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet-50")
