"""Multi-tenant fleet serving: schedule a DP-training job trace onto a
pool of DiVa clusters under privacy-budget admission control.

Run:
    python examples/fleet_serving.py [trace_jobs]

Walks through the whole repro.serve stack: generate a seeded Poisson
trace, price each job against its tenant's (epsilon, delta) budget,
replay the trace under every scheduling policy, and compare the fleet
reports.  Also shows what a single job costs in epsilon and how
truncation rescues a job the full request would overspend.
"""

import sys

from repro.dpml import epsilon_for_steps, max_steps_for_budget
from repro.serve import (
    AdmissionController,
    FleetConfig,
    TenantBudget,
    TraceConfig,
    generate_trace,
    simulate_fleet,
)
from repro.serve.metrics import render_tenant_table


def main(trace_jobs: int = 60) -> None:
    # -- 1. one job's privacy price ------------------------------------
    q, sigma, steps, delta = 256 / 20_000, 1.0, 1500, 1e-5
    eps = epsilon_for_steps(q, sigma, steps, delta)
    print(f"A {steps}-step job at q={q:.4f}, sigma={sigma} costs "
          f"epsilon={eps:.2f} (delta={delta})")
    budget = 2.0
    afford = max_steps_for_budget(q, sigma, budget, delta)
    print(f"Under a {budget:.1f}-epsilon budget only {afford} of those "
          f"steps are affordable — admission would truncate it.\n")

    # -- 2. a synthetic multi-tenant trace -----------------------------
    config = TraceConfig(jobs=trace_jobs)
    trace = generate_trace(config)
    private = sum(1 for job in trace if job.is_private)
    print(f"Trace: {len(trace)} jobs from {config.n_tenants} tenants "
          f"({private} private), models {', '.join(config.models)}, "
          f"mean inter-arrival {config.mean_interarrival_s:.0f} s")

    # -- 3. replay under each policy -----------------------------------
    fleet = FleetConfig(chips=4, chips_per_cluster=1)
    print(f"Fleet: {fleet.chips} chips as {fleet.n_clusters} clusters\n")
    header = (f"{'Policy':8s}{'Done':>6s}{'Trunc':>7s}{'Rej':>6s}"
              f"{'p95 wait':>10s}{'Util':>7s}")
    print(header)
    last = None
    for policy in ("fifo", "sjf", "budget"):
        admission = AdmissionController(TenantBudget(epsilon=3.0))
        report = simulate_fleet(trace, fleet, policy=policy,
                                admission=admission)
        print(f"{policy:8s}{report.completed:6d}{report.truncated:7d}"
              f"{report.rejected:6d}{report.wait_p95_s:9.1f}s"
              f"{report.utilization * 100:6.1f}%")
        last = report

    # -- 4. the budget ledger (identical across policies) --------------
    print()
    print(render_tenant_table(last.tenants))
    over = [t for t in last.tenants if not t.within_budget]
    print(f"\nTenants over budget: {len(over)} (admission control "
          "guarantees zero)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
