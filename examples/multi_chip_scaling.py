"""Multi-chip DiVa: shard one DP-SGD step across a cluster and watch
the compute/communication balance shift.

Run:
    python examples/multi_chip_scaling.py [model]

Builds ring- and all-to-all-connected clusters of 1..8 DiVa chips,
shards a fixed global mini-batch across them (strong scaling), and
prints the per-phase breakdown including the new Comm(allreduce) stage,
then shows what the overlap-aware communication model buys: bucketed
gradient allreduces hiding behind the backward pass, and a
hierarchical (all-to-all islands under a cross-node ring) fabric.
"""

import sys

from repro.arch import InterconnectConfig
from repro.core import build_cluster
from repro.training import (
    Algorithm,
    CLUSTER_PHASE_ORDER,
    max_batch_size,
    simulate_training_step,
)
from repro.workloads import build_model


def main(model_name: str = "VGG-16") -> None:
    network = build_model(model_name)
    print(f"Workload: {network.describe()}")

    # Strong scaling: fix the global batch at the single-chip DP-SGD
    # maximum, rounded down to a multiple of the widest cluster.
    batch = max(8, max_batch_size(network, Algorithm.DP_SGD) // 8 * 8)
    print(f"Global mini-batch (fixed): {batch}\n")

    reports = {}
    for chips in (1, 2, 4, 8):
        cluster = build_cluster("diva", n_chips=chips)
        reports[chips] = simulate_training_step(
            network, Algorithm.DP_SGD, cluster, batch)

    header = "".join(f"{f'{n} chips':>12s}" for n in reports)
    print(f"{'Phase':34s}{header}")
    for phase in CLUSTER_PHASE_ORDER:
        cells = [r.phase_seconds(phase) * 1e3 for r in reports.values()]
        if any(cells):
            row = "".join(f"{ms:12.3f}" for ms in cells)
            print(f"{str(phase):34s}{row}")
    totals = "".join(f"{r.total_seconds * 1e3:12.3f}"
                     for r in reports.values())
    print(f"{'TOTAL (ms)':34s}{totals}")

    base = reports[1].total_seconds
    print("\nStrong-scaling summary (ring allreduce):")
    for chips, report in reports.items():
        speedup = base / report.total_seconds
        print(f"  {chips} chips: {speedup:.2f}x speedup, "
              f"{speedup / chips * 100:.0f}% efficiency, "
              f"comm {report.comm_fraction * 100:.1f}% of step, "
              f"{report.comm.link_bytes / 1e6:.1f} MB/chip on the wire")

    # A fully connected fabric pays 2 latency hops instead of 2*(N-1);
    # a hierarchical fabric (all-to-all islands under a cross-node
    # ring) sits in between with far cheaper links than full a2a.
    a2a = build_cluster(
        "diva", n_chips=8,
        interconnect=InterconnectConfig(topology="all_to_all"))
    r_a2a = simulate_training_step(network, Algorithm.DP_SGD, a2a, batch)
    hier = build_cluster(
        "diva", n_chips=8,
        interconnect=InterconnectConfig(topology="hierarchical",
                                        chips_per_node=4))
    r_hier = simulate_training_step(network, Algorithm.DP_SGD, hier, batch)
    print(f"\n8-chip allreduce: ring {reports[8].comm_seconds * 1e3:.3f} ms "
          f"vs hierarchical(4/node) {r_hier.comm_seconds * 1e3:.3f} ms "
          f"vs all-to-all {r_a2a.comm_seconds * 1e3:.3f} ms")

    # Bucketing the gradient payload lets its allreduce overlap the
    # backward compute that produces later buckets (the standard DDP
    # schedule): the Comm phase only charges the exposed remainder.
    bucketed = build_cluster(
        "diva", n_chips=8,
        interconnect=InterconnectConfig(bucket_bytes=2**20))
    r_on = simulate_training_step(
        network, Algorithm.DP_SGD, bucketed, batch, overlap=True)
    r_off = simulate_training_step(
        network, Algorithm.DP_SGD, bucketed, batch, overlap=False)
    print(f"8-chip bucketed (1 MiB) ring comm: "
          f"serial {r_off.comm_seconds * 1e3:.3f} ms -> exposed "
          f"{r_on.comm_seconds * 1e3:.3f} ms "
          f"({r_on.comm_hidden_seconds * 1e3:.3f} ms hidden behind "
          f"backward)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "VGG-16")
