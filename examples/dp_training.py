"""Differentially private training end-to-end on the NumPy substrate.

Run:
    python examples/dp_training.py

Trains a small CNN with DP-SGD on synthetic CIFAR-shaped data, verifies
that plain DP-SGD and reweighted DP-SGD(R) produce identical updates
(the algebraic identity behind Algorithm 1), and reports the privacy
budget spent via the RDP accountant.
"""

import copy

import numpy as np

from repro.dpml import (
    AvgPool2D,
    Conv2D,
    Dense,
    DpSgdOptimizer,
    Flatten,
    PrivacyParams,
    ReLU,
    Sequential,
    evaluate,
    noise_multiplier_for_epsilon,
    synthetic_images,
    train_dpsgd,
)


def build_cnn(seed: int = 0) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2D(3, 16, rng=rng), ReLU(), AvgPool2D(2),
        Conv2D(16, 32, rng=rng), ReLU(), AvgPool2D(2),
        Flatten(),
        Dense(32 * 2 * 2, 10, rng=rng),
    ])


def check_equivalence() -> None:
    """DP-SGD == DP-SGD(R): same minibatch + same noise -> same update."""
    data = synthetic_images(64, 3, 8, 10, seed=1)
    x, y = data.x[:16], data.y[:16]
    net_a = build_cnn(3)
    net_b = copy.deepcopy(net_a)
    for net, step in ((net_a, "step_dpsgd"), (net_b, "step_reweighted")):
        optimizer = DpSgdOptimizer(
            net, lr=0.1, privacy=PrivacyParams(1.0, 1.0),
            rng=np.random.default_rng(42))
        getattr(optimizer, step)(x, y)
    worst = max(
        np.abs(la.params[k] - lb.params[k]).max()
        for la, lb in zip(net_a.weight_layers, net_b.weight_layers)
        for k in la.params
    )
    print(f"DP-SGD vs DP-SGD(R) max weight difference: {worst:.2e} "
          "(identical up to float error)")


def main() -> None:
    check_equivalence()

    data = synthetic_images(512, 3, 8, 10, separation=2.5, seed=0)
    steps, batch, delta = 60, 64, 1e-5
    sigma = noise_multiplier_for_epsilon(
        target_epsilon=8.0, delta=delta,
        sampling_rate=batch / len(data), steps=steps)
    print(f"\nCalibrated noise multiplier for (eps=8, delta={delta}): "
          f"sigma={sigma:.2f}")

    network = build_cnn(0)
    history, accountant = train_dpsgd(
        network, data, steps=steps, batch_size=batch, lr=0.3,
        clip_norm=1.0, noise_multiplier=sigma, delta=delta,
        method="reweighted",
    )
    eps, d = accountant.privacy_spent(delta)
    print(f"Trained {steps} steps of DP-SGD(R):")
    print(f"  loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    print(f"  mean per-example grad norm: {history.grad_norms[-1]:.3f}")
    print(f"  accuracy: {evaluate(network, data) * 100:.1f}%")
    print(f"  privacy spent: (epsilon={eps:.2f}, delta={d})")


if __name__ == "__main__":
    main()
