"""Design-space exploration beyond the paper's Table II point.

The paper evaluates one array geometry (128x128 at 940 MHz).  With the
closed-form GEMM cycle engine, sweeping the geometry is cheap enough to
explore systematically: this experiment evaluates DiVa-over-WS DP-SGD(R)
speedup (and DiVa utilization) across PE-array shapes and models.  The
sweep is fully analytic, so every cache-missing point is priced in one
batched in-process evaluation
(:func:`repro.training.training_step_batch` via
:func:`repro.experiments.runner.cached_batch`), with one JSON cache
entry per point so extending the swept set only computes the new
combinations; the per-point :func:`evaluate_point` stays as the pinned
scalar oracle.

Run it from the CLI::

    python -m repro design-space --models VGG-16 BERT-large \
        --heights 64 128 256 --cache-dir .repro_cache
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments import runner
from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler

#: PE-array heights swept by default (width mirrors height).
DEFAULT_HEIGHTS = (64, 128, 256)
#: Models evaluated by default (one CNN, one transformer).
DEFAULT_MODELS = ("VGG-16", "BERT-large")


def evaluate_point(name: str, height: int, width: int,
                   input_size: int = 32, seq_len: int = 32) -> dict:
    """One design point: DiVa vs WS at one array geometry (picklable).

    Returns a JSON-serializable dict so results can be persisted by
    :func:`repro.experiments.runner.run_cached`.
    """
    from repro.core import build_accelerator
    from repro.training import Algorithm, max_batch_size, \
        simulate_training_step
    from repro.workloads import build_model

    config = _design_config(height, width)
    network = build_model(name, input_size=input_size, seq_len=seq_len)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    ws = build_accelerator("ws", config=config)
    diva = build_accelerator("diva", with_ppu=True, config=config)
    base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, batch)
    ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva, batch)
    return {
        "model": name,
        "height": height,
        "width": width,
        "batch": batch,
        "ws_ms": base.total_seconds * 1e3,
        "diva_ms": ours.total_seconds * 1e3,
        "speedup": base.total_seconds / ours.total_seconds,
    }


def _design_config(height: int, width: int) -> "DivaConfig":
    """The shared WS/DiVa architecture config of one design point."""
    from repro.arch.engine import ArrayConfig
    from repro.core.config import DivaConfig
    from repro.core.ppu import PpuConfig

    array = ArrayConfig(height=height, width=width)
    # The PPU trees must span one PE-array row (DivaConfig invariant).
    ppu = PpuConfig(num_trees=array.drain_rows_per_cycle,
                    tree_width=max(width, 2))
    return DivaConfig(array=array, ppu=ppu)


def evaluate_points_batched(points: list[tuple]) -> list[dict]:
    """Batched-engine evaluation of :func:`evaluate_point` work tuples.

    Both design points of every geometry (the WS baseline and DiVa)
    become one spec list for
    :func:`repro.training.training_step_batch`, so the whole grid's
    GEMMs are priced in a few NumPy passes.  Rows are value-identical
    to the per-point scalar path (the pinned oracle).
    """
    from repro.core import build_accelerator
    from repro.training import Algorithm, max_batch_size
    from repro.training.batch import training_step_batch
    from repro.workloads import build_model

    networks: dict[tuple, object] = {}
    batches: dict[tuple, int] = {}
    accelerators: dict[tuple, object] = {}
    specs = []
    meta = []
    for point in points:
        name, height, width = point[:3]
        input_size = point[3] if len(point) > 3 else 32
        seq_len = point[4] if len(point) > 4 else 32
        net_key = (name, input_size, seq_len)
        network = networks.get(net_key)
        if network is None:
            network = networks[net_key] = build_model(
                name, input_size=input_size, seq_len=seq_len)
            batches[net_key] = max_batch_size(network, Algorithm.DP_SGD)
        batch = batches[net_key]
        pair = []
        for kind in ("ws", "diva"):
            accel_key = (kind, height, width)
            accel = accelerators.get(accel_key)
            if accel is None:
                accel = accelerators[accel_key] = build_accelerator(
                    kind, with_ppu=(kind == "diva"),
                    config=_design_config(height, width))
            pair.append(len(specs))
            specs.append((accel, network, Algorithm.DP_SGD_R, batch))
        meta.append((name, height, width, batch, pair[0], pair[1]))

    seconds = training_step_batch(specs).total_seconds
    return [
        {
            "model": name,
            "height": height,
            "width": width,
            "batch": batch,
            "ws_ms": float(seconds[ws_i]) * 1e3,
            "diva_ms": float(seconds[diva_i]) * 1e3,
            "speedup": float(seconds[ws_i]) / float(seconds[diva_i]),
        }
        for name, height, width, batch, ws_i, diva_i in meta
    ]


def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    heights: tuple[int, ...] = DEFAULT_HEIGHTS,
    widths: tuple[int, ...] | None = None,
    input_size: int = 32,
    seq_len: int = 32,
    jobs: int | None = None,
    cache: "runner.ResultCache | None" = None,
    stats: "runner.CacheStats | None" = None,
    profiler: "Profiler | None" = None,
) -> list[dict]:
    """Sweep the design space; one row per (model, height, width).

    ``stats`` tallies cache hit/miss/stale outcomes (surfaced by the
    ``design-space`` CLI); ``profiler`` times the lookup/compute/write
    stages.
    """
    square_only = widths is None
    widths = widths or heights
    work = [(name, h, w, input_size, seq_len)
            for name in models for h in heights for w in widths
            if not square_only or h == w]
    # One cache entry per point: growing the swept set only computes
    # the new combinations.  The sweep is fully analytic, so misses are
    # priced in one batched in-process evaluation (`jobs` is accepted
    # for API stability; no workers are needed) — `evaluate_point`
    # remains as the pinned scalar oracle.  Key v2: ``input_size`` and
    # ``seq_len`` shape the built model, so they are part of the key
    # (v1 omitted them — a stale-hit bug found by repro-lint R002; the
    # added fields re-hash every entry, invalidating v1 caches).
    del jobs
    return runner.cached_batch(
        evaluate_points_batched, work, cache=cache,
        stats=stats, profiler=profiler,
        key_fn=lambda point: {"experiment": "design_space",
                              "model": point[0], "height": point[1],
                              "width": point[2],
                              "input_size": point[3],
                              "seq_len": point[4]},
    )


def render(rows: list[dict] | None = None) -> str:
    """The design-space sweep as a text table."""
    rows = rows or run()
    table = [
        [row["model"], f'{row["height"]}x{row["width"]}', row["batch"],
         row["ws_ms"], row["diva_ms"], row["speedup"]]
        for row in rows
    ]
    return format_table(
        ["Model", "Array", "Batch", "WS ms", "DiVa ms", "DiVa/WS"],
        table,
        title="Design-space sweep: DP-SGD(R) step latency vs array shape",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
