"""Design-space exploration beyond the paper's Table II point.

The paper evaluates one array geometry (128x128 at 940 MHz).  With the
closed-form GEMM cycle engine, sweeping the geometry is cheap enough to
explore systematically: this experiment evaluates DiVa-over-WS DP-SGD(R)
speedup (and DiVa utilization) across PE-array shapes and models, one
worker process per design point, with one JSON cache entry per point
(:func:`repro.experiments.runner.cached_sweep`) so extending the swept
set only computes the new combinations.

Run it from the CLI::

    python -m repro design-space --models VGG-16 BERT-large \
        --heights 64 128 256 --cache-dir .repro_cache
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import format_table

#: PE-array heights swept by default (width mirrors height).
DEFAULT_HEIGHTS = (64, 128, 256)
#: Models evaluated by default (one CNN, one transformer).
DEFAULT_MODELS = ("VGG-16", "BERT-large")


def evaluate_point(name: str, height: int, width: int,
                   input_size: int = 32, seq_len: int = 32) -> dict:
    """One design point: DiVa vs WS at one array geometry (picklable).

    Returns a JSON-serializable dict so results can be persisted by
    :func:`repro.experiments.runner.run_cached`.
    """
    from repro.arch.engine import ArrayConfig
    from repro.core import build_accelerator
    from repro.core.config import DivaConfig
    from repro.core.ppu import PpuConfig
    from repro.training import Algorithm, max_batch_size, \
        simulate_training_step
    from repro.workloads import build_model

    array = ArrayConfig(height=height, width=width)
    # The PPU trees must span one PE-array row (DivaConfig invariant).
    ppu = PpuConfig(num_trees=array.drain_rows_per_cycle,
                    tree_width=max(width, 2))
    config = DivaConfig(array=array, ppu=ppu)
    network = build_model(name, input_size=input_size, seq_len=seq_len)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    ws = build_accelerator("ws", config=config)
    diva = build_accelerator("diva", with_ppu=True, config=config)
    base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, batch)
    ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva, batch)
    return {
        "model": name,
        "height": height,
        "width": width,
        "batch": batch,
        "ws_ms": base.total_seconds * 1e3,
        "diva_ms": ours.total_seconds * 1e3,
        "speedup": base.total_seconds / ours.total_seconds,
    }


def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    heights: tuple[int, ...] = DEFAULT_HEIGHTS,
    widths: tuple[int, ...] | None = None,
    jobs: int | None = None,
    cache: "runner.ResultCache | None" = None,
) -> list[dict]:
    """Sweep the design space; one row per (model, height, width)."""
    square_only = widths is None
    widths = widths or heights
    work = [(name, h, w)
            for name in models for h in heights for w in widths
            if not square_only or h == w]
    # One cache entry per point: growing the swept set only computes
    # the new (model, height, width) combinations.
    return runner.cached_sweep(
        evaluate_point, work, star=True, jobs=jobs, cache=cache,
        key_fn=lambda point: {"experiment": "design_space",
                              "model": point[0], "height": point[1],
                              "width": point[2]},
    )


def render(rows: list[dict] | None = None) -> str:
    """The design-space sweep as a text table."""
    rows = rows or run()
    table = [
        [row["model"], f'{row["height"]}x{row["width"]}', row["batch"],
         row["ws_ms"], row["diva_ms"], row["speedup"]]
        for row in rows
    ]
    return format_table(
        ["Model", "Array", "Batch", "WS ms", "DiVa ms", "DiVa/WS"],
        table,
        title="Design-space sweep: DP-SGD(R) step latency vs array shape",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
