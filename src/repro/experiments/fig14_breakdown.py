"""Figure 14: DP-SGD(R) training-time breakdown across design points.

Paper result: DiVa's outer product is the only design that fixes the
per-example weight-gradient bottleneck (avg 7.0x, max 14.6x latency
reduction on that stage); the PPU eliminates the gradient-norm stage
for both DiVa and the OS systolic array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DESIGN_POINTS, DETAIL_MODELS, simulate
from repro.experiments.report import format_table, mean
from repro.training import PHASE_ORDER, Algorithm, Phase, TrainingReport


@dataclass(frozen=True)
class Fig14Row:
    """One stacked bar (model x design point)."""

    model: str
    design: str
    report: TrainingReport
    #: Total normalized to the same model's WS bar.
    normalized_total: float


def run(models: tuple[str, ...] = DETAIL_MODELS) -> list[Fig14Row]:
    """Simulate every Figure 14 bar."""
    rows: list[Fig14Row] = []
    for name in models:
        base = simulate(name, Algorithm.DP_SGD_R, "ws", False)
        for label, kind, with_ppu in DESIGN_POINTS:
            report = simulate(name, Algorithm.DP_SGD_R, kind, with_ppu)
            rows.append(Fig14Row(
                model=name,
                design=label,
                report=report,
                normalized_total=report.total_seconds / base.total_seconds,
            ))
    return rows


def example_grad_reduction(rows: list[Fig14Row]) -> dict[str, float]:
    """Per-model reduction of the per-example-grad stage, DiVa vs WS."""
    out: dict[str, float] = {}
    ws = {r.model: r for r in rows if r.design == "WS"}
    diva = {r.model: r for r in rows if r.design == "DiVa with PPU"}
    for model in ws:
        ws_stage = ws[model].report.phase_seconds(Phase.BWD_EXAMPLE_GRAD)
        diva_stage = diva[model].report.phase_seconds(Phase.BWD_EXAMPLE_GRAD)
        out[model] = ws_stage / diva_stage if diva_stage else float("inf")
    return out


def render(rows: list[Fig14Row] | None = None) -> str:
    """Figure 14 as a text table (per-phase, normalized to WS total)."""
    rows = rows or run()
    ws_totals = {
        r.model: r.report.total_seconds for r in rows if r.design == "WS"
    }
    headers = ["Model", "Design"] + [str(p) for p in PHASE_ORDER] + ["Total"]
    table_rows = []
    for r in rows:
        base = ws_totals[r.model]
        cells = [r.report.phase_seconds(p) / base for p in PHASE_ORDER]
        table_rows.append([r.model, r.design] + cells + [r.normalized_total])
    table = format_table(headers, table_rows,
                         title="Figure 14: DP-SGD(R) latency breakdown "
                               "(normalized to WS)")
    reductions = example_grad_reduction(rows)
    footer = (
        f"\nPer-example-grad stage reduction, DiVa vs WS (avg): "
        f"{mean(list(reductions.values())):.1f}x (paper: 7.0x, max 14.6x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
