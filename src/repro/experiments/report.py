"""Plain-text table rendering for the experiment harness.

Every experiment module renders its results as aligned text tables so
``python -m repro.experiments.<fig>`` or the benchmark harness can print
the same rows/series the paper reports.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the standard for speedup aggregation)."""
    vals = [v for v in values if v > 0]
    if not vals:
        raise ValueError("geomean needs positive values")
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
