"""Figure 13: end-to-end speedup vs the WS systolic baseline.

Paper result: DiVa (with PPU) averages 3.6x (max 7.3x) over WS on
DP-SGD(R); DiVa's DP training reaches ~75% of non-private WS-SGD
performance (and beats it on MobileNet / LSTM-large); DiVa also trains
non-private SGD ~1.6x faster than WS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DESIGN_POINTS, all_models, simulate
from repro.experiments.report import format_table, geomean, mean
from repro.training import Algorithm


@dataclass(frozen=True)
class Fig13Row:
    """All Figure 13 bars for one model (speedups vs WS DP-SGD(R))."""

    model: str
    batch: int
    #: label -> speedup over the WS DP-SGD(R) baseline.
    dp_speedups: dict[str, float]
    #: Non-private SGD speedups over WS *DP-SGD(R)* (the figure's
    #: comparison points): {"WS": ..., "DiVa": ...}.
    sgd_speedups: dict[str, float]

    @property
    def diva_vs_ws(self) -> float:
        """DiVa-with-PPU speedup over WS (the headline number)."""
        return self.dp_speedups["DiVa with PPU"]

    @property
    def dp_vs_nonprivate(self) -> float:
        """DiVa DP-SGD(R) performance relative to WS non-private SGD."""
        return self.dp_speedups["DiVa with PPU"] / self.sgd_speedups["WS"]


def run(models: tuple[str, ...] | None = None) -> list[Fig13Row]:
    """Simulate every Figure 13 bar."""
    rows: list[Fig13Row] = []
    for name in models or all_models():
        base = simulate(name, Algorithm.DP_SGD_R, "ws", False)
        dp = {}
        for label, kind, with_ppu in DESIGN_POINTS:
            report = simulate(name, Algorithm.DP_SGD_R, kind, with_ppu)
            dp[label] = base.total_seconds / report.total_seconds
        sgd_ws = simulate(name, Algorithm.SGD, "ws", False)
        sgd_diva = simulate(name, Algorithm.SGD, "diva", True)
        rows.append(Fig13Row(
            model=name,
            batch=base.batch,
            dp_speedups=dp,
            sgd_speedups={
                "WS": base.total_seconds / sgd_ws.total_seconds,
                "DiVa": base.total_seconds / sgd_diva.total_seconds,
            },
        ))
    return rows


def summarize(rows: list[Fig13Row]) -> dict[str, float]:
    """Aggregates quoted in Section VI-A."""
    diva = [r.diva_vs_ws for r in rows]
    return {
        "diva_speedup_avg": mean(diva),
        "diva_speedup_geomean": geomean(diva),
        "diva_speedup_max": max(diva),
        "dp_vs_nonprivate_avg": mean([r.dp_vs_nonprivate for r in rows]),
        "diva_sgd_speedup_avg": mean([
            r.sgd_speedups["DiVa"] / r.sgd_speedups["WS"] for r in rows
        ]),
    }


def render(rows: list[Fig13Row] | None = None) -> str:
    """Figure 13 as a text table."""
    rows = rows or run()
    labels = [label for label, _, _ in DESIGN_POINTS]
    table_rows = []
    for r in rows:
        table_rows.append(
            [r.model, r.batch]
            + [r.dp_speedups[label] for label in labels]
            + [r.sgd_speedups["WS"], r.sgd_speedups["DiVa"]]
        )
    table = format_table(
        ["Model", "B"] + [f"DP {label}" for label in labels]
        + ["SGD WS", "SGD DiVa"],
        table_rows,
        title="Figure 13: speedup vs WS systolic (baseline: WS DP-SGD(R))",
    )
    stats = summarize(rows)
    footer = (
        f"\nDiVa speedup over WS (avg): {stats['diva_speedup_avg']:.1f}x "
        f"(paper: 3.6x), max {stats['diva_speedup_max']:.1f}x (paper: 7.3x)"
        f"\nDiVa DP vs WS non-private SGD (avg): "
        f"{stats['dp_vs_nonprivate_avg'] * 100:.0f}% (paper: 75%)"
        f"\nDiVa-SGD vs WS-SGD (avg): "
        f"{stats['diva_sgd_speedup_avg']:.1f}x (paper: 1.6x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
