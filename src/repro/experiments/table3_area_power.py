"""Table III: power, area and effective throughput per GEMM engine.

Paper values (65 nm, 940 MHz, 16384 MACs): 13.4 / 13.6 / 21.2 W and
68 / 70 / 82 mm^2 for WS / OS / outer-product; effective TFLOPS of
1.2 / 0.9 / 6.6 on the DP workloads, giving DiVa 3.5x TFLOPS/W and
4.6x TFLOPS/mm^2 over WS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import EnergyModel, EngineProfile
from repro.experiments.common import (
    all_models,
    default_batch,
    get_accelerator,
    get_model,
)
from repro.experiments.report import format_table, mean
from repro.workloads import GemmKind

_KINDS = ("ws", "os", "diva")


@dataclass(frozen=True)
class Table3:
    """All Table III columns plus the PPU adjunct."""

    profiles: dict[str, EngineProfile]
    ppu_power_w: float
    ppu_area_mm2: float


def effective_tflops(kind: str,
                     models: tuple[str, ...] | None = None) -> float:
    """Average effective throughput on the per-example-gradient GEMMs.

    Table III profiles the engines on DP-SGD's defining bottleneck —
    the per-example weight-gradient derivation — where the dataflow
    differences are starkest.
    """
    accel = get_accelerator(kind, kind != "ws")
    per_model = []
    for name in models or all_models():
        network = get_model(name)
        batch = default_batch(name)
        flops = 0
        cycles = 0
        for gemm in network.gemms(GemmKind.WGRAD_EXAMPLE, batch):
            stats = accel.engine.gemm_stats(gemm)
            flops += 2 * stats.macs
            cycles += stats.compute_cycles
        per_model.append(flops / (cycles / accel.frequency_hz) / 1e12)
    return mean(per_model)


def run(models: tuple[str, ...] | None = None,
        energy_model: EnergyModel | None = None) -> Table3:
    """Assemble Table III from the area/power model + simulation."""
    em = energy_model or EnergyModel()
    profiles = {
        kind: em.engine_profile(kind, effective_tflops(kind, models))
        for kind in _KINDS
    }
    return Table3(
        profiles=profiles,
        ppu_power_w=em.ppu_power_w(),
        ppu_area_mm2=em.ppu_area_mm2(),
    )


def render(result: Table3 | None = None) -> str:
    """Table III as text."""
    result = result or run()
    rows = []
    for kind in _KINDS:
        p = result.profiles[kind]
        rows.append([
            p.name, p.macs, p.peak_tflops, p.effective_tflops, p.power_w,
            p.area_mm2, p.tflops_per_watt, p.tflops_per_mm2,
        ])
    table = format_table(
        ["GEMM engine", "MACs", "Peak TFLOPS", "Eff. TFLOPS", "Power (W)",
         "Area (mm2)", "Eff. TFLOPS/W", "Eff. TFLOPS/mm2"],
        rows,
        title="Table III: power, area and effective throughput",
    )
    ws = result.profiles["ws"]
    diva = result.profiles["diva"]
    footer = (
        f"\nPPU adjunct: {result.ppu_power_w:.1f} W, "
        f"{result.ppu_area_mm2:.1f} mm2 (paper: 2.6 W, ~3 mm2)"
        f"\nDiVa vs WS: TFLOPS/W "
        f"{diva.tflops_per_watt / ws.tflops_per_watt:.1f}x (paper: 3.5x), "
        f"TFLOPS/mm2 "
        f"{diva.tflops_per_mm2 / ws.tflops_per_mm2:.1f}x (paper: 4.6x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
