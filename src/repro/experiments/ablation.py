"""Design ablations: drain rate, array geometry, and GEMM packing.

Quantifies the architectural choices DESIGN.md calls out:

* the drain rate R (Section IV-C sets R=8 to match the PPU);
* the PE array aspect ratio;
* the Section VII future-work extension — spatial packing of skinny
  GEMMs via segmented broadcast buses
  (:class:`repro.core.packing.PackedOuterProductEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.engine import ArrayConfig
from repro.core import DivaConfig, PpuConfig, build_accelerator
from repro.core.packing import PackedOuterProductEngine, \
    packing_overhead_fraction
from repro.experiments.report import format_table
from repro.training import Algorithm, max_batch_size, simulate_training_step
from repro.training.simulate import stage_utilization
from repro.workloads import GemmKind, build_model


@dataclass(frozen=True)
class AblationPoint:
    """One design variant's end-to-end result."""

    label: str
    speedup_vs_ws: float


def drain_rate_sweep(model: str = "ResNet-50",
                     rates: tuple[int, ...] = (2, 4, 8, 16)) -> list[AblationPoint]:
    """DiVa speedup vs WS as the drain rate R varies."""
    network = build_model(model)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    points = []
    for rate in rates:
        config = DivaConfig(array=ArrayConfig(drain_rows_per_cycle=rate),
                            ppu=PpuConfig(num_trees=rate))
        ws = build_accelerator("ws", config=config)
        diva = build_accelerator("diva", with_ppu=True, config=config)
        base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, batch)
        ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva,
                                      batch)
        points.append(AblationPoint(
            label=f"R={rate}",
            speedup_vs_ws=base.total_seconds / ours.total_seconds,
        ))
    return points


@dataclass(frozen=True)
class PackingResult:
    """Per-example-gradient utilization with/without packing."""

    model: str
    segments: int
    baseline_utilization: float
    packed_utilization: float
    area_overhead_fraction: float

    @property
    def improvement(self) -> float:
        if self.baseline_utilization == 0:
            return 0.0
        return self.packed_utilization / self.baseline_utilization


def packing_study(model: str = "MobileNet", segments: int = 4,
                  native_groups: bool = True) -> PackingResult:
    """Evaluate Section VII's packing idea on per-example gradients.

    MobileNet with native grouped execution is the best case: its
    per-channel GEMMs occupy a sliver of the array each.
    """
    network = build_model(model, native_groups=native_groups)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    gemms = network.gemms(GemmKind.WGRAD_EXAMPLE, batch)
    baseline = build_accelerator("diva", with_ppu=True)
    packed_engine = PackedOuterProductEngine(baseline.config,
                                             bus_segments=segments)

    def utilization(engine) -> float:
        cycles = macs = 0
        for gemm in gemms:
            stats = engine.gemm_stats(gemm)
            cycles += stats.compute_cycles
            macs += stats.macs
        return macs / (cycles * engine.config.peak_macs_per_cycle)

    return PackingResult(
        model=model,
        segments=segments,
        baseline_utilization=utilization(baseline.engine),
        packed_utilization=utilization(packed_engine),
        area_overhead_fraction=packing_overhead_fraction(segments),
    )


def render() -> str:
    """All ablations as text tables."""
    drain = drain_rate_sweep()
    drain_table = format_table(
        ["Drain rate", "DiVa speedup vs WS"],
        [[p.label, p.speedup_vs_ws] for p in drain],
        title="Ablation: PPU drain rate R (paper default: 8)",
    )
    rows = []
    for model in ("MobileNet", "SqueezeNet"):
        for segments in (2, 4, 8):
            result = packing_study(model, segments)
            rows.append([
                model, segments,
                100 * result.baseline_utilization,
                100 * result.packed_utilization,
                result.improvement,
                100 * result.area_overhead_fraction,
            ])
    packing_table = format_table(
        ["Model", "Segments", "Base util %", "Packed util %", "Gain",
         "Area cost %"],
        rows,
        title="Ablation: spatial GEMM packing (Section VII future work)",
    )
    return drain_table + "\n\n" + packing_table


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
