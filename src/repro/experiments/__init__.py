"""Experiment harness: one module per paper figure/table.

==================  ==========================================
Module              Reproduces
==================  ==========================================
``fig04_memory``    Figure 4 (memory breakdown)
``fig05_breakdown`` Figure 5 (WS training-time breakdown)
``fig07_utilization`` Figure 7 (WS FLOPS utilization)
``fig13_speedup``   Figure 13 (end-to-end speedup)
``fig14_breakdown`` Figure 14 (DP latency breakdown)
``fig15_flops``     Figure 15 (utilization improvement)
``fig16_energy``    Figure 16 (energy)
``fig17_gpu``       Figure 17 (vs V100/A100)
``table1_bandwidth`` Table I (SRAM bandwidth)
``table3_area_power`` Table III (power/area/TFLOPS)
``sensitivity``     Section VI-C (image/sequence scaling)
``maxbatch``        Section III-A (max mini-batch)
``ppu_traffic``     Section I/IV-C (99% traffic reduction)
``design_space``    Beyond the paper: PE-array geometry sweep
``scaling``         Beyond the paper: multi-chip DP-SGD scaling
``serve``           Beyond the paper: multi-tenant fleet serving
``capacity``        Beyond the paper: fleet capacity planning
==================  ==========================================

Each module exposes ``run()`` returning structured results and
``render()`` returning the paper-style text table.
"""

from repro.experiments import (
    ablation,
    capacity,
    design_space,
    fig04_memory,
    gemm_sweep,
    fig05_breakdown,
    fig07_utilization,
    fig13_speedup,
    fig14_breakdown,
    fig15_flops,
    fig16_energy,
    fig17_gpu,
    maxbatch,
    ppu_traffic,
    scaling,
    sensitivity,
    serve,
    table1_bandwidth,
    table3_area_power,
)

ALL_EXPERIMENTS = {
    "fig04": fig04_memory,
    "fig05": fig05_breakdown,
    "fig07": fig07_utilization,
    "fig13": fig13_speedup,
    "fig14": fig14_breakdown,
    "fig15": fig15_flops,
    "fig16": fig16_energy,
    "fig17": fig17_gpu,
    "table1": table1_bandwidth,
    "table3": table3_area_power,
    "sensitivity": sensitivity,
    "maxbatch": maxbatch,
    "ppu_traffic": ppu_traffic,
    "ablation": ablation,
    "gemm_sweep": gemm_sweep,
    "design_space": design_space,
    "scaling": scaling,
    "serve": serve,
    "capacity": capacity,
}

__all__ = ["ALL_EXPERIMENTS"]
