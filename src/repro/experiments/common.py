"""Shared experiment configuration and caches.

Per the paper's methodology (Figures 4/5 captions, Section V), every
performance comparison uses, for each model, the maximum mini-batch
size feasible with plain DP-SGD under TPUv3's 16 GB HBM — identically
across SGD / DP-SGD / DP-SGD(R) and across design points.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.accelerator import Accelerator
from repro.core import build_accelerator
from repro.training import (
    Algorithm,
    TrainingReport,
    max_batch_size,
    simulate_training_step,
)
from repro.workloads import MODEL_NAMES, Network, build_model

#: The models of Figures 13-17's detailed subset.
DETAIL_MODELS = ("VGG-16", "ResNet-152", "BERT-large", "LSTM-large")

#: Design points of Figure 13 (label, accelerator kind, with_ppu).
DESIGN_POINTS = (
    ("WS", "ws", False),
    ("OS w/o PPU", "os", False),
    ("OS with PPU", "os", True),
    ("DiVa w/o PPU", "diva", False),
    ("DiVa with PPU", "diva", True),
)


@lru_cache(maxsize=64)
def get_model(name: str, input_size: int = 32, seq_len: int = 32,
              native_groups: bool = False) -> Network:
    """Cached model construction."""
    return build_model(name, input_size=input_size, seq_len=seq_len,
                       native_groups=native_groups)


@lru_cache(maxsize=64)
def default_batch(name: str, input_size: int = 32, seq_len: int = 32) -> int:
    """The paper's batch policy: max DP-SGD batch under 16 GB."""
    return max_batch_size(get_model(name, input_size, seq_len),
                          Algorithm.DP_SGD)


@lru_cache(maxsize=16)
def get_accelerator(kind: str, with_ppu: bool) -> Accelerator:
    """Cached accelerator construction (default Table II config)."""
    if kind == "ws":
        return build_accelerator("ws", with_ppu=False)
    return build_accelerator(kind, with_ppu=with_ppu)


@lru_cache(maxsize=1024)
def simulate(name: str, algorithm: Algorithm, kind: str, with_ppu: bool,
             input_size: int = 32, seq_len: int = 32) -> TrainingReport:
    """Cached training-step simulation at the default batch policy."""
    network = get_model(name, input_size, seq_len)
    batch = default_batch(name, input_size, seq_len)
    accel = get_accelerator(kind, with_ppu)
    return simulate_training_step(network, algorithm, accel, batch)


def all_models() -> tuple[str, ...]:
    """The nine benchmark models in the paper's figure order."""
    return MODEL_NAMES


def clear_caches() -> None:
    """Reset every harness memo (model/accelerator/simulation/stats).

    ``benchmarks/bench_gemm_sweep.py`` calls this between timing rounds
    to measure the cold path; sweep worker processes inherit warm parent
    caches via fork, so it is also the hook for experiments that need a
    cold start.
    """
    from repro.arch.engine import clear_gemm_stats_cache

    get_model.cache_clear()
    default_batch.cache_clear()
    get_accelerator.cache_clear()
    simulate.cache_clear()
    clear_gemm_stats_cache()
