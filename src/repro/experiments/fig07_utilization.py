"""Figure 7: WS-systolic FLOPS utilization per GEMM class.

Paper result: across all nine models, the per-example weight-gradient
GEMMs exhibit far lower compute utilization than forward /
activation-gradient / per-batch weight-gradient GEMMs, root-causing the
DP-SGD slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import all_models, default_batch, \
    get_accelerator, get_model
from repro.experiments.report import format_table
from repro.training import stage_utilization
from repro.workloads import GemmKind

#: Figure 7's x-axis stages, in order.
STAGES = (GemmKind.FORWARD, GemmKind.ACT_GRAD, GemmKind.WGRAD_BATCH,
          GemmKind.WGRAD_EXAMPLE)


@dataclass(frozen=True)
class Fig7Row:
    """Utilization of each GEMM class for one model."""

    model: str
    batch: int
    utilization: dict[GemmKind, float]

    @property
    def example_grad_penalty(self) -> float:
        """How much lower per-example-gradient utilization is vs forward."""
        fwd = self.utilization[GemmKind.FORWARD]
        ex = self.utilization[GemmKind.WGRAD_EXAMPLE]
        return fwd / ex if ex else float("inf")


def run(models: tuple[str, ...] | None = None,
        kind: str = "ws", with_ppu: bool = False) -> list[Fig7Row]:
    """Compute per-stage FLOPS utilization on the chosen engine."""
    accel = get_accelerator(kind, with_ppu)
    rows: list[Fig7Row] = []
    for name in models or all_models():
        network = get_model(name)
        batch = default_batch(name)
        util = {
            stage: stage_utilization(accel, network.gemms(stage, batch))
            for stage in STAGES
        }
        rows.append(Fig7Row(model=name, batch=batch, utilization=util))
    return rows


def render(rows: list[Fig7Row] | None = None) -> str:
    """Figure 7 as a text table (percent utilization)."""
    rows = rows or run()
    table_rows = [
        [r.model, r.batch]
        + [100.0 * r.utilization[stage] for stage in STAGES]
        for r in rows
    ]
    table = format_table(
        ["Model", "B", "Fwdprop %", "Bwd(act grad) %",
         "Bwd(per-batch grad) %", "Bwd(per-example grad) %"],
        table_rows,
        title="Figure 7: WS FLOPS utilization per GEMM class",
    )
    worst = min(rows, key=lambda r: r.utilization[GemmKind.WGRAD_EXAMPLE])
    footer = (
        f"\nLowest per-example-grad utilization: {worst.model} "
        f"({100 * worst.utilization[GemmKind.WGRAD_EXAMPLE]:.2f}%)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
