"""Beyond the paper: capacity planning for the serving fleet.

Answers the operator's inverse question — "what is the smallest fleet
that serves this trace within a p99 queueing-wait SLO (and optionally
a throughput floor)?" — by running
:func:`repro.serve.plan_capacity`'s doubling-plus-bisection search
over the array-backed streaming simulator, then re-verifying the
chosen fleet.  The probe log is part of the result, so the rendered
table shows the whole search trajectory, not just the answer.

Run it from the CLI::

    python -m repro capacity --max-p99-wait 120 --trace-jobs 20000
    python -m repro capacity --target-jobs-per-s 0.5 --trace-shape bursty
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import format_table

#: Defaults sized so the search spans a few doublings on the demo mix.
DEFAULT_MAX_P99_WAIT_S = 120.0
DEFAULT_TRACE_JOBS = 20_000
DEFAULT_MEAN_INTERARRIVAL_S = 1.0


def run(
    trace_jobs: int = DEFAULT_TRACE_JOBS,
    seed: int = 7,
    trace_shape: str = "poisson",
    mean_interarrival_s: float = DEFAULT_MEAN_INTERARRIVAL_S,
    max_p99_wait_s: float = DEFAULT_MAX_P99_WAIT_S,
    target_jobs_per_s: float | None = None,
    chips_per_cluster: int = 1,
    topology: str = "ring",
    chips_per_node: int = 1,
    bucket_bytes: int | None = None,
    overlap: bool = True,
    policy: str = "fifo",
    epsilon_budget: float | None = None,
    delta: float = 1e-5,
    max_clusters: int = 4096,
    cache: "runner.ResultCache | None" = None,
) -> dict:
    """One capacity plan (as a JSON-ready dict) for the given SLO."""
    from repro.serve import TenantBudget, TraceConfig, generate_trace_arrays
    from repro.serve.capacity import plan_capacity

    config = TraceConfig(jobs=trace_jobs, seed=seed, shape=trace_shape,
                         mean_interarrival_s=mean_interarrival_s)
    trace = generate_trace_arrays(config)
    budget = (TenantBudget(epsilon=epsilon_budget, delta=delta)
              if epsilon_budget is not None else None)
    plan = plan_capacity(
        trace,
        max_p99_wait_s=max_p99_wait_s,
        target_jobs_per_s=target_jobs_per_s,
        chips_per_cluster=chips_per_cluster,
        topology=topology, chips_per_node=chips_per_node,
        bucket_bytes=bucket_bytes, overlap=overlap,
        policy=policy, budget=budget, max_clusters=max_clusters,
        cache=cache)
    result = plan.to_dict()
    result["trace_jobs"] = trace_jobs
    result["trace_shape"] = trace_shape
    result["policy"] = policy
    return result


def render(result: dict | None = None) -> str:
    """Probe-trajectory table plus the chosen fleet's verification."""
    result = result if result is not None else run()
    probe_table = format_table(
        ["Clusters", "p99 wait s", "Jobs/s", "Feasible"],
        [[probe["clusters"], probe["p99_wait_s"], probe["jobs_per_s"],
          "yes" if probe["feasible"] else "no"]
         for probe in result["probes"]],
        title=(f"Capacity search: {result['trace_jobs']} "
               f"{result['trace_shape']} jobs, policy "
               f"{result['policy']}, SLO p99 <= "
               f"{result['max_p99_wait_s']:g} s"))
    verdict = (f"Plan: {result['clusters']} clusters "
               f"({result['chips']} chips) "
               + ("meet" if result["feasible"] else "DO NOT meet")
               + f" the SLO; verified p99 wait "
               f"{result['report']['wait_p99_s']:.1f} s at "
               f"{result['report']['throughput_jobs_per_h'] / 3600.0:.3f} "
               f"jobs/s")
    return probe_table + "\n\n" + verdict


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
