"""Parallel experiment runner: process-pool sweeps + persisted JSON caching.

The experiment harness spends its time in many independent simulations
(one per model / design point / scale setting), so the natural speedup
is a process pool: :func:`sweep` maps a module-level function over a
list of picklable work items with a ``ProcessPoolExecutor``, preserving
input order.  ``run_all``, the GEMM robustness sweep, the Section VI-C
sensitivity study and the ``design-space`` CLI subcommand all route
their fan-out through it.

API
---
``sweep(fn, items, *, jobs=None, parallel=None, star=False)``
    Order-preserving map.  ``fn`` must be importable (module-level) and
    ``items`` picklable.  With ``star=True`` each item is a tuple of
    positional arguments.  Falls back to a plain serial loop when
    parallelism is disabled, a single job is requested, or there is at
    most one item.
``run_cached(key_obj, producer, *, cache=None)``
    Persisted JSON memoization: returns ``producer()`` and stores it
    under ``config_hash(key_obj)``; later calls with an equal key load
    the stored value instead of recomputing.  ``producer`` must return
    a JSON-serializable value.  A ``None`` cache (the default when no
    cache directory is configured) disables persistence.
``cached_sweep(fn, items, *, key_fn, cache=None, ...)``
    :func:`sweep` with one persisted entry *per item* (keyed by
    ``config_hash(key_fn(item))``): growing a sweep recomputes only
    the new points.
``cached_batch(batch_fn, items, *, key_fn, cache=None)``
    The in-process counterpart for *analytic* sweeps: one
    ``get_many`` lookup pass per grid, one batched evaluation of the
    missing items (``batch_fn`` gets the list, returns the values in
    order — this is where the NumPy batched engines plug in), one
    ``put_many`` write batch with a single fsync.  The ``scaling`` and
    ``design-space`` experiments route through this; the process pool
    stays for non-analytic work.
``config_hash(obj)``
    Stable short SHA-256 of a canonical JSON rendering of ``obj``
    (dataclasses, enums, tuples and mappings are normalized first).
``ResultCache(root)``
    The JSON file store: one ``<hash>.json`` per entry under ``root``,
    written atomically, carrying both the key and the value so entries
    stay debuggable.

Caching and parallelism knobs
-----------------------------
``REPRO_JOBS``
    Default worker count (otherwise ``os.cpu_count()``).  ``1`` gives
    serial execution.
``REPRO_PARALLEL=0``
    Force every sweep serial regardless of ``jobs`` (useful under
    debuggers, coverage, or in sandboxes without working ``fork``).
``REPRO_CACHE_DIR``
    Enables persisted result caching under this directory for callers
    that do not pass an explicit :class:`ResultCache`.

Stale-entry policy: a cache entry's hash covers every input the caller
puts into ``key_obj`` — sweep parameters plus the relevant architecture
config — so changing any knob produces a fresh entry.  Code changes are
*not* hashed; delete the cache directory (or pass a versioned key) when
the models themselves change.

Examples
--------
Parallel map over picklable work items (``fn`` must live at module
scope so worker processes can import it)::

    from repro.experiments import runner

    def cube(x):                                  # module-level
        return x ** 3

    runner.sweep(cube, [1, 2, 3], jobs=2)         # -> [1, 8, 27]
    runner.sweep(pow, [(2, 3), (3, 2)], star=True)  # -> [8, 9]

Persist one JSON entry per design point, so growing a sweep recomputes
only the new combinations (this is how ``design-space`` and ``scaling``
drive their CLI ``--cache-dir``)::

    cache = runner.ResultCache(".repro_cache")
    rows = runner.cached_sweep(
        evaluate_point, work, star=True, cache=cache,
        key_fn=lambda item: {"experiment": "design_space",
                             "model": item[0], "height": item[1],
                             "width": item[2]})

Memoize a whole experiment under one key::

    table = runner.run_cached({"experiment": "fig13", "rev": 2},
                              lambda: fig13_speedup.run(), cache=cache)
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, ContextManager, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler


@dataclass
class CacheStats:
    """Outcome tally of one (or several) cached lookup passes.

    ``hits`` loaded a stored value, ``misses`` found no entry, and
    ``stale`` found an entry that could not be used (unreadable file,
    corrupt JSON, or a payload without a value) — stale entries are
    recomputed exactly like misses, the distinction only matters for
    reporting.  Pass one instance through several
    :func:`cached_sweep` / :func:`cached_batch` calls to accumulate.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.stale

    def record(self, status: str) -> None:
        """Count one lookup outcome (``"hit"``/``"miss"``/``"stale"``)."""
        if status == "hit":
            self.hits += 1
        elif status == "miss":
            self.misses += 1
        elif status == "stale":
            self.stale += 1
        else:
            raise ValueError(f"unknown cache lookup status {status!r}")

    def render(self) -> str:
        """One CLI-ready summary line."""
        return (f"cache: {self.hits} hits, {self.misses} misses, "
                f"{self.stale} stale")


def _stage(profiler: "Profiler | None", name: str) -> ContextManager:
    """``profiler.stage(name)``, or a no-op when profiling is off."""
    if profiler is None:
        return nullcontext()
    return profiler.stage(name)


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}") from None
    return os.cpu_count() or 1


def parallel_enabled() -> bool:
    """Whether process pools are allowed (``REPRO_PARALLEL`` != 0)."""
    return os.environ.get("REPRO_PARALLEL", "1").strip() != "0"


def _worker_init() -> None:
    """Mark sweep workers: nested sweeps inside them stay serial."""
    os.environ["REPRO_PARALLEL"] = "0"


def sweep(
    fn: Callable,
    items: Iterable,
    *,
    jobs: int | None = None,
    parallel: bool | None = None,
    star: bool = False,
) -> list:
    """Map ``fn`` over ``items`` with a process pool, preserving order."""
    work = list(items)
    if parallel is None:
        parallel = parallel_enabled()
    workers = min(jobs or default_jobs(), max(1, len(work)))
    if not parallel or workers <= 1 or len(work) <= 1:
        if star:
            return [fn(*item) for item in work]
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_worker_init) as pool:
        if star:
            futures = [pool.submit(fn, *item) for item in work]
        else:
            futures = [pool.submit(fn, item) for item in work]
        return [future.result() for future in futures]


def _jsonable(obj: Any) -> Any:
    """Normalize ``obj`` into a canonical JSON-serializable structure."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__qualname__,
                **{key: _jsonable(value)
                   for key, value in asdict(obj).items()}}
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        return {str(key): _jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        return [_jsonable(value) for value in items]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_hash(obj: Any) -> str:
    """Stable 16-hex-digit hash of a configuration object."""
    payload = json.dumps(_jsonable(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class ResultCache:
    """One-JSON-file-per-entry result store keyed by config hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key_hash: str) -> Path:
        return self.root / f"{key_hash}.json"

    def lookup(self, key_hash: str) -> tuple[Any | None, str]:
        """``(value, status)`` for one entry.

        Status is ``"hit"`` (value loaded), ``"miss"`` (no entry on
        disk), or ``"stale"`` (an entry exists but is unusable:
        unreadable file, corrupt JSON, or a payload carrying no value).
        Stale entries behave like misses — the caller recomputes and
        overwrites them — but are tallied separately by
        :class:`CacheStats`.
        """
        try:
            text = self.path(key_hash).read_text()
        except FileNotFoundError:
            return None, "miss"
        except OSError:
            return None, "stale"
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return None, "stale"
        value = payload.get("value") if isinstance(payload, dict) else None
        if value is None:
            return None, "stale"
        return value, "hit"

    def get(self, key_hash: str) -> Any | None:
        """Stored value for ``key_hash``, or None (missing/corrupt)."""
        return self.lookup(key_hash)[0]

    def get_many(self, key_hashes: Iterable[str], *,
                 stats: CacheStats | None = None) -> list[Any | None]:
        """One :meth:`lookup` per hash, as a single batched lookup pass.

        The batched sweep paths resolve a whole grid's cache state up
        front through this (one call per grid, not one per point), so
        misses can be computed together in one vectorized evaluation.
        ``stats`` tallies hit/miss/stale outcomes when given.
        """
        values = []
        for key_hash in key_hashes:
            value, status = self.lookup(key_hash)
            if stats is not None:
                stats.record(status)
            values.append(value)
        return values

    def _publish(self, key_hash: str, key: Any, value: Any,
                 fsync_file: bool) -> None:
        """Write one entry via temp-file + ``os.replace``.

        The temp file lives *in the cache directory* (same filesystem,
        so the rename cannot degrade to copy+delete); a reader can
        observe the old entry or the new one, never torn JSON.
        ``fsync_file`` controls whether the payload is flushed to disk
        before publishing — the durability knob :meth:`put` and
        :meth:`put_many` differ on.
        """
        payload = json.dumps({"key": _jsonable(key), "value": value},
                             indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                if fsync_file:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path(key_hash))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, key_hash: str, key: Any, value: Any) -> None:
        """Atomically persist ``value`` (and its key, for debuggability).

        Concurrent sweep workers (and the serving scheduler's cached
        step-latency lookups) may hammer the same entry: the payload is
        flushed and fsynced, then published with ``os.replace`` — the
        torn-read guarantee of :meth:`_publish`.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self._publish(key_hash, key, value, fsync_file=True)

    def put_many(
        self, entries: Iterable[tuple[str, Any, Any]],
    ) -> None:
        """Persist ``(key_hash, key, value)`` entries, one fsync per batch.

        Each entry still goes through :meth:`_publish` (temp file +
        ``os.replace``), so readers keep :meth:`put`'s torn-read
        guarantee — old entry or new entry, never torn JSON.  What is
        amortized is *durability*: instead of fsyncing every file, the
        batch issues a single directory fsync at the end — a crash can
        lose the latest batch of entries (the cache would simply
        recompute them) but can never surface a corrupt one.  The
        batched sweep paths write a whole grid through this.
        """
        batch = list(entries)
        if not batch:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        for key_hash, key, value in batch:
            self._publish(key_hash, key, value, fsync_file=False)
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        except OSError:
            pass  # some filesystems refuse directory fsync; best effort
        finally:
            os.close(dir_fd)


def default_cache() -> ResultCache | None:
    """The ``REPRO_CACHE_DIR`` cache, or None when caching is disabled."""
    root = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return ResultCache(root) if root else None


def run_cached(
    key_obj: Any,
    producer: Callable[[], Any],
    *,
    cache: ResultCache | None = None,
) -> Any:
    """Return ``producer()``, memoized persistently under ``key_obj``."""
    if cache is None:
        cache = default_cache()
    if cache is None:
        return producer()
    key_hash = config_hash(key_obj)
    hit = cache.get(key_hash)
    if hit is not None:
        return hit
    value = producer()
    cache.put(key_hash, key_obj, value)
    return value


def cached_sweep(
    fn: Callable,
    items: Iterable,
    *,
    key_fn: Callable[[Any], Any],
    cache: ResultCache | None = None,
    jobs: int | None = None,
    parallel: bool | None = None,
    star: bool = False,
    stats: CacheStats | None = None,
    profiler: "Profiler | None" = None,
) -> list:
    """:func:`sweep` with per-item persistent memoization.

    Each item is cached under ``config_hash(key_fn(item))``, so growing
    a sweep only computes the new points — previously stored ones load
    from disk.  ``fn`` must return JSON-serializable values.  Without a
    cache this degrades to a plain :func:`sweep`.  ``stats`` tallies
    hit/miss/stale lookup outcomes; ``profiler`` times the
    lookup/compute/write stages and counts sweep sizes.
    """
    work = list(items)
    if profiler is not None:
        profiler.count("sweep_items", len(work))
    if cache is None:
        cache = default_cache()
    if cache is None:
        with _stage(profiler, "cache/compute"):
            return sweep(fn, work, jobs=jobs, parallel=parallel, star=star)
    with _stage(profiler, "cache/lookup"):
        keys = [key_fn(item) for item in work]
        hashes = [config_hash(key) for key in keys]
        results = cache.get_many(hashes, stats=stats)
    missing = [i for i, value in enumerate(results) if value is None]
    if profiler is not None:
        profiler.count("cache_hits", len(work) - len(missing))
        profiler.count("cache_misses", len(missing))
    with _stage(profiler, "cache/compute"):
        computed = sweep(fn, [work[i] for i in missing],
                         jobs=jobs, parallel=parallel, star=star)
    with _stage(profiler, "cache/write"):
        for index, value in zip(missing, computed):
            cache.put(hashes[index], keys[index], value)
            results[index] = value
    return results


def cached_batch(
    batch_fn: Callable[[list], list],
    items: Iterable,
    *,
    key_fn: Callable[[Any], Any],
    cache: ResultCache | None = None,
    stats: CacheStats | None = None,
    profiler: "Profiler | None" = None,
) -> list:
    """Per-item persistent memoization around one *batched* evaluator.

    The in-process analogue of :func:`cached_sweep` for analytic work:
    instead of fanning items out to a process pool, ``batch_fn``
    receives the list of cache-missing items in input order and must
    return their (JSON-serializable) values in the same order — the
    batched NumPy engines evaluate the whole list in a few broadcast
    passes.  Cache lookups happen in one :meth:`ResultCache.get_many`
    pass per grid and new results land through one
    :meth:`ResultCache.put_many` batch (single fsync).  ``stats``
    tallies hit/miss/stale lookup outcomes; ``profiler`` times the
    lookup/compute/write stages and counts batch sizes.
    """
    work = list(items)
    if profiler is not None:
        profiler.count("batch_items", len(work))
    if cache is None:
        cache = default_cache()
    if cache is None:
        with _stage(profiler, "cache/compute"):
            return batch_fn(work)
    with _stage(profiler, "cache/lookup"):
        keys = [key_fn(item) for item in work]
        hashes = [config_hash(key) for key in keys]
        results = cache.get_many(hashes, stats=stats)
    missing = [i for i, value in enumerate(results) if value is None]
    if profiler is not None:
        profiler.count("cache_hits", len(work) - len(missing))
        profiler.count("cache_misses", len(missing))
    with _stage(profiler, "cache/compute"):
        computed = batch_fn([work[i] for i in missing])
    if len(computed) != len(missing):
        raise ValueError(
            f"batch_fn returned {len(computed)} values for "
            f"{len(missing)} items")
    with _stage(profiler, "cache/write"):
        cache.put_many((hashes[i], keys[i], value)
                       for i, value in zip(missing, computed))
    for index, value in zip(missing, computed):
        results[index] = value
    return results
