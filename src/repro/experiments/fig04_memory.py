"""Figure 4: memory-usage breakdown of SGD vs DP-SGD vs DP-SGD(R).

Paper result: per-example weight gradients average ~78% of DP-SGD's
footprint; DP-SGD(R) shrinks total memory by ~3.8x on average, back to
near-SGD levels.  All three algorithms use the max DP-SGD batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import all_models, default_batch, get_model
from repro.experiments.report import format_table, mean
from repro.training import Algorithm, MemoryBreakdown, memory_breakdown


@dataclass(frozen=True)
class Fig4Row:
    """One bar of Figure 4."""

    model: str
    algorithm: Algorithm
    batch: int
    breakdown: MemoryBreakdown
    #: Total normalized to the same model's SGD footprint.
    normalized_total: float


def run(models: tuple[str, ...] | None = None) -> list[Fig4Row]:
    """Compute every Figure 4 bar."""
    rows: list[Fig4Row] = []
    for name in models or all_models():
        network = get_model(name)
        batch = default_batch(name)
        sgd_total = memory_breakdown(network, Algorithm.SGD, batch).total
        for algorithm in Algorithm:
            breakdown = memory_breakdown(network, algorithm, batch)
            rows.append(Fig4Row(
                model=name,
                algorithm=algorithm,
                batch=batch,
                breakdown=breakdown,
                normalized_total=breakdown.total / sgd_total,
            ))
    return rows


def summarize(rows: list[Fig4Row]) -> dict[str, float]:
    """Aggregate statistics quoted in Section III-A."""
    dp_rows = [r for r in rows if r.algorithm is Algorithm.DP_SGD]
    dp_r_rows = [r for r in rows if r.algorithm is Algorithm.DP_SGD_R]
    example_fraction = mean(
        [r.breakdown.fraction("example_gradients") for r in dp_rows])
    reduction = mean([
        dp.breakdown.total / dp_r.breakdown.total
        for dp, dp_r in zip(dp_rows, dp_r_rows)
    ])
    bloat = mean([r.normalized_total for r in dp_rows])
    return {
        "dp_sgd_example_grad_fraction": example_fraction,
        "dp_sgd_r_memory_reduction": reduction,
        "dp_sgd_memory_bloat_vs_sgd": bloat,
    }


def render(rows: list[Fig4Row] | None = None) -> str:
    """Figure 4 as a text table (normalized to per-model SGD)."""
    rows = rows or run()
    table_rows = []
    for r in rows:
        b = r.breakdown
        table_rows.append([
            r.model, str(r.algorithm), r.batch,
            b.weights / 2**20, b.activations / 2**20,
            b.batch_gradients / 2**20, b.example_gradients / 2**20,
            b.other / 2**20, b.total / 2**30, r.normalized_total,
        ])
    table = format_table(
        ["Model", "Algorithm", "B", "Weights(MB)", "Acts(MB)",
         "BatchGrad(MB)", "ExampleGrad(MB)", "Else(MB)", "Total(GB)",
         "Norm.vs SGD"],
        table_rows,
        title="Figure 4: memory usage breakdown",
    )
    stats = summarize(rows)
    footer = (
        f"\nDP-SGD per-example-gradient share (avg): "
        f"{stats['dp_sgd_example_grad_fraction'] * 100:.1f}% (paper: 78%)"
        f"\nDP-SGD(R) memory reduction vs DP-SGD (avg): "
        f"{stats['dp_sgd_r_memory_reduction']:.2f}x (paper: 3.8x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
