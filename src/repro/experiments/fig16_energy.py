"""Figure 16: training-step energy, normalized to the WS baseline.

Paper result: DiVa reduces energy by 2.6x on average (max 4.6x) — its
higher engine power is outweighed by the shorter training time and the
eliminated per-example-gradient DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy import EnergyBreakdown, EnergyModel
from repro.experiments.common import (
    DESIGN_POINTS,
    DETAIL_MODELS,
    all_models,
    simulate,
)
from repro.experiments.report import format_table, mean
from repro.training import Algorithm


@dataclass(frozen=True)
class Fig16Row:
    """One energy bar (model x design point)."""

    model: str
    design: str
    energy: EnergyBreakdown
    #: Total energy normalized to the same model's WS bar.
    normalized_total: float


def run(models: tuple[str, ...] = DETAIL_MODELS,
        model_override: EnergyModel | None = None) -> list[Fig16Row]:
    """Compute every Figure 16 bar."""
    energy_model = model_override or EnergyModel()
    rows: list[Fig16Row] = []
    for name in models:
        base_report = simulate(name, Algorithm.DP_SGD_R, "ws", False)
        base = energy_model.training_energy(base_report, "ws").total_j
        for label, kind, with_ppu in DESIGN_POINTS:
            report = simulate(name, Algorithm.DP_SGD_R, kind, with_ppu)
            energy = energy_model.training_energy(report, kind)
            rows.append(Fig16Row(
                model=name,
                design=label,
                energy=energy,
                normalized_total=energy.total_j / base,
            ))
    return rows


def summarize(models: tuple[str, ...] | None = None) -> dict[str, float]:
    """Section VI-B aggregate over all nine models."""
    rows = run(models or all_models())
    diva = [1.0 / r.normalized_total for r in rows
            if r.design == "DiVa with PPU"]
    return {
        "diva_energy_reduction_avg": mean(diva),
        "diva_energy_reduction_max": max(diva),
    }


def render(rows: list[Fig16Row] | None = None) -> str:
    """Figure 16 as a text table."""
    rows = rows or run()
    table_rows = []
    for r in rows:
        e = r.energy
        table_rows.append([
            r.model, r.design, e.engine_j, e.ppu_j, e.vector_j, e.sram_j,
            e.dram_j, e.total_j, r.normalized_total,
        ])
    table = format_table(
        ["Model", "Design", "Engine(J)", "PPU(J)", "Vector(J)", "SRAM(J)",
         "DRAM(J)", "Total(J)", "Norm. vs WS"],
        table_rows,
        title="Figure 16: energy consumption (normalized to WS)",
    )
    stats = summarize()
    footer = (
        f"\nDiVa energy reduction (avg over all models): "
        f"{stats['diva_energy_reduction_avg']:.1f}x (paper: 2.6x), "
        f"max {stats['diva_energy_reduction_max']:.1f}x (paper: 4.6x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
