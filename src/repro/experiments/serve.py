"""Beyond the paper: multi-tenant DP-training fleet serving study.

Replays one seeded synthetic job trace (:mod:`repro.serve.job`)
against a fleet of DiVa clusters under each scheduling policy of
:mod:`repro.serve.scheduler` and compares throughput, queueing
latency, utilization and admission outcomes.  Privacy-budget admission
control (:mod:`repro.serve.budget`) runs at job arrival, so the
per-tenant epsilon ledger is identical across policies — the study
isolates *scheduling* effects under a fixed privacy regime.

Run it from the CLI::

    python -m repro serve --trace-jobs 200 --chips 4 --policy sjf
    python -m repro serve --jobs 1000000          # streaming simulator

Traces of 10k+ jobs automatically stream through the array-backed
simulator (vectorized trace + batched admission + P² metrics, see
``docs/performance.md``); ``--streaming`` / ``--no-streaming`` forces
the choice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments import runner
from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler
    from repro.serve import AutoscalerPolicy

# repro.serve is imported lazily inside run()/render(): the serving
# layer itself uses the experiment runner and report helpers, so a
# module-level import here would close an import cycle through the
# experiments package __init__.

def _stage(profiler: "Profiler | None", name: str):
    """``profiler.stage(name)``, or a no-op when profiling is off."""
    from contextlib import nullcontext

    if profiler is None:
        return nullcontext()
    return profiler.stage(name)


#: Default per-tenant lifetime budget of the demo trace.
DEFAULT_EPSILON_BUDGET = 3.0
DEFAULT_DELTA = 1e-5

#: Trace length at which ``run`` switches to the streaming simulator.
STREAMING_THRESHOLD = 10_000


def run(
    policies: tuple[str, ...] | None = None,
    trace_jobs: int = 60,
    seed: int = 7,
    chips: int = 4,
    chips_per_cluster: int = 1,
    topology: str = "ring",
    chips_per_node: int = 1,
    bucket_bytes: int | None = None,
    overlap: bool = True,
    pp: int = 1,
    tp: int = 1,
    fabric: str | None = None,
    epsilon_budget: float = DEFAULT_EPSILON_BUDGET,
    delta: float = DEFAULT_DELTA,
    streaming: bool | None = None,
    trace_shape: str = "poisson",
    mean_interarrival_s: float = 8.0,
    autoscale: "AutoscalerPolicy | None" = None,
    mtbf_hours: float | None = None,
    checkpoint_interval: int | None = None,
    max_retries: int = 3,
    straggler_rate: float = 0.0,
    cache: "runner.ResultCache | None" = None,
    trace_path: str | None = None,
    metrics_dir: str | None = None,
    profiler: "Profiler | None" = None,
) -> list[dict]:
    """One row (fleet-report summary dict) per scheduling policy.

    ``policies=None`` compares every policy in
    :data:`repro.serve.scheduler.POLICIES`.  Every policy replays the
    *same* trace; step latencies are memoized across policies (and
    persisted when a cache is given), so the sweep costs one set of
    closed-form simulations regardless of policy count.

    ``streaming`` picks the simulator: the record-keeping
    :func:`~repro.serve.simulate_fleet` (exact percentiles, per-job
    records) or the array-backed
    :func:`~repro.serve.simulate_fleet_streaming` (vectorized trace +
    admission, O(1) metric memory — million-job traces run in
    seconds).  ``None`` (default) streams from
    :data:`STREAMING_THRESHOLD` jobs up.  The streaming path shares
    one admission pass across policies — admission happens at arrival
    and is therefore policy-invariant.

    ``trace_shape`` / ``mean_interarrival_s`` pick the arrival
    process (:data:`repro.serve.TRACE_SHAPES`); ``autoscale`` (an
    :class:`repro.serve.AutoscalerPolicy`) turns the static fleet
    into a reactive one — both simulators drive the identical scaling
    state, so the comparison stays policy-apples-to-apples.

    ``pp`` / ``tp`` / ``fabric`` shape each cluster's 3D parallel plan
    (see :class:`repro.serve.FleetConfig`): jobs data-parallelize
    across the remaining ``dp`` factor of every cluster.

    ``mtbf_hours`` turns on fault injection (see
    :mod:`repro.serve.faults` and ``docs/reliability.md``): each
    dispatched attempt draws a seeded time-to-failure, crashed jobs
    resume from their last checkpoint (``checkpoint_interval`` steps,
    or the Young/Daly optimum when ``None``) with up to
    ``max_retries`` backed-off retries, and ``straggler_rate`` slows
    a seeded fraction of attempts.  ``None`` (default) is the exact
    fault-free code path — reports are byte-identical to a build
    without the faults module.

    Observability is opt-in and changes nothing when off:
    ``trace_path`` writes one Chrome-trace JSON file covering every
    policy (one trace process per policy, loadable in Perfetto and by
    ``python -m repro trace``); ``metrics_dir`` writes one
    ``metrics_<policy>.json`` registry dump per policy; ``profiler``
    (a :class:`repro.obs.Profiler`) times the harness's own
    trace-generation / admission / simulation stages.  See
    ``docs/observability.md``.
    """
    from repro.serve import (
        AdmissionController,
        FleetConfig,
        TenantBudget,
        TraceConfig,
        generate_trace,
        generate_trace_arrays,
        simulate_fleet,
        simulate_fleet_streaming,
    )
    from repro.serve.scheduler import POLICIES

    if policies is None:
        policies = POLICIES
    if not policies:
        raise ValueError("policies must name at least one policy")
    if streaming is None:
        streaming = trace_jobs >= STREAMING_THRESHOLD
    recorder = None
    if trace_path is not None:
        from repro.obs import TraceRecorder
        recorder = TraceRecorder()
    registries: dict[str, object] = {}

    def _observe(policy: str) -> "object | None":
        # One FleetObs per run; the recorder is shared across policies
        # (one trace process per policy), registries are per-policy.
        if recorder is None and metrics_dir is None:
            return None
        from repro.obs import FleetObs, MetricsRegistry
        metrics = None
        if metrics_dir is not None:
            metrics = registries[policy] = MetricsRegistry()
        return FleetObs(recorder=recorder, metrics=metrics)

    def _export(obs: "object | None") -> None:
        if obs is not None:
            with _stage(profiler, "serve/export"):
                obs.export()

    def _write_outputs() -> None:
        if recorder is not None:
            with _stage(profiler, "serve/export"):
                recorder.write(trace_path)
        if metrics_dir is not None:
            from pathlib import Path
            with _stage(profiler, "serve/export"):
                out = Path(metrics_dir)
                out.mkdir(parents=True, exist_ok=True)
                for policy, registry in registries.items():
                    registry.write(out / f"metrics_{policy}.json")

    config = TraceConfig(jobs=trace_jobs, seed=seed, shape=trace_shape,
                         mean_interarrival_s=mean_interarrival_s)
    fleet = FleetConfig(chips=chips, chips_per_cluster=chips_per_cluster,
                        topology=topology, chips_per_node=chips_per_node,
                        bucket_bytes=bucket_bytes, overlap=overlap,
                        pp=pp, tp=tp, fabric=fabric)
    faults = None
    if mtbf_hours is not None:
        from repro.serve import FaultConfig, FaultModel
        from repro.training import CheckpointConfig
        faults = FaultModel(FaultConfig(
            mtbf_hours=mtbf_hours, straggler_rate=straggler_rate,
            max_retries=max_retries,
            checkpoint=CheckpointConfig(interval_steps=checkpoint_interval),
            seed=seed))
    if profiler is not None:
        profiler.count("trace_jobs", trace_jobs)
        profiler.count("policies", len(policies))
    rows = []
    if streaming:
        with _stage(profiler, "serve/trace"):
            trace = generate_trace_arrays(config)
        admission = AdmissionController(
            TenantBudget(epsilon=epsilon_budget, delta=delta))
        with _stage(profiler, "serve/admission"):
            decisions = admission.admit_batch(trace)
        for policy in policies:
            if faults is not None:
                # Retries re-price the ledger during the run, so the
                # faulty path cannot share one admission pass: each
                # policy replays against a fresh controller.
                admission = AdmissionController(
                    TenantBudget(epsilon=epsilon_budget, delta=delta))
                with _stage(profiler, "serve/admission"):
                    decisions = admission.admit_batch(trace)
            obs = _observe(policy)
            with _stage(profiler, "serve/simulate"):
                report = simulate_fleet_streaming(
                    trace, fleet, policy=policy, admission=admission,
                    decisions=decisions, autoscaler=autoscale,
                    faults=faults, cache=cache, obs=obs)
            _export(obs)
            rows.append(report.to_dict())
        _write_outputs()
        return rows
    with _stage(profiler, "serve/trace"):
        trace = generate_trace(config)
    for policy in policies:
        admission = AdmissionController(
            TenantBudget(epsilon=epsilon_budget, delta=delta))
        obs = _observe(policy)
        with _stage(profiler, "serve/simulate"):
            report = simulate_fleet(trace, fleet, policy=policy,
                                    admission=admission,
                                    autoscaler=autoscale, faults=faults,
                                    cache=cache, obs=obs)
        _export(obs)
        rows.append(report.to_dict())
    _write_outputs()
    return rows


def render(rows: list[dict] | None = None) -> str:
    """Policy-comparison table plus the per-tenant budget ledger."""
    from repro.serve.metrics import TenantUsage, render_tenant_table

    rows = rows if rows is not None else run()
    autoscaled = any(row.get("scale_events") for row in rows)
    faulty = any("faults" in row for row in rows)
    table = [
        [row["policy"], row["submitted"], row["completed"],
         row["truncated"], row["rejected"], row["wait_p50_s"],
         row["wait_p95_s"], row["wait_p99_s"],
         100.0 * row["utilization"], row["throughput_jobs_per_h"]]
        + ([row["peak_clusters"], len(row["scale_events"]),
            row["chip_hours"], row["cost"]] if autoscaled else [])
        + ([row["faults"]["failed"], row["faults"]["retries"],
            row["faults"]["degradations"],
            100.0 * row["faults"]["goodput"]]
           if faulty and "faults" in row else
           ([0, 0, 0, 100.0 * row["utilization"]] if faulty else []))
        for row in rows
    ]
    policy_table = format_table(
        ["Policy", "Jobs", "Done", "Trunc", "Rej", "p50 wait s",
         "p95 wait s", "p99 wait s", "Util %", "Jobs/h"]
        + (["Peak", "Scales", "Chip-h", "Cost"] if autoscaled else [])
        + (["Fail", "Retry", "Degr", "Goodput %"] if faulty else []),
        table,
        title=(f"Fleet serving: {rows[0]['chips']} chips, "
               f"{rows[0]['n_clusters']} clusters"
               if rows else "Fleet serving"),
    )
    if not rows:
        return policy_table
    # Admission happens at arrival, so the ledger is policy-invariant:
    # render it once from the first row.
    tenants = [TenantUsage(**usage) for usage in rows[0]["tenants"]]
    return policy_table + "\n\n" + render_tenant_table(tenants)


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
