"""Table I: on-chip SRAM bandwidth requirements per dataflow.

Paper values for the 128x128 array with 16-bit operands and 32-bit
accumulation: WS needs (2*PE_H + 20*PE_W) bytes/clock; systolic OS and
the outer product need (2*PE_H + 34*PE_W) bytes/clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.bandwidth import SramBandwidth, os_bandwidth, ws_bandwidth
from repro.arch.engine import ArrayConfig
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Table1:
    """Both columns of Table I."""

    ws: SramBandwidth
    os_outer: SramBandwidth


def run(config: ArrayConfig | None = None) -> Table1:
    """Compute Table I for a given (default Table II) array."""
    cfg = config or ArrayConfig()
    return Table1(ws=ws_bandwidth(cfg), os_outer=os_bandwidth(cfg))


def render(result: Table1 | None = None) -> str:
    """Table I as text."""
    result = result or run()
    rows = [
        ["Input LHS", result.ws.lhs_read, result.os_outer.lhs_read],
        ["Input RHS", result.ws.rhs_read, result.os_outer.rhs_read],
        ["Output", result.ws.output_write, result.os_outer.output_write],
        ["Total", result.ws.total, result.os_outer.total],
    ]
    return format_table(
        ["Data type", "Systolic WS (B/clock)",
         "Systolic OS & Outer-product (B/clock)"],
        rows,
        title="Table I: SRAM buffer bandwidth requirements",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
