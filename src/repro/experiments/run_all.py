"""Regenerate every paper table and figure in one run.

Run:
    python -m repro.experiments.run_all

Prints the text rendering of all thirteen experiments, in paper order.
This is the human-readable counterpart of ``pytest benchmarks/``.
"""

from __future__ import annotations

import time

from repro.experiments import ALL_EXPERIMENTS

_ORDER = ("maxbatch", "fig04", "fig05", "fig07", "table1", "fig13",
          "fig14", "fig15", "fig16", "table3", "fig17", "sensitivity",
          "ppu_traffic")


def main() -> None:
    for key in _ORDER:
        module = ALL_EXPERIMENTS[key]
        start = time.perf_counter()
        text = module.render()
        elapsed = time.perf_counter() - start
        banner = f"=== {key} ({elapsed:.1f}s) ==="
        print(banner)
        print(text)
        print()


if __name__ == "__main__":
    main()
