"""Regenerate every paper table and figure in one run.

Run:
    python -m repro.experiments.run_all [--jobs N] [--serial]

Prints the text rendering of every experiment — the paper figures and
tables in paper order, then the beyond-the-paper studies (multi-chip
scaling, fleet serving).
Each experiment renders in its own worker process (see
:mod:`repro.experiments.runner`); output order stays deterministic
because results are collected and printed in paper order.  This is the
human-readable counterpart of ``pytest benchmarks/``.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments import ALL_EXPERIMENTS, runner

_ORDER = ("maxbatch", "fig04", "fig05", "fig07", "table1", "fig13",
          "fig14", "fig15", "fig16", "table3", "fig17", "sensitivity",
          "ppu_traffic", "scaling", "serve", "capacity")


def _render_one(key: str) -> tuple[str, float, str]:
    """Render one experiment (worker-process entry point)."""
    start = time.perf_counter()
    text = ALL_EXPERIMENTS[key].render()
    return key, time.perf_counter() - start, text


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate every paper table/figure")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                             "all cores)")
    parser.add_argument("--serial", action="store_true",
                        help="render experiments one by one in-process")
    args = parser.parse_args(argv)
    if args.serial:
        # Nested sweeps inside render() must serialize too — debuggers
        # and no-fork sandboxes are the whole point of --serial.
        os.environ["REPRO_PARALLEL"] = "0"
    results = runner.sweep(_render_one, _ORDER, jobs=args.jobs,
                           parallel=False if args.serial else None)
    for key, elapsed, text in results:
        print(f"=== {key} ({elapsed:.1f}s) ===")
        print(text)
        print()


if __name__ == "__main__":
    main()
