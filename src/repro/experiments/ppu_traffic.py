"""Section I / IV-C claim: the PPU removes ~99% of the off-chip data
movement of gradient post-processing.

Compares the post-processing DRAM traffic of the WS baseline (which
spills per-example gradients and refetches them) against DiVa with the
PPU (which consumes them during the drain, emitting only norm scalars).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import all_models, simulate
from repro.experiments.report import format_table, mean
from repro.training import Algorithm


@dataclass(frozen=True)
class PpuTrafficRow:
    """Post-processing traffic with and without the PPU."""

    model: str
    ws_bytes: int
    diva_bytes: int

    @property
    def reduction(self) -> float:
        """Fractional traffic eliminated (paper: ~0.99)."""
        if self.ws_bytes == 0:
            return 0.0
        return 1.0 - self.diva_bytes / self.ws_bytes


def run(models: tuple[str, ...] | None = None) -> list[PpuTrafficRow]:
    """Measure post-processing DRAM traffic per design."""
    rows: list[PpuTrafficRow] = []
    for name in models or all_models():
        ws = simulate(name, Algorithm.DP_SGD_R, "ws", False)
        diva = simulate(name, Algorithm.DP_SGD_R, "diva", True)
        rows.append(PpuTrafficRow(
            model=name,
            ws_bytes=ws.postprocessing_dram_bytes,
            diva_bytes=diva.postprocessing_dram_bytes,
        ))
    return rows


def render(rows: list[PpuTrafficRow] | None = None) -> str:
    """The traffic-reduction claim as a text table."""
    rows = rows or run()
    table_rows = [
        [r.model, r.ws_bytes / 2**20, r.diva_bytes / 2**20,
         100.0 * r.reduction]
        for r in rows
    ]
    table = format_table(
        ["Model", "WS post-proc traffic (MB)", "DiVa+PPU (MB)",
         "Reduction %"],
        table_rows,
        title="PPU off-chip traffic reduction during gradient "
              "post-processing",
    )
    avg = mean([r.reduction for r in rows])
    return table + (f"\nAverage reduction: {avg * 100:.1f}% (paper: 99%)")


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
