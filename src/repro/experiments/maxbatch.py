"""Section III-A: maximum feasible mini-batch under 16 GB HBM.

Paper result: SGD trains ResNet-152 / BERT-base at mini-batch 8192 /
1024 while DP-SGD manages only 32 / 8; DP-SGD(R) restores near-SGD
batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import all_models, get_model
from repro.experiments.report import format_table
from repro.training import Algorithm, max_batch_size


@dataclass(frozen=True)
class MaxBatchRow:
    """Max batch of every algorithm for one model."""

    model: str
    sgd: int
    dp_sgd: int
    dp_sgd_r: int

    @property
    def dp_penalty(self) -> float:
        """How much smaller DP-SGD's max batch is vs SGD."""
        return self.sgd / self.dp_sgd


def run(models: tuple[str, ...] | None = None) -> list[MaxBatchRow]:
    """Compute the max-batch table."""
    rows: list[MaxBatchRow] = []
    for name in models or all_models():
        network = get_model(name)
        rows.append(MaxBatchRow(
            model=name,
            sgd=max_batch_size(network, Algorithm.SGD),
            dp_sgd=max_batch_size(network, Algorithm.DP_SGD),
            dp_sgd_r=max_batch_size(network, Algorithm.DP_SGD_R),
        ))
    return rows


def render(rows: list[MaxBatchRow] | None = None) -> str:
    """Section III-A as a text table."""
    rows = rows or run()
    table_rows = [
        [r.model, r.sgd, r.dp_sgd, r.dp_sgd_r, r.dp_penalty]
        for r in rows
    ]
    return format_table(
        ["Model", "SGD", "DP-SGD", "DP-SGD(R)", "SGD/DP-SGD"],
        table_rows,
        title="Section III-A: max mini-batch under 16 GB "
              "(paper: ResNet-152 8192 vs 32; BERT-base 1024 vs 8)",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
