"""Section VI-C sensitivity: larger images and longer sequences.

Paper result: scaling CNN inputs by 4x/16x/64x pixels shrinks DiVa's
advantage from 3.6x to 2.1x/1.7x (bigger GEMMs populate the systolic
array better); scaling sequence length 2x/4x/8x similarly yields
2.0x/1.6x/1.5x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import build_accelerator
from repro.experiments import runner
from repro.experiments.report import format_table, mean
from repro.training import Algorithm, max_batch_size, simulate_training_step
from repro.workloads import build_model
from repro.workloads.zoo import CNN_MODELS, RNN_MODELS, TRANSFORMER_MODELS

#: CNN image sizes: baseline 32 plus 4x/16x/64x *pixels* (2x/4x/8x side).
IMAGE_SIZES = (32, 64, 128, 256)
#: Sequence lengths: baseline 32 plus 2x/4x/8x.
SEQ_LENS = (32, 64, 128, 256)


@dataclass(frozen=True)
class SensitivityPoint:
    """DiVa-over-WS speedup at one scale setting."""

    model: str
    scale_label: str
    batch: int
    speedup: float


def _speedup(name: str, input_size: int, seq_len: int) -> SensitivityPoint:
    network = build_model(name, input_size=input_size, seq_len=seq_len)
    batch = max_batch_size(network, Algorithm.DP_SGD)
    ws = build_accelerator("ws")
    diva = build_accelerator("diva", with_ppu=True)
    base = simulate_training_step(network, Algorithm.DP_SGD_R, ws, batch)
    ours = simulate_training_step(network, Algorithm.DP_SGD_R, diva, batch)
    label = (f"img{input_size}" if name in CNN_MODELS else f"seq{seq_len}")
    return SensitivityPoint(
        model=name,
        scale_label=label,
        batch=batch,
        speedup=base.total_seconds / ours.total_seconds,
    )


def run_images(sizes: tuple[int, ...] = IMAGE_SIZES,
               models: tuple[str, ...] = CNN_MODELS) -> list[SensitivityPoint]:
    """CNN image-size sweep (one worker per model x size)."""
    work = [(name, size, 32) for size in sizes for name in models]
    return runner.sweep(_speedup, work, star=True)


def run_sequences(
    lens: tuple[int, ...] = SEQ_LENS,
    models: tuple[str, ...] = TRANSFORMER_MODELS + RNN_MODELS,
) -> list[SensitivityPoint]:
    """Transformer/RNN sequence-length sweep (one worker per point)."""
    work = [(name, 32, length) for length in lens for name in models]
    return runner.sweep(_speedup, work, star=True)


def averages(points: list[SensitivityPoint]) -> dict[str, float]:
    """Mean speedup per scale setting."""
    labels = sorted({p.scale_label for p in points},
                    key=lambda s: int(s[3:]))
    return {
        label: mean([p.speedup for p in points if p.scale_label == label])
        for label in labels
    }


def render(image_points: list[SensitivityPoint] | None = None,
           seq_points: list[SensitivityPoint] | None = None) -> str:
    """Section VI-C as two text tables."""
    image_points = image_points or run_images()
    seq_points = seq_points or run_sequences()
    img_avg = averages(image_points)
    seq_avg = averages(seq_points)
    img_table = format_table(
        ["Image scale", "Avg DiVa speedup vs WS"],
        [[label, value] for label, value in img_avg.items()],
        title="Section VI-C: image-size sensitivity "
              "(paper: 3.6x/2.1x/1.7x for 4x/16x/64x pixels)",
    )
    seq_table = format_table(
        ["Sequence length", "Avg DiVa speedup vs WS"],
        [[label, value] for label, value in seq_avg.items()],
        title="Section VI-C: sequence-length sensitivity "
              "(paper: 2.0x/1.6x/1.5x for 2x/4x/8x)",
    )
    return img_table + "\n\n" + seq_table


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
