"""Figure 15: FLOPS-utilization improvement over the WS baseline.

Paper result: DiVa improves per-example weight-gradient utilization by
5.5x on average for CNNs (max 28.9x on SqueezeNet) and 2.2x for
Transformers/RNNs; OS alone does not help (it can even be worse).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DETAIL_MODELS,
    all_models,
    default_batch,
    get_accelerator,
    get_model,
)
from repro.experiments.fig07_utilization import STAGES
from repro.experiments.report import format_table, mean
from repro.training import stage_utilization
from repro.workloads import GemmKind
from repro.workloads.model import ModelFamily

_ENGINES = (("WS", "ws"), ("OS", "os"), ("DiVa", "diva"))


@dataclass(frozen=True)
class Fig15Row:
    """Per-stage utilization of one model on one engine."""

    model: str
    family: str
    engine: str
    utilization: dict[GemmKind, float]
    #: Utilization normalized to WS, per stage.
    improvement: dict[GemmKind, float]


def run(models: tuple[str, ...] | None = None) -> list[Fig15Row]:
    """Compute utilization improvements for every engine and stage."""
    rows: list[Fig15Row] = []
    for name in models or DETAIL_MODELS:
        network = get_model(name)
        batch = default_batch(name)
        per_engine: dict[str, dict[GemmKind, float]] = {}
        for label, kind in _ENGINES:
            accel = get_accelerator(kind, kind != "ws")
            per_engine[label] = {
                stage: stage_utilization(accel, network.gemms(stage, batch))
                for stage in STAGES
            }
        ws = per_engine["WS"]
        for label, _ in _ENGINES:
            util = per_engine[label]
            rows.append(Fig15Row(
                model=name,
                family=network.family,
                engine=label,
                utilization=util,
                improvement={
                    stage: (util[stage] / ws[stage]) if ws[stage] else 0.0
                    for stage in STAGES
                },
            ))
    return rows


def summarize(models: tuple[str, ...] | None = None) -> dict[str, float]:
    """Section VI-A aggregates: run over all nine models."""
    rows = run(models or all_models())
    diva = [r for r in rows if r.engine == "DiVa"]
    cnn = [r.improvement[GemmKind.WGRAD_EXAMPLE]
           for r in diva if r.family == ModelFamily.CNN]
    nlp = [r.improvement[GemmKind.WGRAD_EXAMPLE]
           for r in diva if r.family != ModelFamily.CNN]
    return {
        "cnn_example_grad_improvement": mean(cnn),
        "cnn_example_grad_improvement_max": max(cnn),
        "nlp_example_grad_improvement": mean(nlp),
    }


def render(rows: list[Fig15Row] | None = None) -> str:
    """Figure 15 as a text table (improvement vs WS)."""
    rows = rows or run()
    table_rows = [
        [r.model, r.engine]
        + [r.improvement[stage] for stage in STAGES]
        for r in rows
    ]
    table = format_table(
        ["Model", "Engine", "Fwdprop", "Bwd(act grad)",
         "Bwd(per-batch grad)", "Bwd(per-example grad)"],
        table_rows,
        title="Figure 15: FLOPS utilization improvement (normalized to WS)",
    )
    stats = summarize()
    footer = (
        f"\nDiVa per-example-grad improvement, CNNs (avg): "
        f"{stats['cnn_example_grad_improvement']:.1f}x (paper: 5.5x), "
        f"max {stats['cnn_example_grad_improvement_max']:.1f}x (paper: 28.9x)"
        f"\nDiVa per-example-grad improvement, Transformers/RNNs (avg): "
        f"{stats['nlp_example_grad_improvement']:.1f}x (paper: 2.2x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
