"""Figure 5: training-time breakdown on the TPUv3-like WS baseline.

Paper result: DP-SGD / DP-SGD(R) average 9.1x / 5.8x slower than SGD;
backpropagation reaches ~99% of DP training time; DP-SGD(R) outperforms
DP-SGD by ~31% despite its second backpropagation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import all_models, default_batch, simulate
from repro.experiments.report import format_table, mean
from repro.training import PHASE_ORDER, Algorithm, TrainingReport


@dataclass(frozen=True)
class Fig5Row:
    """One stacked bar of Figure 5."""

    model: str
    algorithm: Algorithm
    batch: int
    report: TrainingReport
    #: Total latency normalized to the same model's SGD latency.
    normalized_total: float


def run(models: tuple[str, ...] | None = None) -> list[Fig5Row]:
    """Simulate every Figure 5 bar (WS baseline, max-DP-SGD batch)."""
    rows: list[Fig5Row] = []
    for name in models or all_models():
        sgd = simulate(name, Algorithm.SGD, "ws", False)
        for algorithm in Algorithm:
            report = simulate(name, algorithm, "ws", False)
            rows.append(Fig5Row(
                model=name,
                algorithm=algorithm,
                batch=report.batch,
                report=report,
                normalized_total=report.total_seconds / sgd.total_seconds,
            ))
    return rows


def summarize(rows: list[Fig5Row]) -> dict[str, float]:
    """Aggregates quoted in Section III-B."""
    dp = [r for r in rows if r.algorithm is Algorithm.DP_SGD]
    dp_r = [r for r in rows if r.algorithm is Algorithm.DP_SGD_R]
    return {
        "dp_sgd_slowdown": mean([r.normalized_total for r in dp]),
        "dp_sgd_r_slowdown": mean([r.normalized_total for r in dp_r]),
        "dp_backprop_fraction": mean(
            [r.report.backprop_fraction for r in dp]),
        "dp_sgd_r_vs_dp_sgd": mean([
            1.0 - r2.normalized_total / r1.normalized_total
            for r1, r2 in zip(dp, dp_r)
        ]),
    }


def render(rows: list[Fig5Row] | None = None) -> str:
    """Figure 5 as a text table (per-phase latency, normalized to SGD)."""
    rows = rows or run()
    headers = ["Model", "Algorithm"] + [str(p) for p in PHASE_ORDER] + [
        "Total (norm.)"]
    table_rows = []
    for r in rows:
        sgd_total = r.report.total_seconds / r.normalized_total
        phase_cells = [
            r.report.phase_seconds(p) / sgd_total for p in PHASE_ORDER
        ]
        table_rows.append([r.model, str(r.algorithm)] + phase_cells
                          + [r.normalized_total])
    table = format_table(headers, table_rows,
                         title="Figure 5: training-time breakdown "
                               "(normalized to SGD)")
    stats = summarize(rows)
    footer = (
        f"\nDP-SGD slowdown vs SGD (avg): {stats['dp_sgd_slowdown']:.1f}x "
        f"(paper: 9.1x)"
        f"\nDP-SGD(R) slowdown vs SGD (avg): "
        f"{stats['dp_sgd_r_slowdown']:.1f}x (paper: 5.8x)"
        f"\nDP backprop fraction (avg): "
        f"{stats['dp_backprop_fraction'] * 100:.1f}% (paper: ~99%)"
        f"\nDP-SGD(R) faster than DP-SGD by (avg): "
        f"{stats['dp_sgd_r_vs_dp_sgd'] * 100:.0f}% (paper: 31%)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
