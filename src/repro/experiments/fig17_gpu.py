"""Figure 17: DiVa vs NVIDIA V100/A100 on DP-SGD's bottleneck GEMMs.

Paper result: on the backpropagation GEMM stages of DP-SGD(R), DiVa
averages 1.2x / 1.0x over V100 / A100 with Tensor Cores (max 4.1x /
3.4x) despite having only ~24% / ~9.5% of their peak FP16 throughput.
MobileNet is the exception where the GPUs win: their SIMD mapping of
tiny grouped GEMMs beats the spatial array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gpu import A100, V100, GpuModel
from repro.experiments.common import (
    all_models,
    default_batch,
    get_accelerator,
    get_model,
)
from repro.experiments.report import format_table, mean
from repro.training import Algorithm, bottleneck_gemms


@dataclass(frozen=True)
class Fig17Row:
    """Bottleneck-GEMM latency of every device for one model."""

    model: str
    batch: int
    #: device label -> seconds on the backprop GEMM stages.
    seconds: dict[str, float]

    def speedup(self, device: str, baseline: str) -> float:
        return self.seconds[baseline] / self.seconds[device]


_DEVICES = (
    ("V100 (FP32)", V100, False),
    ("V100 (FP16)", V100, True),
    ("A100 (FP32)", A100, False),
    ("A100 (FP16)", A100, True),
)


def _diva_seconds(model: str, batch: int) -> float:
    """DiVa latency over the DP-SGD(R) backprop GEMM stages."""
    accel = get_accelerator("diva", True)
    network = get_model(model)
    total = 0
    for gemm in bottleneck_gemms(network, Algorithm.DP_SGD_R, batch):
        total += accel.run_gemm(gemm).cycles
    return total / accel.frequency_hz


def run(models: tuple[str, ...] | None = None) -> list[Fig17Row]:
    """Price the bottleneck GEMMs on every device."""
    rows: list[Fig17Row] = []
    for name in models or all_models():
        batch = default_batch(name)
        # GPUs execute grouped convolutions natively (dedicated
        # depthwise kernels); the arrays use the dense lowering.
        gpu_network = get_model(name, native_groups=True)
        gemms = bottleneck_gemms(gpu_network, Algorithm.DP_SGD_R, batch)
        seconds: dict[str, float] = {}
        for label, config, tensor_cores in _DEVICES:
            gpu = GpuModel(config, tensor_cores=tensor_cores)
            seconds[label] = gpu.gemms_seconds(gemms)
        seconds["DiVa (BF16)"] = _diva_seconds(name, batch)
        rows.append(Fig17Row(model=name, batch=batch, seconds=seconds))
    return rows


def summarize(rows: list[Fig17Row]) -> dict[str, float]:
    """Section VI-D aggregates."""
    v100 = [r.speedup("DiVa (BF16)", "V100 (FP16)") for r in rows]
    a100 = [r.speedup("DiVa (BF16)", "A100 (FP16)") for r in rows]
    return {
        "diva_vs_v100_avg": mean(v100),
        "diva_vs_v100_max": max(v100),
        "diva_vs_a100_avg": mean(a100),
        "diva_vs_a100_max": max(a100),
    }


def render(rows: list[Fig17Row] | None = None) -> str:
    """Figure 17 as a text table (speedups normalized to GPU FP32)."""
    rows = rows or run()
    table_rows = []
    for r in rows:
        table_rows.append([
            r.model,
            1.0,
            r.speedup("V100 (FP16)", "V100 (FP32)"),
            r.speedup("DiVa (BF16)", "V100 (FP32)"),
            1.0,
            r.speedup("A100 (FP16)", "A100 (FP32)"),
            r.speedup("DiVa (BF16)", "A100 (FP32)"),
        ])
    table = format_table(
        ["Model", "V100 FP32", "V100 FP16", "DiVa vs V100",
         "A100 FP32", "A100 FP16", "DiVa vs A100"],
        table_rows,
        title="Figure 17: bottleneck-GEMM speedup vs GPUs "
              "(normalized to each GPU's FP32)",
    )
    stats = summarize(rows)
    footer = (
        f"\nDiVa vs V100 Tensor Cores (avg): "
        f"{stats['diva_vs_v100_avg']:.1f}x (paper: 1.2x), max "
        f"{stats['diva_vs_v100_max']:.1f}x (paper: 4.1x)"
        f"\nDiVa vs A100 Tensor Cores (avg): "
        f"{stats['diva_vs_a100_avg']:.1f}x (paper: 1.0x), max "
        f"{stats['diva_vs_a100_max']:.1f}x (paper: 3.4x)"
    )
    return table + footer


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
