"""GEMM-shape robustness sweep across the three dataflows.

The paper validated its TPUv3 model "across a wide range of GEMM
shapes" (Pearson 0.95, Section V) and argues DiVa's outer product is
robust where systolic arrays are not.  This experiment maps the
utilization surface over the K dimension (the axis DP-SGD stresses) and
over matrix aspect ratios, making the crossovers explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import runner
from repro.experiments.common import get_accelerator
from repro.experiments.report import format_table
from repro.workloads.gemms import Gemm

#: K values swept (per-example gradients live at the small end).
K_SWEEP = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)

_ENGINES = (("WS", "ws", False), ("OS", "os", False), ("DiVa", "diva", True))


@dataclass(frozen=True)
class SweepPoint:
    """Utilization of all engines at one GEMM shape."""

    gemm: Gemm
    utilization: dict[str, float]

    @property
    def diva_advantage(self) -> float:
        ws = self.utilization["WS"]
        return self.utilization["DiVa"] / ws if ws else float("inf")


def sweep_point(m: int, k: int, n: int) -> SweepPoint:
    """Utilization of every engine at one shape (picklable worker)."""
    util = {}
    for label, kind, with_ppu in _ENGINES:
        accel = get_accelerator(kind, with_ppu)
        util[label] = accel.engine.utilization(Gemm(m, k, n))
    return SweepPoint(gemm=Gemm(m, k, n), utilization=util)


def k_sweep(m: int = 1024, n: int = 512,
            ks: tuple[int, ...] = K_SWEEP) -> list[SweepPoint]:
    """Sweep the K dimension at a fixed (M, N) footprint."""
    return runner.sweep(sweep_point, [(m, k, n) for k in ks], star=True)


def aspect_sweep(macs: int = 2**24) -> list[SweepPoint]:
    """Sweep aspect ratios at constant MAC count (square -> skinny)."""
    shapes = []
    side = round(macs ** (1 / 3))
    for squish in (1, 4, 16, 64, 256):
        k = max(1, side // squish)
        mn = int((macs / k) ** 0.5)
        shapes.append((mn, k, mn))
    return runner.sweep(sweep_point, shapes, star=True)


def render(points: list[SweepPoint] | None = None) -> str:
    """The K sweep as a text table."""
    points = points or k_sweep()
    rows = [
        [p.gemm.k,
         100 * p.utilization["WS"],
         100 * p.utilization["OS"],
         100 * p.utilization["DiVa"],
         p.diva_advantage]
        for p in points
    ]
    return format_table(
        ["K", "WS util %", "OS util %", "DiVa util %", "DiVa/WS"],
        rows,
        title=f"GEMM robustness sweep at M={points[0].gemm.m}, "
              f"N={points[0].gemm.n}",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
