"""Multi-chip data-parallel DP-SGD scaling study (beyond the paper).

DiVa (MICRO 2022) evaluates one chip, but DP-SGD is data-parallel by
construction: per-example clipping is local to a shard, and only the
clipped-gradient sum plus per-example norm bookkeeping cross chips
(:func:`repro.training.simulate.allreduce_payload_bytes`).  This
experiment sweeps chip count x workload x DP algorithm on a
:class:`~repro.arch.cluster.Cluster` of DiVa chips and reports the
speedup, scaling efficiency, and communication/compute breakdown of a
sharded training step, under either scaling regime:

``strong``
    The global mini-batch is fixed (the largest multiple of
    ``lcm(chip counts)`` that fits a single chip, by default) and split
    ever thinner across chips.
``weak``
    The per-chip shard is fixed and the global batch grows with the
    cluster, so ideal scaling keeps the step time flat.

The communication model is overlap-aware: ``bucket_bytes`` splits the
gradient allreduce into pipelined buckets, ``overlap`` hides them
behind the backward pass, and the ``hierarchical`` topology composes
all-to-all islands of ``chips_per_node`` chips under a cross-node ring
(see :mod:`repro.arch.interconnect`).  Rows report both the exposed
(critical-path) and total communication time.

The sweep is fully analytic, so it runs in-process through the batched
closed-form engine (:func:`repro.training.sharded_step_batch` via
:func:`repro.experiments.runner.cached_batch`): cache lookups resolve
in one pass per grid, every miss is priced in a few NumPy broadcast
passes, and results persist with one JSON entry per point — growing
the swept set still only computes the new combinations.  The
per-point scalar :func:`evaluate_point` remains as the pinned oracle.

Run it from the CLI::

    python -m repro scaling --chips 1 2 4 8 --mode strong \
        --topology hierarchical --chips-per-node 4 \
        --bucket-mb 25 --cache-dir .repro_cache
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.experiments import runner
from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler

#: Chip counts swept by default.
DEFAULT_CHIPS = (1, 2, 4, 8)
#: Models evaluated by default (one CNN, one transformer).
DEFAULT_MODELS = ("VGG-16", "BERT-large")
#: DP algorithms evaluated by default.
DEFAULT_ALGORITHMS = ("DP-SGD", "DP-SGD(R)")


def default_global_batch_info(
        model: str, chip_counts: tuple[int, ...]) -> tuple[int, bool]:
    """``(batch, clamped)`` for the default strong-scaling batch.

    Rounds the single-chip max mini-batch down to a multiple of
    ``lcm(chip_counts)`` so strong scaling shards evenly.  Models whose
    max batch is *below* the LCM — e.g. BERT-large at wide sweeps — are
    clamped up to the LCM itself (the latency model does not enforce
    capacity); ``clamped=True`` flags that case so scaling efficiency
    is not misread as capacity-feasible.
    """
    from repro.training import Algorithm, max_batch_size
    from repro.workloads import build_model

    batch = max_batch_size(build_model(model), Algorithm.DP_SGD)
    lcm = math.lcm(*chip_counts)
    if batch < lcm:
        return lcm, True
    return batch // lcm * lcm, False


def default_global_batch(model: str, chip_counts: tuple[int, ...]) -> int:
    """Largest DP-SGD-feasible batch divisible by every chip count.

    See :func:`default_global_batch_info` for the clamping rule applied
    when the max batch is below ``lcm(chip_counts)``.
    """
    return default_global_batch_info(model, chip_counts)[0]


def evaluate_point(model: str, chips: int, algorithm: str, mode: str,
                   topology: str, base_batch: int,
                   overlap: bool = True, bucket_bytes: int | None = None,
                   chips_per_node: int = 1,
                   batch_clamped: bool = False,
                   pp: int = 1, tp: int = 1,
                   fabric: str | None = None) -> dict:
    """One scaling point: a sharded step on a ``chips``-wide cluster.

    ``base_batch`` is the global batch at one chip; weak scaling grows
    it with the cluster.  ``pp`` / ``tp`` carve pipeline and tensor
    parallelism out of the chip count (data parallelism keeps the
    rest) and ``fabric`` names a heterogeneous link preset.  Returns a
    JSON-serializable dict so results can be persisted by
    :mod:`repro.experiments.runner`.
    """
    from repro.arch.cluster import ParallelPlan
    from repro.arch.interconnect import InterconnectConfig, fabric_named
    from repro.core import build_cluster
    from repro.training import Algorithm, simulate_sharded_training_step
    from repro.workloads import build_model

    global_batch = base_batch * chips if mode == "weak" else base_batch
    if chips % (pp * tp):
        raise ValueError(
            f"{chips} chips do not factor into pp={pp} x tp={tp} stages")
    plan = (ParallelPlan(dp=chips // (pp * tp), pp=pp, tp=tp)
            if pp * tp > 1 else None)
    cluster = build_cluster(
        "diva", n_chips=chips,
        interconnect=InterconnectConfig(
            topology=topology,
            bucket_bytes=bucket_bytes,
            chips_per_node=chips_per_node if topology == "hierarchical"
            else 1,
            fabric=fabric_named(fabric) if fabric else None))
    report = simulate_sharded_training_step(
        build_model(model), Algorithm(algorithm), cluster, global_batch,
        overlap=overlap, plan=plan)
    return {
        "model": model,
        "algorithm": algorithm,
        "mode": mode,
        "topology": topology,
        "chips": chips,
        "chips_per_node": chips_per_node,
        "overlap": overlap,
        "bucket_mb": (bucket_bytes / 2**20
                      if bucket_bytes is not None else None),
        "global_batch": global_batch,
        "batch_clamped": batch_clamped,
        "pp": pp,
        "tp": tp,
        "fabric": fabric,
        "local_batch": report.local_batch,
        "step_ms": report.total_seconds * 1e3,
        "compute_ms": report.compute_seconds * 1e3,
        "comm_ms": report.comm_seconds * 1e3,
        "comm_total_ms": report.comm_total_seconds * 1e3,
        "comm_hidden_ms": report.comm_hidden_seconds * 1e3,
        "comm_fraction": report.comm_fraction,
        "bubble_ms": report.bubble_cycles / report.frequency_hz * 1e3,
        "link_mb_per_chip": report.comm.link_bytes / 1e6,
    }


def evaluate_points_batched(points: list[tuple]) -> list[dict]:
    """Batched-engine evaluation of :func:`evaluate_point` work tuples.

    One :func:`repro.training.sharded_step_batch` call prices the whole
    grid (shared shard evaluations, vectorized collectives); the rows
    are value-identical to the per-point scalar path, which stays as
    the pinned oracle in the test suite.
    """
    from repro.training.batch import sharded_step_batch

    if not points:
        return []
    # Pure-DP work tuples may omit the trailing (pp, tp, fabric).
    points = [tuple(point) + (1, 1, None)[len(point) - 10:]
              for point in points]
    (models, chips, algorithms, modes, topologies, bases, overlaps,
     buckets, nodes, clamped, pps, tps, fabrics) = map(list, zip(*points))
    global_batches = [base * n if mode == "weak" else base
                      for base, n, mode in zip(bases, chips, modes)]
    result = sharded_step_batch(
        models, algorithms, global_batches, chips,
        topologies=topologies, bucket_bytes=buckets,
        chips_per_node=[cpn if topo == "hierarchical" else 1
                        for cpn, topo in zip(nodes, topologies)],
        overlaps=overlaps, pps=pps, tps=tps, fabrics=fabrics)
    rows = []
    for i, point in enumerate(points):
        (model, n, algorithm, mode, topology, _, overlap, bucket_bytes,
         chips_per_node, batch_clamped, pp, tp, fabric) = point
        rows.append({
            "model": model,
            "algorithm": algorithm,
            "mode": mode,
            "topology": topology,
            "chips": n,
            "chips_per_node": chips_per_node,
            "overlap": overlap,
            "bucket_mb": (bucket_bytes / 2**20
                          if bucket_bytes is not None else None),
            "global_batch": global_batches[i],
            "batch_clamped": batch_clamped,
            "pp": pp,
            "tp": tp,
            "fabric": fabric,
            "local_batch": int(result.local_batch[i]),
            "step_ms": float(result.total_seconds[i]) * 1e3,
            "compute_ms": float(result.compute_seconds[i]) * 1e3,
            "comm_ms": float(result.comm_seconds[i]) * 1e3,
            "comm_total_ms": float(result.comm_total_seconds[i]) * 1e3,
            "comm_hidden_ms": float(result.comm_hidden_seconds[i]) * 1e3,
            "comm_fraction": float(result.comm_fraction[i]),
            "bubble_ms": (int(result.bubble_cycles[i])
                          / float(result.frequency_hz[i]) * 1e3),
            "link_mb_per_chip": int(result.link_bytes[i]) / 1e6,
        })
    return rows


def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    chips: tuple[int, ...] = DEFAULT_CHIPS,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    mode: str = "strong",
    topology: str = "ring",
    batch: int | None = None,
    overlap: bool = True,
    bucket_bytes: int | None = None,
    chips_per_node: int = 1,
    pp: int = 1,
    tp: int = 1,
    plan_mode: str = "fixed",
    fabric: str | None = None,
    hbm_gb: float | None = None,
    jobs: int | None = None,
    cache: "runner.ResultCache | None" = None,
    stats: "runner.CacheStats | None" = None,
    profiler: "Profiler | None" = None,
) -> list[dict]:
    """Sweep the scaling space; one row per (model, algorithm, chips).

    ``pp`` / ``tp`` apply one fixed DP x PP x TP grid to every chip
    count; ``plan_mode="auto"`` instead asks the placement planner
    (:func:`repro.training.plan.plan_placement`) for the fastest
    memory-feasible factorization of each point, under a per-chip HBM
    budget of ``hbm_gb`` GiB (the default chip capacity when ``None``).
    ``fabric`` names a heterogeneous link preset for every point.

    Validates every input before fanning out, so a bad sweep fails
    with one clean :class:`ValueError` instead of a worker traceback
    (and never writes partial results into the cache).  ``stats``
    tallies cache hit/miss/stale outcomes (surfaced by the ``scaling``
    CLI); ``profiler`` times the lookup/compute/write stages.
    """
    from repro.arch.interconnect import TOPOLOGIES, fabric_named

    if mode not in ("strong", "weak"):
        raise ValueError(f"mode must be 'strong' or 'weak', got {mode!r}")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {TOPOLOGIES}")
    if plan_mode not in ("fixed", "auto"):
        raise ValueError(
            f"plan_mode must be 'fixed' or 'auto', got {plan_mode!r}")
    if pp < 1 or tp < 1:
        raise ValueError(f"pp and tp must be >= 1, got pp={pp} tp={tp}")
    if plan_mode == "auto" and (pp != 1 or tp != 1):
        raise ValueError(
            "--plan auto picks pp/tp itself; drop the explicit "
            "--pp/--tp degrees")
    if fabric is not None:
        fabric_named(fabric)  # validate the preset name early
    if hbm_gb is not None:
        if plan_mode != "auto":
            raise ValueError(
                "hbm_gb only constrains the automatic planner; use "
                "--plan auto with it")
        if hbm_gb <= 0:
            raise ValueError(f"hbm_gb must be positive, got {hbm_gb}")
    chip_counts = tuple(sorted(set(chips)))
    if not chip_counts:
        raise ValueError("chips must name at least one cluster size")
    bad = [n for n in chip_counts if n < 1]
    if bad:
        raise ValueError(f"chip counts must be >= 1, got {bad}")
    if bucket_bytes is not None and bucket_bytes < 1:
        raise ValueError(
            f"bucket_bytes must be >= 1 (or None), got {bucket_bytes}")
    if topology == "hierarchical":
        if chips_per_node < 1:
            raise ValueError(
                f"chips_per_node must be >= 1, got {chips_per_node}")
        # A 1-chip baseline is exempt: it has no collectives at all.
        lopsided = [n for n in chip_counts if n > 1 and n % chips_per_node]
        if lopsided:
            raise ValueError(
                f"chip counts {lopsided} do not group into hierarchical "
                f"nodes of {chips_per_node}")
    elif chips_per_node != 1:
        raise ValueError(
            "chips_per_node is only meaningful with "
            f"--topology hierarchical, not {topology!r}")
    if plan_mode == "fixed" and pp * tp > 1:
        unfactorable = [n for n in chip_counts if n % (pp * tp)]
        if unfactorable:
            raise ValueError(
                f"chip counts {unfactorable} do not factor into "
                f"pp={pp} x tp={tp} stages")
    if batch is not None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if mode == "strong":
            # Weak scaling grows the global batch with the cluster, so
            # every shard is exactly `batch`; strong scaling splits one
            # fixed batch and needs it to shard evenly everywhere.
            indivisible = [n for n in chip_counts if batch % n]
            if indivisible:
                raise ValueError(
                    f"global batch {batch} does not divide evenly "
                    f"across chip counts {indivisible}")
    work = []
    for model in models:
        if batch is not None:
            base, clamped = batch, False
        else:
            base, clamped = default_global_batch_info(model, chip_counts)
        for algorithm in algorithms:
            for n in chip_counts:
                point_pp, point_tp = pp, tp
                if plan_mode == "auto":
                    point_pp, point_tp = _auto_plan(
                        model, algorithm, n,
                        base * n if mode == "weak" else base,
                        topology=topology, bucket_bytes=bucket_bytes,
                        chips_per_node=chips_per_node, fabric=fabric,
                        overlap=overlap, hbm_gb=hbm_gb)
                work.append((model, n, algorithm, mode, topology, base,
                             overlap, bucket_bytes, chips_per_node,
                             clamped, point_pp, point_tp, fabric))
    # The sweep is fully analytic, so it goes through the in-process
    # batched engine (one vectorized evaluation of every cache miss)
    # rather than the process pool; `jobs` is accepted for API
    # stability but the batched path needs no workers.
    del jobs
    return runner.cached_batch(
        evaluate_points_batched, work, cache=cache,
        stats=stats, profiler=profiler,
        key_fn=lambda point: {"experiment": "scaling",
                              "model": point[0], "chips": point[1],
                              "algorithm": point[2], "mode": point[3],
                              "topology": point[4], "base_batch": point[5],
                              "overlap": point[6],
                              "bucket_bytes": point[7],
                              "chips_per_node": point[8],
                              "batch_clamped": point[9],
                              "pp": point[10], "tp": point[11],
                              "fabric": point[12]},
    )


def _auto_plan(model: str, algorithm: str, n_chips: int, global_batch: int,
               *, topology: str, bucket_bytes: int | None,
               chips_per_node: int, fabric: str | None, overlap: bool,
               hbm_gb: float | None) -> tuple[int, int]:
    """Resolve one point's ``(pp, tp)`` via the placement planner."""
    from repro.training import Algorithm
    from repro.training.memory import DEFAULT_CAPACITY_BYTES
    from repro.training.plan import plan_placement
    from repro.workloads import build_model

    capacity = (int(hbm_gb * 2**30) if hbm_gb is not None
                else DEFAULT_CAPACITY_BYTES)
    placement = plan_placement(
        build_model(model), Algorithm(algorithm), n_chips, global_batch,
        capacity_bytes=capacity, topology=topology,
        bucket_bytes=bucket_bytes,
        chips_per_node=chips_per_node if topology == "hierarchical" else 1,
        fabric=fabric, overlap=overlap)
    best = placement.best
    if best is None:
        reasons = sorted({c.reason for c in placement.candidates
                          if not c.feasible})
        raise ValueError(
            f"no feasible DP x PP x TP placement for {model}/{algorithm} "
            f"at batch {global_batch} on {n_chips} chips "
            f"({placement.budget_bytes / 2**30:.1f} GiB budget): "
            + "; ".join(reasons))
    return best.pp, best.tp


def annotate(rows: list[dict]) -> list[dict]:
    """Attach speedup / efficiency relative to each series' baseline.

    A series is one (model, algorithm, mode, topology, chips-per-node,
    overlap, bucket) group; its baseline is the smallest swept chip
    count.  Both
    regimes compare throughput (examples per second), which reduces to
    the plain latency ratio under strong scaling and to step-time
    flatness under weak scaling.  Efficiency is speedup over the ideal
    chip ratio.
    """
    def series_key(row: dict) -> tuple:
        return (row["model"], row["algorithm"], row["mode"],
                row["topology"], row.get("chips_per_node", 1),
                row.get("overlap", True), row.get("bucket_mb"),
                row.get("fabric"))

    baselines: dict[tuple, dict] = {}
    for row in rows:
        best = baselines.get(series_key(row))
        if best is None or row["chips"] < best["chips"]:
            baselines[series_key(row)] = row
    out = []
    for row in rows:
        base = baselines[series_key(row)]
        throughput = row["global_batch"] / row["step_ms"]
        base_throughput = base["global_batch"] / base["step_ms"]
        speedup = throughput / base_throughput
        out.append({**row,
                    "speedup": speedup,
                    "efficiency": speedup * base["chips"] / row["chips"]})
    return out


def render(rows: list[dict] | None = None) -> str:
    """The scaling sweep as a text table.

    Batches clamped up to ``lcm(chips)`` (see
    :func:`default_global_batch_info`) are marked ``*`` in the
    ``Global B`` column, with a footnote — those points exceed one
    chip's HBM and measure latency scaling only.
    """
    rows = annotate(rows if rows is not None else run())
    mode = rows[0]["mode"] if rows else "strong"
    topology = rows[0]["topology"] if rows else "ring"
    overlap = rows[0].get("overlap", True) if rows else True
    bucket_mb = rows[0].get("bucket_mb") if rows else None
    any_clamped = any(row.get("batch_clamped") for row in rows)
    any_3d = any(row.get("pp", 1) * row.get("tp", 1) > 1 for row in rows)

    def grid_label(row: dict) -> str:
        pp, tp = row.get("pp", 1), row.get("tp", 1)
        dp = row["chips"] // (pp * tp)
        return f"dp{dp}·pp{pp}·tp{tp}"

    table = [
        [row["model"], row["algorithm"], row["chips"],
         *([grid_label(row)] if any_3d else []),
         (f"{row['global_batch']}*" if row.get("batch_clamped")
          else row["global_batch"]),
         row["step_ms"], row["comm_ms"],
         row.get("comm_total_ms", row["comm_ms"]),
         100.0 * row["comm_fraction"],
         row["speedup"], row["efficiency"]]
        for row in rows
    ]
    comm_label = ("bucketed " if bucket_mb else "") + topology
    overlap_label = "overlapped" if overlap else "serial"
    text = format_table(
        ["Model", "Algorithm", "Chips",
         *(["Plan"] if any_3d else []), "Global B", "Step ms",
         "Comm ms", "Comm tot", "Comm %", "Speedup", "Efficiency"],
        table,
        title=(f"Multi-chip data-parallel scaling ({mode} scaling, "
               f"{comm_label} allreduce, {overlap_label} comm)"),
    )
    if any_clamped:
        text += ("\n* global batch clamped up to lcm(chips) — exceeds "
                 "one chip's max DP-SGD batch (latency model only, not "
                 "capacity-feasible)")
    return text


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(render())
