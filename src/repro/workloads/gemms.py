"""GEMM descriptors and the Figure 6 (M, K, N) dimension taxonomy.

Every compute-heavy operation in SGD / DP-SGD training lowers to GEMM
(generalized matrix multiplication).  The paper's Figure 6 tabulates the
GEMM dimensions for the three training-time GEMM classes (forward,
per-batch weight gradient, per-example weight gradient); activation
gradients form a fourth class with regular shapes.  This module defines
the :class:`Gemm` descriptor consumed by every accelerator model in
:mod:`repro.arch` and :mod:`repro.core`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class GemmKind(enum.Enum):
    """Classes of GEMM arising in training, following Figures 6 and 7."""

    FORWARD = "fwdprop"
    ACT_GRAD = "act_grad"
    WGRAD_BATCH = "wgrad_batch"
    WGRAD_EXAMPLE = "wgrad_example"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Gemm:
    """A (possibly batched) matrix multiplication ``(M, K) x (K, N)``.

    Attributes
    ----------
    m, k, n:
        The three GEMM dimensions of a *single* multiplication.
    count:
        Number of independent multiplications of this exact shape.  The
        per-example weight-gradient derivation of DP-SGD issues ``B``
        (mini-batch size) independent GEMMs per layer (Figure 6, right),
        which is the paper's key irregularity; grouped convolutions
        similarly fan out one GEMM per group.
    kind:
        Which training stage the GEMM belongs to.
    layer:
        Name of the originating layer (for tracing / breakdowns).
    """

    m: int
    k: int
    n: int
    count: int = 1
    kind: GemmKind = GemmKind.FORWARD
    layer: str = ""

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")
        if self.count <= 0:
            raise ValueError(f"GEMM count must be positive, got {self.count}")

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations across all ``count`` GEMMs."""
        return self.m * self.k * self.n * self.count

    @property
    def flops(self) -> int:
        """Total floating point operations (2 per MAC)."""
        return 2 * self.macs

    @property
    def lhs_elems(self) -> int:
        """Elements of the left-hand operand across all GEMMs."""
        return self.m * self.k * self.count

    @property
    def rhs_elems(self) -> int:
        """Elements of the right-hand operand across all GEMMs."""
        return self.k * self.n * self.count

    @property
    def out_elems(self) -> int:
        """Elements of the output across all GEMMs."""
        return self.m * self.n * self.count

    def single(self) -> "Gemm":
        """Return the same GEMM shape with ``count == 1``."""
        return replace(self, count=1)

    def with_kind(self, kind: GemmKind, layer: str = "") -> "Gemm":
        """Return a copy tagged with ``kind`` (and optionally ``layer``)."""
        return replace(self, kind=kind, layer=layer or self.layer)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"{self.count}x" if self.count != 1 else ""
        return f"{prefix}GEMM({self.m}x{self.k}x{self.n}, {self.kind})"
