"""Layer intermediate representation with Figure 6 GEMM extraction.

Each layer type knows how to emit the GEMMs it contributes to the four
training stages (forward, activation gradient, per-batch weight gradient,
per-example weight gradient) following the dimension taxonomy of the
paper's Figure 6:

==============================  =============  ==============  =================
Layer                           Forward        Per-batch G(W)  Per-example G(W)
==============================  =============  ==============  =================
MLP (``Linear``)                (B, I, O)      (I, B, O)       B x (I, 1, O)
Convolution (``Conv2D``)        (B*P*Q,        (Cin*R*S,       B x (Cin*R*S,
                                 Cin*R*S,       B*P*Q,          P*Q,
                                 Cout)          Cout)           Cout)
Time-series MLP (``SeqLinear``) (B*L, I, O)    (I, B*L, O)     B x (I, L, O)
==============================  =============  ==============  =================

Weightless matmuls (attention score/value products) only appear in the
forward and activation-gradient stages.  Memory-only layers (pooling,
element-wise ops, normalization) emit no GEMMs but still contribute
activation footprint and vector-unit work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.workloads.gemms import Gemm, GemmKind


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed to {out} "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    Attributes
    ----------
    name:
        Unique (within a network) identifier used in traces.
    """

    name: str

    @property
    def params(self) -> int:
        """Number of learnable parameters (0 for weightless layers)."""
        return 0

    @property
    def out_elems(self) -> int:
        """Output activation elements per example (stored for backprop)."""
        return 0

    @property
    def has_weights(self) -> bool:
        """Whether the layer owns learnable weights (needs weight grads)."""
        return self.params > 0

    # -- GEMM extraction ---------------------------------------------------
    def forward_gemms(self, batch: int) -> list[Gemm]:
        """GEMMs issued during forward propagation."""
        return []

    def act_grad_gemms(self, batch: int) -> list[Gemm]:
        """GEMMs issued to derive the input-activation gradient G(X)."""
        return []

    def batch_wgrad_gemms(self, batch: int) -> list[Gemm]:
        """GEMMs issued to derive the per-batch weight gradient G(W)."""
        return []

    def example_wgrad_gemms(self, batch: int) -> list[Gemm]:
        """GEMMs issued to derive per-example weight gradients G_i(W)."""
        return []


@dataclass(frozen=True)
class Linear(Layer):
    """Fully connected layer: ``Y = X W`` with X of shape (B, I)."""

    in_features: int
    out_features: int
    bias: bool = True

    @property
    def params(self) -> int:
        n = self.in_features * self.out_features
        if self.bias:
            n += self.out_features
        return n

    @property
    def out_elems(self) -> int:
        return self.out_features

    def forward_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(batch, self.in_features, self.out_features,
                 kind=GemmKind.FORWARD, layer=self.name)
        ]

    def act_grad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(batch, self.out_features, self.in_features,
                 kind=GemmKind.ACT_GRAD, layer=self.name)
        ]

    def batch_wgrad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(self.in_features, batch, self.out_features,
                 kind=GemmKind.WGRAD_BATCH, layer=self.name)
        ]

    def example_wgrad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(self.in_features, 1, self.out_features, count=batch,
                 kind=GemmKind.WGRAD_EXAMPLE, layer=self.name)
        ]


@dataclass(frozen=True)
class SeqLinear(Layer):
    """Position-wise linear layer over a length-``seq_len`` sequence.

    Models the "MLP layer with time-series input" row of Figure 6 and is
    used for BERT projections / feed-forward blocks and LSTM gate
    matrices (the paper maps LSTM GEMMs this way).
    """

    in_features: int
    out_features: int
    seq_len: int
    bias: bool = True

    @property
    def params(self) -> int:
        n = self.in_features * self.out_features
        if self.bias:
            n += self.out_features
        return n

    @property
    def out_elems(self) -> int:
        return self.seq_len * self.out_features

    def forward_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(batch * self.seq_len, self.in_features, self.out_features,
                 kind=GemmKind.FORWARD, layer=self.name)
        ]

    def act_grad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(batch * self.seq_len, self.out_features, self.in_features,
                 kind=GemmKind.ACT_GRAD, layer=self.name)
        ]

    def batch_wgrad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(self.in_features, batch * self.seq_len, self.out_features,
                 kind=GemmKind.WGRAD_BATCH, layer=self.name)
        ]

    def example_wgrad_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(self.in_features, self.seq_len, self.out_features,
                 count=batch, kind=GemmKind.WGRAD_EXAMPLE, layer=self.name)
        ]


@dataclass(frozen=True)
class Conv2D(Layer):
    """2D convolution lowered to GEMM via im2col (paper Section II-D).

    Grouped convolutions (``groups > 1``, e.g. MobileNet's depthwise
    stage with ``groups == in_channels``) support two lowerings:

    * ``dense_group_lowering=True`` (default): the XLA-on-TPU strategy —
      the grouped conv becomes a dense conv with block-diagonal masked
      weights, i.e. the Figure 6 formulas with the *full* channel
      counts.  This wastes ``groups``-fold MACs but keeps the array fed,
      and is what the paper's TPU-side GEMM dimensions imply.
    * ``dense_group_lowering=False``: native grouped execution — one
      tiny GEMM per group (``count`` scales by ``groups``).  GPUs run
      this form via dedicated depthwise kernels (Section VI-D explains
      why GPUs win on MobileNet).
    """

    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    kernel: int = 3
    stride: int = 1
    padding: int = 1
    groups: int = 1
    bias: bool = False
    dense_group_lowering: bool = True

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"{self.name}: channels ({self.in_channels}->{self.out_channels}) "
                f"not divisible by groups={self.groups}"
            )

    @property
    def out_height(self) -> int:
        return conv_out_size(self.in_height, self.kernel, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return conv_out_size(self.in_width, self.kernel, self.stride, self.padding)

    @property
    def params(self) -> int:
        n = (self.out_channels * (self.in_channels // self.groups)
             * self.kernel * self.kernel)
        if self.bias:
            n += self.out_channels
        return n

    @property
    def out_elems(self) -> int:
        return self.out_channels * self.out_height * self.out_width

    # GEMM dims (Figure 6, convolution row).  ``_gemm_groups`` is 1 for
    # the dense lowering (full channel counts), ``groups`` otherwise.
    @property
    def _gemm_groups(self) -> int:
        return 1 if self.dense_group_lowering else self.groups

    def forward_gemms(self, batch: int) -> list[Gemm]:
        g = self._gemm_groups
        pq = self.out_height * self.out_width
        k = (self.in_channels // g) * self.kernel * self.kernel
        return [
            Gemm(batch * pq, k, self.out_channels // g,
                 count=g, kind=GemmKind.FORWARD, layer=self.name)
        ]

    def act_grad_gemms(self, batch: int) -> list[Gemm]:
        g = self._gemm_groups
        hw = self.in_height * self.in_width
        k = (self.out_channels // g) * self.kernel * self.kernel
        return [
            Gemm(batch * hw, k, self.in_channels // g,
                 count=g, kind=GemmKind.ACT_GRAD, layer=self.name)
        ]

    def batch_wgrad_gemms(self, batch: int) -> list[Gemm]:
        g = self._gemm_groups
        pq = self.out_height * self.out_width
        k = (self.in_channels // g) * self.kernel * self.kernel
        return [
            Gemm(k, batch * pq, self.out_channels // g,
                 count=g, kind=GemmKind.WGRAD_BATCH, layer=self.name)
        ]

    def example_wgrad_gemms(self, batch: int) -> list[Gemm]:
        g = self._gemm_groups
        pq = self.out_height * self.out_width
        k = (self.in_channels // g) * self.kernel * self.kernel
        return [
            Gemm(k, pq, self.out_channels // g,
                 count=batch * g,
                 kind=GemmKind.WGRAD_EXAMPLE, layer=self.name)
        ]


@dataclass(frozen=True)
class MatmulOp(Layer):
    """Weightless batched matmul, e.g. attention ``Q K^T`` / ``A V``.

    ``m``, ``k``, ``n`` describe a single product; ``count`` products are
    issued *per example* (e.g. one per attention head).  Weight gradients
    do not exist; the backward pass differentiates both operands:
    ``dA = dC B^T`` and ``dB = A^T dC``.
    """

    m: int
    k: int
    n: int
    count: int = 1

    @property
    def out_elems(self) -> int:
        return self.m * self.n * self.count

    def forward_gemms(self, batch: int) -> list[Gemm]:
        return [
            Gemm(self.m, self.k, self.n, count=self.count * batch,
                 kind=GemmKind.FORWARD, layer=self.name)
        ]

    def act_grad_gemms(self, batch: int) -> list[Gemm]:
        c = self.count * batch
        return [
            Gemm(self.m, self.n, self.k, count=c,
                 kind=GemmKind.ACT_GRAD, layer=self.name),
            Gemm(self.k, self.m, self.n, count=c,
                 kind=GemmKind.ACT_GRAD, layer=self.name),
        ]


@dataclass(frozen=True)
class Pool2D(Layer):
    """Max/average pooling: memory-only, no GEMMs."""

    channels: int
    in_height: int
    in_width: int
    kernel: int = 2
    stride: int = 2
    padding: int = 0

    @property
    def out_height(self) -> int:
        return conv_out_size(self.in_height, self.kernel, self.stride, self.padding)

    @property
    def out_width(self) -> int:
        return conv_out_size(self.in_width, self.kernel, self.stride, self.padding)

    @property
    def out_elems(self) -> int:
        return self.channels * self.out_height * self.out_width


@dataclass(frozen=True)
class Elementwise(Layer):
    """Element-wise op (ReLU, GeLU, softmax, residual add, ...)."""

    elems: int

    @property
    def out_elems(self) -> int:
        return self.elems


@dataclass(frozen=True)
class Norm(Layer):
    """Normalization layer (BatchNorm / LayerNorm) with affine params.

    The scale/shift vectors are learnable and therefore require
    per-example gradient treatment under DP-SGD; their GEMM-equivalent
    compute is negligible, so only the parameter count matters.
    """

    elems: int
    num_features: int

    @property
    def params(self) -> int:
        return 2 * self.num_features

    @property
    def out_elems(self) -> int:
        return self.elems


@dataclass(frozen=True)
class Embedding(Layer):
    """Lookup-table embedding (BERT input embeddings).

    Forward/backward is a gather/scatter handled by the vector/DMA path,
    not the GEMM engine.  Under DP-SGD frameworks, per-example embedding
    gradients are materialized *densely* for norm derivation, which is a
    major contributor to the memory bloat of DP-SGD on Transformers
    (Section III-A).
    """

    vocab_size: int
    dim: int
    seq_len: int

    @property
    def params(self) -> int:
        return self.vocab_size * self.dim

    @property
    def out_elems(self) -> int:
        return self.seq_len * self.dim
