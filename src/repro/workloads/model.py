"""Network container: an ordered collection of layers with aggregate stats.

A :class:`Network` is the unit of work handed to the training planner
(:mod:`repro.training.plan`) and memory model
(:mod:`repro.training.memory`).  It deliberately stays a flat ordered
list — the accelerator models only need the multiset of GEMMs per
training stage plus parameter/activation footprints, so residual
topology and branching are already resolved by the zoo builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.workloads.gemms import Gemm, GemmKind
from repro.workloads.layer import Embedding, Layer


class ModelFamily:
    """Model family tags used by the paper's figures (CNN / Transformer / RNN)."""

    CNN = "CNN"
    TRANSFORMER = "Transformer"
    RNN = "RNN"


@dataclass(frozen=True)
class Network:
    """An ordered DNN description.

    Attributes
    ----------
    name:
        Display name matching the paper's figures (e.g. ``"ResNet-152"``).
    family:
        One of :class:`ModelFamily` — drives figure grouping.
    layers:
        Topologically ordered layers.
    input_elems:
        Per-example input tensor elements (e.g. ``3*32*32`` for CIFAR-10).
    """

    name: str
    family: str
    layers: tuple[Layer, ...]
    input_elems: int

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"{self.name}: duplicate layer names {dupes}")

    # -- aggregate statistics ---------------------------------------------
    @cached_property
    def params(self) -> int:
        """Total learnable parameters."""
        return sum(layer.params for layer in self.layers)

    @cached_property
    def dense_grad_params(self) -> int:
        """Parameters whose per-example gradients are materialized densely.

        All weights count: DP-SGD frameworks densify even embedding
        gradients for per-example norm derivation (see
        :class:`repro.workloads.layer.Embedding`).
        """
        return self.params

    @cached_property
    def gemm_params(self) -> int:
        """Parameters of layers whose gradients are derived via GEMM.

        Normalization and embedding parameters are excluded: their
        gradients flow through the vector/scatter path.
        """
        from repro.workloads.layer import Norm

        return sum(
            layer.params for layer in self.layers
            if layer.has_weights and not isinstance(layer, (Embedding, Norm))
        )

    @cached_property
    def vector_grad_params(self) -> int:
        """Parameters whose gradients are derived on the vector path."""
        return self.params - self.gemm_params

    @cached_property
    def max_layer_params(self) -> int:
        """Largest single-layer parameter count.

        DP-SGD(R) materializes per-example gradients only one layer at
        a time (norm-then-discard), so its transient buffer scales with
        the largest layer rather than the whole model (Section II-C).
        """
        return max((layer.params for layer in self.layers), default=0)

    @cached_property
    def act_elems_per_example(self) -> int:
        """Activation elements stored per example for backpropagation."""
        return self.input_elems + sum(layer.out_elems for layer in self.layers)

    @property
    def weight_layers(self) -> tuple[Layer, ...]:
        """Layers owning learnable weights."""
        return tuple(layer for layer in self.layers if layer.has_weights)

    # -- GEMM extraction ----------------------------------------------------
    def gemms(self, kind: GemmKind, batch: int) -> list[Gemm]:
        """All GEMMs of stage ``kind`` for a mini-batch of ``batch``."""
        extractors = {
            GemmKind.FORWARD: lambda l: l.forward_gemms(batch),
            GemmKind.ACT_GRAD: lambda l: l.act_grad_gemms(batch),
            GemmKind.WGRAD_BATCH: lambda l: l.batch_wgrad_gemms(batch),
            GemmKind.WGRAD_EXAMPLE: lambda l: l.example_wgrad_gemms(batch),
        }
        extract = extractors[kind]
        out: list[Gemm] = []
        for layer in self.layers:
            out.extend(extract(layer))
        return out

    def stage_macs(self, kind: GemmKind, batch: int) -> int:
        """Total MAC count of stage ``kind``."""
        return sum(g.macs for g in self.gemms(kind, batch))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name} ({self.family}): {len(self.layers)} layers, "
            f"{self.params / 1e6:.1f}M params, "
            f"{self.act_elems_per_example / 1e6:.2f}M activations/example"
        )
