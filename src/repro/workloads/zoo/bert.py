"""BERT-base / BERT-large encoders (Devlin et al.).

Sequence length defaults to 32, the paper's baseline for Transformers
(Section VI-C scales it 2x/4x/8x for the sensitivity study).  Attention
score/value products are modeled as weightless :class:`MatmulOp`s; all
projection and feed-forward weights are position-wise
:class:`SeqLinear` layers (Figure 6's time-series MLP row).
"""

from __future__ import annotations

from repro.workloads.layer import (
    Elementwise,
    Embedding,
    Layer,
    Linear,
    MatmulOp,
    Norm,
    SeqLinear,
)
from repro.workloads.model import ModelFamily, Network

_CONFIGS = {
    "BERT-base": {"layers": 12, "hidden": 768, "heads": 12, "ffn": 3072},
    "BERT-large": {"layers": 24, "hidden": 1024, "heads": 16, "ffn": 4096},
}
_VOCAB_SIZE = 30522
_MAX_POSITIONS = 512
_TYPE_VOCAB = 2


def _encoder_block(idx: int, hidden: int, heads: int, ffn: int,
                   seq_len: int) -> list[Layer]:
    """One transformer encoder block."""
    head_dim = hidden // heads
    prefix = f"layer{idx}"
    seq_elems = seq_len * hidden
    return [
        SeqLinear(f"{prefix}.q", hidden, hidden, seq_len),
        SeqLinear(f"{prefix}.k", hidden, hidden, seq_len),
        SeqLinear(f"{prefix}.v", hidden, hidden, seq_len),
        MatmulOp(f"{prefix}.qk", m=seq_len, k=head_dim, n=seq_len, count=heads),
        Elementwise(f"{prefix}.softmax", seq_len * seq_len * heads),
        MatmulOp(f"{prefix}.av", m=seq_len, k=seq_len, n=head_dim, count=heads),
        SeqLinear(f"{prefix}.attn_out", hidden, hidden, seq_len),
        Elementwise(f"{prefix}.attn_residual", seq_elems),
        Norm(f"{prefix}.attn_ln", elems=seq_elems, num_features=hidden),
        SeqLinear(f"{prefix}.ffn_up", hidden, ffn, seq_len),
        Elementwise(f"{prefix}.gelu", seq_len * ffn),
        SeqLinear(f"{prefix}.ffn_down", ffn, hidden, seq_len),
        Elementwise(f"{prefix}.ffn_residual", seq_elems),
        Norm(f"{prefix}.ffn_ln", elems=seq_elems, num_features=hidden),
    ]


def _build(name: str, seq_len: int, num_classes: int) -> Network:
    cfg = _CONFIGS[name]
    hidden = cfg["hidden"]
    layers: list[Layer] = [
        Embedding("tok_embed", _VOCAB_SIZE, hidden, seq_len),
        Embedding("pos_embed", _MAX_POSITIONS, hidden, seq_len),
        Embedding("type_embed", _TYPE_VOCAB, hidden, seq_len),
        Norm("embed_ln", elems=seq_len * hidden, num_features=hidden),
    ]
    for idx in range(cfg["layers"]):
        layers.extend(
            _encoder_block(idx, hidden, cfg["heads"], cfg["ffn"], seq_len)
        )
    layers.append(Linear("pooler", hidden, hidden))
    layers.append(Linear("classifier", hidden, num_classes))
    return Network(
        name=name,
        family=ModelFamily.TRANSFORMER,
        layers=tuple(layers),
        input_elems=seq_len,
    )


def build_bert_base(seq_len: int = 32, num_classes: int = 2) -> Network:
    """Build BERT-base: 12 layers, hidden 768, 12 heads."""
    return _build("BERT-base", seq_len, num_classes)


def build_bert_large(seq_len: int = 32, num_classes: int = 2) -> Network:
    """Build BERT-large: 24 layers, hidden 1024, 16 heads."""
    return _build("BERT-large", seq_len, num_classes)
