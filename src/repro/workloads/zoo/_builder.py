"""Shared builder utilities for the CNN model zoo.

The builders thread spatial dimensions through the layer stack so each
:class:`~repro.workloads.layer.Conv2D` carries resolved input sizes —
GEMM extraction (Figure 6) needs concrete P, Q per layer.
"""

from __future__ import annotations

from repro.workloads.layer import Conv2D, Elementwise, Layer, Linear, Norm, Pool2D


class CnnStack:
    """Accumulates CNN layers while tracking the (C, H, W) feature shape."""

    def __init__(self, channels: int, height: int, width: int) -> None:
        self.channels = channels
        self.height = height
        self.width = width
        self.layers: list[Layer] = []
        self._counter = 0

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    @property
    def spatial_elems(self) -> int:
        return self.channels * self.height * self.width

    def conv(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        batchnorm: bool = True,
        relu: bool = True,
        prefix: str = "conv",
        dense_group_lowering: bool = True,
    ) -> "CnnStack":
        """Append conv (+ optional BatchNorm and ReLU), updating the shape."""
        if padding is None:
            padding = kernel // 2
        layer = Conv2D(
            name=self._name(prefix),
            in_channels=self.channels,
            out_channels=out_channels,
            in_height=self.height,
            in_width=self.width,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            dense_group_lowering=dense_group_lowering,
        )
        self.layers.append(layer)
        self.channels = out_channels
        self.height = layer.out_height
        self.width = layer.out_width
        if batchnorm:
            self.layers.append(
                Norm(self._name("bn"), elems=self.spatial_elems,
                     num_features=out_channels)
            )
        if relu:
            self.layers.append(Elementwise(self._name("relu"), self.spatial_elems))
        return self

    def pool(self, kernel: int = 2, stride: int = 2, padding: int = 0) -> "CnnStack":
        """Append a pooling layer, updating the shape."""
        layer = Pool2D(
            name=self._name("pool"),
            channels=self.channels,
            in_height=self.height,
            in_width=self.width,
            kernel=kernel,
            stride=stride,
            padding=padding,
        )
        self.layers.append(layer)
        self.height = layer.out_height
        self.width = layer.out_width
        return self

    def global_pool(self) -> "CnnStack":
        """Global average pooling down to 1x1."""
        if self.height > 1 or self.width > 1:
            self.pool(kernel=self.height, stride=self.height)
        return self

    def residual_add(self) -> "CnnStack":
        """Element-wise residual addition at the current shape."""
        self.layers.append(Elementwise(self._name("add"), self.spatial_elems))
        return self

    def linear(self, out_features: int, relu: bool = False,
               prefix: str = "fc") -> "CnnStack":
        """Append a fully connected layer consuming the flattened features."""
        layer = Linear(self._name(prefix), in_features=self.spatial_elems,
                       out_features=out_features)
        self.layers.append(layer)
        self.channels, self.height, self.width = out_features, 1, 1
        if relu:
            self.layers.append(Elementwise(self._name("relu"), out_features))
        return self
