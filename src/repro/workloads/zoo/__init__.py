"""Model zoo: the nine DNNs of the paper's evaluation (Section V).

Use :func:`build_model` to construct any benchmark by its paper name;
``input_size`` applies to CNNs and ``seq_len`` to Transformers/RNNs
(the Section VI-C sensitivity knobs).
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo.bert import build_bert_base, build_bert_large
from repro.workloads.zoo.lstm import build_lstm_small, build_lstm_large
from repro.workloads.zoo.mobilenet import build_mobilenet
from repro.workloads.zoo.resnet import build_resnet50, build_resnet152
from repro.workloads.zoo.squeezenet import build_squeezenet
from repro.workloads.zoo.vgg import build_vgg16

CNN_MODELS = ("VGG-16", "ResNet-50", "ResNet-152", "SqueezeNet", "MobileNet")
TRANSFORMER_MODELS = ("BERT-base", "BERT-large")
RNN_MODELS = ("LSTM-small", "LSTM-large")
MODEL_NAMES = CNN_MODELS + TRANSFORMER_MODELS + RNN_MODELS

_CNN_BUILDERS: dict[str, Callable[..., Network]] = {
    "VGG-16": build_vgg16,
    "ResNet-50": build_resnet50,
    "ResNet-152": build_resnet152,
    "SqueezeNet": build_squeezenet,
    "MobileNet": build_mobilenet,
}
_SEQ_BUILDERS: dict[str, Callable[..., Network]] = {
    "BERT-base": build_bert_base,
    "BERT-large": build_bert_large,
    "LSTM-small": build_lstm_small,
    "LSTM-large": build_lstm_large,
}


def build_model(name: str, input_size: int = 32, seq_len: int = 32,
                native_groups: bool = False) -> Network:
    """Build a zoo model by its paper name.

    Parameters
    ----------
    name:
        One of :data:`MODEL_NAMES`.
    input_size:
        Image side length for CNNs (default 32, the CIFAR-10 baseline).
    seq_len:
        Sequence length for Transformers/RNNs (default 32, the paper's
        baseline).
    native_groups:
        Keep grouped convolutions as per-group GEMMs (GPU execution
        model) instead of the dense TPU lowering.  Only affects
        MobileNet.
    """
    if name == "MobileNet":
        return build_mobilenet(input_size=input_size,
                               native_groups=native_groups)
    if name in _CNN_BUILDERS:
        return _CNN_BUILDERS[name](input_size=input_size)
    if name in _SEQ_BUILDERS:
        return _SEQ_BUILDERS[name](seq_len=seq_len)
    raise KeyError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


__all__ = [
    "CNN_MODELS",
    "TRANSFORMER_MODELS",
    "RNN_MODELS",
    "MODEL_NAMES",
    "ModelFamily",
    "build_model",
    "build_vgg16",
    "build_resnet50",
    "build_resnet152",
    "build_squeezenet",
    "build_mobilenet",
    "build_bert_base",
    "build_bert_large",
    "build_lstm_small",
    "build_lstm_large",
]
