"""MobileNetV1 (Howard et al.) at CIFAR-scale input resolution.

Depthwise-separable convolutions lower to one tiny GEMM per channel
(grouped convolution with ``groups == channels``), which utilizes
systolic arrays so poorly that the paper finds GPUs can even beat DiVa
on this model (Section VI-D) — an important crossover to reproduce.
"""

from __future__ import annotations

from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo._builder import CnnStack

# (out_channels, stride) of each depthwise-separable block.
_BLOCK_PLAN = ((64, 1), (128, 2), (128, 1), (256, 2), (256, 1),
               (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
               (1024, 2), (1024, 1))


def _separable(stack: CnnStack, out_channels: int, stride: int,
               dense_groups: bool) -> None:
    """Depthwise 3x3 (grouped) followed by pointwise 1x1 convolution."""
    channels = stack.channels
    stack.conv(channels, kernel=3, stride=stride, groups=channels,
               prefix="dw", dense_group_lowering=dense_groups)
    stack.conv(out_channels, kernel=1, padding=0, prefix="pw")


def build_mobilenet(input_size: int = 32, num_classes: int = 10,
                    native_groups: bool = False) -> Network:
    """Build MobileNetV1: stem conv + 13 depthwise-separable blocks.

    ``native_groups=True`` keeps depthwise stages as per-channel GEMMs
    (the GPU execution model); the default dense lowering mirrors
    XLA-on-TPU behaviour (see :class:`repro.workloads.layer.Conv2D`).
    """
    stack = CnnStack(3, input_size, input_size)
    stack.conv(32, kernel=3, stride=2, padding=1)
    for out_channels, stride in _BLOCK_PLAN:
        _separable(stack, out_channels, stride, not native_groups)
    stack.global_pool()
    stack.linear(num_classes)
    return Network(
        name="MobileNet",
        family=ModelFamily.CNN,
        layers=tuple(stack.layers),
        input_elems=3 * input_size * input_size,
    )
