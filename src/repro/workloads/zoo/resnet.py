"""ResNet-50 / ResNet-152 with bottleneck blocks (He et al.).

ImageNet-style topology instantiated at CIFAR-scale input resolution,
matching the paper's Section V configuration.  Residual branches are
flattened into the ordered layer list (the accelerator models consume
the multiset of GEMMs, not the graph topology).
"""

from __future__ import annotations

from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo._builder import CnnStack

_STAGE_BLOCKS = {
    "ResNet-50": (3, 4, 6, 3),
    "ResNet-152": (3, 8, 36, 3),
}
_STAGE_MID = (64, 128, 256, 512)


def _bottleneck(stack: CnnStack, mid: int, stride: int) -> None:
    """One bottleneck block: 1x1 -> 3x3 -> 1x1 (+ projection shortcut)."""
    in_channels = stack.channels
    out_channels = 4 * mid
    in_h, in_w = stack.height, stack.width
    stack.conv(mid, kernel=1, padding=0)
    stack.conv(mid, kernel=3, stride=stride)
    stack.conv(out_channels, kernel=1, padding=0, relu=False)
    if stride != 1 or in_channels != out_channels:
        # Projection shortcut operates on the block *input* shape: splice
        # a 1x1/stride conv as a parallel branch.
        shortcut = CnnStack(in_channels, in_h, in_w)
        shortcut._counter = stack._counter + 1000  # keep names unique
        shortcut.conv(out_channels, kernel=1, stride=stride, padding=0,
                      relu=False, prefix="downsample")
        stack.layers.extend(shortcut.layers)
        stack._counter = shortcut._counter
    stack.residual_add()


def _build(name: str, input_size: int, num_classes: int) -> Network:
    stack = CnnStack(3, input_size, input_size)
    stack.conv(64, kernel=7, stride=2, padding=3)
    stack.pool(kernel=3, stride=2, padding=1)
    for mid, blocks in zip(_STAGE_MID, _STAGE_BLOCKS[name]):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and mid != 64) else 1
            _bottleneck(stack, mid, stride)
    stack.global_pool()
    stack.linear(num_classes)
    return Network(
        name=name,
        family=ModelFamily.CNN,
        layers=tuple(stack.layers),
        input_elems=3 * input_size * input_size,
    )


def build_resnet50(input_size: int = 32, num_classes: int = 10) -> Network:
    """Build ResNet-50 (3-4-6-3 bottleneck stages)."""
    return _build("ResNet-50", input_size, num_classes)


def build_resnet152(input_size: int = 32, num_classes: int = 10) -> Network:
    """Build ResNet-152 (3-8-36-3 bottleneck stages)."""
    return _build("ResNet-152", input_size, num_classes)
