"""SqueezeNet v1.1 (Iandola et al.) at CIFAR-scale input resolution.

SqueezeNet's fire modules are dominated by 1x1 convolutions with few
channels — exactly the small-K GEMM regime where the paper reports its
largest per-example-gradient utilization win (28.9x, Section VI-A).
"""

from __future__ import annotations

from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo._builder import CnnStack

# (squeeze, expand1x1, expand3x3) per fire module, v1.1 plan.
_FIRE_PLAN = ((16, 64, 64), (16, 64, 64), "M",
              (32, 128, 128), (32, 128, 128), "M",
              (48, 192, 192), (48, 192, 192),
              (64, 256, 256), (64, 256, 256))


def _fire(stack: CnnStack, squeeze: int, expand1: int, expand3: int) -> None:
    """Fire module: squeeze 1x1, then parallel 1x1 / 3x3 expands (concat)."""
    stack.conv(squeeze, kernel=1, padding=0, batchnorm=False, prefix="squeeze")
    in_channels, h, w = stack.channels, stack.height, stack.width
    stack.conv(expand1, kernel=1, padding=0, batchnorm=False, prefix="expand1x1")
    # The 3x3 expand consumes the same squeeze output in parallel.
    branch = CnnStack(in_channels, h, w)
    branch._counter = stack._counter + 1000
    branch.conv(expand3, kernel=3, batchnorm=False, prefix="expand3x3")
    stack.layers.extend(branch.layers)
    stack._counter = branch._counter
    # Concatenation of the two expands.
    stack.channels = expand1 + expand3


def build_squeezenet(input_size: int = 32, num_classes: int = 10) -> Network:
    """Build SqueezeNet v1.1: stem conv, 8 fire modules, 1x1 classifier."""
    stack = CnnStack(3, input_size, input_size)
    stack.conv(64, kernel=3, stride=2, padding=1, batchnorm=False)
    stack.pool(kernel=3, stride=2, padding=1)
    for item in _FIRE_PLAN:
        if item == "M":
            stack.pool(kernel=3, stride=2, padding=1)
        else:
            _fire(stack, *item)
    stack.conv(num_classes, kernel=1, padding=0, batchnorm=False,
               prefix="classifier")
    stack.global_pool()
    return Network(
        name="SqueezeNet",
        family=ModelFamily.CNN,
        layers=tuple(stack.layers),
        input_elems=3 * input_size * input_size,
    )
