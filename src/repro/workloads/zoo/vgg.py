"""VGG-16 (Simonyan & Zisserman) adapted to CIFAR-scale inputs.

The paper evaluates DP-SGD for computer vision at CIFAR-10 scale
(32x32 inputs, Section V); ``input_size`` scales the image for the
Section VI-C sensitivity study.
"""

from __future__ import annotations

from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo._builder import CnnStack

_VGG16_PLAN = (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
               512, 512, 512, "M", 512, 512, 512, "M")


def build_vgg16(input_size: int = 32, num_classes: int = 10) -> Network:
    """Build VGG-16: 13 conv layers + 3 fully connected layers."""
    stack = CnnStack(3, input_size, input_size)
    for item in _VGG16_PLAN:
        if item == "M":
            stack.pool()
        else:
            stack.conv(int(item))
    stack.linear(4096, relu=True)
    stack.linear(4096, relu=True)
    stack.linear(num_classes)
    return Network(
        name="VGG-16",
        family=ModelFamily.CNN,
        layers=tuple(stack.layers),
        input_elems=3 * input_size * input_size,
    )
