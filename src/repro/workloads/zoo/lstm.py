"""Character-level LSTM classifiers, after the Opacus char-LSTM example.

The paper cites the Opacus ``char-lstm-classification`` example as the
source of its LSTM benchmarks but does not publish hyper-parameters;
we define a small (1-layer) and large (2-layer) configuration whose
parameter counts bracket the example.  Each LSTM layer contributes two
weight matrices (input-hidden and hidden-hidden), both mapped to the
time-series MLP GEMM row of Figure 6, as the paper does (Section III-C,
footnote on Figure 6: "MLP layer with time-series input, e.g. LSTM").
"""

from __future__ import annotations

from repro.workloads.layer import Elementwise, Embedding, Layer, Linear, SeqLinear
from repro.workloads.model import ModelFamily, Network

_CONFIGS = {
    "LSTM-small": {"embed": 128, "hidden": 256, "layers": 1},
    "LSTM-large": {"embed": 512, "hidden": 1024, "layers": 2},
}
_CHAR_VOCAB = 128


def _build(name: str, seq_len: int, num_classes: int) -> Network:
    cfg = _CONFIGS[name]
    hidden = cfg["hidden"]
    layers: list[Layer] = [
        Embedding("char_embed", _CHAR_VOCAB, cfg["embed"], seq_len),
    ]
    in_features = cfg["embed"]
    for idx in range(cfg["layers"]):
        prefix = f"lstm{idx}"
        layers.append(SeqLinear(f"{prefix}.ih", in_features, 4 * hidden, seq_len))
        layers.append(SeqLinear(f"{prefix}.hh", hidden, 4 * hidden, seq_len))
        # Gate nonlinearities and cell-state updates.
        layers.append(Elementwise(f"{prefix}.gates", seq_len * 4 * hidden))
        layers.append(Elementwise(f"{prefix}.cell", seq_len * hidden))
        in_features = hidden
    layers.append(Linear("classifier", hidden, num_classes))
    return Network(
        name=name,
        family=ModelFamily.RNN,
        layers=tuple(layers),
        input_elems=seq_len,
    )


def build_lstm_small(seq_len: int = 32, num_classes: int = 10) -> Network:
    """Build LSTM-small: 1 layer, hidden 256."""
    return _build("LSTM-small", seq_len, num_classes)


def build_lstm_large(seq_len: int = 32, num_classes: int = 10) -> Network:
    """Build LSTM-large: 2 layers, hidden 1024."""
    return _build("LSTM-large", seq_len, num_classes)
