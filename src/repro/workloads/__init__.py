"""Workload substrate: layer IR, Figure 6 GEMM extraction, model zoo."""

from repro.workloads.gemms import Gemm, GemmKind
from repro.workloads.layer import (
    Conv2D,
    Elementwise,
    Embedding,
    Layer,
    Linear,
    MatmulOp,
    Norm,
    Pool2D,
    SeqLinear,
)
from repro.workloads.model import ModelFamily, Network
from repro.workloads.zoo import MODEL_NAMES, build_model

__all__ = [
    "Gemm",
    "GemmKind",
    "Layer",
    "Linear",
    "SeqLinear",
    "Conv2D",
    "MatmulOp",
    "Pool2D",
    "Elementwise",
    "Norm",
    "Embedding",
    "Network",
    "ModelFamily",
    "MODEL_NAMES",
    "build_model",
]
