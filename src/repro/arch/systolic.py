"""Weight-stationary and output-stationary systolic array cycle models.

The formulas follow Figure 3 of the paper:

* **WS** (Figure 3(c), Google TPU style): the RHS matrix is latched into
  the array at ``fill_rows_per_cycle`` rows/clock, then the LHS streams
  through for ``M + K + PE_W - 1`` cycles.  A GEMM whose K dimension is
  smaller than PE_H latches only ``K`` rows — the remaining PE rows idle,
  which is precisely why per-example weight-gradient GEMMs (tiny K)
  collapse WS utilization (Section III-C).
* **OS** (Figure 3(b)): both operands stream in diagonally; a tile of
  ``m x n`` outputs takes ``K + m + n - 1`` wavefront cycles, after which
  results drain at ``drain_rows_per_cycle`` rows/clock.  Small K again
  means short streams and mostly-idle PEs.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.arch.engine import (
    GemmEngine,
    TileGrid,
    TileShape,
    chunk_sizes,
    chunk_spec,
)
from repro.workloads.gemms import Gemm


class WeightStationaryEngine(GemmEngine):
    """TPUv3-like weight-stationary systolic array."""

    name = "WS"
    dataflow = "weight_stationary"
    grid_axes = ("k", "n")

    def tiles(self, gemm: Gemm) -> list[TileShape]:
        """Tile K onto PE rows and N onto PE columns; M streams."""
        cfg = self.config
        return [
            TileShape(gemm.m, kt, nt)
            for kt in chunk_sizes(gemm.k, cfg.height)
            for nt in chunk_sizes(gemm.n, cfg.width)
        ]

    def tile_grid(self, gemm: Gemm) -> TileGrid:
        cfg = self.config
        return TileGrid(outer=chunk_spec(gemm.k, cfg.height),
                        inner=chunk_spec(gemm.n, cfg.width))

    def grid_tile_dims(
        self, gemm: Gemm, outer_sizes: NDArray[Any],
        inner_sizes: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
        return np.full_like(outer_sizes, gemm.m), outer_sizes, inner_sizes

    def tile_cycle_phases(self, tile: TileShape) -> tuple[int, int]:
        cfg = self.config
        fill = math.ceil(tile.k / cfg.fill_rows_per_cycle)
        stream = tile.m + tile.k + cfg.width - 1
        return fill, stream

    def tile_phases_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        fill = (k + cfg.fill_rows_per_cycle - 1) // cfg.fill_rows_per_cycle
        stream = m + k + cfg.width - 1
        return fill, stream

    def tile_sram_traffic(self, tile: TileShape) -> tuple[int, int]:
        cfg = self.config
        reads = (tile.m * tile.k + tile.k * tile.n) * cfg.input_bytes
        writes = tile.m * tile.n * cfg.acc_bytes
        return reads, writes

    def tile_traffic_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        reads = (m * k + k * n) * cfg.input_bytes
        writes = m * n * cfg.acc_bytes
        return reads, writes


class OutputStationaryEngine(GemmEngine):
    """Output-stationary systolic array (Figure 3(b))."""

    name = "OS"
    dataflow = "output_stationary"
    grid_axes = ("m", "n")

    def tiles(self, gemm: Gemm) -> list[TileShape]:
        """Tile M onto PE rows and N onto PE columns; K streams."""
        cfg = self.config
        return [
            TileShape(mt, gemm.k, nt)
            for mt in chunk_sizes(gemm.m, cfg.height)
            for nt in chunk_sizes(gemm.n, cfg.width)
        ]

    def tile_grid(self, gemm: Gemm) -> TileGrid:
        cfg = self.config
        return TileGrid(outer=chunk_spec(gemm.m, cfg.height),
                        inner=chunk_spec(gemm.n, cfg.width))

    def grid_tile_dims(
        self, gemm: Gemm, outer_sizes: NDArray[Any],
        inner_sizes: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
        return outer_sizes, np.full_like(outer_sizes, gemm.k), inner_sizes

    def tile_cycle_phases(self, tile: TileShape) -> tuple[int, int]:
        cfg = self.config
        drain = math.ceil(tile.m / cfg.drain_rows_per_cycle)
        wavefront = tile.k + tile.m + tile.n - 1
        return drain, wavefront

    def tile_phases_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        drain = (m + cfg.drain_rows_per_cycle - 1) // cfg.drain_rows_per_cycle
        wavefront = k + m + n - 1
        return drain, wavefront

    def tile_sram_traffic(self, tile: TileShape) -> tuple[int, int]:
        cfg = self.config
        reads = (tile.m * tile.k + tile.k * tile.n) * cfg.input_bytes
        writes = tile.m * tile.n * cfg.acc_bytes
        return reads, writes

    def tile_traffic_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        reads = (m * k + k * n) * cfg.input_bytes
        writes = m * n * cfg.acc_bytes
        return reads, writes
