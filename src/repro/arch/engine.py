"""GEMM engine abstraction: tiling, cycle accounting, utilization.

Every engine (WS systolic, OS systolic, DiVa outer-product) maps a GEMM
onto a fixed ``height x width`` array of processing engines (PEs) by
tiling two of the three GEMM dimensions onto the physical array, then
accumulates per-tile cycle counts from dataflow-specific formulas
(Figure 3 of the paper).  The resulting :class:`GemmStats` carries
everything downstream consumers need: compute cycles, MAC counts
(→ FLOPS utilization, Figures 7/15) and SRAM traffic (→ energy model).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.workloads.gemms import Gemm


def chunk_sizes(total: int, size: int) -> list[int]:
    """Split ``total`` into chunks of at most ``size`` (last may be short)."""
    if total <= 0 or size <= 0:
        raise ValueError(f"chunk_sizes requires positive args, got {total}, {size}")
    full, rem = divmod(total, size)
    return [size] * full + ([rem] if rem else [])


@dataclass(frozen=True)
class ArrayConfig:
    """Physical parameters of a 2D PE array (Table II defaults).

    Attributes
    ----------
    height, width:
        PE array dimensions (PE_H, PE_W); 128x128 like Google TPUv3.
    frequency_hz:
        Operating frequency (940 MHz, Table II).
    fill_rows_per_cycle:
        RHS-matrix rows latched per clock during WS weight fill
        (8 rows/clock, Table I).
    drain_rows_per_cycle:
        Output rows drained per clock from an output-stationary array
        (R = 8, Section IV-C).
    input_bytes / acc_bytes:
        Operand (BF16) and accumulator (FP32) widths (Table I footnote).
    weight_double_buffer:
        WS arrays overlap the next tile's weight fill with the current
        stream (TPU weight-prefetch patents cited in Section V).
    accum_double_buffer:
        OS/outer-product arrays overlap output drain with the next
        tile's accumulation.
    tile_startup_cycles:
        Fixed per-tile control overhead (address generation, issue).
    gemm_startup_cycles:
        Fixed per-GEMM overhead (descriptor decode, DMA kick-off).
    """

    height: int = 128
    width: int = 128
    frequency_hz: float = 940e6
    fill_rows_per_cycle: int = 8
    drain_rows_per_cycle: int = 8
    input_bytes: int = 2
    acc_bytes: int = 4
    weight_double_buffer: bool = True
    accum_double_buffer: bool = True
    tile_startup_cycles: int = 2
    gemm_startup_cycles: int = 16

    def __post_init__(self) -> None:
        for name in ("height", "width", "fill_rows_per_cycle",
                     "drain_rows_per_cycle"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def peak_macs_per_cycle(self) -> int:
        """Maximum MACs the array can retire per clock."""
        return self.height * self.width

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (2 FLOPs per MAC)."""
        return 2.0 * self.peak_macs_per_cycle * self.frequency_hz


@dataclass(frozen=True)
class GemmStats:
    """Execution statistics of one (possibly batched) GEMM on an engine.

    All figures cover every one of ``gemm.count`` independent GEMMs.
    """

    gemm: Gemm
    engine: str
    compute_cycles: int
    macs: int
    peak_macs_per_cycle: int
    tiles: int
    sram_read_bytes: int
    sram_write_bytes: int

    @property
    def utilization(self) -> float:
        """Effective FLOPS utilization, as plotted in Figures 7 and 15."""
        if self.compute_cycles == 0:
            return 0.0
        return self.macs / (self.compute_cycles * self.peak_macs_per_cycle)

    def __add__(self, other: "GemmStats") -> "GemmStats":
        if self.peak_macs_per_cycle != other.peak_macs_per_cycle:
            raise ValueError("cannot merge stats from different arrays")
        return GemmStats(
            gemm=self.gemm,
            engine=self.engine,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            macs=self.macs + other.macs,
            peak_macs_per_cycle=self.peak_macs_per_cycle,
            tiles=self.tiles + other.tiles,
            sram_read_bytes=self.sram_read_bytes + other.sram_read_bytes,
            sram_write_bytes=self.sram_write_bytes + other.sram_write_bytes,
        )


@dataclass(frozen=True)
class TileShape:
    """One tile of a GEMM mapped onto the array."""

    m: int
    k: int
    n: int


class GemmEngine(abc.ABC):
    """Abstract GEMM engine with dataflow-specific tiling and cycles."""

    #: Human-readable engine name used in reports ("WS", "OS", "DiVa").
    name: str = "abstract"
    #: Dataflow family: "weight_stationary" or "output_stationary".
    dataflow: str = "abstract"

    def __init__(self, config: ArrayConfig | None = None) -> None:
        self.config = config or ArrayConfig()

    # -- dataflow-specific hooks -------------------------------------------
    @abc.abstractmethod
    def tiles(self, gemm: Gemm) -> list[TileShape]:
        """Decompose a single GEMM (count ignored) into array tiles."""

    @abc.abstractmethod
    def tile_cycle_phases(self, tile: TileShape) -> tuple[int, int]:
        """Return ``(setup_or_drain_cycles, main_cycles)`` for one tile.

        For WS the first element is the weight-fill time; for OS and
        outer-product it is the output-drain time.  The two phases can
        overlap across consecutive tiles when the corresponding
        double-buffer option is enabled.
        """

    @abc.abstractmethod
    def tile_sram_traffic(self, tile: TileShape) -> tuple[int, int]:
        """Return ``(read_bytes, write_bytes)`` of SRAM traffic per tile."""

    # -- shared machinery ----------------------------------------------------
    def _overlapped(self) -> bool:
        if self.dataflow == "weight_stationary":
            return self.config.weight_double_buffer
        return self.config.accum_double_buffer

    def single_gemm_cycles(self, gemm: Gemm) -> tuple[int, int]:
        """Cycles and tile count for one GEMM instance (count ignored)."""
        tiles = self.tiles(gemm)
        phases = [self.tile_cycle_phases(t) for t in tiles]
        startup = self.config.gemm_startup_cycles
        per_tile_extra = self.config.tile_startup_cycles
        if self._overlapped():
            # The overlapped phase (fill or drain) hides behind the main
            # phase of the neighbouring tile; one exposed instance
            # remains at the pipeline boundary.
            exposed = phases[0][0] if self.dataflow == "weight_stationary" \
                else phases[-1][0]
            cycles = startup + exposed + sum(
                max(overlap, main) + per_tile_extra
                for overlap, main in phases
            )
            # In the overlapped regime the *own* phase of each tile is
            # already folded into max(); remove the double count of the
            # boundary tile's main phase pairing.
        else:
            cycles = startup + sum(
                overlap + main + per_tile_extra for overlap, main in phases
            )
        return cycles, len(tiles)

    def gemm_stats(self, gemm: Gemm) -> GemmStats:
        """Execute ``gemm`` (all ``count`` instances, sequentially)."""
        cycles, tiles = self.single_gemm_cycles(gemm)
        reads = writes = 0
        for tile in self.tiles(gemm):
            r, w = self.tile_sram_traffic(tile)
            reads += r
            writes += w
        return GemmStats(
            gemm=gemm,
            engine=self.name,
            compute_cycles=cycles * gemm.count,
            macs=gemm.macs,
            peak_macs_per_cycle=self.config.peak_macs_per_cycle,
            tiles=tiles * gemm.count,
            sram_read_bytes=reads * gemm.count,
            sram_write_bytes=writes * gemm.count,
        )

    def utilization(self, gemm: Gemm) -> float:
        """FLOPS utilization for ``gemm`` on this engine."""
        return self.gemm_stats(gemm).utilization

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return f"{type(self).__name__}({cfg.height}x{cfg.width}@{cfg.frequency_hz/1e6:.0f}MHz)"
