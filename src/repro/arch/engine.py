"""GEMM engine abstraction: tiling, cycle accounting, utilization.

Every engine (WS systolic, OS systolic, DiVa outer-product) maps a GEMM
onto a fixed ``height x width`` array of processing engines (PEs) by
tiling two of the three GEMM dimensions onto the physical array, then
accumulates per-tile cycle counts from dataflow-specific formulas
(Figure 3 of the paper).  The resulting :class:`GemmStats` carries
everything downstream consumers need: compute cycles, MAC counts
(→ FLOPS utilization, Figures 7/15) and SRAM traffic (→ energy model).

Two accounting paths coexist:

* the **closed-form path** (:meth:`GemmEngine.gemm_stats`) derives phase
  counts analytically from the ``(m, k, n)`` chunk decomposition.  A
  tile grid has at most four distinct tile shapes (full x full,
  full x remainder, remainder x full, remainder x remainder), so cycles
  and traffic reduce to NumPy-batched per-class arithmetic plus a small
  enumeration of adjacent-tile pair classes — no per-tile Python loop.
  Results are memoized per ``(engine-config, gemm-dims)`` in an
  explicit bounded LRU shared by all engine instances;
* the **reference path** (:meth:`GemmEngine.gemm_stats_reference`)
  materializes every tile and loops over it in Python.  It is the
  oracle the closed-form path is tested against, and the fallback for
  subclasses that do not describe their tiling as a grid.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass, replace

from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.workloads.gemms import Gemm


def chunk_sizes(total: int, size: int) -> list[int]:
    """Split ``total`` into chunks of at most ``size`` (last may be short)."""
    if total <= 0 or size <= 0:
        raise ValueError(f"chunk_sizes requires positive args, got {total}, {size}")
    full, rem = divmod(total, size)
    return [size] * full + ([rem] if rem else [])


@dataclass(frozen=True)
class ChunkSpec:
    """Closed-form counterpart of :func:`chunk_sizes`.

    ``full_count`` chunks of ``full_size`` followed by one optional
    ``remainder`` chunk (0 means the dimension divides evenly).
    """

    full_size: int
    full_count: int
    remainder: int

    @property
    def count(self) -> int:
        """Number of chunks."""
        return self.full_count + (1 if self.remainder else 0)

    @property
    def total(self) -> int:
        """The decomposed dimension."""
        return self.full_size * self.full_count + self.remainder

    def entries(self) -> list[tuple[int, int]]:
        """Distinct ``(chunk_size, multiplicity)`` pairs, full first."""
        out = []
        if self.full_count:
            out.append((self.full_size, self.full_count))
        if self.remainder:
            out.append((self.remainder, 1))
        return out


def chunk_spec(total: int, size: int) -> ChunkSpec:
    """Closed-form chunk decomposition of ``total`` into ``size`` chunks."""
    if total <= 0 or size <= 0:
        raise ValueError(f"chunk_spec requires positive args, got {total}, {size}")
    full, rem = divmod(total, size)
    return ChunkSpec(full_size=size, full_count=full, remainder=rem)


@dataclass(frozen=True)
class TileGrid:
    """Row-major tile decomposition of one GEMM onto the PE array.

    ``outer`` chunks index grid rows (the slower-varying loop of
    :meth:`GemmEngine.tiles`), ``inner`` chunks index columns.
    """

    outer: ChunkSpec
    inner: ChunkSpec

    @property
    def tile_count(self) -> int:
        return self.outer.count * self.inner.count


def _grid_pair_classes(grid: TileGrid) -> list[tuple[int, int, int]]:
    """Adjacent-tile shape-class pairs ``(from, to, count)`` in row-major order.

    Shape classes are indexed ``outer_entry * n_inner_entries +
    inner_entry`` with entries ordered full-before-remainder (matching
    :meth:`ChunkSpec.entries`).  The counts enumerate every consecutive
    tile pair: within-row neighbours plus the last-column→first-column
    boundary between consecutive rows; they always sum to
    ``tile_count - 1``.
    """
    n_inner = len(grid.inner.entries())
    inner_full = grid.inner.full_count
    outer_full = grid.outer.full_count
    pairs: list[tuple[int, int, int]] = []
    # Within-row neighbours, replicated over every row of each outer kind.
    for outer_idx, (_, rows) in enumerate(grid.outer.entries()):
        base = outer_idx * n_inner
        if inner_full >= 2:
            pairs.append((base, base, rows * (inner_full - 1)))
        if grid.inner.remainder and inner_full >= 1:
            pairs.append((base, base + n_inner - 1, rows))
    # Row-to-row boundaries: last column of one row → first of the next.
    last_col = n_inner - 1
    if outer_full >= 2:
        pairs.append((last_col, 0, outer_full - 1))
    if grid.outer.remainder and outer_full >= 1:
        rem_base = (len(grid.outer.entries()) - 1) * n_inner
        pairs.append((last_col, rem_base, 1))
    return pairs


@dataclass(frozen=True)
class ArrayConfig:
    """Physical parameters of a 2D PE array (Table II defaults).

    Attributes
    ----------
    height, width:
        PE array dimensions (PE_H, PE_W); 128x128 like Google TPUv3.
    frequency_hz:
        Operating frequency (940 MHz, Table II).
    fill_rows_per_cycle:
        RHS-matrix rows latched per clock during WS weight fill
        (8 rows/clock, Table I).
    drain_rows_per_cycle:
        Output rows drained per clock from an output-stationary array
        (R = 8, Section IV-C).
    input_bytes / acc_bytes:
        Operand (BF16) and accumulator (FP32) widths (Table I footnote).
    weight_double_buffer:
        WS arrays overlap the next tile's weight fill with the current
        stream (TPU weight-prefetch patents cited in Section V).
    accum_double_buffer:
        OS/outer-product arrays overlap output drain with the next
        tile's accumulation.
    tile_startup_cycles:
        Fixed per-tile control overhead (address generation, issue).
    gemm_startup_cycles:
        Fixed per-GEMM overhead (descriptor decode, DMA kick-off).
    """

    height: int = 128
    width: int = 128
    frequency_hz: float = 940e6
    fill_rows_per_cycle: int = 8
    drain_rows_per_cycle: int = 8
    input_bytes: int = 2
    acc_bytes: int = 4
    weight_double_buffer: bool = True
    accum_double_buffer: bool = True
    tile_startup_cycles: int = 2
    gemm_startup_cycles: int = 16

    def __post_init__(self) -> None:
        for name in ("height", "width", "fill_rows_per_cycle",
                     "drain_rows_per_cycle"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def peak_macs_per_cycle(self) -> int:
        """Maximum MACs the array can retire per clock."""
        return self.height * self.width

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s (2 FLOPs per MAC)."""
        return 2.0 * self.peak_macs_per_cycle * self.frequency_hz


@dataclass(frozen=True)
class GemmStats:
    """Execution statistics of one (possibly batched) GEMM on an engine.

    All figures cover every one of ``gemm.count`` independent GEMMs.
    """

    gemm: Gemm
    engine: str
    compute_cycles: int
    macs: int
    peak_macs_per_cycle: int
    tiles: int
    sram_read_bytes: int
    sram_write_bytes: int

    @property
    def utilization(self) -> float:
        """Effective FLOPS utilization, as plotted in Figures 7 and 15."""
        if self.compute_cycles == 0:
            return 0.0
        return self.macs / (self.compute_cycles * self.peak_macs_per_cycle)

    def __add__(self, other: "GemmStats") -> "GemmStats":
        if self.peak_macs_per_cycle != other.peak_macs_per_cycle:
            raise ValueError("cannot merge stats from different arrays")
        return GemmStats(
            gemm=self.gemm,
            engine=self.engine,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            macs=self.macs + other.macs,
            peak_macs_per_cycle=self.peak_macs_per_cycle,
            tiles=self.tiles + other.tiles,
            sram_read_bytes=self.sram_read_bytes + other.sram_read_bytes,
            sram_write_bytes=self.sram_write_bytes + other.sram_write_bytes,
        )


@dataclass(frozen=True)
class TileShape:
    """One tile of a GEMM mapped onto the array."""

    m: int
    k: int
    n: int


#: Upper bound on memoized :class:`GemmStats` entries (LRU eviction).
GEMM_STATS_CACHE_MAXSIZE = 4096

#: Shared bounded LRU keyed by ``(engine key, m, k, n, count)``.  Shared
#: across engine instances so freshly built accelerators (the experiment
#: harness rebuilds them liberally) reuse previously computed stats.
_GEMM_STATS_CACHE: "OrderedDict[tuple, GemmStats]" = OrderedDict()


def clear_gemm_stats_cache() -> None:
    """Drop every memoized :class:`GemmStats` (mainly for benchmarks)."""
    _GEMM_STATS_CACHE.clear()


def gemm_stats_cache_len() -> int:
    """Current number of memoized entries."""
    return len(_GEMM_STATS_CACHE)


class GemmEngine(abc.ABC):
    """Abstract GEMM engine with dataflow-specific tiling and cycles."""

    #: Human-readable engine name used in reports ("WS", "OS", "DiVa").
    name: str = "abstract"
    #: Dataflow family: "weight_stationary" or "output_stationary".
    dataflow: str = "abstract"
    #: Which GEMM dims :meth:`tile_grid` chunks onto the PE grid, as
    #: ``(rows_axis, cols_axis)`` names in {"m", "k", "n"} — rows chunk
    #: by ``height``, columns by ``width``.  ``None`` means the engine
    #: has no declarative grid and the batched evaluator
    #: (:func:`repro.arch.batch.gemm_stats_batch`) falls back to a
    #: scalar loop.  Must agree with :meth:`tile_grid`.
    grid_axes: tuple[str, str] | None = None

    def __init__(self, config: ArrayConfig | None = None) -> None:
        self.config = config or ArrayConfig()

    # -- dataflow-specific hooks -------------------------------------------
    @abc.abstractmethod
    def tiles(self, gemm: Gemm) -> list[TileShape]:
        """Decompose a single GEMM (count ignored) into array tiles."""

    @abc.abstractmethod
    def tile_cycle_phases(self, tile: TileShape) -> tuple[int, int]:
        """Return ``(setup_or_drain_cycles, main_cycles)`` for one tile.

        For WS the first element is the weight-fill time; for OS and
        outer-product it is the output-drain time.  The two phases can
        overlap across consecutive tiles when the corresponding
        double-buffer option is enabled.
        """

    @abc.abstractmethod
    def tile_sram_traffic(self, tile: TileShape) -> tuple[int, int]:
        """Return ``(read_bytes, write_bytes)`` of SRAM traffic per tile."""

    # -- closed-form hooks ---------------------------------------------------
    def tile_grid(self, gemm: Gemm) -> TileGrid | None:
        """Describe :meth:`tiles` as a row-major chunk grid, or ``None``.

        Engines that return a grid get the analytic fast path; returning
        ``None`` routes everything through the per-tile reference.
        """
        return None

    def grid_tile_dims(
        self, gemm: Gemm, outer_sizes: NDArray[Any], inner_sizes: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
        """Map chunk-size arrays to ``(m, k, n)`` tile-dimension arrays."""
        raise NotImplementedError

    def tile_phases_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Vectorized :meth:`tile_cycle_phases` over tile-dim arrays."""
        raise NotImplementedError

    def tile_traffic_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        """Vectorized :meth:`tile_sram_traffic` over tile-dim arrays."""
        raise NotImplementedError

    # -- shared machinery ----------------------------------------------------
    def _overlapped(self) -> bool:
        if self.dataflow == "weight_stationary":
            return self.config.weight_double_buffer
        return self.config.accum_double_buffer

    def _closed_form(self, gemm: Gemm) -> tuple[int, int, int, int] | None:
        """``(cycles, tiles, read_bytes, write_bytes)`` for one instance.

        Evaluates the dataflow hooks once per distinct tile shape class
        (at most four) and scales by analytically derived class counts;
        the overlapped-pipeline sum over consecutive tiles reduces to
        the pair classes of :func:`_grid_pair_classes`.
        """
        grid = self.tile_grid(gemm)
        if grid is None:
            return None
        outer_entries = grid.outer.entries()
        inner_entries = grid.inner.entries()
        n_inner = len(inner_entries)
        outer_sizes = np.repeat(
            np.array([size for size, _ in outer_entries], dtype=np.int64),
            n_inner)
        inner_sizes = np.tile(
            np.array([size for size, _ in inner_entries], dtype=np.int64),
            len(outer_entries))
        counts = np.repeat(
            np.array([mult for _, mult in outer_entries], dtype=np.int64),
            n_inner,
        ) * np.tile(
            np.array([mult for _, mult in inner_entries], dtype=np.int64),
            len(outer_entries))

        m, k, n = self.grid_tile_dims(gemm, outer_sizes, inner_sizes)
        overlap, main = self.tile_phases_batch(m, k, n)
        reads, writes = self.tile_traffic_batch(m, k, n)

        tiles = int(counts.sum())
        read_bytes = int((counts * reads).sum())
        write_bytes = int((counts * writes).sum())
        fixed = (self.config.gemm_startup_cycles
                 + tiles * self.config.tile_startup_cycles)
        if not self._overlapped():
            cycles = fixed + int((counts * (overlap + main)).sum())
            return cycles, tiles, read_bytes, write_bytes

        pairs = _grid_pair_classes(grid)
        src = np.array([a for a, _, _ in pairs], dtype=np.intp)
        dst = np.array([b for _, b, _ in pairs], dtype=np.intp)
        mult = np.array([c for _, _, c in pairs], dtype=np.int64)
        if self.dataflow == "weight_stationary":
            # Fill precedes the stream: tile i+1's fill hides behind
            # tile i's stream; the first fill is exposed.
            boundary = int(overlap[0] + main[-1])
            pair_terms = np.maximum(main[src], overlap[dst])
        else:
            # Drain follows the main phase: tile i's drain hides behind
            # tile i+1's main phase; the last drain is exposed.
            boundary = int(main[0] + overlap[-1])
            pair_terms = np.maximum(overlap[src], main[dst])
        cycles = fixed + boundary + int((mult * pair_terms).sum())
        return cycles, tiles, read_bytes, write_bytes

    def single_gemm_cycles(self, gemm: Gemm) -> tuple[int, int]:
        """Cycles and tile count for one GEMM instance (count ignored)."""
        closed = self._closed_form(gemm)
        if closed is None:
            return self.single_gemm_cycles_reference(gemm)
        return closed[0], closed[1]

    def single_gemm_cycles_reference(self, gemm: Gemm) -> tuple[int, int]:
        """Per-tile-loop oracle for :meth:`single_gemm_cycles`.

        In the overlapped regime each tile's fill/drain phase is paired
        with the *neighbouring* tile's main phase; exactly one boundary
        instance of each phase kind is exposed.
        """
        phases = [self.tile_cycle_phases(t) for t in self.tiles(gemm)]
        fixed = (self.config.gemm_startup_cycles
                 + len(phases) * self.config.tile_startup_cycles)
        if not self._overlapped():
            return fixed + sum(o + m for o, m in phases), len(phases)
        if self.dataflow == "weight_stationary":
            cycles = phases[0][0] + phases[-1][1] + sum(
                max(phases[i][1], phases[i + 1][0])
                for i in range(len(phases) - 1))
        else:
            cycles = phases[0][1] + phases[-1][0] + sum(
                max(phases[i][0], phases[i + 1][1])
                for i in range(len(phases) - 1))
        return fixed + cycles, len(phases)

    def _cache_key(self) -> tuple[object, ...]:
        """Hashable identity of this engine's cycle model."""
        return (type(self).__qualname__, self.config)

    def gemm_stats(self, gemm: Gemm) -> GemmStats:
        """Execute ``gemm`` (all ``count`` instances, sequentially).

        Memoized in a bounded shared LRU; stats depend only on the GEMM
        dimensions, so entries are keyed by ``(m, k, n, count)`` and
        re-tagged with the caller's ``gemm`` (kind/layer) on a hit.
        """
        key = (self._cache_key(), gemm.m, gemm.k, gemm.n, gemm.count)
        cached = _GEMM_STATS_CACHE.get(key)
        if cached is not None:
            _GEMM_STATS_CACHE.move_to_end(key)
            if cached.gemm == gemm:
                return cached
            return replace(cached, gemm=gemm)
        stats = self._compute_gemm_stats(gemm)
        _GEMM_STATS_CACHE[key] = stats
        if len(_GEMM_STATS_CACHE) > GEMM_STATS_CACHE_MAXSIZE:
            _GEMM_STATS_CACHE.popitem(last=False)
        return stats

    def _compute_gemm_stats(self, gemm: Gemm) -> GemmStats:
        """Uncached closed-form stats (reference fallback without a grid)."""
        closed = self._closed_form(gemm)
        if closed is None:
            return self.gemm_stats_reference(gemm)
        cycles, tiles, reads, writes = closed
        return GemmStats(
            gemm=gemm,
            engine=self.name,
            compute_cycles=cycles * gemm.count,
            macs=gemm.macs,
            peak_macs_per_cycle=self.config.peak_macs_per_cycle,
            tiles=tiles * gemm.count,
            sram_read_bytes=reads * gemm.count,
            sram_write_bytes=writes * gemm.count,
        )

    def gemm_stats_reference(self, gemm: Gemm) -> GemmStats:
        """Per-tile-loop oracle for :meth:`gemm_stats` (never cached)."""
        cycles, tiles = self.single_gemm_cycles_reference(gemm)
        reads = writes = 0
        for tile in self.tiles(gemm):
            r, w = self.tile_sram_traffic(tile)
            reads += r
            writes += w
        return GemmStats(
            gemm=gemm,
            engine=self.name,
            compute_cycles=cycles * gemm.count,
            macs=gemm.macs,
            peak_macs_per_cycle=self.config.peak_macs_per_cycle,
            tiles=tiles * gemm.count,
            sram_read_bytes=reads * gemm.count,
            sram_write_bytes=writes * gemm.count,
        )

    def utilization(self, gemm: Gemm) -> float:
        """FLOPS utilization for ``gemm`` on this engine."""
        return self.gemm_stats(gemm).utilization

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return f"{type(self).__name__}({cfg.height}x{cfg.width}@{cfg.frequency_hz/1e6:.0f}MHz)"
