"""Chip-to-chip interconnect model for multi-accelerator clusters.

Data-parallel DP-SGD needs exactly two collectives per training step
(see :mod:`repro.training.simulate`): an allreduce over the per-batch
gradient sum and, for the private algorithms, a (tiny) allreduce over
per-example norm bookkeeping.  Both are modeled closed-form on top of a
link-level abstraction: every chip owns identical full-duplex links of
``link_bandwidth_bytes_per_s``, and every traversal pays
``link_latency_s`` once.

Two topologies are supported:

``ring``
    The classic bandwidth-optimal ring allreduce (reduce-scatter +
    all-gather): ``2*(N-1)`` steps, each moving ``payload/N`` bytes per
    link, so

    ``T_ring = 2*(N-1) * (payload/(N*bw) + latency)``.

``all_to_all``
    A fully connected fabric where each chip exchanges its ``payload/N``
    shard with all ``N-1`` peers concurrently (direct reduce-scatter,
    then direct all-gather — two latency hops total):

    ``T_a2a = 2 * (payload/(N*bw) + latency)``.

Both schedules move the same per-chip wire traffic,
``2*(N-1)/N * payload`` bytes — the well-known lower bound for a
bandwidth-optimal allreduce — and differ only in how many latency hops
they expose.  At ``N == 1`` every collective is free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Supported interconnect topologies.
TOPOLOGIES = ("ring", "all_to_all")


@dataclass(frozen=True)
class InterconnectConfig:
    """Link-level parameters of the chip-to-chip fabric.

    Defaults follow a contemporary accelerator interconnect
    (100 GB/s per direction per link, ~1 microsecond hop latency).
    """

    topology: str = "ring"
    link_bandwidth_bytes_per_s: float = 100e9
    link_latency_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGIES}")
        if self.link_bandwidth_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.link_latency_s < 0:
            raise ValueError("link latency cannot be negative")


class Interconnect:
    """Closed-form collective cost model over an :class:`InterconnectConfig`."""

    def __init__(self, config: InterconnectConfig | None = None) -> None:
        self.config = config or InterconnectConfig()

    @property
    def topology(self) -> str:
        return self.config.topology

    @staticmethod
    def allreduce_bytes_per_chip(payload_bytes: int, n_chips: int) -> int:
        """Wire bytes each chip moves for one allreduce.

        ``2*(N-1)/N * payload`` — identical for both topologies (both
        implement a bandwidth-optimal reduce-scatter + all-gather).
        """
        if n_chips <= 1 or payload_bytes <= 0:
            return 0
        return math.ceil(2 * (n_chips - 1) * payload_bytes / n_chips)

    def allreduce_seconds(self, payload_bytes: int, n_chips: int) -> float:
        """Wall-clock seconds of one allreduce over ``payload_bytes``."""
        if n_chips <= 1 or payload_bytes <= 0:
            return 0.0
        cfg = self.config
        shard_s = payload_bytes / (n_chips * cfg.link_bandwidth_bytes_per_s)
        steps = 2 * (n_chips - 1) if cfg.topology == "ring" else 2
        return steps * (shard_s + cfg.link_latency_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return (f"Interconnect({cfg.topology}, "
                f"{cfg.link_bandwidth_bytes_per_s / 1e9:.0f} GB/s, "
                f"{cfg.link_latency_s * 1e6:.1f} us)")
