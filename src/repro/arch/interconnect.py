"""Chip-to-chip interconnect model for multi-accelerator clusters.

Data-parallel DP-SGD needs exactly two collectives per training step
(see :mod:`repro.training.simulate`): an allreduce over the per-batch
gradient sum and, for the private algorithms, a (tiny) allreduce over
per-example norm bookkeeping.  Both are modeled closed-form on top of a
link-level abstraction: every chip owns identical full-duplex links of
``link_bandwidth_bytes_per_s``, and every traversal pays
``link_latency_s`` once.

Three topologies are supported:

``ring``
    The classic bandwidth-optimal ring allreduce (reduce-scatter +
    all-gather): ``2*(N-1)`` steps, each moving ``payload/N`` bytes per
    link, so

    ``T_ring = 2*(N-1) * (payload/(N*bw) + latency)``.

``all_to_all``
    A fully connected fabric where each chip exchanges its ``payload/N``
    shard with all ``N-1`` peers concurrently (direct reduce-scatter,
    then direct all-gather — two latency hops total):

    ``T_a2a = 2 * (payload/(N*bw) + latency)``.

``hierarchical``
    Fully connected islands of ``chips_per_node`` chips (``M``), with a
    ring across the ``K = N/M`` nodes.  The allreduce decomposes into
    the standard three-stage hierarchical schedule: direct reduce-scatter
    inside each node (each chip ends up owning a ``payload/M`` shard of
    the node-level sum), a ring allreduce of that shard across its ``K``
    per-node owners, then a direct all-gather back inside the node:

    ``T_hier =  [M>1] * 2 * (payload/(M*bw) + latency)
              + [K>1] * 2*(K-1) * (payload/(M*K*bw) + latency)``.

    At ``chips_per_node == 1`` this is *exactly* the flat ``ring``; at
    ``chips_per_node == N`` it is exactly ``all_to_all`` — the
    degenerate-shape regression anchors in ``tests/test_overlap.py``.

All three schedules move the same per-chip wire traffic,
``2*(N-1)/N * payload`` bytes — the well-known lower bound for a
bandwidth-optimal allreduce (the hierarchical stages telescope:
``2P(M-1)/M + 2P(K-1)/(MK) = 2P(N-1)/N``) — and differ only in how
many latency hops they expose.  At ``N == 1`` every collective is free.

Bucketing
---------
``bucket_bytes`` splits a payload into fixed-size gradient buckets that
allreduce back-to-back on the wire (the standard DDP bucketing
schedule).  The wire is serialized, so the *total* collective time is
the sum of per-bucket times — strictly more than one monolithic
allreduce once per-bucket latency hops repeat.  What bucketing buys is
*overlap*: a bucket can start its allreduce while compute is still
producing later buckets, which is how
:func:`repro.training.simulate.simulate_sharded_training_step` hides
communication behind the backward pass (it charges only the *exposed*
remainder).  ``bucket_bytes=None`` (default) keeps one monolithic
bucket, making bucketed and unbucketed times identical.

Fabrics
-------
A :class:`Fabric` names two link classes — a fast ``intra_node`` link
(NVLink/ICI-style, shared by chips on one board) and a slower
``cross_node`` link (NIC-style, between boards).  Collectives pick the
link class that matches where their traffic flows: tensor-parallel
allgathers ride the intra-node link, data-parallel allreduces and
pipeline boundary transfers ride the cross-node link, and the
``hierarchical`` topology's in-node stage uses the intra-node link
while its cross-node ring uses the other.  The default
(``fabric=None``) resolves to a *uniform* fabric built from the
config's scalar ``link_bandwidth_bytes_per_s`` / ``link_latency_s``,
which reproduces the single-link-class model bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Supported interconnect topologies.
TOPOLOGIES = ("ring", "all_to_all", "hierarchical")

#: Default per-direction link bandwidth (contemporary accelerator
#: interconnect, 100 GB/s).  The single sanctioned home of the raw
#: constant — everything outside this module must route through a
#: :class:`Fabric` / :class:`InterconnectConfig` (lint rule R007).
DEFAULT_LINK_BANDWIDTH_BYTES_PER_S = 100e9
#: Default per-hop link latency (~1 microsecond).
DEFAULT_LINK_LATENCY_S = 1e-6


@dataclass(frozen=True)
class LinkClass:
    """One named class of chip-to-chip links (bandwidth + hop latency)."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"link class {self.name!r}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError(
                f"link class {self.name!r}: latency cannot be negative")


@dataclass(frozen=True)
class Fabric:
    """A heterogeneous interconnect: fast intra-node, slow cross-node links.

    Degenerate fabrics (both classes identical) reproduce the uniform
    single-link model exactly — the resolution in
    :meth:`InterconnectConfig.links` feeds the same floats through the
    same expressions, so existing results stay bitwise-identical.
    """

    intra_node: LinkClass
    cross_node: LinkClass

    @staticmethod
    def uniform(
        bandwidth_bytes_per_s: float = DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
        latency_s: float = DEFAULT_LINK_LATENCY_S,
    ) -> "Fabric":
        """A degenerate fabric whose two link classes are identical."""
        link = LinkClass("uniform", bandwidth_bytes_per_s, latency_s)
        return Fabric(intra_node=link, cross_node=link)


#: Named fabric presets for the CLI (``--fabric``).
FABRICS: dict[str, Fabric] = {
    "uniform": Fabric.uniform(),
    "two-tier": Fabric(
        intra_node=LinkClass("nvlink", 300e9, 0.5e-6),
        cross_node=LinkClass("nic", 25e9, 5e-6),
    ),
}


def fabric_named(name: str) -> Fabric:
    """Look up a preset fabric by CLI name."""
    try:
        return FABRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown fabric {name!r}; choose from {sorted(FABRICS)}"
        ) from None


# -- link-polymorphic collective forms ---------------------------------------
#
# Closed-form costs shared verbatim by the scalar Interconnect methods
# and the NumPy batched evaluator (repro.arch.batch): both call these
# with the same operand order, so scalar floats and float64 arrays walk
# the identical expression tree and stay bitwise-equal.

def tensor_collective_seconds(payload_bytes, collectives, tp,
                              bandwidth, latency):
    """Aggregate time of ``collectives`` ring allgathers over a TP group.

    Each allgather of a ``p_g``-byte gathered tensor over ``tp`` ranks
    costs ``(tp-1) * (p_g/(tp*bw) + lat)``; summed over the step's
    collectives with total gathered payload ``payload_bytes`` this
    factors into the closed form below.
    """
    return (tp - 1) * (payload_bytes / (tp * bandwidth)
                       + collectives * latency)


def pipeline_boundary_seconds(micro_cut_bytes, cuts, bandwidth, latency):
    """Exposed fill+drain time of the pipeline's boundary transfers.

    One microbatch's activations cross every cut going forward and its
    gradients cross back — ``2 * (bytes/bw + cuts * lat)``.  Steady-state
    transfers overlap with compute and are not exposed.
    """
    return 2 * (micro_cut_bytes / bandwidth + cuts * latency)


@dataclass(frozen=True)
class InterconnectConfig:
    """Link-level parameters of the chip-to-chip fabric.

    Defaults follow a contemporary accelerator interconnect
    (100 GB/s per direction per link, ~1 microsecond hop latency).

    ``bucket_bytes`` enables DDP-style gradient bucketing (``None`` =
    one monolithic bucket).  ``chips_per_node`` is the island size of
    the ``hierarchical`` topology and must be 1 for the flat ones.

    ``fabric`` switches to heterogeneous link classes; when set it
    *overrides* the scalar ``link_bandwidth_bytes_per_s`` /
    ``link_latency_s`` pair (which then only describes the legacy
    uniform resolution, see :meth:`links`).
    """

    topology: str = "ring"
    link_bandwidth_bytes_per_s: float = DEFAULT_LINK_BANDWIDTH_BYTES_PER_S
    link_latency_s: float = DEFAULT_LINK_LATENCY_S
    bucket_bytes: int | None = None
    chips_per_node: int = 1
    fabric: Fabric | None = None

    @property
    def links(self) -> Fabric:
        """The resolved fabric (uniform from the scalars when unset)."""
        if self.fabric is not None:
            return self.fabric
        return Fabric.uniform(
            self.link_bandwidth_bytes_per_s, self.link_latency_s)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGIES}")
        if self.link_bandwidth_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.link_latency_s < 0:
            raise ValueError("link latency cannot be negative")
        if self.bucket_bytes is not None and self.bucket_bytes < 1:
            raise ValueError(
                f"bucket_bytes must be >= 1 (or None), got "
                f"{self.bucket_bytes}")
        if self.chips_per_node < 1:
            raise ValueError(
                f"chips_per_node must be >= 1, got {self.chips_per_node}")
        if self.topology != "hierarchical" and self.chips_per_node != 1:
            raise ValueError(
                "chips_per_node is only meaningful for the "
                f"'hierarchical' topology, not {self.topology!r}")


class Interconnect:
    """Closed-form collective cost model over an :class:`InterconnectConfig`."""

    def __init__(self, config: InterconnectConfig | None = None) -> None:
        self.config = config or InterconnectConfig()

    @property
    def topology(self) -> str:
        return self.config.topology

    # -- bucketing -----------------------------------------------------------

    def _bucket_shape(self, payload_bytes: int) -> tuple[int, int, int]:
        """``(full_buckets, bucket_size, remainder)`` of the split.

        The closed-form view of the bucket schedule — every cost method
        prices ``full`` identical buckets plus one remainder analytically
        instead of materializing an O(payload/bucket) list.
        """
        if payload_bytes <= 0:
            return 0, 0, 0
        size = self.config.bucket_bytes
        if size is None or size >= payload_bytes:
            return 1, payload_bytes, 0
        full, rem = divmod(payload_bytes, size)
        return full, size, rem

    def bucket_sizes(self, payload_bytes: int) -> list[int]:
        """The payload split into wire buckets, in schedule order.

        ``bucket_bytes=None`` (or a bucket at least as large as the
        payload) yields one monolithic bucket; otherwise full buckets
        of ``bucket_bytes`` plus one remainder bucket.  Inspection
        helper — the cost methods use the closed-form
        ``(full, size, remainder)`` shape and never materialize this
        list.
        """
        full, size, rem = self._bucket_shape(payload_bytes)
        return [size] * full + ([rem] if rem else [])

    def n_buckets(self, payload_bytes: int) -> int:
        """Number of wire buckets the payload splits into (0 if empty)."""
        full, _, rem = self._bucket_shape(payload_bytes)
        return full + (1 if rem else 0)

    # -- time ----------------------------------------------------------------

    def _node_shape(self, n_chips: int) -> tuple[int, int]:
        """``(chips_per_node, n_nodes)`` of the hierarchical fabric."""
        m = self.config.chips_per_node
        if n_chips % m:
            raise ValueError(
                f"{n_chips} chips do not group into hierarchical nodes "
                f"of {m}")
        return m, n_chips // m

    def _one_allreduce_seconds(self, payload_bytes: int,
                               n_chips: int) -> float:
        """Wall-clock seconds of one *unbucketed* allreduce."""
        cfg = self.config
        fab = cfg.links
        bw = fab.cross_node.bandwidth_bytes_per_s
        lat = fab.cross_node.latency_s
        if cfg.topology == "ring":
            return 2 * (n_chips - 1) * (
                payload_bytes / (n_chips * bw) + lat)
        if cfg.topology == "all_to_all":
            return 2 * (payload_bytes / (n_chips * bw) + lat)
        m, k = self._node_shape(n_chips)
        seconds = 0.0
        if m > 1:  # in-node reduce-scatter + all-gather (direct, fast link)
            seconds += 2 * (
                payload_bytes / (m * fab.intra_node.bandwidth_bytes_per_s)
                + fab.intra_node.latency_s)
        if k > 1:  # cross-node ring allreduce of the payload/M shard
            seconds += 2 * (k - 1) * (
                payload_bytes / (m * k * bw) + lat)
        return seconds

    def allreduce_seconds(self, payload_bytes: int, n_chips: int) -> float:
        """Wall-clock seconds of one allreduce over ``payload_bytes``.

        With bucketing enabled this is the *total* wire time — the sum
        over the serialized bucket allreduces.  The overlap model in
        :mod:`repro.training.simulate` decides how much of it lands on
        the critical path.
        """
        if n_chips <= 1 or payload_bytes <= 0:
            return 0.0
        full, size, rem = self._bucket_shape(payload_bytes)
        seconds = full * self._one_allreduce_seconds(size, n_chips)
        if rem:
            seconds += self._one_allreduce_seconds(rem, n_chips)
        return seconds

    def first_bucket_seconds(self, payload_bytes: int,
                             n_chips: int) -> float:
        """Latency of the first (largest) bucket's allreduce.

        The irreducible exposed floor of an overlapped schedule: the
        last bucket is only produced when backward compute ends, and it
        is never larger than the first, so at least one full-bucket
        allreduce always sticks out past the backward pass.
        """
        if n_chips <= 1 or payload_bytes <= 0:
            return 0.0
        return self._one_allreduce_seconds(
            self._bucket_shape(payload_bytes)[1], n_chips)

    # -- model-parallel collectives ------------------------------------------

    def tp_collective_seconds(self, payload_bytes: int, collectives: int,
                              tp: int) -> float:
        """Aggregate tensor-parallel allgather time on the intra-node link.

        ``payload_bytes`` is the step's total *gathered* activation
        traffic across ``collectives`` per-layer allgathers; a TP group
        of 1 is free.
        """
        if tp <= 1 or payload_bytes <= 0:
            return 0.0
        link = self.config.links.intra_node
        return tensor_collective_seconds(
            payload_bytes, collectives, tp,
            link.bandwidth_bytes_per_s, link.latency_s)

    def pp_boundary_seconds(self, micro_cut_bytes: int, cuts: int) -> float:
        """Exposed pipeline fill+drain transfer time on the cross-node link."""
        if cuts <= 0 or micro_cut_bytes <= 0:
            return 0.0
        link = self.config.links.cross_node
        return pipeline_boundary_seconds(
            micro_cut_bytes, cuts,
            link.bandwidth_bytes_per_s, link.latency_s)

    @staticmethod
    def tp_link_bytes_per_chip(payload_bytes: int, collectives: int,
                               tp: int) -> int:
        """Per-chip wire bytes of the step's TP ring allgathers.

        Each rank forwards ``tp - 1`` shards per allgather; shards are
        rounded per collective (``ceil`` of the average gathered size),
        mirroring the flat-allreduce shard-first rounding.
        """
        if tp <= 1 or payload_bytes <= 0 or collectives <= 0:
            return 0
        # Integer ceil-divs (no float round trip) so the NumPy batched
        # mirror reproduces the bytes exactly at any payload size.
        shard = -(-(-(-payload_bytes // collectives)) // tp)
        return collectives * (tp - 1) * shard

    @staticmethod
    def pp_link_bytes_per_chip(micro_cut_bytes: int, cuts: int,
                               microbatches: int, pp: int) -> int:
        """Per-chip wire bytes of the pipeline's boundary transfers.

        Charges the busiest (interior) stage: it sends and receives one
        boundary tensor per microbatch in each direction, so over the
        whole step it moves ``2 * M`` passes over its adjacent cuts —
        approximated by the average per-cut bytes times the (at most
        two) cuts a stage touches.
        """
        if cuts <= 0 or micro_cut_bytes <= 0 or pp <= 1:
            return 0
        per_cut = -(-micro_cut_bytes // cuts)
        touched = 2 if pp > 2 else 1
        return 2 * microbatches * touched * per_cut

    # -- wire bytes ----------------------------------------------------------

    @staticmethod
    def allreduce_bytes_per_chip(payload_bytes: int, n_chips: int) -> int:
        """Wire bytes each chip moves for one *flat-topology* allreduce.

        ``2*(N-1) * ceil(payload/N)`` — the shard is rounded *first*,
        because the flat schedules move ``2*(N-1)`` transfers of a
        ``ceil(payload/N)``-byte shard; rounding the product instead
        could undercount the scheduled transfers.  The hierarchical
        topology rounds per its own stages (a ``ceil(payload/M)``
        in-node shard, then ``ceil(shard/K)`` across nodes) and so can
        land slightly above or below this flat reference — use the
        instance method :meth:`link_bytes_per_chip` for the scheduled
        bytes of a configured fabric; every topology stays at or above
        the unrounded ``2*(N-1)/N * payload`` lower bound.
        """
        if n_chips <= 1 or payload_bytes <= 0:
            return 0
        return 2 * (n_chips - 1) * math.ceil(payload_bytes / n_chips)

    def _one_link_bytes(self, payload_bytes: int, n_chips: int) -> int:
        """Per-chip wire bytes of one unbucketed allreduce, per topology."""
        cfg = self.config
        if cfg.topology != "hierarchical":
            return self.allreduce_bytes_per_chip(payload_bytes, n_chips)
        m, k = self._node_shape(n_chips)
        shard = math.ceil(payload_bytes / m)
        in_node = 2 * (m - 1) * shard if m > 1 else 0
        cross = 2 * (k - 1) * math.ceil(shard / k) if k > 1 else 0
        return in_node + cross

    def link_bytes_per_chip(self, payload_bytes: int, n_chips: int) -> int:
        """Scheduled per-chip wire bytes, bucket- and topology-aware.

        Sums the shard-first-rounded transfers of every bucket, so the
        reported traffic can never undercount what the schedule moves
        (bucketing pays its rounding overhead per bucket).
        """
        if n_chips <= 1 or payload_bytes <= 0:
            return 0
        full, size, rem = self._bucket_shape(payload_bytes)
        total = full * self._one_link_bytes(size, n_chips)
        if rem:
            total += self._one_link_bytes(rem, n_chips)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        extras = ""
        if cfg.topology == "hierarchical":
            extras += f", {cfg.chips_per_node}/node"
        if cfg.bucket_bytes is not None:
            extras += f", {cfg.bucket_bytes / 2**20:.1f} MiB buckets"
        return (f"Interconnect({cfg.topology}, "
                f"{cfg.link_bandwidth_bytes_per_s / 1e9:.0f} GB/s, "
                f"{cfg.link_latency_s * 1e6:.1f} us{extras})")
