"""Batched (struct-of-arrays) closed-form GEMM cycle evaluation.

:func:`gemm_stats_batch` evaluates the analytic cycle model of
:meth:`repro.arch.engine.GemmEngine.gemm_stats` over *arrays* of GEMM
dimensions in a handful of NumPy broadcast passes — no per-GEMM Python
round trip.  It is element-wise identical (integer-exact) to the scalar
path: the scalar closed form prices at most four distinct tile-shape
classes per GEMM plus a small enumeration of adjacent-tile pair
classes, and every one of those quantities is a pure elementwise
function of ``(m, k, n)`` and the array geometry, so a grid of ``G``
GEMMs reduces to ``(G, 4)``-shaped integer arithmetic.

The batched path piggybacks on the engines' existing vectorized hooks
(``tile_phases_batch`` / ``tile_traffic_batch``) and a new declarative
hook, :attr:`~repro.arch.engine.GemmEngine.grid_axes`, naming which two
GEMM dimensions tile onto the PE grid (rows chunk by ``height``,
columns by ``width``).  Engines without ``grid_axes`` (no closed form)
fall back to a scalar loop, so the function is total.

This module is the foundation of the batched sweep/serving hot paths:
:mod:`repro.training.batch` builds whole-training-step evaluation on
top of it, and the ``scaling`` / ``design-space`` experiments and the
fleet simulator's service-time table route their grids through that.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any, Iterable

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.arch.engine import GemmEngine
from repro.arch.interconnect import (
    DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    DEFAULT_LINK_LATENCY_S,
    TOPOLOGIES,
)
from repro.workloads.gemms import Gemm

#: Integer codes the vectorized collective model uses for topologies.
TOPOLOGY_CODES = {name: code for code, name in enumerate(TOPOLOGIES)}


@dataclass(frozen=True)
class GemmStatsBatch:
    """Struct-of-arrays counterpart of :class:`~repro.arch.engine.GemmStats`.

    Every array has one entry per input GEMM; figures cover all
    ``count`` instances of each GEMM (matching the scalar stats).
    """

    engine: str
    peak_macs_per_cycle: int
    m: NDArray[Any]
    k: NDArray[Any]
    n: NDArray[Any]
    count: NDArray[Any]
    compute_cycles: NDArray[Any]
    macs: NDArray[Any]
    tiles: NDArray[Any]
    sram_read_bytes: NDArray[Any]
    sram_write_bytes: NDArray[Any]

    def __len__(self) -> int:
        return self.m.shape[0]

    @property
    def utilization(self) -> NDArray[Any]:
        """Effective FLOPS utilization per GEMM (0.0 where idle)."""
        denom = self.compute_cycles * self.peak_macs_per_cycle
        return np.divide(self.macs, denom, where=denom != 0,
                         out=np.zeros(len(self), dtype=float))


def _class_cycles_overlapped(engine: GemmEngine, overlap: NDArray[Any],
                             main: NDArray[Any], fo: NDArray[Any],
                             ro: NDArray[Any], fi: NDArray[Any],
                             ri: NDArray[Any]) -> NDArray[Any]:
    """Overlapped-pipeline cycle sum over the tile-pair classes.

    Vectorization of :func:`repro.arch.engine._grid_pair_classes` plus
    the pair-term sum of ``GemmEngine._closed_form``: tile classes are
    indexed ``outer_kind * 2 + inner_kind`` with kind 0 = full-size and
    kind 1 = remainder, and absent classes simply carry count 0.
    """
    has_fo, has_ro = fo > 0, ro > 0
    has_fi, has_ri = fi > 0, ri > 0
    one = np.int64(1)
    zero = np.int64(0)
    rows = {0: fo, 1: has_ro.astype(np.int64)}

    first_i = np.where(has_fi, 0, 1)
    last_i = np.where(has_ri, 1, 0)
    first_o = np.where(has_fo, 0, 1)
    last_o = np.where(has_ro, 1, 0)

    def take(arr: NDArray[Any], idx: NDArray[Any]) -> NDArray[Any]:
        return np.take_along_axis(arr, idx[:, None], axis=1)[:, 0]

    # (src class, dst class, multiplicity) triples, all (G,) arrays.
    pairs: list[tuple[NDArray[Any], NDArray[Any], NDArray[Any]]] = []
    for o in (0, 1):
        base = np.full_like(fo, o * 2)
        # Within-row full->full neighbours.
        pairs.append((base, base, rows[o] * np.maximum(fi - 1, 0)))
        # Within-row full->remainder boundary, once per row.
        pairs.append((base, base + 1,
                      rows[o] * np.where(has_ri & has_fi, one, zero)))
    # Row-to-row: last column of one row -> first column of the next.
    pairs.append((last_i, first_i, np.maximum(fo - 1, 0)))
    pairs.append((last_i, 2 + first_i,
                  np.where(has_ro & has_fo, one, zero)))

    c_first = first_o * 2 + first_i
    c_last = last_o * 2 + last_i
    if engine.dataflow == "weight_stationary":
        boundary = take(overlap, c_first) + take(main, c_last)
        terms = [mult * np.maximum(take(main, src), take(overlap, dst))
                 for src, dst, mult in pairs]
    else:
        boundary = take(main, c_first) + take(overlap, c_last)
        terms = [mult * np.maximum(take(overlap, src), take(main, dst))
                 for src, dst, mult in pairs]
    total = boundary
    for term in terms:
        total = total + term
    return total


def _scalar_fallback(engine: GemmEngine, m: NDArray[Any], k: NDArray[Any],
                     n: NDArray[Any], count: NDArray[Any]) -> GemmStatsBatch:
    """Per-GEMM loop for engines without a declarative tile grid."""
    fields = {"compute_cycles": [], "macs": [], "tiles": [],
              "sram_read_bytes": [], "sram_write_bytes": []}
    for mi, ki, ni, ci in zip(m, k, n, count):
        stats = engine.gemm_stats(Gemm(int(mi), int(ki), int(ni), int(ci)))
        for name, values in fields.items():
            values.append(getattr(stats, name))
    return GemmStatsBatch(
        engine=engine.name,
        peak_macs_per_cycle=engine.config.peak_macs_per_cycle,
        m=m, k=k, n=n, count=count,
        **{name: np.asarray(values, dtype=np.int64)
           for name, values in fields.items()},
    )


def gemm_stats_batch(engine: GemmEngine, m: "ArrayLike", k: "ArrayLike",
                     n: "ArrayLike", count: "ArrayLike" = 1
                     ) -> GemmStatsBatch:
    """Evaluate the closed-form cycle model over arrays of GEMM dims.

    ``m``, ``k``, ``n`` and ``count`` broadcast against each other;
    every entry must be positive (the same contract as
    :class:`~repro.workloads.gemms.Gemm`).  The result is element-wise
    identical to calling ``engine.gemm_stats(Gemm(m, k, n, count))``
    per entry, without the per-GEMM Python round trip (and without
    touching the scalar LRU).
    """
    m = np.asarray(m, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    count = np.asarray(count, dtype=np.int64)
    m, k, n, count = (np.atleast_1d(a) for a in
                      np.broadcast_arrays(m, k, n, count))
    if m.size and (m.min() <= 0 or k.min() <= 0 or n.min() <= 0
                   or count.min() <= 0):
        raise ValueError("GEMM dims and count must be positive")
    m, k, n, count = (np.ascontiguousarray(a) for a in (m, k, n, count))

    axes = engine.grid_axes
    if axes is None:
        return _scalar_fallback(engine, m, k, n, count)

    cfg = engine.config
    dims = {"m": m, "k": k, "n": n}
    outer_total = dims[axes[0]]
    inner_total = dims[axes[1]]
    fo, ro = np.divmod(outer_total, np.int64(cfg.height))
    fi, ri = np.divmod(inner_total, np.int64(cfg.width))

    # Tile-shape classes, indexed outer_kind * 2 + inner_kind with
    # kind 0 = full chunk, kind 1 = remainder; absent classes carry
    # multiplicity zero and never contribute.
    height = np.full_like(outer_total, cfg.height)
    width = np.full_like(inner_total, cfg.width)
    outer_sizes = np.stack([height, height, ro, ro], axis=1)
    inner_sizes = np.stack([width, ri, width, ri], axis=1)
    has_ro = (ro > 0).astype(np.int64)
    has_ri = (ri > 0).astype(np.int64)
    counts = np.stack([fo * fi, fo * has_ri, has_ro * fi,
                       has_ro * has_ri], axis=1)

    def tile_dim(axis: str) -> NDArray[Any]:
        if axis == axes[0]:
            return outer_sizes
        if axis == axes[1]:
            return inner_sizes
        return np.broadcast_to(dims[axis][:, None], outer_sizes.shape)

    tm, tk, tn = tile_dim("m"), tile_dim("k"), tile_dim("n")
    overlap, main = engine.tile_phases_batch(tm, tk, tn)
    reads, writes = engine.tile_traffic_batch(tm, tk, tn)

    tiles = counts.sum(axis=1)
    read_bytes = (counts * reads).sum(axis=1)
    write_bytes = (counts * writes).sum(axis=1)
    fixed = (np.int64(cfg.gemm_startup_cycles)
             + tiles * np.int64(cfg.tile_startup_cycles))
    if engine._overlapped():
        cycles = fixed + _class_cycles_overlapped(
            engine, overlap, main, fo, ro, fi, ri)
    else:
        cycles = fixed + (counts * (overlap + main)).sum(axis=1)

    return GemmStatsBatch(
        engine=engine.name,
        peak_macs_per_cycle=cfg.peak_macs_per_cycle,
        m=m, k=k, n=n, count=count,
        compute_cycles=cycles * count,
        macs=m * k * n * count,
        tiles=tiles * count,
        sram_read_bytes=read_bytes * count,
        sram_write_bytes=write_bytes * count,
    )


# -- vectorized collective cost model ---------------------------------------
#
# Array mirrors of :class:`repro.arch.interconnect.Interconnect`, one
# entry per (payload, cluster) configuration.  Every floating-point
# expression repeats the scalar model's operation order exactly, so the
# batched sharded-step evaluator stays bitwise-identical to the serial
# one.  ``topology`` is a :data:`TOPOLOGY_CODES` integer array and
# ``bucket_bytes`` uses 0 as the "monolithic" (None) sentinel.

def topology_codes(names: Iterable[str]) -> NDArray[Any]:
    """Map topology-name sequences onto :data:`TOPOLOGY_CODES` ints."""
    try:
        return np.array([TOPOLOGY_CODES[name] for name in names],
                        dtype=np.int64)
    except KeyError as error:
        raise ValueError(
            f"unknown topology {error.args[0]!r}; "
            f"choose from {TOPOLOGIES}") from None


def _bucket_shape_batch(
    payload_bytes: NDArray[Any], bucket_bytes: NDArray[Any],
) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
    """``(full, size, remainder)`` arrays of the DDP bucket split."""
    mono = (bucket_bytes <= 0) | (bucket_bytes >= payload_bytes)
    divisor = np.maximum(bucket_bytes, 1)
    full = np.where(mono, 1, payload_bytes // divisor)
    size = np.where(mono, payload_bytes, bucket_bytes)
    rem = np.where(mono, 0, payload_bytes % divisor)
    empty = payload_bytes <= 0
    return (np.where(empty, 0, full), np.where(empty, 0, size),
            np.where(empty, 0, rem))


def n_buckets_batch(payload_bytes: NDArray[Any], bucket_bytes: NDArray[Any]) -> NDArray[Any]:
    """Vectorized :meth:`Interconnect.n_buckets`."""
    full, _, rem = _bucket_shape_batch(payload_bytes, bucket_bytes)
    return full + (rem > 0)


def _one_allreduce_seconds_batch(
    payload_bytes: NDArray[Any], n_chips: NDArray[Any], topology: NDArray[Any],
    chips_per_node: NDArray[Any],
    bandwidth: "float | NDArray[Any]", latency: "float | NDArray[Any]",
    intra_bandwidth: "float | NDArray[Any] | None" = None,
    intra_latency: "float | NDArray[Any] | None" = None,
) -> NDArray[Any]:
    """Seconds of one unbucketed allreduce, per topology code.

    ``bandwidth`` / ``latency`` describe the cross-node link class;
    ``intra_bandwidth`` / ``intra_latency`` (defaulting to the same
    values — the uniform fabric) price the hierarchical topology's
    in-node stage, mirroring the scalar fabric resolution.
    """
    if intra_bandwidth is None:
        intra_bandwidth = bandwidth
    if intra_latency is None:
        intra_latency = latency
    n = n_chips
    ring = 2 * (n - 1) * (payload_bytes / (n * bandwidth) + latency)
    a2a = 2 * (payload_bytes / (n * bandwidth) + latency)
    m = chips_per_node
    # Guard k against degenerate (masked-out) entries so the eager
    # numpy arithmetic never divides by zero; valid entries have k >= 1.
    k = np.maximum(n // np.maximum(m, 1), 1)
    in_node = 2 * (payload_bytes / (m * intra_bandwidth) + intra_latency)
    cross = 2 * (k - 1) * (payload_bytes / ((m * k) * bandwidth) + latency)
    hier = (np.where(m > 1, in_node, 0.0)
            + np.where(k > 1, cross, 0.0))
    return np.select(
        [topology == TOPOLOGY_CODES["ring"],
         topology == TOPOLOGY_CODES["all_to_all"]],
        [ring, a2a], default=hier)


def allreduce_seconds_batch(
    payload_bytes: NDArray[Any], n_chips: NDArray[Any], topology: NDArray[Any],
    bucket_bytes: NDArray[Any], chips_per_node: NDArray[Any],
    bandwidth: "float | NDArray[Any]" = DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    latency: "float | NDArray[Any]" = DEFAULT_LINK_LATENCY_S,
    intra_bandwidth: "float | NDArray[Any] | None" = None,
    intra_latency: "float | NDArray[Any] | None" = None,
) -> NDArray[Any]:
    """Vectorized :meth:`Interconnect.allreduce_seconds` (total wire time)."""
    links = (bandwidth, latency, intra_bandwidth, intra_latency)
    full, size, rem = _bucket_shape_batch(payload_bytes, bucket_bytes)
    seconds = full * _one_allreduce_seconds_batch(
        size, n_chips, topology, chips_per_node, *links)
    rem_seconds = _one_allreduce_seconds_batch(
        rem, n_chips, topology, chips_per_node, *links)
    seconds = np.where(rem > 0, seconds + rem_seconds, seconds)
    return np.where((n_chips <= 1) | (payload_bytes <= 0), 0.0, seconds)


def first_bucket_seconds_batch(
    payload_bytes: NDArray[Any], n_chips: NDArray[Any], topology: NDArray[Any],
    bucket_bytes: NDArray[Any], chips_per_node: NDArray[Any],
    bandwidth: "float | NDArray[Any]" = DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    latency: "float | NDArray[Any]" = DEFAULT_LINK_LATENCY_S,
    intra_bandwidth: "float | NDArray[Any] | None" = None,
    intra_latency: "float | NDArray[Any] | None" = None,
) -> NDArray[Any]:
    """Vectorized :meth:`Interconnect.first_bucket_seconds`."""
    _, size, _ = _bucket_shape_batch(payload_bytes, bucket_bytes)
    seconds = _one_allreduce_seconds_batch(
        size, n_chips, topology, chips_per_node, bandwidth, latency,
        intra_bandwidth, intra_latency)
    return np.where((n_chips <= 1) | (payload_bytes <= 0), 0.0, seconds)


def _one_link_bytes_batch(
    payload_bytes: NDArray[Any], n_chips: NDArray[Any], topology: NDArray[Any],
    chips_per_node: NDArray[Any],
) -> NDArray[Any]:
    """Per-chip wire bytes of one unbucketed allreduce."""
    n = n_chips
    flat = 2 * (n - 1) * np.ceil(payload_bytes / n).astype(np.int64)
    m = chips_per_node
    k = np.maximum(n // np.maximum(m, 1), 1)
    shard = np.ceil(payload_bytes / m).astype(np.int64)
    in_node = np.where(m > 1, 2 * (m - 1) * shard, 0)
    cross = np.where(
        k > 1, 2 * (k - 1) * np.ceil(shard / k).astype(np.int64), 0)
    return np.where(topology == TOPOLOGY_CODES["hierarchical"],
                    in_node + cross, flat)


def link_bytes_per_chip_batch(
    payload_bytes: NDArray[Any], n_chips: NDArray[Any], topology: NDArray[Any],
    bucket_bytes: NDArray[Any], chips_per_node: NDArray[Any],
) -> NDArray[Any]:
    """Vectorized :meth:`Interconnect.link_bytes_per_chip`."""
    full, size, rem = _bucket_shape_batch(payload_bytes, bucket_bytes)
    total = full * _one_link_bytes_batch(
        size, n_chips, topology, chips_per_node)
    total = total + np.where(
        rem > 0,
        _one_link_bytes_batch(rem, n_chips, topology, chips_per_node), 0)
    return np.where((n_chips <= 1) | (payload_bytes <= 0), 0, total)
