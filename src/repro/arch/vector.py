"""TPU-style vector processing unit.

Google TPUv3 pairs its systolic MXU with a vector processor (128 lanes
x 8 sublanes) that handles element-wise math and — on the baseline —
the DP-SGD gradient post-processing: squaring/summing for norms,
clipping scales, reduction across examples and noise addition
(Section III-C).  Reductions are awkward on a SIMD vector unit: they
need ``O(log)`` permute/add passes, modeled by
``reduction_overhead_factor``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class VectorUnitConfig:
    """Vector unit parameters (TPUv3-like defaults)."""

    lanes: int = 128
    sublanes: int = 8
    frequency_hz: float = 940e6
    #: Multiplier on op counts for cross-lane reductions (vector
    #: permute + add iterations, Section IV-C).
    reduction_overhead_factor: float = 2.0

    @property
    def ops_per_cycle(self) -> int:
        return self.lanes * self.sublanes


class VectorUnit:
    """Latency model for element-wise and reduction vector kernels."""

    def __init__(self, config: VectorUnitConfig | None = None) -> None:
        self.config = config or VectorUnitConfig()

    def elementwise_cycles(self, elems: int, ops_per_elem: float = 1.0) -> int:
        """Cycles for a pure element-wise kernel over ``elems`` values."""
        if elems <= 0:
            return 0
        total_ops = elems * ops_per_elem
        return math.ceil(total_ops / self.config.ops_per_cycle)

    def reduction_cycles(self, elems: int, ops_per_elem: float = 1.0) -> int:
        """Cycles to reduce ``elems`` values to one scalar.

        ``ops_per_elem`` covers any per-element preprocessing (e.g. the
        squaring step of an L2 norm costs one extra multiply).
        """
        if elems <= 0:
            return 0
        total_ops = elems * (ops_per_elem
                             * self.config.reduction_overhead_factor)
        return math.ceil(total_ops / self.config.ops_per_cycle)
