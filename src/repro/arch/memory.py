"""Off-chip memory (HBM) and on-chip SRAM models.

The DRAM model is a bandwidth/latency abstraction matching Table II
(450 GB/s over 16 channels, 100-cycle access latency); GEMM DMA is
double-buffered so a transfer's cost is overlapped against compute by
the caller (``max(compute, transfer)``), with the access latency paid
once per transfer as an exposed startup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryConfig:
    """Memory subsystem parameters (Table II defaults)."""

    bandwidth_bytes_per_s: float = 450e9
    access_latency_cycles: int = 100
    channels: int = 16
    sram_bytes: int = 16 * 2**20

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.sram_bytes <= 0:
            raise ValueError("SRAM capacity must be positive")


class MemorySystem:
    """Converts DRAM byte counts into engine-clock cycle counts."""

    def __init__(self, config: MemoryConfig | None = None,
                 frequency_hz: float = 940e6) -> None:
        self.config = config or MemoryConfig()
        self.frequency_hz = frequency_hz

    @property
    def bytes_per_cycle(self) -> float:
        """DRAM bytes deliverable per engine clock."""
        return self.config.bandwidth_bytes_per_s / self.frequency_hz

    def transfer_cycles(self, num_bytes: int | float) -> int:
        """Cycles to move ``num_bytes`` to/from DRAM (0 bytes -> 0 cycles).

        Includes the access latency, exposed once per isolated transfer.
        """
        if num_bytes <= 0:
            return 0
        return (self.streaming_cycles(num_bytes)
                + self.config.access_latency_cycles)

    def streaming_cycles(self, num_bytes: int | float) -> int:
        """Bandwidth-only cycles, for back-to-back pipelined transfers.

        The DMA engine keeps many requests in flight across the 16
        channels, so consecutive transfers hide each other's access
        latency; only the streaming time occupies the engine.
        """
        if num_bytes <= 0:
            return 0
        return math.ceil(num_bytes / self.bytes_per_cycle)

    def seconds(self, num_bytes: int | float) -> float:
        """Wall-clock seconds for a transfer of ``num_bytes``."""
        return self.transfer_cycles(num_bytes) / self.frequency_hz

    def fits_in_sram(self, num_bytes: int | float) -> bool:
        """Whether a tensor fits in the on-chip SRAM buffer."""
        return num_bytes <= self.config.sram_bytes
