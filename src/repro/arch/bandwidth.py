"""On-chip SRAM bandwidth requirements per dataflow (Table I).

The paper compares steady-state SRAM read/write bandwidth of the WS
systolic dataflow against OS/outer-product: WS needs a burst weight-fill
path (8 rows/clock of the RHS) but drains only one output row per
column, while OS/outer-product stream both operands continuously and
drain 8 output rows per clock.  Totals for the default 128x128 array:

* WS: ``(2*PE_H + 20*PE_W)`` bytes/clock
* OS & outer-product: ``(2*PE_H + 34*PE_W)`` bytes/clock
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.engine import ArrayConfig


@dataclass(frozen=True)
class SramBandwidth:
    """Per-clock SRAM bandwidth requirement of a dataflow (bytes)."""

    dataflow: str
    lhs_read: int
    rhs_read: int
    output_write: int

    @property
    def total(self) -> int:
        return self.lhs_read + self.rhs_read + self.output_write


def ws_bandwidth(config: ArrayConfig | None = None) -> SramBandwidth:
    """Weight-stationary requirement (Table I, left column)."""
    cfg = config or ArrayConfig()
    return SramBandwidth(
        dataflow="systolic_ws",
        lhs_read=cfg.height * cfg.input_bytes,
        rhs_read=cfg.width * cfg.fill_rows_per_cycle * cfg.input_bytes,
        output_write=cfg.width * cfg.acc_bytes,
    )


def os_bandwidth(config: ArrayConfig | None = None) -> SramBandwidth:
    """OS-systolic / outer-product requirement (Table I, right column)."""
    cfg = config or ArrayConfig()
    return SramBandwidth(
        dataflow="systolic_os/outer_product",
        lhs_read=cfg.height * cfg.input_bytes,
        rhs_read=cfg.width * cfg.input_bytes,
        output_write=cfg.width * cfg.drain_rows_per_cycle * cfg.acc_bytes,
    )


def outer_product_bandwidth(config: ArrayConfig | None = None) -> SramBandwidth:
    """Alias for :func:`os_bandwidth` — identical requirements (IV-D)."""
    return os_bandwidth(config)
