"""Accelerator composition: GEMM engine + memory system + vector unit (+ PPU).

An :class:`Accelerator` executes abstract operations (GEMMs, vector
kernels, DRAM moves) and returns :class:`OpRun` records.  DMA transfers
are double-buffered against compute, so an operation's latency is
``max(compute cycles, DRAM transfer cycles)``; the DRAM access latency
is exposed once per operation.  Aggregated OpRuns feed every downstream
consumer: the paper-figure training reports (Figures 5/13/14/15), the
energy model (Figure 16), and the multi-chip ``scaling`` experiment,
where per-shard OpRuns combine with the cluster's allreduce OpRuns
(:mod:`repro.arch.cluster`) into one sharded-step report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.arch.engine import ArrayConfig, GemmEngine
from repro.arch.memory import MemoryConfig, MemorySystem
from repro.arch.vector import VectorUnit, VectorUnitConfig
from repro.workloads.gemms import Gemm

if TYPE_CHECKING:  # avoid a circular import: core composes arch
    from repro.core.ppu import PostProcessingUnit


@dataclass(frozen=True)
class OpRun:
    """Execution record of one operation (or an aggregate of many).

    ``cycles`` is always the *critical-path* (exposed) charge — what
    aggregates into a report's total.  ``hidden_cycles`` records work
    that ran but was overlapped behind other compute and therefore
    excluded from ``cycles``; today only the bucketed-allreduce overlap
    model of :func:`repro.training.simulate.simulate_sharded_training_step`
    produces a nonzero value.  ``link_bytes`` is per-chip interconnect
    wire traffic — nonzero only for collective operations charged by
    :class:`repro.arch.cluster.Cluster`.
    """

    cycles: int = 0
    compute_cycles: int = 0
    vector_cycles: int = 0
    ppu_cycles: int = 0
    macs: int = 0
    vector_ops: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    sram_read_bytes: int = 0
    sram_write_bytes: int = 0
    link_bytes: int = 0
    hidden_cycles: int = 0

    @property
    def dram_bytes(self) -> int:
        """Total off-chip traffic."""
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def busy_cycles(self) -> int:
        """Exposed plus overlapped cycles — total time the op was live."""
        return self.cycles + self.hidden_cycles

    def __add__(self, other: "OpRun") -> "OpRun":
        return OpRun(
            cycles=self.cycles + other.cycles,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            vector_cycles=self.vector_cycles + other.vector_cycles,
            ppu_cycles=self.ppu_cycles + other.ppu_cycles,
            macs=self.macs + other.macs,
            vector_ops=self.vector_ops + other.vector_ops,
            dram_read_bytes=self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes=self.dram_write_bytes + other.dram_write_bytes,
            sram_read_bytes=self.sram_read_bytes + other.sram_read_bytes,
            sram_write_bytes=self.sram_write_bytes + other.sram_write_bytes,
            link_bytes=self.link_bytes + other.link_bytes,
            hidden_cycles=self.hidden_cycles + other.hidden_cycles,
        )

    @staticmethod
    def zero() -> "OpRun":
        """The additive identity, handy for aggregation."""
        return OpRun()

    def trace_args(self) -> dict[str, int]:
        """Nonzero execution counters, as a trace span's ``args`` payload.

        Dropping the zero fields keeps trace files small — a span's
        argument panel in Perfetto then shows only the resources the
        operation actually touched.
        """
        fields = (
            ("cycles", self.cycles),
            ("compute_cycles", self.compute_cycles),
            ("vector_cycles", self.vector_cycles),
            ("ppu_cycles", self.ppu_cycles),
            ("macs", self.macs),
            ("vector_ops", self.vector_ops),
            ("dram_read_bytes", self.dram_read_bytes),
            ("dram_write_bytes", self.dram_write_bytes),
            ("sram_read_bytes", self.sram_read_bytes),
            ("sram_write_bytes", self.sram_write_bytes),
            ("link_bytes", self.link_bytes),
            ("hidden_cycles", self.hidden_cycles),
        )
        return {name: value for name, value in fields if value}


class Accelerator:
    """A complete training accelerator model.

    Parameters
    ----------
    name:
        Display name used in figures ("WS", "OS", "DiVa").
    engine:
        The GEMM engine (dataflow) of the accelerator.
    memory / vector / ppu:
        Sub-units; ``ppu=None`` models a PPU-less design (the WS
        baseline, or the "w/o PPU" ablations of Figures 13/14/16).
    """

    def __init__(
        self,
        name: str,
        engine: GemmEngine,
        memory: MemorySystem | None = None,
        vector: VectorUnit | None = None,
        ppu: "PostProcessingUnit | None" = None,
    ) -> None:
        self.name = name
        self.engine = engine
        self.memory = memory or MemorySystem(
            MemoryConfig(), frequency_hz=engine.config.frequency_hz
        )
        self.vector = vector or VectorUnit(VectorUnitConfig(
            frequency_hz=engine.config.frequency_hz
        ))
        self.ppu = ppu

    @property
    def config(self) -> ArrayConfig:
        return self.engine.config

    @property
    def frequency_hz(self) -> float:
        return self.engine.config.frequency_hz

    @property
    def can_fuse_norm(self) -> bool:
        """Whether per-example gradient norms can be derived on the fly.

        Requires an output-stationary drain (OS systolic or DiVa's
        outer product) feeding a PPU (Section IV-C); WS output tiles are
        too coarse to forward.
        """
        return (self.ppu is not None
                and self.engine.dataflow == "output_stationary"
                and self.ppu.matches_drain_rate(
                    self.config.drain_rows_per_cycle, self.config.width))

    # -- operations -----------------------------------------------------------
    def run_gemm(
        self,
        gemm: Gemm,
        read_lhs: bool = True,
        read_rhs: bool = True,
        write_output: bool = True,
        fuse_norm: bool = False,
    ) -> OpRun:
        """Execute a GEMM.

        ``read_lhs`` / ``read_rhs`` control whether the operands must be
        fetched from DRAM (False models on-chip reuse from a producer).
        ``write_output`` controls whether results are committed off-chip.
        ``fuse_norm`` routes the drained outputs through the PPU for
        on-the-fly L2-norm derivation (requires :attr:`can_fuse_norm`);
        the outputs are then *consumed*, not written back.
        """
        if fuse_norm and not self.can_fuse_norm:
            raise ValueError(
                f"{self.name}: cannot fuse norm derivation "
                "(needs an output-stationary drain into a PPU)"
            )
        stats = self.engine.gemm_stats(gemm)
        input_bytes = self.config.input_bytes
        acc_bytes = self.config.acc_bytes

        dram_read = 0
        if read_lhs:
            dram_read += gemm.lhs_elems * input_bytes
        if read_rhs:
            dram_read += gemm.rhs_elems * input_bytes
        dram_write = 0
        sram_write = stats.sram_write_bytes
        compute = stats.compute_cycles
        ppu_cycles = 0
        if fuse_norm:
            # Outputs stream through the adder trees during the drain;
            # one norm scalar per GEMM is emitted.  If the gradients
            # themselves must persist (plain DP-SGD's clipping), they
            # are committed alongside; under DP-SGD(R) they are consumed.
            # Only the per-GEMM pipeline flush is PPU-exposed time — the
            # drain itself is already part of the GEMM cycle count.
            ppu_cycles = self.ppu.flush_cycles() * gemm.count
            compute += ppu_cycles
            dram_write = gemm.count * acc_bytes
            if write_output:
                dram_write += gemm.out_elems * acc_bytes
            else:
                sram_write = gemm.count * acc_bytes
        elif write_output:
            dram_write = gemm.out_elems * acc_bytes

        transfer = self.memory.transfer_cycles(dram_read + dram_write)
        return OpRun(
            cycles=max(compute, transfer),
            compute_cycles=compute,
            ppu_cycles=ppu_cycles,
            macs=stats.macs,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            sram_read_bytes=stats.sram_read_bytes,
            sram_write_bytes=sram_write,
        )

    def run_vector(
        self,
        elems: int,
        ops_per_elem: float = 1.0,
        dram_read_bytes: int = 0,
        dram_write_bytes: int = 0,
        reduction: bool = False,
    ) -> OpRun:
        """Execute an element-wise or reduction kernel on the vector unit."""
        if reduction:
            compute = self.vector.reduction_cycles(elems, ops_per_elem)
        else:
            compute = self.vector.elementwise_cycles(elems, ops_per_elem)
        transfer = self.memory.transfer_cycles(
            dram_read_bytes + dram_write_bytes
        )
        return OpRun(
            cycles=max(compute, transfer),
            vector_cycles=compute,
            vector_ops=int(elems * ops_per_elem),
            dram_read_bytes=dram_read_bytes,
            dram_write_bytes=dram_write_bytes,
            sram_read_bytes=elems * self.config.acc_bytes,
            sram_write_bytes=elems * self.config.acc_bytes,
        )

    def run_ppu_reduction(self, elems: int) -> OpRun:
        """Execute a standalone reduction on the PPU (if present)."""
        if self.ppu is None:
            raise ValueError(f"{self.name} has no PPU")
        cycles = self.ppu.reduction_cycles(elems)
        return OpRun(
            cycles=cycles,
            ppu_cycles=cycles,
            vector_ops=elems,
            sram_read_bytes=elems * self.config.acc_bytes,
            sram_write_bytes=self.config.acc_bytes,
        )

    def seconds(self, cycles: int) -> float:
        """Convert engine cycles to wall-clock seconds."""
        return cycles / self.frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ppu = "+PPU" if self.ppu is not None else ""
        return f"Accelerator({self.name}{ppu}, {self.engine!r})"
