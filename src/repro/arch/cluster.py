"""Multi-chip cluster: N accelerators behind one interconnect.

A :class:`Cluster` composes ``N`` identical :class:`Accelerator` chips
with an :class:`~repro.arch.interconnect.Interconnect`.  It is the unit
of work for data-parallel DP-SGD sharding
(:func:`repro.training.simulate.simulate_sharded_training_step`): each
chip executes one shard of the mini-batch locally, and the cluster
charges the cross-chip collectives as :class:`OpRun` records in the
chips' clock domain so they aggregate with every existing phase.

The chips must share one clock frequency — the cluster exposes a single
cycle domain, and collective seconds are converted into it with
``ceil(seconds * frequency)``, applied once per aggregate rather than
once per collective (fractional seconds accumulate across the
collectives of a step before quantization).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.arch.accelerator import Accelerator, OpRun
from repro.arch.interconnect import Interconnect, InterconnectConfig


@dataclass(frozen=True)
class ParallelPlan:
    """A 3D parallelism grid: ``dp`` replicas x ``pp`` stages x ``tp`` shards.

    The product must equal the cluster's chip count.  ``dp`` replicas
    each process ``global_batch / dp`` examples; ``pp`` pipeline stages
    partition the layer sequence (GPipe-style microbatched schedule);
    ``tp`` tensor-parallel ranks shard every GEMM's output dimension
    (Megatron-style column parallelism) and allgather activations on
    the fabric's intra-node link.  ``ParallelPlan()`` on an N-chip
    cluster means pure data parallelism only when ``dp == N``; the
    degenerate ``pp == tp == 1`` plan routes through the existing DP
    path bit for bit.

    ``microbatches=None`` resolves to ``min(4*pp, local_batch)`` when
    ``pp > 1`` (a standard fill-efficiency heuristic: bubble fraction
    ``(pp-1)/M`` drops below ~25%) and to 1 otherwise.
    """

    dp: int = 1
    pp: int = 1
    tp: int = 1
    microbatches: int | None = None

    def __post_init__(self) -> None:
        for axis in ("dp", "pp", "tp"):
            if getattr(self, axis) < 1:
                raise ValueError(
                    f"{axis} must be >= 1, got {getattr(self, axis)}")
        if self.microbatches is not None and self.microbatches < 1:
            raise ValueError(
                f"microbatches must be >= 1 (or None), "
                f"got {self.microbatches}")

    @property
    def n_chips(self) -> int:
        return self.dp * self.pp * self.tp

    @property
    def is_pure_dp(self) -> bool:
        return self.pp == 1 and self.tp == 1

    def validate(self, n_chips: int) -> None:
        if self.n_chips != n_chips:
            raise ValueError(
                f"plan {self} uses {self.n_chips} chips but the cluster "
                f"has {n_chips}")

    def resolved_microbatches(self, local_batch: int) -> int:
        """The microbatch count the pipeline schedule actually runs."""
        if self.microbatches is not None:
            return min(self.microbatches, local_batch)
        if self.pp == 1:
            return 1
        return max(1, min(4 * self.pp, local_batch))

    def __str__(self) -> str:
        return f"dp{self.dp}·pp{self.pp}·tp{self.tp}"


class Cluster:
    """``N`` accelerators connected by a configurable interconnect.

    Parameters
    ----------
    chips:
        The member accelerators.  They must be homogeneous in clock
        frequency (data-parallel shards execute in lock-step; a single
        cycle domain keeps every report comparable).
    interconnect:
        The chip-to-chip fabric, as an :class:`Interconnect` or an
        :class:`InterconnectConfig` (default: ring, 100 GB/s links).
    """

    def __init__(
        self,
        chips: Sequence[Accelerator],
        interconnect: Interconnect | InterconnectConfig | None = None,
    ) -> None:
        if not chips:
            raise ValueError("a Cluster needs at least one chip")
        freqs = {chip.frequency_hz for chip in chips}
        if len(freqs) != 1:
            raise ValueError(
                f"cluster chips must share one clock frequency, got {freqs}")
        if isinstance(interconnect, InterconnectConfig):
            interconnect = Interconnect(interconnect)
        self.chips = tuple(chips)
        self.interconnect = interconnect or Interconnect()

    @property
    def n_chips(self) -> int:
        return len(self.chips)

    @property
    def chip(self) -> Accelerator:
        """The representative chip (shards are homogeneous)."""
        return self.chips[0]

    @property
    def name(self) -> str:
        return f"{self.chip.name}x{self.n_chips}"

    @property
    def topology(self) -> str:
        return self.interconnect.topology

    @property
    def frequency_hz(self) -> float:
        return self.chip.frequency_hz

    def allreduce_seconds(self, payload_bytes: int) -> float:
        """Fractional wall-clock seconds of one allreduce.

        Kept un-ceiled so a multi-collective step can accumulate float
        seconds and convert to cycles *once* — ceiling per collective
        (the pre-overlap behavior) overcharged up to one cycle per
        collective, and with bucketing would overcharge per bucket.
        """
        return self.interconnect.allreduce_seconds(
            payload_bytes, self.n_chips)

    def link_bytes(self, payload_bytes: int) -> int:
        """Scheduled per-chip wire bytes of one allreduce."""
        return self.interconnect.link_bytes_per_chip(
            payload_bytes, self.n_chips)

    def allreduce(self, payload_bytes: int) -> OpRun:
        """Charge one *standalone* allreduce over ``payload_bytes``.

        The cost is the closed-form collective time converted to chip
        cycles; ``link_bytes`` records the per-chip wire traffic.  On a
        single-chip cluster every collective is free (a zero OpRun), so
        the N=1 cluster is cycle-identical to a bare accelerator.  The
        sharded training step does *not* sum these records — it
        accumulates :meth:`allreduce_seconds` across its collectives
        and ceils once (see :mod:`repro.training.simulate`).
        """
        return OpRun(
            cycles=self.cycles(self.allreduce_seconds(payload_bytes)),
            link_bytes=self.link_bytes(payload_bytes),
        )

    def cycles(self, seconds: float) -> int:
        """Convert wall-clock seconds into (ceiled) cluster cycles."""
        return math.ceil(seconds * self.frequency_hz)

    def seconds(self, cycles: int) -> float:
        """Convert cluster-domain cycles to wall-clock seconds."""
        return cycles / self.frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Cluster({self.chip.name} x {self.n_chips}, "
                f"{self.interconnect!r})")
