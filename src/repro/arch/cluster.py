"""Multi-chip cluster: N accelerators behind one interconnect.

A :class:`Cluster` composes ``N`` identical :class:`Accelerator` chips
with an :class:`~repro.arch.interconnect.Interconnect`.  It is the unit
of work for data-parallel DP-SGD sharding
(:func:`repro.training.simulate.simulate_sharded_training_step`): each
chip executes one shard of the mini-batch locally, and the cluster
charges the cross-chip collectives as :class:`OpRun` records in the
chips' clock domain so they aggregate with every existing phase.

The chips must share one clock frequency — the cluster exposes a single
cycle domain, and collective seconds are converted into it with
``ceil(seconds * frequency)``, applied once per aggregate rather than
once per collective (fractional seconds accumulate across the
collectives of a step before quantization).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.arch.accelerator import Accelerator, OpRun
from repro.arch.interconnect import Interconnect, InterconnectConfig


class Cluster:
    """``N`` accelerators connected by a configurable interconnect.

    Parameters
    ----------
    chips:
        The member accelerators.  They must be homogeneous in clock
        frequency (data-parallel shards execute in lock-step; a single
        cycle domain keeps every report comparable).
    interconnect:
        The chip-to-chip fabric, as an :class:`Interconnect` or an
        :class:`InterconnectConfig` (default: ring, 100 GB/s links).
    """

    def __init__(
        self,
        chips: Sequence[Accelerator],
        interconnect: Interconnect | InterconnectConfig | None = None,
    ) -> None:
        if not chips:
            raise ValueError("a Cluster needs at least one chip")
        freqs = {chip.frequency_hz for chip in chips}
        if len(freqs) != 1:
            raise ValueError(
                f"cluster chips must share one clock frequency, got {freqs}")
        if isinstance(interconnect, InterconnectConfig):
            interconnect = Interconnect(interconnect)
        self.chips = tuple(chips)
        self.interconnect = interconnect or Interconnect()

    @property
    def n_chips(self) -> int:
        return len(self.chips)

    @property
    def chip(self) -> Accelerator:
        """The representative chip (shards are homogeneous)."""
        return self.chips[0]

    @property
    def name(self) -> str:
        return f"{self.chip.name}x{self.n_chips}"

    @property
    def topology(self) -> str:
        return self.interconnect.topology

    @property
    def frequency_hz(self) -> float:
        return self.chip.frequency_hz

    def allreduce_seconds(self, payload_bytes: int) -> float:
        """Fractional wall-clock seconds of one allreduce.

        Kept un-ceiled so a multi-collective step can accumulate float
        seconds and convert to cycles *once* — ceiling per collective
        (the pre-overlap behavior) overcharged up to one cycle per
        collective, and with bucketing would overcharge per bucket.
        """
        return self.interconnect.allreduce_seconds(
            payload_bytes, self.n_chips)

    def link_bytes(self, payload_bytes: int) -> int:
        """Scheduled per-chip wire bytes of one allreduce."""
        return self.interconnect.link_bytes_per_chip(
            payload_bytes, self.n_chips)

    def allreduce(self, payload_bytes: int) -> OpRun:
        """Charge one *standalone* allreduce over ``payload_bytes``.

        The cost is the closed-form collective time converted to chip
        cycles; ``link_bytes`` records the per-chip wire traffic.  On a
        single-chip cluster every collective is free (a zero OpRun), so
        the N=1 cluster is cycle-identical to a bare accelerator.  The
        sharded training step does *not* sum these records — it
        accumulates :meth:`allreduce_seconds` across its collectives
        and ceils once (see :mod:`repro.training.simulate`).
        """
        return OpRun(
            cycles=self.cycles(self.allreduce_seconds(payload_bytes)),
            link_bytes=self.link_bytes(payload_bytes),
        )

    def cycles(self, seconds: float) -> int:
        """Convert wall-clock seconds into (ceiled) cluster cycles."""
        return math.ceil(seconds * self.frequency_hz)

    def seconds(self, cycles: int) -> float:
        """Convert cluster-domain cycles to wall-clock seconds."""
        return cycles / self.frequency_hz

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Cluster({self.chip.name} x {self.n_chips}, "
                f"{self.interconnect!r})")
