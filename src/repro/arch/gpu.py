"""Analytical GPU GEMM performance model (V100 / A100, Section VI-D).

The paper measures JAX with auto-vectorization on V100/A100, with and
without Tensor Cores.  We model a batched GEMM (the ``vmap`` product:
``count`` independent multiplications fused into one kernel) as a grid
of threadblock tiles spread over the SMs, with three candidate kernels
per GEMM — mirroring library heuristics that pick the best
implementation per shape:

* a Tensor-Core kernel with large (128x128) tiles and a K quantum;
* a SIMT (CUDA-core) kernel with medium (32x32) tiles;
* a fine-grained SIMD kernel with tiny (8x8) tiles — the "mapping small
  GEMMs across SIMD vector units" path that lets GPUs win on MobileNet
  (Section VI-D).

Each kernel's time is ``max(compute, DRAM traffic)`` plus one launch
overhead (vectorization fuses the batch into a single launch).  The
compute term pays tile padding, wave quantization and a K-granularity
penalty — the mechanisms that starve GPUs on DP-SGD's irregular GEMMs
despite their huge peak throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.gemms import Gemm


@dataclass(frozen=True)
class KernelShape:
    """One candidate kernel implementation."""

    tile_m: int
    tile_n: int
    k_quantum: int
    #: Achievable fraction of the unit's peak in the steady-state
    #: main loop (library kernels do not reach theoretical peak).
    efficiency: float
    #: Whether the kernel runs on Tensor Cores (else CUDA cores).
    tensor_core: bool


@dataclass(frozen=True)
class GpuConfig:
    """GPU device parameters."""

    name: str
    sms: int
    tensor_peak_flops: float
    simt_peak_flops: float
    dram_bandwidth_bytes_per_s: float
    dram_bytes: int
    #: Per-op dispatch overhead (kernel launch + framework/XLA runtime).
    kernel_launch_seconds: float = 10e-6
    input_bytes: int = 2
    acc_bytes: int = 4


#: NVIDIA V100 (32 GB, 900 GB/s; 125 TFLOPS FP16 TC / 15.7 TFLOPS FP32).
V100 = GpuConfig(
    name="V100",
    sms=80,
    tensor_peak_flops=125e12,
    simt_peak_flops=15.7e12,
    dram_bandwidth_bytes_per_s=900e9,
    dram_bytes=32 * 2**30,
)

#: NVIDIA A100 (40 GB, 1555 GB/s; 312 TFLOPS FP16 TC / 19.5 TFLOPS FP32).
A100 = GpuConfig(
    name="A100",
    sms=108,
    tensor_peak_flops=312e12,
    simt_peak_flops=19.5e12,
    dram_bandwidth_bytes_per_s=1555e9,
    dram_bytes=40 * 2**30,
)

# Steady-state efficiencies are calibrated for the *strided batched*
# GEMMs a vmapped DP-SGD emits (per-example gradients): library kernels
# on such shapes reach well below the dense-GEMM fraction of peak
# (cf. Subramani et al., NeurIPS'21, on JAX DP-SGD throughput).
_TENSOR_KERNELS = (
    KernelShape(tile_m=128, tile_n=128, k_quantum=32, efficiency=0.32,
                tensor_core=True),
    KernelShape(tile_m=64, tile_n=64, k_quantum=32, efficiency=0.22,
                tensor_core=True),
)
_SIMT_KERNELS = (
    KernelShape(tile_m=32, tile_n=32, k_quantum=8, efficiency=0.45,
                tensor_core=False),
    KernelShape(tile_m=8, tile_n=8, k_quantum=4, efficiency=0.22,
                tensor_core=False),
)


class GpuModel:
    """Latency model for batched GEMMs on an NVIDIA GPU."""

    def __init__(self, config: GpuConfig, tensor_cores: bool = True) -> None:
        self.config = config
        self.tensor_cores = tensor_cores

    @property
    def name(self) -> str:
        dtype = "FP16" if self.tensor_cores else "FP32"
        return f"{self.config.name} ({dtype})"

    @property
    def peak_flops(self) -> float:
        if self.tensor_cores:
            return self.config.tensor_peak_flops
        return self.config.simt_peak_flops

    def _kernels(self) -> tuple[KernelShape, ...]:
        if self.tensor_cores:
            return _TENSOR_KERNELS + _SIMT_KERNELS
        return _SIMT_KERNELS

    def _kernel_compute_seconds(self, gemm: Gemm, kernel: KernelShape) -> float:
        cfg = self.config
        peak = (cfg.tensor_peak_flops if kernel.tensor_core
                else cfg.simt_peak_flops)
        tiles = (math.ceil(gemm.m / kernel.tile_m)
                 * math.ceil(gemm.n / kernel.tile_n)
                 * gemm.count)
        waves = math.ceil(tiles / cfg.sms)
        padded_k = math.ceil(gemm.k / kernel.k_quantum) * kernel.k_quantum
        tile_flops = 2.0 * kernel.tile_m * kernel.tile_n * padded_k
        per_sm_flops = peak / cfg.sms * kernel.efficiency
        return waves * tile_flops / per_sm_flops

    def _memory_seconds(self, gemm: Gemm, write_output: bool) -> float:
        cfg = self.config
        num_bytes = (gemm.lhs_elems + gemm.rhs_elems) * cfg.input_bytes
        if write_output:
            num_bytes += gemm.out_elems * cfg.acc_bytes
        return num_bytes / cfg.dram_bandwidth_bytes_per_s

    def gemm_seconds(self, gemm: Gemm, write_output: bool = True) -> float:
        """Latency of a batched GEMM (best candidate kernel)."""
        compute = min(
            self._kernel_compute_seconds(gemm, kernel)
            for kernel in self._kernels()
        )
        memory = self._memory_seconds(gemm, write_output)
        return max(compute, memory) + self.config.kernel_launch_seconds

    def effective_flops(self, gemm: Gemm) -> float:
        """Achieved FLOP/s on ``gemm``."""
        return gemm.flops / self.gemm_seconds(gemm)

    def gemms_seconds(self, gemms: list[Gemm],
                      write_output: bool = True) -> float:
        """Total latency of a GEMM sequence."""
        return sum(self.gemm_seconds(g, write_output) for g in gemms)
