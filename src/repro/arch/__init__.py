"""Accelerator substrate: engines, memory, vector unit, bandwidth, GPUs,
and multi-chip clusters."""

from repro.arch.accelerator import Accelerator, OpRun
from repro.arch.cluster import Cluster, ParallelPlan
from repro.arch.interconnect import (
    FABRICS,
    TOPOLOGIES,
    Fabric,
    Interconnect,
    InterconnectConfig,
    LinkClass,
    fabric_named,
)
from repro.arch.bandwidth import (
    SramBandwidth,
    os_bandwidth,
    outer_product_bandwidth,
    ws_bandwidth,
)
from repro.arch.engine import ArrayConfig, GemmEngine, GemmStats, TileShape
from repro.arch.memory import MemoryConfig, MemorySystem
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.arch.vector import VectorUnit, VectorUnitConfig

__all__ = [
    "Accelerator",
    "OpRun",
    "Cluster",
    "ParallelPlan",
    "Interconnect",
    "InterconnectConfig",
    "TOPOLOGIES",
    "FABRICS",
    "Fabric",
    "LinkClass",
    "fabric_named",
    "ArrayConfig",
    "GemmEngine",
    "GemmStats",
    "TileShape",
    "MemoryConfig",
    "MemorySystem",
    "VectorUnit",
    "VectorUnitConfig",
    "WeightStationaryEngine",
    "OutputStationaryEngine",
    "SramBandwidth",
    "ws_bandwidth",
    "os_bandwidth",
    "outer_product_bandwidth",
]
