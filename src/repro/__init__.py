"""repro: a reproduction of *DiVa: An Accelerator for Differentially
Private Machine Learning* (MICRO 2022, arXiv:2208.12392).

Public API highlights
---------------------
``repro.workloads``
    Layer IR, Figure 6 GEMM extraction, and the nine-model zoo.
``repro.arch`` / ``repro.core``
    Cycle models for WS/OS systolic arrays, DiVa's outer-product engine,
    the PPU, memory system, vector unit and GPU baselines - plus the
    Section VII packing extension (``repro.core.packing``).
``repro.functional``
    Cycle-by-cycle register simulators, tiled functional GEMM and BF16
    datapath emulation, used to validate the analytic models.
``repro.training``
    SGD / DP-SGD / DP-SGD(R) planners, memory model, simulation driver.
``repro.sim``
    Event-driven pipeline simulation with DMA prefetch.
``repro.energy``
    65 nm power/area/energy models (Table III, Figure 16).
``repro.dpml``
    A functional NumPy DP-SGD implementation (per-example gradients,
    ghost norms, LSTM/Embedding/LayerNorm layers) with an RDP
    accountant.
``repro.experiments``
    One module per paper figure/table; ``python -m repro run all``.
"""

__version__ = "1.0.0"
