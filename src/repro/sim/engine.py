"""Event-driven pipeline simulator with double-buffered DMA prefetch.

The per-op accelerator model (:mod:`repro.arch.accelerator`) charges
``max(compute, transfer)`` per operation — an idealized overlap *within*
one op.  This module simulates the overlap *across* operations instead:
a serial DMA engine prefetches operands up to ``prefetch_depth`` ops
ahead (bounded by on-chip buffer reuse), and each compute unit (GEMM
engine, vector unit, PPU) is a serial resource.  The resulting timeline
gives both a tighter latency estimate and per-resource busy/stall
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Compute resources an operation may occupy.
RESOURCES = ("gemm", "vector", "ppu")


@dataclass(frozen=True)
class TimedOp:
    """One operation to schedule.

    Attributes
    ----------
    label:
        Trace label.
    resource:
        The compute unit the op occupies (one of :data:`RESOURCES`).
    compute_cycles:
        Busy time on that unit.
    dma_cycles:
        Operand-transfer time that must complete before compute starts
        (0 for on-chip-resident operands).
    tag:
        Free-form grouping key (e.g. a training phase) for reports.
    """

    label: str
    resource: str
    compute_cycles: int
    dma_cycles: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.resource not in RESOURCES:
            raise ValueError(f"unknown resource {self.resource!r}")
        if self.compute_cycles < 0 or self.dma_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


@dataclass(frozen=True)
class OpTiming:
    """Scheduled times of one op (all in cycles)."""

    op: TimedOp
    dma_start: int
    dma_end: int
    compute_start: int
    compute_end: int


@dataclass
class Timeline:
    """The result of a pipeline simulation."""

    timings: list[OpTiming] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        if not self.timings:
            return 0
        return max(t.compute_end for t in self.timings)

    @property
    def serialized_cycles(self) -> int:
        """Latency with no cross-op overlap (every op fully serial)."""
        return sum(t.op.compute_cycles + t.op.dma_cycles
                   for t in self.timings)

    @property
    def per_op_max_cycles(self) -> int:
        """The per-op ``max(compute, dma)`` estimate, for comparison."""
        return sum(max(t.op.compute_cycles, t.op.dma_cycles)
                   for t in self.timings)

    def busy_cycles(self, resource: str) -> int:
        """Total busy time of one compute resource."""
        return sum(t.op.compute_cycles for t in self.timings
                   if t.op.resource == resource)

    def dma_busy_cycles(self) -> int:
        return sum(t.op.dma_cycles for t in self.timings)

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the whole timeline."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.busy_cycles(resource) / total

    def tag_cycles(self) -> dict[str, int]:
        """Wall-clock span attributed to each tag (by compute end).

        Ops on different resources may finish out of program order, so
        spans are carved up in completion order — otherwise a later list
        entry with an earlier ``compute_end`` collapses to zero and its
        wall-clock time is credited to whichever tag finishes next.
        """
        spans: dict[str, int] = {}
        last_end = 0
        for timing in sorted(self.timings, key=lambda t: t.compute_end):
            spans[timing.op.tag] = (spans.get(timing.op.tag, 0)
                                    + timing.compute_end - last_end)
            last_end = timing.compute_end
        return spans


class PipelineSimulator:
    """Schedules a program of :class:`TimedOp` onto serial resources.

    Semantics:

    * the DMA engine is serial and processes transfers in program order;
    * a transfer for op ``i`` may not start before op ``i - depth``'s
      compute has finished (its staging buffer is still in use);
    * compute for op ``i`` starts once its transfer is done, its
      resource is free, and (program order) op ``i - 1``'s compute has
      started.
    """

    def __init__(self, prefetch_depth: int = 1) -> None:
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.prefetch_depth = prefetch_depth

    def run(self, ops: list[TimedOp]) -> Timeline:
        """Simulate ``ops`` in program order; return the timeline."""
        timeline = Timeline()
        dma_free = 0
        resource_free = {name: 0 for name in RESOURCES}
        compute_starts: list[int] = []
        compute_ends: list[int] = []
        for index, op in enumerate(ops):
            # Buffer reuse: with `depth` staging buffers the transfer
            # for op i may overlap the compute of ops i-1 .. i-depth,
            # but must wait for op (i - depth - 1) to release its buffer.
            gate = 0
            blocker = index - self.prefetch_depth - 1
            if blocker >= 0:
                gate = compute_ends[blocker]
            dma_start = max(dma_free, gate)
            dma_end = dma_start + op.dma_cycles
            dma_free = dma_end

            start = max(dma_end, resource_free[op.resource])
            if compute_starts:  # program order is preserved
                start = max(start, compute_starts[-1])
            end = start + op.compute_cycles
            resource_free[op.resource] = end
            compute_starts.append(start)
            compute_ends.append(end)
            timeline.timings.append(OpTiming(
                op=op, dma_start=dma_start, dma_end=dma_end,
                compute_start=start, compute_end=end,
            ))
        return timeline
