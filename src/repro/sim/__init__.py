"""Event-driven pipeline simulation with DMA prefetch."""

from repro.sim.engine import (
    OpTiming,
    PipelineSimulator,
    TimedOp,
    Timeline,
)
from repro.sim.pipeline import PipelineReport, pipeline_training_step

__all__ = [
    "TimedOp",
    "OpTiming",
    "Timeline",
    "PipelineSimulator",
    "PipelineReport",
    "pipeline_training_step",
]
