"""Lower a training step to a :class:`TimedOp` program and simulate it.

Bridges the phase-level planner (:mod:`repro.training.plan`) and the
event-driven engine (:mod:`repro.sim.engine`): every GEMM becomes one
``TimedOp`` on the GEMM engine with its operand-transfer cost, and the
post-processing stages become vector/PPU ops — so DMA prefetch overlaps
the next layer's operand fetch with the current layer's compute, as a
real double-buffered accelerator would.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import Accelerator
from repro.sim.engine import PipelineSimulator, TimedOp, Timeline
from repro.training.algorithms import Algorithm
from repro.training.phases import Phase
from repro.training.plan import phase_gemms
from repro.training.simulate import GRAD_BYTES, simulate_training_step
from repro.workloads.gemms import Gemm
from repro.workloads.model import Network


@dataclass(frozen=True)
class PipelineReport:
    """Overlap-aware latency of one training step."""

    network: str
    algorithm: Algorithm
    accelerator: str
    batch: int
    frequency_hz: float
    timeline: Timeline
    #: The phase-level (per-op max) estimate, for comparison.
    per_op_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.timeline.total_cycles

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.frequency_hz

    @property
    def overlap_gain(self) -> float:
        """Latency reduction unlocked by cross-op prefetching."""
        if self.total_cycles == 0:
            return 0.0
        return self.per_op_cycles / self.total_cycles


def _gemm_ops(accelerator: Accelerator, gemms: list[Gemm], tag: str,
              write_output: bool = True,
              fuse_norm: bool = False) -> list[TimedOp]:
    ops = []
    for gemm in gemms:
        run = accelerator.run_gemm(gemm, write_output=write_output,
                                   fuse_norm=fuse_norm)
        # Back-to-back transfers pipeline their access latency; only
        # streaming time occupies the DMA engine.
        transfer = accelerator.memory.streaming_cycles(run.dram_bytes)
        ops.append(TimedOp(
            label=f"{tag}:{gemm.layer or 'gemm'}",
            resource="gemm",
            compute_cycles=run.compute_cycles,
            dma_cycles=transfer,
            tag=tag,
        ))
    return ops


def pipeline_training_step(
    network: Network,
    algorithm: Algorithm,
    accelerator: Accelerator,
    batch: int,
    prefetch_depth: int = 1,
) -> PipelineReport:
    """Simulate one training step with cross-op DMA prefetching."""
    plan = phase_gemms(network, algorithm, batch)
    fuse = accelerator.can_fuse_norm
    os_drain = accelerator.engine.dataflow == "output_stationary"
    ops: list[TimedOp] = []

    ops += _gemm_ops(accelerator, plan[Phase.FWD], str(Phase.FWD))
    ops += _gemm_ops(accelerator, plan[Phase.BWD_ACT_1],
                     str(Phase.BWD_ACT_1))
    if algorithm.is_private:
        write = algorithm.stores_example_gradients or not os_drain
        ops += _gemm_ops(accelerator, plan[Phase.BWD_EXAMPLE_GRAD],
                         str(Phase.BWD_EXAMPLE_GRAD),
                         write_output=write, fuse_norm=fuse)
        if not fuse:
            norm_elems = batch * network.gemm_params
            cycles = accelerator.vector.reduction_cycles(norm_elems, 2.0)
            dma = 0 if os_drain else accelerator.memory.transfer_cycles(
                norm_elems * GRAD_BYTES)
            ops.append(TimedOp(str(Phase.BWD_GRAD_NORM), "vector",
                               cycles, dma, tag=str(Phase.BWD_GRAD_NORM)))
    if algorithm is Algorithm.DP_SGD_R:
        ops += _gemm_ops(accelerator, plan[Phase.BWD_ACT_2],
                         str(Phase.BWD_ACT_2))
        ops += _gemm_ops(accelerator, plan[Phase.BWD_BATCH_GRAD],
                         str(Phase.BWD_BATCH_GRAD))
    elif algorithm is Algorithm.SGD:
        ops += _gemm_ops(accelerator, plan[Phase.BWD_BATCH_GRAD],
                         str(Phase.BWD_BATCH_GRAD))
    elif algorithm is Algorithm.DP_SGD:
        params = network.params
        clip_bytes = 2 * batch * params * GRAD_BYTES
        ops.append(TimedOp(str(Phase.BWD_GRAD_CLIP), "vector",
                           accelerator.vector.elementwise_cycles(
                               batch * params),
                           accelerator.memory.transfer_cycles(clip_bytes),
                           tag=str(Phase.BWD_GRAD_CLIP)))
        reduce_bytes = (batch + 1) * params * GRAD_BYTES
        ops.append(TimedOp(str(Phase.BWD_REDUCE_NOISE), "vector",
                           accelerator.vector.reduction_cycles(
                               batch * params),
                           accelerator.memory.transfer_cycles(reduce_bytes),
                           tag=str(Phase.BWD_REDUCE_NOISE)))

    # Weight update / noise addition (common tail).
    params = network.params
    ops.append(TimedOp("update", "vector",
                       accelerator.vector.elementwise_cycles(params, 2.0),
                       accelerator.memory.transfer_cycles(
                           3 * params * GRAD_BYTES),
                       tag=str(Phase.BWD_REDUCE_NOISE)))

    timeline = PipelineSimulator(prefetch_depth).run(ops)
    reference = simulate_training_step(network, algorithm, accelerator,
                                       batch)
    return PipelineReport(
        network=network.name,
        algorithm=algorithm,
        accelerator=accelerator.name,
        batch=batch,
        frequency_hz=accelerator.frequency_hz,
        timeline=timeline,
        per_op_cycles=reference.total_cycles,
    )
