"""Discrete-event fleet scheduler for multi-tenant DP training.

:func:`simulate_fleet` replays a job trace against a pool of identical
:class:`~repro.arch.cluster.Cluster`\\ s:

1. **Arrival** — the admission controller prices the job against its
   tenant's ``(epsilon, delta)`` budget (reject / truncate / admit) and
   reserves the grant immediately.
2. **Dispatch** — whenever a cluster is idle and jobs are queued, the
   scheduling policy picks the next job.  Service time is
   ``granted_steps x step latency``, where the step latency comes from
   :func:`repro.training.simulate.simulate_sharded_training_step` via
   the closed-form cycle engine — memoized in-process and optionally
   persisted through :func:`repro.experiments.runner.run_cached`,
   since traces repeat workload configurations.
3. **Completion** — the cluster frees and the dispatch loop runs again.

Scheduling policies (:data:`POLICIES`):

``fifo``
    Arrival order.
``sjf``
    Shortest predicted service time first (the closed-form engine
    makes the prediction exact, so this is true SJF, not an estimate).
``budget``
    Tenants with the largest *remaining* budget fraction first — an
    incentive policy: tenants who have nearly exhausted their epsilon
    wait behind those still holding budget.

All ties break on ``(arrival, job_id)``, so a simulation is fully
deterministic given a trace and a policy.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.arch.interconnect import InterconnectConfig
from repro.experiments import runner
from repro.serve.budget import AdmissionController, AdmissionDecision
from repro.serve.job import TrainingJob
from repro.serve.metrics import FleetReport, build_report

#: Scheduling policies simulate_fleet understands.
POLICIES = ("fifo", "sjf", "budget")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the serving fleet.

    ``chips`` total accelerators, grouped into
    ``chips / chips_per_cluster`` identical clusters; each job occupies
    one whole cluster for its lifetime (DP-SGD steps are synchronous,
    so fractional clusters would serialize anyway).  ``chips_per_node``,
    ``bucket_bytes`` and ``overlap`` configure the overlap-aware
    intra-cluster communication model
    (:mod:`repro.arch.interconnect`); service-time predictions pick
    them up transparently through the memoized sharded step.
    """

    chips: int = 4
    chips_per_cluster: int = 1
    kind: str = "diva"
    topology: str = "ring"
    chips_per_node: int = 1
    bucket_bytes: int | None = None
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ValueError(f"chips must be >= 1, got {self.chips}")
        if self.chips_per_cluster < 1:
            raise ValueError(
                f"chips_per_cluster must be >= 1, got "
                f"{self.chips_per_cluster}")
        if self.chips % self.chips_per_cluster:
            raise ValueError(
                f"{self.chips} chips do not group into clusters of "
                f"{self.chips_per_cluster}")
        # The fabric knobs (topology, bucket_bytes, chips_per_node)
        # validate themselves; only cluster divisibility is ours.
        InterconnectConfig(topology=self.topology,
                           bucket_bytes=self.bucket_bytes,
                           chips_per_node=self.chips_per_node)
        if self.topology == "hierarchical" and self.chips_per_cluster > 1 \
                and self.chips_per_cluster % self.chips_per_node:
            # 1-chip clusters are exempt: they have no collectives.
            raise ValueError(
                f"{self.chips_per_cluster} chips per cluster do not "
                f"group into hierarchical nodes of {self.chips_per_node}")

    @property
    def n_clusters(self) -> int:
        return self.chips // self.chips_per_cluster


@dataclass
class JobRecord:
    """Lifecycle of one job through the fleet."""

    job: TrainingJob
    decision: AdmissionDecision
    service_s: float = 0.0
    start_s: float | None = None
    finish_s: float | None = None
    cluster_index: int | None = None

    @property
    def wait_s(self) -> float:
        """Queueing delay between arrival and dispatch."""
        if self.start_s is None:
            return 0.0
        return self.start_s - self.job.arrival_s


@lru_cache(maxsize=4096)
def _step_seconds(kind: str, chips_per_cluster: int, topology: str,
                  chips_per_node: int, bucket_bytes: int | None,
                  overlap: bool, model: str, algorithm: str,
                  batch: int) -> float:
    """One sharded training step's latency, closed-form."""
    from repro.core import build_cluster
    from repro.training import Algorithm, simulate_sharded_training_step
    from repro.workloads import build_model

    cluster = build_cluster(
        kind, n_chips=chips_per_cluster,
        interconnect=InterconnectConfig(
            topology=topology, bucket_bytes=bucket_bytes,
            chips_per_node=chips_per_node))
    report = simulate_sharded_training_step(
        build_model(model), Algorithm(algorithm), cluster, batch,
        overlap=overlap)
    return report.total_seconds


def predict_step_seconds(
    fleet: FleetConfig,
    job: TrainingJob,
    cache: "runner.ResultCache | None" = None,
) -> float:
    """Step latency for ``job`` on one of ``fleet``'s clusters.

    The batch is rounded up to the nearest multiple of the cluster
    width so the data-parallel shard divides evenly.  Results are
    memoized in-process (traces repeat configurations) and optionally
    persisted through the experiment runner's JSON cache.
    """
    batch = math.ceil(job.batch / fleet.chips_per_cluster) \
        * fleet.chips_per_cluster
    key = {"experiment": "serve-step", "kind": fleet.kind,
           "chips_per_cluster": fleet.chips_per_cluster,
           "topology": fleet.topology,
           "chips_per_node": fleet.chips_per_node,
           "bucket_bytes": fleet.bucket_bytes,
           "overlap": fleet.overlap, "model": job.model,
           "algorithm": job.algorithm, "batch": batch}
    return runner.run_cached(
        key,
        lambda: _step_seconds(fleet.kind, fleet.chips_per_cluster,
                              fleet.topology, fleet.chips_per_node,
                              fleet.bucket_bytes, fleet.overlap,
                              job.model, job.algorithm, batch),
        cache=cache)


def _policy_key(policy: str, admission: AdmissionController):
    """Dispatch-priority key function; lower sorts first."""
    if policy == "fifo":
        return lambda rec: (rec.job.arrival_s, rec.job.job_id)
    if policy == "sjf":
        return lambda rec: (rec.service_s, rec.job.arrival_s,
                            rec.job.job_id)
    if policy == "budget":
        # remaining_fraction is read at dispatch time: each grant a
        # tenant burns pushes its queued jobs further back.
        return lambda rec: (-admission.remaining_fraction(rec.job.tenant),
                            rec.job.arrival_s, rec.job.job_id)
    raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")


def simulate_fleet(
    trace: Sequence[TrainingJob],
    fleet: FleetConfig = FleetConfig(),
    *,
    policy: str = "fifo",
    admission: AdmissionController | None = None,
    cache: "runner.ResultCache | None" = None,
) -> FleetReport:
    """Replay ``trace`` on ``fleet`` under ``policy`` and report.

    Deterministic: the same trace, fleet, policy and admission
    configuration always produce the identical report.
    """
    if admission is None:
        admission = AdmissionController()
    select_key = _policy_key(policy, admission)

    # Event heap: (time, seq, kind, payload).  seq makes simultaneous
    # events deterministic; payloads are never compared.
    events: list[tuple[float, int, str, JobRecord | TrainingJob]] = []
    seq = 0
    for job in sorted(trace, key=lambda j: (j.arrival_s, j.job_id)):
        heapq.heappush(events, (job.arrival_s, seq, "arrival", job))
        seq += 1

    idle: list[int] = list(range(fleet.n_clusters))
    heapq.heapify(idle)
    queue: list[JobRecord] = []
    records: list[JobRecord] = []

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "arrival":
            job = payload
            decision = admission.admit(job)
            record = JobRecord(job=job, decision=decision)
            records.append(record)
            if decision.admitted:
                record.service_s = decision.granted_steps * \
                    predict_step_seconds(fleet, job, cache=cache)
                queue.append(record)
        else:  # completion
            record = payload
            heapq.heappush(idle, record.cluster_index)
        while idle and queue:
            nxt = min(queue, key=select_key)
            queue.remove(nxt)
            nxt.cluster_index = heapq.heappop(idle)
            nxt.start_s = now
            nxt.finish_s = now + nxt.service_s
            heapq.heappush(events, (nxt.finish_s, seq, "completion", nxt))
            seq += 1

    return build_report(
        policy=policy,
        chips=fleet.chips,
        n_clusters=fleet.n_clusters,
        chips_per_cluster=fleet.chips_per_cluster,
        records=records,
        admission=admission,
    )
