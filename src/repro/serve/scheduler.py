"""Discrete-event fleet scheduler for multi-tenant DP training.

:func:`simulate_fleet` replays a job trace against a pool of identical
:class:`~repro.arch.cluster.Cluster`\\ s:

1. **Arrival** — the admission controller prices the job against its
   tenant's ``(epsilon, delta)`` budget (reject / truncate / admit) and
   reserves the grant immediately.
2. **Dispatch** — whenever a cluster is idle and jobs are queued, the
   scheduling policy picks the next job.  Service time is
   ``granted_steps x step latency``, where the step latency comes from
   :func:`repro.training.simulate.simulate_sharded_training_step` via
   the closed-form cycle engine — memoized in-process and optionally
   persisted through :func:`repro.experiments.runner.run_cached`,
   since traces repeat workload configurations.
3. **Completion** — the cluster frees and the dispatch loop runs again.

Scheduling policies (:data:`POLICIES`):

``fifo``
    Arrival order.
``sjf``
    Shortest predicted service time first (the closed-form engine
    makes the prediction exact, so this is true SJF, not an estimate).
``budget``
    Tenants with the largest *remaining* budget fraction first — an
    incentive policy: tenants who have nearly exhausted their epsilon
    wait behind those still holding budget.

All ties break on ``(arrival, job_id)``, so a simulation is fully
deterministic given a trace and a policy.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.arch.interconnect import InterconnectConfig
from repro.experiments import runner
from repro.serve.autoscale import AutoscalerPolicy, AutoscalerState
from repro.serve.budget import (
    AdmissionController,
    AdmissionDecision,
    BatchAdmissionDecisions,
)
from repro.serve.faults import FaultModel, FaultRun
from repro.serve.job import TraceArrays, TrainingJob
from repro.serve.metrics import (
    FleetReport,
    build_report,
    build_streaming_report,
)
from repro.serve.stream import StreamingStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.fleet import FleetObs

#: Scheduling policies simulate_fleet understands.
POLICIES = ("fifo", "sjf", "budget")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the serving fleet.

    ``chips`` total accelerators, grouped into
    ``chips / chips_per_cluster`` identical clusters; each job occupies
    one whole cluster for its lifetime (DP-SGD steps are synchronous,
    so fractional clusters would serialize anyway).  ``pp`` / ``tp``
    carve pipeline/tensor parallelism out of each cluster (jobs
    data-parallelize across the remaining ``dp`` factor) and
    ``fabric`` names a heterogeneous link preset.  ``chips_per_node``,
    ``bucket_bytes`` and ``overlap`` configure the overlap-aware
    intra-cluster communication model
    (:mod:`repro.arch.interconnect`); service-time predictions pick
    them up transparently through the memoized sharded step.
    """

    chips: int = 4
    chips_per_cluster: int = 1
    kind: str = "diva"
    topology: str = "ring"
    chips_per_node: int = 1
    bucket_bytes: int | None = None
    overlap: bool = True
    pp: int = 1
    tp: int = 1
    fabric: str | None = None

    def __post_init__(self) -> None:
        if self.chips < 1:
            raise ValueError(f"chips must be >= 1, got {self.chips}")
        if self.chips_per_cluster < 1:
            raise ValueError(
                f"chips_per_cluster must be >= 1, got "
                f"{self.chips_per_cluster}")
        if self.chips % self.chips_per_cluster:
            raise ValueError(
                f"{self.chips} chips do not group into clusters of "
                f"{self.chips_per_cluster}")
        if self.pp < 1 or self.tp < 1:
            raise ValueError(
                f"pp and tp must be >= 1, got pp={self.pp} tp={self.tp}")
        if self.chips_per_cluster % (self.pp * self.tp):
            raise ValueError(
                f"{self.chips_per_cluster} chips per cluster do not "
                f"factor into pp={self.pp} x tp={self.tp} stages")
        if self.fabric is not None:
            from repro.arch.interconnect import fabric_named

            fabric_named(self.fabric)  # validate the preset name
        # The fabric knobs (topology, bucket_bytes, chips_per_node)
        # validate themselves; only cluster divisibility is ours.
        InterconnectConfig(topology=self.topology,
                           bucket_bytes=self.bucket_bytes,
                           chips_per_node=self.chips_per_node)
        if self.topology == "hierarchical" and self.dp > 1 \
                and self.dp % self.chips_per_node:
            # Single-replica clusters are exempt: no DP collectives.
            raise ValueError(
                f"{self.dp} data-parallel chips per cluster do not "
                f"group into hierarchical nodes of {self.chips_per_node}")

    @property
    def n_clusters(self) -> int:
        return self.chips // self.chips_per_cluster

    @property
    def dp(self) -> int:
        """Data-parallel replicas per cluster (batch-rounding width)."""
        return self.chips_per_cluster // (self.pp * self.tp)


@dataclass
class JobRecord:
    """Lifecycle of one job through the fleet."""

    job: TrainingJob
    decision: AdmissionDecision
    service_s: float = 0.0
    start_s: float | None = None
    finish_s: float | None = None
    cluster_index: int | None = None
    #: Abandoned after exhausting its retries (fault injection only).
    failed: bool = False

    @property
    def wait_s(self) -> float:
        """Queueing delay between arrival and dispatch."""
        if self.start_s is None:
            return 0.0
        return self.start_s - self.job.arrival_s


@lru_cache(maxsize=4096)
def _step_seconds(kind: str, chips_per_cluster: int, topology: str,
                  chips_per_node: int, bucket_bytes: int | None,
                  overlap: bool, model: str, algorithm: str,
                  batch: int, pp: int = 1, tp: int = 1,
                  fabric: str | None = None) -> float:
    """One sharded training step's latency, closed-form."""
    from repro.arch.cluster import ParallelPlan
    from repro.arch.interconnect import fabric_named
    from repro.core import build_cluster
    from repro.training import Algorithm, simulate_sharded_training_step
    from repro.workloads import build_model

    cluster = build_cluster(
        kind, n_chips=chips_per_cluster,
        interconnect=InterconnectConfig(
            topology=topology, bucket_bytes=bucket_bytes,
            chips_per_node=chips_per_node,
            fabric=fabric_named(fabric) if fabric else None))
    plan = ParallelPlan(dp=chips_per_cluster // (pp * tp), pp=pp, tp=tp) \
        if pp * tp > 1 else None
    report = simulate_sharded_training_step(
        build_model(model), Algorithm(algorithm), cluster, batch,
        overlap=overlap, plan=plan)
    return report.total_seconds


def predict_step_seconds(
    fleet: FleetConfig,
    job: TrainingJob,
    cache: "runner.ResultCache | None" = None,
) -> float:
    """Step latency for ``job`` on one of ``fleet``'s clusters.

    The batch is rounded up to the nearest multiple of the cluster
    width so the data-parallel shard divides evenly.  Results are
    memoized in-process (traces repeat configurations) and optionally
    persisted through the experiment runner's JSON cache.
    """
    batch = math.ceil(job.batch / fleet.dp) * fleet.dp
    key = {"experiment": "serve-step", "kind": fleet.kind,
           "chips_per_cluster": fleet.chips_per_cluster,
           "topology": fleet.topology,
           "chips_per_node": fleet.chips_per_node,
           "bucket_bytes": fleet.bucket_bytes,
           "overlap": fleet.overlap, "model": job.model,
           "algorithm": job.algorithm, "batch": batch,
           "pp": fleet.pp, "tp": fleet.tp, "fabric": fleet.fabric}
    return float(runner.run_cached(
        key,
        lambda: _step_seconds(fleet.kind, fleet.chips_per_cluster,
                              fleet.topology, fleet.chips_per_node,
                              fleet.bucket_bytes, fleet.overlap,
                              job.model, job.algorithm, batch,
                              fleet.pp, fleet.tp, fleet.fabric),
        cache=cache))


def _policy_key(
    policy: str, admission: AdmissionController,
) -> Callable[[JobRecord], tuple[float | int, ...]]:
    """Dispatch-priority key function; lower sorts first."""
    if policy == "fifo":
        return lambda rec: (rec.job.arrival_s, rec.job.job_id)
    if policy == "sjf":
        return lambda rec: (rec.service_s, rec.job.arrival_s,
                            rec.job.job_id)
    if policy == "budget":
        # remaining_fraction is read at dispatch time: each grant a
        # tenant burns pushes its queued jobs further back.
        return lambda rec: (-admission.remaining_fraction(rec.job.tenant),
                            rec.job.arrival_s, rec.job.job_id)
    raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")


#: Same-timestamp event order: arrivals, then provisioned clusters
#: coming online, then completions, then repaired clusters rejoining,
#: then retried jobs requeueing.  Both simulators implement this
#: order, which keeps their schedules identical under autoscaling and
#: fault injection alike.
_PRIO_ARRIVAL, _PRIO_PROVISION, _PRIO_COMPLETION = 0, 1, 2
_PRIO_REPAIR, _PRIO_RETRY = 3, 4


def simulate_fleet(
    trace: Sequence[TrainingJob],
    fleet: FleetConfig = FleetConfig(),
    *,
    policy: str = "fifo",
    admission: AdmissionController | None = None,
    autoscaler: AutoscalerPolicy | None = None,
    faults: FaultModel | None = None,
    cache: "runner.ResultCache | None" = None,
    dispatch_log: "list[tuple[int, float]] | None" = None,
    obs: "FleetObs | None" = None,
) -> FleetReport:
    """Replay ``trace`` on ``fleet`` under ``policy`` and report.

    Deterministic: the same trace, fleet, policy and admission
    configuration always produce the identical report.

    ``autoscaler`` turns the static cluster pool into a reactive one
    (see :mod:`repro.serve.autoscale`): after each event's dispatch
    loop settles, the policy may request new clusters (online after
    its provisioning delay) or retire idle ones, and the report gains
    scale events plus chip-hour cost.  ``dispatch_log``, when given,
    receives ``(job_id, start_s)`` per dispatch in dispatch order —
    the observable the streaming-equivalence tests pin.

    ``obs`` (a :class:`repro.obs.fleet.FleetObs`) observes the run:
    one windowed load sample per elapsed metrics window in-loop, and
    the finished records attached at the end for span building /
    metric folding in ``obs.export()``.  ``None`` (default) is the
    exact pre-observability code path.

    ``faults`` (a :class:`~repro.serve.faults.FaultModel`) injects
    seeded failures: attempts crash mid-service, jobs requeue with
    capped backoff or continue degraded at a smaller ``dp'``, clusters
    repair after a downtime, and the admission ledger is re-priced per
    crash (see :mod:`repro.serve.faults`).  With faults on, the whole
    trace is admitted upfront in arrival order — decision-identical to
    the streaming loop's batched admission — so crash-time ledger
    transactions interleave identically in both simulators.  ``None``
    (default) is the exact zero-failure code path, byte-identical to
    the pre-fault-injection simulator.
    """
    if admission is None:
        admission = AdmissionController()
    select_key = _policy_key(policy, admission)
    state = (AutoscalerState(autoscaler,
                             initial_clusters=fleet.n_clusters,
                             chips_per_cluster=fleet.chips_per_cluster)
             if autoscaler is not None else None)
    frun = (FaultRun(faults, fleet, admission, cache=cache)
            if faults is not None else None)

    # Event heap: (time, priority, seq, kind, payload).  priority
    # orders simultaneous events across kinds, seq within a kind;
    # payloads are never compared.
    events: list[tuple[float, int, int, str,
                       JobRecord | TrainingJob | int | None]] = []
    seq = 0
    predecided: dict[int, AdmissionDecision] = {}
    for job in sorted(trace, key=lambda j: (j.arrival_s, j.job_id)):
        heapq.heappush(events,
                       (job.arrival_s, _PRIO_ARRIVAL, seq, "arrival", job))
        seq += 1
        if frun is not None:
            # Upfront admission in arrival order — the scalar twin of
            # admit_batch, so retry re-pricing sees the same ledger in
            # both simulators.
            predecided[job.job_id] = admission.admit(job)

    idle: list[int] = list(range(fleet.n_clusters))
    heapq.heapify(idle)
    next_cluster = fleet.n_clusters
    queue: list[JobRecord] = []
    records: list[JobRecord] = []
    # With faults on, wait percentiles fold into the same streaming
    # accumulator the streaming loop uses (per-dispatch, retries
    # included), keeping the two reports identical.
    step_by_job: dict[int, float] = {}
    waits = (state.waits if state is not None else StreamingStats()) \
        if frun is not None else None
    # Local mirror of the observer's sampling deadline: the per-event
    # guard is one float compare whether observability is on or off.
    obs_next_sample_s = obs.next_sample_s if obs is not None else math.inf
    now = 0.0

    while events:
        now, _, _, kind, payload = heapq.heappop(events)
        if kind == "arrival":
            assert isinstance(payload, TrainingJob)
            job = payload
            decision = (predecided[job.job_id] if frun is not None
                        else admission.admit(job))
            record = JobRecord(job=job, decision=decision)
            records.append(record)
            if decision.admitted:
                step_s = predict_step_seconds(fleet, job, cache=cache)
                if frun is not None:
                    step_by_job[job.job_id] = step_s
                    record.service_s = decision.granted_steps * \
                        frun.effective_step_seconds(job.model, step_s)
                else:
                    record.service_s = decision.granted_steps * step_s
                queue.append(record)
        elif kind == "provision":
            assert state is not None
            state.activate_one(now)
            heapq.heappush(idle, next_cluster)
            next_cluster += 1
        elif kind == "repair":
            assert isinstance(payload, int)
            heapq.heappush(idle, payload)
        elif kind == "retry":
            assert isinstance(payload, JobRecord)
            queue.append(payload)
        else:  # completion
            assert isinstance(payload, JobRecord)
            record = payload
            assert record.cluster_index is not None
            heapq.heappush(idle, record.cluster_index)
        while idle and queue:
            nxt = min(queue, key=select_key)
            queue.remove(nxt)
            nxt.cluster_index = heapq.heappop(idle)
            if frun is None:
                nxt.start_s = now
                nxt.finish_s = now + nxt.service_s
                heapq.heappush(events, (nxt.finish_s, _PRIO_COMPLETION,
                                        seq, "completion", nxt))
                seq += 1
                if state is not None:
                    state.record_wait(nxt.wait_s)
            else:
                job_id = nxt.job.job_id
                if nxt.start_s is None:
                    nxt.start_s = now
                assert waits is not None
                waits.add(float(now - frun.ready_s(job_id,
                                                   nxt.job.arrival_s)))
                outcome = frun.begin_attempt(
                    job_id, now,
                    step_s=step_by_job[job_id],
                    granted=nxt.decision.granted_steps,
                    requested=nxt.job.steps,
                    tenant=nxt.job.tenant,
                    sampling_rate=nxt.job.sampling_rate,
                    noise_multiplier=nxt.job.noise_multiplier,
                    private=nxt.job.is_private,
                    model_name=nxt.job.model,
                    algorithm=nxt.job.algorithm,
                    batch=nxt.job.batch)
                if outcome.completed:
                    nxt.finish_s = outcome.finish_s
                    heapq.heappush(events, (outcome.free_s,
                                            _PRIO_COMPLETION, seq,
                                            "completion", nxt))
                    seq += 1
                else:
                    # The cluster goes down for repair; the job either
                    # requeues after its backoff or is abandoned.
                    assert nxt.cluster_index is not None
                    heapq.heappush(events, (outcome.free_s, _PRIO_REPAIR,
                                            seq, "repair",
                                            nxt.cluster_index))
                    seq += 1
                    if outcome.retry_s is not None:
                        nxt.service_s = frun.remaining_steps(
                            job_id, nxt.decision.granted_steps) * \
                            frun.effective_step_seconds(
                                nxt.job.model, step_by_job[job_id])
                        heapq.heappush(events, (outcome.retry_s,
                                                _PRIO_RETRY, seq,
                                                "retry", nxt))
                        seq += 1
                    else:
                        nxt.failed = outcome.failed
            if dispatch_log is not None:
                dispatch_log.append((nxt.job.job_id, now))
        if state is not None:
            delta = state.decide(now, len(queue), len(idle))
            if delta > 0:
                for _ in range(delta):
                    heapq.heappush(
                        events,
                        (now + state.policy.provision_delay_s,
                         _PRIO_PROVISION, seq, "provision", None))
                    seq += 1
            elif delta < 0:
                # Retire the newest idle clusters first, keeping the
                # base fleet's low indices stable.
                for _ in range(-delta):
                    idle.remove(max(idle))
                heapq.heapify(idle)
        if now >= obs_next_sample_s:
            assert obs is not None  # deadline is +inf otherwise
            obs.sample(now, len(queue), len(idle),
                       state.active if state is not None
                       else fleet.n_clusters,
                       len(state.pending) if state is not None else 0)
            obs_next_sample_s = obs.next_sample_s

    if state is not None:
        state.finalize(now)
    if obs is not None:
        obs.attach_scalar(policy=policy, records=records, state=state,
                          faults=frun)
    if frun is not None:
        # Fault metrics live in the FaultRun, fed by both loops in the
        # same dispatch order — so the faulty scalar report is built by
        # the same fold as the streaming one (plus the records).
        assert waits is not None
        return build_streaming_report(
            policy=policy,
            chips=fleet.chips,
            n_clusters=fleet.n_clusters,
            chips_per_cluster=fleet.chips_per_cluster,
            submitted=len(records),
            completed=frun.completed,
            truncated=frun.truncated,
            rejected=sum(1 for r in records if not r.decision.admitted),
            makespan_s=frun.makespan_s,
            busy_s=frun.busy_s,
            waits=waits,
            admission=admission,
            autoscale=state,
            faults=frun,
            records=tuple(records),
        )
    return build_report(
        policy=policy,
        chips=fleet.chips,
        n_clusters=fleet.n_clusters,
        chips_per_cluster=fleet.chips_per_cluster,
        records=records,
        admission=admission,
        autoscale=state,
    )


def predict_step_seconds_batch(
    fleet: FleetConfig,
    models: Sequence[str],
    algorithms: Sequence[str],
    batches: Sequence[int],
    cache: "runner.ResultCache | None" = None,
) -> NDArray[Any]:
    """Step latencies for many (model, algorithm, batch) configs at once.

    The batched counterpart of :func:`predict_step_seconds`: one
    :func:`repro.training.sharded_step_batch` call prices every
    cache-missing config (``batches`` must already be rounded to the
    cluster width).  Cache keys are identical to the scalar path's, so
    the two share persisted entries — and the values are identical
    too, because the batched engine is pinned bitwise-equal to the
    scalar simulator.
    """
    from repro.training.batch import sharded_step_batch

    work = list(zip(models, algorithms, batches))

    def price(missing: list[tuple[str, str, int]]) -> list[float]:
        if not missing:
            return []
        miss_models, miss_algorithms, miss_batches = zip(*missing)
        result = sharded_step_batch(
            list(miss_models), list(miss_algorithms),
            np.array(miss_batches, dtype=np.int64),
            fleet.chips_per_cluster,
            topologies=fleet.topology,
            bucket_bytes=fleet.bucket_bytes,
            chips_per_node=(fleet.chips_per_node
                            if fleet.topology == "hierarchical" else 1),
            overlaps=fleet.overlap, kinds=fleet.kind,
            pps=fleet.pp, tps=fleet.tp, fabrics=fleet.fabric)
        return [float(value) for value in result.total_seconds]

    seconds = runner.cached_batch(
        price, work, cache=cache,
        key_fn=lambda item: {
            "experiment": "serve-step", "kind": fleet.kind,
            "chips_per_cluster": fleet.chips_per_cluster,
            "topology": fleet.topology,
            "chips_per_node": fleet.chips_per_node,
            "bucket_bytes": fleet.bucket_bytes,
            "overlap": fleet.overlap, "model": item[0],
            "algorithm": item[1], "batch": int(item[2]),
            "pp": fleet.pp, "tp": fleet.tp, "fabric": fleet.fabric})
    return np.array(seconds, dtype=float)


def _job_step_table(
    trace: TraceArrays,
    fleet: FleetConfig,
    cache: "runner.ResultCache | None" = None,
) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
    """``(unique configs, inverse, step table)`` over the trace.

    One batched evaluation prices every unique
    (model, algorithm, rounded-batch) configuration; ``table[inverse]``
    is the per-job base step latency.
    """
    width = fleet.dp
    rounded = np.ceil(trace.batch / width).astype(np.int64) * width
    configs = np.stack([trace.model, trace.algorithm, rounded], axis=1)
    unique, inverse = np.unique(configs, axis=0, return_inverse=True)
    table = predict_step_seconds_batch(
        fleet,
        [trace.models[int(row[0])] for row in unique],
        [trace.algorithms[int(row[1])] for row in unique],
        unique[:, 2].tolist(),
        cache=cache)
    return unique, inverse, table


def _job_service_seconds(
    trace: TraceArrays,
    decisions: BatchAdmissionDecisions,
    fleet: FleetConfig,
    cache: "runner.ResultCache | None" = None,
) -> NDArray[Any]:
    """Per-job service times from one batched service-time table.

    Builds the (model, algorithm, rounded-batch) table with a single
    batched evaluation over the trace's unique configurations, then
    gathers ``granted_steps x step latency`` per job.
    """
    _, inverse, table = _job_step_table(trace, fleet, cache=cache)
    return decisions.granted_steps * table[inverse]


def simulate_fleet_streaming(
    trace: TraceArrays,
    fleet: FleetConfig = FleetConfig(),
    *,
    policy: str = "fifo",
    admission: AdmissionController | None = None,
    decisions: BatchAdmissionDecisions | None = None,
    autoscaler: AutoscalerPolicy | None = None,
    faults: FaultModel | None = None,
    cache: "runner.ResultCache | None" = None,
    dispatch_log: "list[tuple[int, float]] | None" = None,
    obs: "FleetObs | None" = None,
) -> FleetReport:
    """Replay an array trace on ``fleet`` with O(1) metric memory.

    The million-job counterpart of :func:`simulate_fleet`: admission
    decides the whole trace in one batched pass (decision-identical to
    the scalar controller), service times come from one precomputed
    batched step-latency table, the event loop walks the arrival
    arrays directly (the completion heap never exceeds the cluster
    count), and metrics fold into streaming accumulators — no per-job
    record list is ever materialized, so the report's ``records`` are
    empty and the wait percentiles are exact below the warmup size and
    P² estimates beyond it.

    Pass ``decisions`` to reuse one admission pass across policies
    (admission happens at arrival, so it is policy-invariant); the
    ``admission`` controller must then be the one that produced them.

    ``autoscaler`` and ``dispatch_log`` mirror :func:`simulate_fleet`
    exactly: the same :class:`~repro.serve.autoscale.AutoscalerState`
    drives both loops through the same observation sequence, so scale
    events, dispatch order and the chip-hour ledger are
    decision-identical between the two simulators.

    ``obs`` also mirrors :func:`simulate_fleet` — with one extra
    in-loop hook: since this loop keeps no per-job records, each
    dispatch appends ``(job_id, start_s)`` to the observer's sink so
    ``obs.export()`` can rebuild job lifecycles afterwards.  The
    sampling points are event-for-event identical to the scalar
    loop's, which makes the two simulators' exported span sets (and
    windowed metric series) identical too.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; "
                         f"choose from {POLICIES}")
    if admission is None:
        admission = AdmissionController()
    if decisions is None:
        decisions = admission.admit_batch(trace)
    if faults is not None:
        # Fault injection restructures the event set (repairs, retries)
        # and the queues (requeued jobs re-sort by arrival), so it gets
        # its own loop; the zero-failure path below stays untouched.
        return _simulate_streaming_faulty(
            trace, fleet, policy=policy, admission=admission,
            decisions=decisions, autoscaler=autoscaler, faults=faults,
            cache=cache, dispatch_log=dispatch_log, obs=obs)
    service = _job_service_seconds(trace, decisions, fleet, cache=cache)
    state = (AutoscalerState(autoscaler,
                             initial_clusters=fleet.n_clusters,
                             chips_per_cluster=fleet.chips_per_cluster)
             if autoscaler is not None else None)

    total = len(trace)
    arrival = trace.arrival_s
    admitted = decisions.admitted
    granted = decisions.granted_steps
    n_tenants = len(trace.tenants)
    # The budget policy reads each tenant's remaining fraction at
    # dispatch time; spend only moves at arrivals, so tracking the
    # decision stream's epsilon_after reproduces the scalar ledger.
    tenant_spent = np.zeros(n_tenants)
    budget_eps = np.array([admission.budget_for(name).epsilon
                           for name in trace.tenants], dtype=float)

    fifo: deque[int] = deque()
    sjf_heap: list[tuple[float, float, int]] = []
    tenant_queues: list[deque[int]] = [deque() for _ in range(n_tenants)]
    queued = 0

    def push(job: int) -> None:
        nonlocal queued
        queued += 1
        if policy == "fifo":
            fifo.append(job)
        elif policy == "sjf":
            heapq.heappush(sjf_heap,
                           (service[job], arrival[job], job))
        else:
            tenant_queues[trace.tenant[job]].append(job)

    def pop() -> int:
        nonlocal queued
        queued -= 1
        if policy == "fifo":
            return fifo.popleft()
        if policy == "sjf":
            return heapq.heappop(sjf_heap)[2]
        best: int | None = None
        best_key: tuple[float, float, int] | None = None
        for tenant, backlog in enumerate(tenant_queues):
            if not backlog:
                continue
            head = backlog[0]
            remaining = max(0.0, 1.0 - tenant_spent[tenant]
                            / budget_eps[tenant])
            key = (-remaining, float(arrival[head]), head)
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        assert best is not None  # callers guarantee a queued job
        return tenant_queues[best].popleft()

    # When autoscaling, the metric accumulator IS the autoscaler's p99
    # signal — one object, fed once per dispatch, exactly as the
    # scalar loop feeds it through record_wait.
    waits = state.waits if state is not None else StreamingStats()
    # Pre-bound dispatch sink: one local-None check per dispatch when
    # observability is off, one list append when it is on.  The
    # sampling deadline is mirrored into a local for the same reason —
    # the per-event guard stays one float compare either way.
    obs_dispatch = obs.dispatches.append if obs is not None else None
    obs_next_sample_s = obs.next_sample_s if obs is not None else math.inf
    completions: list[float] = []
    idle = fleet.n_clusters
    busy_s = 0.0
    finished = 0
    truncated = 0
    makespan = 0.0
    index = 0
    now = 0.0

    while index < total or completions \
            or (state is not None and state.pending):
        # Same-time order matches the scalar event heap: arrival,
        # then provision, then completion (arrivals win ties).
        t_arrival = arrival[index] if index < total else math.inf
        t_provision = (state.next_provision_s() if state is not None
                       else math.inf)
        t_completion = completions[0] if completions else math.inf
        if t_arrival <= t_provision and t_arrival <= t_completion:
            job = index
            now = float(t_arrival)
            index += 1
            tenant_spent[trace.tenant[job]] = \
                decisions.epsilon_after[job]
            if admitted[job]:
                push(job)
        elif t_provision <= t_completion:
            assert state is not None
            now = t_provision
            state.activate_one(now)
            idle += 1
        else:
            now = heapq.heappop(completions)
            idle += 1
        while idle and queued:
            job = pop()
            idle -= 1
            waits.add(float(now - arrival[job]))
            if dispatch_log is not None:
                dispatch_log.append((job, now))
            if obs_dispatch is not None:
                obs_dispatch((job, now))
            finish = float(now + service[job])
            heapq.heappush(completions, finish)
            busy_s += float(service[job])
            finished += 1
            if granted[job] < trace.steps[job]:
                truncated += 1
            if finish > makespan:
                makespan = finish
        if state is not None:
            delta = state.decide(now, queued, idle)
            if delta < 0:
                # Retired clusters leave the idle pool immediately;
                # scale-ups surface later as provision times.
                idle += delta
        if now >= obs_next_sample_s:
            assert obs is not None  # deadline is +inf otherwise
            obs.sample(now, queued, idle,
                       state.active if state is not None
                       else fleet.n_clusters,
                       len(state.pending) if state is not None else 0)
            obs_next_sample_s = obs.next_sample_s

    if state is not None:
        state.finalize(now)
    if obs is not None:
        obs.attach_streaming(policy=policy, trace=trace,
                             decisions=decisions, service=service,
                             state=state)
    return build_streaming_report(
        policy=policy,
        chips=fleet.chips,
        n_clusters=fleet.n_clusters,
        chips_per_cluster=fleet.chips_per_cluster,
        submitted=total,
        completed=finished,
        truncated=truncated,
        rejected=int((~admitted).sum()),
        makespan_s=makespan,
        busy_s=busy_s,
        waits=waits,
        admission=admission,
        autoscale=state,
    )


def _simulate_streaming_faulty(
    trace: TraceArrays,
    fleet: FleetConfig,
    *,
    policy: str,
    admission: AdmissionController,
    decisions: BatchAdmissionDecisions,
    autoscaler: AutoscalerPolicy | None,
    faults: FaultModel,
    cache: "runner.ResultCache | None",
    dispatch_log: "list[tuple[int, float]] | None",
    obs: "FleetObs | None",
) -> FleetReport:
    """The fault-injecting twin of :func:`simulate_fleet_streaming`.

    Differences from the zero-failure loop, each mirroring the scalar
    simulator exactly:

    - Completions, cluster repairs and job retries share one pending
      heap keyed ``(time, priority, seq)`` — the same total order the
      scalar event heap imposes.
    - Queues re-sort requeued jobs by their *original* arrival (and
      remaining service under SJF), so every policy keeps the scalar
      ``min(queue, key)`` semantics; the budget policy reads the live
      ledger, which moves at crash time, not only at arrivals.
    - Every per-dispatch quantity is coerced to Python scalars before
      entering the shared :class:`~repro.serve.faults.FaultRun`, so
      both simulators execute bit-identical float arithmetic.
    """
    frun = FaultRun(faults, fleet, admission, cache=cache)
    unique, inverse, table = _job_step_table(trace, fleet, cache=cache)
    # Checkpoint-amortized step per unique config, through the same
    # scalar helper (and memo) the scalar loop uses per job.
    eff_table = np.array([
        frun.effective_step_seconds(trace.models[int(row[0])],
                                    float(table[pos]))
        for pos, row in enumerate(unique)])
    step = table[inverse]
    service = decisions.granted_steps * eff_table[inverse]
    state = (AutoscalerState(autoscaler,
                             initial_clusters=fleet.n_clusters,
                             chips_per_cluster=fleet.chips_per_cluster)
             if autoscaler is not None else None)

    total = len(trace)
    arrival = trace.arrival_s
    admitted = decisions.admitted
    granted = decisions.granted_steps
    steps_requested = trace.steps
    tenant_idx = trace.tenant
    tenant_names = trace.tenants
    model_idx = trace.model
    model_names = trace.models
    algo_idx = trace.algorithm
    algo_names = trace.algorithms
    batch_arr = trace.batch
    q_arr = trace.sampling_rate
    nm_arr = trace.noise_multiplier
    priv_arr = trace.is_private

    #: Live remaining-service predictions for the SJF key; retries
    #: shrink them exactly as the scalar loop rewrites ``service_s``.
    service_live = [0.0] * total if policy == "sjf" else []
    if policy == "sjf":
        for job in range(total):
            service_live[job] = float(service[job])

    fifo_heap: list[tuple[float, int]] = []
    sjf_heap: list[tuple[float, float, int]] = []
    tenant_heaps: list[list[tuple[float, int]]] = \
        [[] for _ in range(len(tenant_names))]
    queued = 0

    def push(job: int) -> None:
        nonlocal queued
        queued += 1
        if policy == "fifo":
            heapq.heappush(fifo_heap, (float(arrival[job]), job))
        elif policy == "sjf":
            heapq.heappush(sjf_heap, (service_live[job],
                                      float(arrival[job]), job))
        else:
            heapq.heappush(tenant_heaps[int(tenant_idx[job])],
                           (float(arrival[job]), job))

    def pop() -> int:
        nonlocal queued
        queued -= 1
        if policy == "fifo":
            return heapq.heappop(fifo_heap)[1]
        if policy == "sjf":
            return heapq.heappop(sjf_heap)[2]
        best: int | None = None
        best_key: tuple[float, float, int] | None = None
        for tenant, backlog in enumerate(tenant_heaps):
            if not backlog:
                continue
            head_arrival, head = backlog[0]
            remaining = admission.remaining_fraction(tenant_names[tenant])
            key = (-remaining, head_arrival, head)
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        assert best is not None  # callers guarantee a queued job
        return heapq.heappop(tenant_heaps[best])[1]

    waits = state.waits if state is not None else StreamingStats()
    obs_dispatch = obs.dispatches.append if obs is not None else None
    obs_next_sample_s = obs.next_sample_s if obs is not None else math.inf
    # Completions, repairs and retries in one heap; the priority slot
    # reuses the scalar loop's constants, so popping order is the
    # scalar event heap's order restricted to these kinds.
    pending: list[tuple[float, int, int, int]] = []
    pseq = 0
    idle = fleet.n_clusters
    index = 0
    now = 0.0

    while index < total or pending \
            or (state is not None and state.pending):
        t_arrival = arrival[index] if index < total else math.inf
        t_provision = (state.next_provision_s() if state is not None
                       else math.inf)
        t_pending = pending[0][0] if pending else math.inf
        if t_arrival <= t_provision and t_arrival <= t_pending:
            job = index
            now = float(t_arrival)
            index += 1
            if admitted[job]:
                push(job)
        elif t_provision <= t_pending:
            assert state is not None
            now = t_provision
            state.activate_one(now)
            idle += 1
        else:
            now, prio, _, jid = heapq.heappop(pending)
            if prio == _PRIO_RETRY:
                push(jid)
            else:  # completion or repair: capacity returns either way
                idle += 1
        while idle and queued:
            job = pop()
            jid = int(job)
            idle -= 1
            waits.add(float(now - frun.ready_s(jid, float(arrival[job]))))
            outcome = frun.begin_attempt(
                jid, now,
                step_s=float(step[job]),
                granted=int(granted[job]),
                requested=int(steps_requested[job]),
                tenant=tenant_names[int(tenant_idx[job])],
                sampling_rate=float(q_arr[job]),
                noise_multiplier=float(nm_arr[job]),
                private=bool(priv_arr[job]),
                model_name=model_names[int(model_idx[job])],
                algorithm=algo_names[int(algo_idx[job])],
                batch=int(batch_arr[job]))
            if outcome.completed:
                heapq.heappush(pending, (outcome.free_s,
                                         _PRIO_COMPLETION, pseq, jid))
                pseq += 1
            else:
                heapq.heappush(pending, (outcome.free_s, _PRIO_REPAIR,
                                         pseq, jid))
                pseq += 1
                if outcome.retry_s is not None:
                    if policy == "sjf":
                        service_live[jid] = frun.remaining_steps(
                            jid, int(granted[job])) * \
                            frun.effective_step_seconds(
                                model_names[int(model_idx[job])],
                                float(step[job]))
                    heapq.heappush(pending, (outcome.retry_s,
                                             _PRIO_RETRY, pseq, jid))
                    pseq += 1
            if dispatch_log is not None:
                dispatch_log.append((jid, now))
            if obs_dispatch is not None:
                obs_dispatch((jid, now))
        if state is not None:
            delta = state.decide(now, queued, idle)
            if delta < 0:
                idle += delta
        if now >= obs_next_sample_s:
            assert obs is not None  # deadline is +inf otherwise
            obs.sample(now, queued, idle,
                       state.active if state is not None
                       else fleet.n_clusters,
                       len(state.pending) if state is not None else 0)
            obs_next_sample_s = obs.next_sample_s

    if state is not None:
        state.finalize(now)
    if obs is not None:
        obs.attach_streaming(policy=policy, trace=trace,
                             decisions=decisions, service=service,
                             state=state, faults=frun)
    return build_streaming_report(
        policy=policy,
        chips=fleet.chips,
        n_clusters=fleet.n_clusters,
        chips_per_cluster=fleet.chips_per_cluster,
        submitted=total,
        completed=frun.completed,
        truncated=frun.truncated,
        rejected=int((~admitted).sum()),
        makespan_s=frun.makespan_s,
        busy_s=frun.busy_s,
        waits=waits,
        admission=admission,
        autoscale=state,
        faults=frun,
    )
