"""Capacity planning: smallest fleet meeting a latency/throughput SLO.

The serving study replays traces on a *given* fleet; a fleet operator
asks the inverse question — "how many clusters do I need so that T
jobs/s complete with a p99 queueing wait under X seconds, with every
tenant held to its (epsilon, delta) budget?".  :func:`plan_capacity`
answers it by driving the array-backed streaming simulator
(:func:`~repro.serve.scheduler.simulate_fleet_streaming`) over a
bracketing search: geometric doubling until a fleet is feasible, then
bisection down to the smallest one that still is.

Two structural facts keep the search cheap and correct:

* Admission is fleet-independent (budgets are priced at arrival), so
  one batched admission pass is shared by every probe.
* Queueing waits are monotone non-increasing in cluster count for a
  work-conserving fleet over a fixed admitted workload, so feasibility
  is monotone in ``n_clusters`` and bisection applies.

Each probe's outcome is memoized; the returned plan carries the full
probe log and the verification report of the chosen fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.experiments import runner
from repro.serve.budget import (
    AdmissionController,
    BatchAdmissionDecisions,
    TenantBudget,
)
from repro.serve.job import TraceArrays
from repro.serve.metrics import FleetReport
from repro.serve.scheduler import FleetConfig, simulate_fleet_streaming


@dataclass(frozen=True)
class CapacityProbe:
    """One fleet size tried during the search."""

    clusters: int
    p99_wait_s: float
    jobs_per_s: float
    feasible: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "clusters": self.clusters,
            "p99_wait_s": self.p99_wait_s,
            "jobs_per_s": self.jobs_per_s,
            "feasible": self.feasible,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of :func:`plan_capacity`.

    ``clusters`` / ``chips`` describe the smallest feasible fleet when
    ``feasible`` is True; otherwise they describe ``max_clusters``,
    whose verification ``report`` shows how far short it falls.
    """

    clusters: int
    chips: int
    feasible: bool
    max_p99_wait_s: float
    target_jobs_per_s: float | None
    report: FleetReport
    probes: tuple[CapacityProbe, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "clusters": self.clusters,
            "chips": self.chips,
            "feasible": self.feasible,
            "max_p99_wait_s": self.max_p99_wait_s,
            "target_jobs_per_s": self.target_jobs_per_s,
            "report": self.report.to_dict(),
            "probes": [probe.to_dict() for probe in self.probes],
        }


def plan_capacity(
    trace: TraceArrays,
    *,
    max_p99_wait_s: float,
    target_jobs_per_s: float | None = None,
    chips_per_cluster: int = 1,
    kind: str = "diva",
    topology: str = "ring",
    chips_per_node: int = 1,
    bucket_bytes: int | None = None,
    overlap: bool = True,
    policy: str = "fifo",
    budget: TenantBudget | None = None,
    max_clusters: int = 4096,
    cache: "runner.ResultCache | None" = None,
) -> CapacityPlan:
    """Smallest fleet serving ``trace`` within the SLO.

    A fleet of ``n`` clusters is *feasible* when its simulated p99
    queueing wait is at most ``max_p99_wait_s`` and (if
    ``target_jobs_per_s`` is given) completed jobs per second of
    makespan reach the target.  The search doubles ``n`` until
    feasible, then bisects; when even ``max_clusters`` fails, the plan
    comes back ``feasible=False`` with that fleet's report attached.

    All probes share one admission pass over ``trace`` (admission is
    fleet-independent), and per-tenant budgets are enforced by the
    same :class:`~repro.serve.budget.AdmissionController` the serving
    experiment uses.
    """
    if max_p99_wait_s <= 0:
        raise ValueError(
            f"max_p99_wait_s must be positive, got {max_p99_wait_s}")
    if target_jobs_per_s is not None and target_jobs_per_s <= 0:
        raise ValueError(
            f"target_jobs_per_s must be positive, got {target_jobs_per_s}")
    if max_clusters < 1:
        raise ValueError(
            f"max_clusters must be >= 1, got {max_clusters}")

    admission = AdmissionController(budget)
    decisions: BatchAdmissionDecisions = admission.admit_batch(trace)
    probes: dict[int, CapacityProbe] = {}
    reports: dict[int, FleetReport] = {}

    def probe(clusters: int) -> CapacityProbe:
        if clusters in probes:
            return probes[clusters]
        fleet = FleetConfig(
            chips=clusters * chips_per_cluster,
            chips_per_cluster=chips_per_cluster, kind=kind,
            topology=topology, chips_per_node=chips_per_node,
            bucket_bytes=bucket_bytes, overlap=overlap)
        report = simulate_fleet_streaming(
            trace, fleet, policy=policy, admission=admission,
            decisions=decisions, cache=cache)
        jobs_per_s = report.throughput_jobs_per_h / 3600.0
        feasible = report.wait_p99_s <= max_p99_wait_s and (
            target_jobs_per_s is None or jobs_per_s >= target_jobs_per_s)
        result = CapacityProbe(clusters=clusters,
                               p99_wait_s=report.wait_p99_s,
                               jobs_per_s=jobs_per_s, feasible=feasible)
        probes[clusters] = result
        reports[clusters] = report
        return result

    # Bracket: double until feasible (or the ceiling says no).
    hi = 1
    while not probe(hi).feasible and hi < max_clusters:
        hi = min(hi * 2, max_clusters)
    if not probes[hi].feasible:
        ordered = tuple(probes[n] for n in sorted(probes))
        return CapacityPlan(
            clusters=hi, chips=hi * chips_per_cluster, feasible=False,
            max_p99_wait_s=max_p99_wait_s,
            target_jobs_per_s=target_jobs_per_s,
            report=reports[hi], probes=ordered)

    # Bisect (lo infeasible, hi feasible) down to the boundary.
    lo = max(n for n in probes if n < hi and not probes[n].feasible) \
        if any(n < hi and not probes[n].feasible for n in probes) else 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid).feasible:
            hi = mid
        else:
            lo = mid
    ordered = tuple(probes[n] for n in sorted(probes))
    return CapacityPlan(
        clusters=hi, chips=hi * chips_per_cluster, feasible=True,
        max_p99_wait_s=max_p99_wait_s,
        target_jobs_per_s=target_jobs_per_s,
        report=reports[hi], probes=ordered)
