"""Fleet-level serving metrics: latency percentiles, utilization, budgets.

The scheduler hands this module its finished per-job records plus the
admission controller, and gets back a :class:`FleetReport` — the
JSON-serializable summary the ``serve`` experiment renders: throughput,
queueing-latency percentiles, chip utilization, admission tallies, and
the per-tenant epsilon spend against its configured budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.autoscale import AutoscalerState, ScaleEvent
    from repro.serve.budget import AdmissionController
    from repro.serve.faults import FaultRun
    from repro.serve.scheduler import JobRecord
    from repro.serve.stream import StreamingStats


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    data = sorted(values)
    if not data:
        return 0.0
    rank = max(1, -(-len(data) * pct // 100))  # ceil without float drift
    return float(data[int(rank) - 1])


@dataclass(frozen=True)
class TenantUsage:
    """One tenant's budget position at the end of the simulation."""

    tenant: str
    budget_epsilon: float
    delta: float
    epsilon_spent: float
    admitted: int
    truncated: int
    rejected: int

    @property
    def within_budget(self) -> bool:
        return self.epsilon_spent <= self.budget_epsilon

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "budget_epsilon": self.budget_epsilon,
            "delta": self.delta,
            "epsilon_spent": self.epsilon_spent,
            "admitted": self.admitted,
            "truncated": self.truncated,
            "rejected": self.rejected,
        }


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet simulation.

    ``chips`` / ``n_clusters`` describe the *initial* fleet; when a
    run autoscales, ``scale_events`` logs every capacity change,
    ``peak_clusters`` the high-water mark, and ``chip_hours`` /
    ``cost`` the integral of active capacity over the run (zero on
    static runs, where capacity is a configuration, not an outcome).

    When fault injection is on (``faults_enabled``), the report also
    separates *throughput* (jobs completed) from *goodput* (the share
    of available capacity whose work survived to a checkpoint or a
    finish), and accounts the failure tax explicitly: jobs abandoned
    after their retry cap, requeues, degraded continuations, chip-hours
    wasted on recomputed-or-lost work, chip-hours lost to repair
    downtime, and the mean repair time.  Repair downtime is subtracted
    from the utilization/goodput denominator — a cluster under repair
    is not available capacity — but stays in ``chip_hours``/``cost``:
    the fleet still pays for a chip while it is being fixed.
    """

    policy: str
    chips: int
    n_clusters: int
    chips_per_cluster: int
    submitted: int
    completed: int
    truncated: int
    rejected: int
    makespan_s: float
    throughput_jobs_per_h: float
    utilization: float
    wait_p50_s: float
    wait_p95_s: float
    wait_p99_s: float
    tenants: tuple[TenantUsage, ...]
    records: tuple[JobRecord, ...] = ()
    scale_events: tuple[ScaleEvent, ...] = ()
    peak_clusters: int = 0
    chip_hours: float = 0.0
    cost: float = 0.0
    faults_enabled: bool = False
    failed: int = 0
    retries: int = 0
    degradations: int = 0
    goodput: float = 0.0
    wasted_chip_hours: float = 0.0
    repair_chip_hours: float = 0.0
    mttr_s: float = 0.0
    retries_per_job: float = 0.0

    def tenant(self, name: str) -> TenantUsage:
        for usage in self.tenants:
            if usage.tenant == name:
                return usage
        raise KeyError(f"unknown tenant {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable summary (per-job records excluded)."""
        data: dict[str, Any] = {
            "policy": self.policy,
            "chips": self.chips,
            "n_clusters": self.n_clusters,
            "chips_per_cluster": self.chips_per_cluster,
            "submitted": self.submitted,
            "completed": self.completed,
            "truncated": self.truncated,
            "rejected": self.rejected,
            "makespan_s": self.makespan_s,
            "throughput_jobs_per_h": self.throughput_jobs_per_h,
            "utilization": self.utilization,
            "wait_p50_s": self.wait_p50_s,
            "wait_p95_s": self.wait_p95_s,
            "wait_p99_s": self.wait_p99_s,
            "scale_events": [event.to_dict()
                             for event in self.scale_events],
            "peak_clusters": self.peak_clusters,
            "chip_hours": self.chip_hours,
            "cost": self.cost,
            "tenants": [usage.to_dict() for usage in self.tenants],
        }
        if self.faults_enabled:
            # Only present on faulty runs, so zero-failure reports stay
            # byte-identical to the pre-fault-injection format.
            data["faults"] = {
                "failed": self.failed,
                "retries": self.retries,
                "degradations": self.degradations,
                "goodput": self.goodput,
                "wasted_chip_hours": self.wasted_chip_hours,
                "repair_chip_hours": self.repair_chip_hours,
                "mttr_s": self.mttr_s,
                "retries_per_job": self.retries_per_job,
            }
        return data

    def render(self) -> str:
        """Human-readable summary + per-tenant budget table."""
        lines = [
            f"Fleet: {self.chips} chips as {self.n_clusters} x "
            f"{self.chips_per_cluster}-chip clusters, policy={self.policy}",
            f"Jobs: {self.submitted} submitted, {self.completed} completed "
            f"({self.truncated} truncated), {self.rejected} rejected",
            f"Makespan {self.makespan_s:.0f} s, "
            f"{self.throughput_jobs_per_h:.1f} jobs/h, "
            f"chip utilization {self.utilization * 100:.1f}%",
            f"Queueing wait p50/p95/p99: {self.wait_p50_s:.1f} / "
            f"{self.wait_p95_s:.1f} / {self.wait_p99_s:.1f} s",
        ]
        if self.scale_events:
            ups = sum(1 for e in self.scale_events if e.action == "up")
            downs = len(self.scale_events) - ups
            lines.append(
                f"Autoscale: {ups} up / {downs} down decisions, peak "
                f"{self.peak_clusters} clusters, {self.chip_hours:.1f} "
                f"chip-hours (cost {self.cost:.2f})")
        if self.faults_enabled:
            lines.append(
                f"Faults: {self.failed} failed, {self.retries} retries "
                f"({self.retries_per_job:.2f}/job), {self.degradations} "
                f"degraded; goodput {self.goodput * 100:.1f}%, wasted "
                f"{self.wasted_chip_hours:.2f} chip-h, repair "
                f"{self.repair_chip_hours:.2f} chip-h, MTTR "
                f"{self.mttr_s:.0f} s")
        lines += ["", render_tenant_table(self.tenants)]
        return "\n".join(lines)


def render_tenant_table(tenants: Sequence[TenantUsage]) -> str:
    rows = [
        [usage.tenant, usage.budget_epsilon, usage.epsilon_spent,
         f"{usage.epsilon_spent / usage.budget_epsilon * 100:.0f}%",
         usage.admitted, usage.truncated, usage.rejected]
        for usage in tenants
    ]
    return format_table(
        ["Tenant", "Budget eps", "Spent eps", "Used", "Admitted",
         "Truncated", "Rejected"],
        rows, title="Per-tenant privacy budget")


def tenant_usages(admission: "AdmissionController"
                  ) -> tuple[TenantUsage, ...]:
    """Per-tenant budget positions from the admission ledger."""
    return tuple(
        TenantUsage(
            tenant=name,
            budget_epsilon=admission.budget_for(name).epsilon,
            delta=admission.budget_for(name).delta,
            epsilon_spent=admission.epsilon_spent(name),
            **admission.counts(name),
        )
        for name in sorted(admission.seen_tenants())
    )


def _available_seconds(n_clusters: int, makespan_s: float,
                       autoscale: "AutoscalerState | None",
                       downtime_s: float = 0.0) -> float:
    """Cluster-seconds of capacity actually able to run jobs.

    Static fleets offer ``n_clusters x makespan``; autoscaled fleets
    offer the chip-hour integral the autoscaler accrued (so turning
    idle clusters off *raises* utilization, as it should).  Repair
    downtime is subtracted in both cases: a cluster being fixed is
    billed (it stays in ``chip_hours`` and ``cost``) but it is not
    capacity the scheduler could have used.
    """
    if autoscale is not None:
        base = autoscale.chip_hours * 3600.0 / autoscale.chips_per_cluster
    else:
        base = n_clusters * makespan_s
    return max(0.0, base - downtime_s)


def _utilization(busy_s: float, n_clusters: int, makespan_s: float,
                 autoscale: "AutoscalerState | None",
                 downtime_s: float = 0.0) -> float:
    """Busy cluster-time over available cluster-time."""
    available_s = _available_seconds(n_clusters, makespan_s, autoscale,
                                     downtime_s)
    return busy_s / available_s if available_s > 0 else 0.0


def _scale_fields(autoscale: "AutoscalerState | None", n_clusters: int
                  ) -> dict[str, Any]:
    """FleetReport autoscaling fields from a finished state (or not)."""
    if autoscale is None:
        return {"scale_events": (), "peak_clusters": n_clusters,
                "chip_hours": 0.0, "cost": 0.0}
    return {"scale_events": tuple(autoscale.events),
            "peak_clusters": autoscale.peak_clusters,
            "chip_hours": autoscale.chip_hours,
            "cost": autoscale.cost}


def build_streaming_report(
    policy: str,
    chips: int,
    n_clusters: int,
    chips_per_cluster: int,
    *,
    submitted: int,
    completed: int,
    truncated: int,
    rejected: int,
    makespan_s: float,
    busy_s: float,
    waits: "StreamingStats",
    admission: "AdmissionController",
    autoscale: "AutoscalerState | None" = None,
    faults: "FaultRun | None" = None,
    records: "tuple[JobRecord, ...]" = (),
) -> FleetReport:
    """Fold streaming accumulators into a :class:`FleetReport`.

    The O(1)-memory counterpart of :func:`build_report`: ``waits`` is
    the scheduler's :class:`~repro.serve.stream.StreamingStats` over
    queueing delays (its percentiles are exact for small traces, P²
    estimates past the warmup), and no per-job records are attached
    unless the caller supplies them (the scalar simulator does when
    faults are on, since both loops then share this builder).

    ``faults`` (a finished :class:`~repro.serve.faults.FaultRun`)
    switches on the failure block: goodput, wasted and repair
    chip-hours, MTTR, retries-per-job — and removes repair downtime
    from the utilization denominator.  Static fleets clip downtime at
    the makespan (capacity past the last event was never offered);
    autoscaled fleets count it in full, because the billing integral
    keeps accruing through every repair.
    """
    downtime_util_s = 0.0
    fault_fields: dict[str, Any] = {}
    if faults is not None:
        downtime_full_s = faults.downtime_seconds()
        downtime_util_s = (downtime_full_s if autoscale is not None
                           else faults.downtime_seconds(makespan_s))
        available_s = _available_seconds(n_clusters, makespan_s,
                                         autoscale, downtime_util_s)
        chip_h = chips_per_cluster / 3600.0
        fault_fields = {
            "faults_enabled": True,
            "failed": faults.failed,
            "retries": faults.retries,
            "degradations": faults.degradations,
            "goodput": ((busy_s - faults.wasted_s) / available_s
                        if available_s > 0 else 0.0),
            "wasted_chip_hours": faults.wasted_s * chip_h,
            "repair_chip_hours": downtime_full_s * chip_h,
            "mttr_s": faults.mttr_s,
            "retries_per_job": faults.retries_per_job,
        }
    utilization = _utilization(busy_s, n_clusters, makespan_s, autoscale,
                               downtime_util_s)
    throughput = (completed / makespan_s * 3600.0) if makespan_s > 0 \
        else 0.0
    return FleetReport(
        **_scale_fields(autoscale, n_clusters),
        **fault_fields,
        policy=policy,
        chips=chips,
        n_clusters=n_clusters,
        chips_per_cluster=chips_per_cluster,
        submitted=submitted,
        completed=completed,
        truncated=truncated,
        rejected=rejected,
        makespan_s=makespan_s,
        throughput_jobs_per_h=throughput,
        utilization=utilization,
        wait_p50_s=waits.quantile(0.5),
        wait_p95_s=waits.quantile(0.95),
        wait_p99_s=waits.quantile(0.99),
        tenants=tenant_usages(admission),
        records=records,
    )


def build_report(
    policy: str,
    chips: int,
    n_clusters: int,
    chips_per_cluster: int,
    records: "Sequence[JobRecord]",
    admission: "AdmissionController",
    autoscale: "AutoscalerState | None" = None,
) -> FleetReport:
    """Fold finished job records + the budget ledger into a report."""
    finished = [r for r in records if r.finish_s is not None]
    waits = [r.wait_s for r in finished]
    makespan = max((r.finish_s for r in finished
                    if r.finish_s is not None), default=0.0)
    busy = sum(r.service_s for r in finished)
    utilization = _utilization(busy, n_clusters, makespan, autoscale)
    throughput = (len(finished) / makespan * 3600.0) if makespan > 0 else 0.0
    tenants = tenant_usages(admission)
    return FleetReport(
        **_scale_fields(autoscale, n_clusters),
        policy=policy,
        chips=chips,
        n_clusters=n_clusters,
        chips_per_cluster=chips_per_cluster,
        submitted=len(records),
        completed=len(finished),
        truncated=sum(
            1 for r in finished
            if r.decision.granted_steps < r.job.steps),
        rejected=sum(1 for r in records if not r.decision.admitted),
        makespan_s=makespan,
        throughput_jobs_per_h=throughput,
        utilization=utilization,
        wait_p50_s=percentile(waits, 50),
        wait_p95_s=percentile(waits, 95),
        wait_p99_s=percentile(waits, 99),
        tenants=tenants,
        records=tuple(records),
    )
