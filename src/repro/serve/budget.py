"""Per-tenant privacy-budget admission control.

Every tenant owns an ``(epsilon, delta)`` budget in the sense of Abadi
et al.'s moments accounting: each admitted job appends
``steps x RDP(q, sigma)`` to the tenant's cumulative RDP curve, and a
job is only admitted if the curve's ``(epsilon, delta)`` conversion
stays inside the budget *after* the job runs.  Because jobs of one
tenant may mix sampling rates and noise multipliers, the ledger
composes raw RDP curves (which add across heterogeneous mechanisms)
rather than reusing a fixed-``(q, sigma)``
:class:`~repro.dpml.accountant.RdpAccountant`.

Decisions are made at *arrival* and the budget is reserved
immediately, so two queued jobs of one tenant can never jointly
overspend no matter which scheduling policy later runs them first.
A job that does not fit in full is truncated to the largest affordable
step count (:func:`repro.dpml.accountant.max_steps_for_budget`) when
truncation is allowed, and rejected outright otherwise.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Mapping
from dataclasses import dataclass

from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.dpml.accountant import (
    DEFAULT_ORDERS,
    _single_step_rdp,
    compute_rdp,
    max_steps_for_budget,
    rdp_to_epsilon,
)
from repro.serve.job import TraceArrays, TrainingJob

#: Jobs per chunk of the batched admission prefix pass — bounds the
#: cumulative-RDP scratch matrix regardless of trace length.
_ADMIT_CHUNK = 1024


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's lifetime ``(epsilon, delta)`` allowance."""

    epsilon: float
    delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(
                f"budget epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(
                f"budget delta must be in (0, 1), got {self.delta}")


class AdmissionStatus(enum.Enum):
    """Outcome of one admission decision."""

    ADMITTED = "admitted"
    TRUNCATED = "truncated"
    REJECTED = "rejected"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller granted, and what it cost.

    ``granted_steps`` is ``job.steps`` for a full admit, the truncated
    count for a partial one, and 0 for a rejection.  ``epsilon_after``
    is the tenant's cumulative spend once the grant is reserved.
    """

    status: AdmissionStatus
    granted_steps: int
    epsilon_cost: float
    epsilon_after: float

    @property
    def admitted(self) -> bool:
        return self.status is not AdmissionStatus.REJECTED


@dataclass(frozen=True)
class BatchAdmissionDecisions:
    """Struct-of-arrays outcome of :meth:`AdmissionController.admit_batch`.

    ``status`` uses the integer codes below; ``epsilon_after`` is the
    tenant's cumulative spend once the job's grant is reserved (the
    scalar decision's ``epsilon_after``), which the streaming
    scheduler's budget policy reads as the tenant's position at each
    arrival.
    """

    ADMITTED = 0
    TRUNCATED = 1
    REJECTED = 2

    status: NDArray[Any]
    granted_steps: NDArray[Any]
    epsilon_after: NDArray[Any]

    def __len__(self) -> int:
        return self.status.shape[0]

    @property
    def admitted(self) -> NDArray[Any]:
        """Mask of jobs that received any grant."""
        return self.status != self.REJECTED


class AdmissionController:
    """RDP ledger + admit/truncate/reject gate over a stream of jobs.

    Parameters
    ----------
    budget:
        Either one :class:`TenantBudget` applied to every tenant, or a
        mapping ``tenant -> TenantBudget`` (tenants absent from the
        mapping fall back to ``default_budget``).
    default_budget:
        Fallback for tenants missing from a ``budget`` mapping.
    allow_truncation:
        When True (default), a job that does not fit in full is cut to
        the largest affordable step count instead of rejected.
    orders:
        RDP orders the ledger composes over.
    """

    def __init__(
        self,
        budget: TenantBudget | Mapping[str, TenantBudget] | None = None,
        *,
        default_budget: TenantBudget | None = None,
        allow_truncation: bool = True,
        orders: tuple[int, ...] = DEFAULT_ORDERS,
    ) -> None:
        if budget is None:
            budget = TenantBudget(epsilon=3.0)
        if isinstance(budget, TenantBudget):
            self._default = budget
            self._overrides: dict[str, TenantBudget] = {}
        else:
            self._default = default_budget or TenantBudget(epsilon=3.0)
            self._overrides = dict(budget)
        self.allow_truncation = allow_truncation
        self.orders = orders
        self._rdp: dict[str, NDArray[Any]] = {}
        self._counts: dict[str, dict[str, int]] = {}

    def budget_for(self, tenant: str) -> TenantBudget:
        return self._overrides.get(tenant, self._default)

    def epsilon_spent(self, tenant: str) -> float:
        """Tenant's cumulative ``epsilon`` at its own ``delta``."""
        rdp = self._rdp.get(tenant)
        if rdp is None or not np.any(rdp):
            return 0.0
        return rdp_to_epsilon(self.orders, rdp,
                              self.budget_for(tenant).delta)[0]

    def remaining_fraction(self, tenant: str) -> float:
        """Unspent share of the tenant's epsilon budget, in [0, 1]."""
        budget = self.budget_for(tenant)
        return max(0.0, 1.0 - self.epsilon_spent(tenant) / budget.epsilon)

    def seen_tenants(self) -> tuple[str, ...]:
        """Tenants that submitted at least one job, in first-seen order."""
        return tuple(self._counts)

    def counts(self, tenant: str) -> dict[str, int]:
        """``{admitted, truncated, rejected}`` tallies for ``tenant``."""
        return dict(self._counts.get(
            tenant, {"admitted": 0, "truncated": 0, "rejected": 0}))

    def admit(self, job: TrainingJob) -> AdmissionDecision:
        """Decide on ``job`` and reserve any granted budget."""
        tally = self._counts.setdefault(
            job.tenant, {"admitted": 0, "truncated": 0, "rejected": 0})
        base = self._rdp.get(job.tenant)
        if not job.is_private:
            # Non-private jobs never touch the ledger.
            tally["admitted"] += 1
            spent = self.epsilon_spent(job.tenant)
            return AdmissionDecision(
                AdmissionStatus.ADMITTED, job.steps, 0.0, spent)

        budget = self.budget_for(job.tenant)
        spent_before = self.epsilon_spent(job.tenant)
        affordable = max_steps_for_budget(
            job.sampling_rate, job.noise_multiplier, budget.epsilon,
            budget.delta, orders=self.orders, base_rdp=base,
            max_steps=job.steps)
        if affordable >= job.steps:
            status, granted = AdmissionStatus.ADMITTED, job.steps
        elif self.allow_truncation and affordable >= 1:
            status, granted = AdmissionStatus.TRUNCATED, affordable
        else:
            tally["rejected"] += 1
            return AdmissionDecision(
                AdmissionStatus.REJECTED, 0, 0.0, spent_before)

        per_step = compute_rdp(job.sampling_rate, job.noise_multiplier,
                               1, self.orders)
        if base is None:
            base = np.zeros(len(self.orders))
        self._rdp[job.tenant] = base + granted * per_step
        spent_after = self.epsilon_spent(job.tenant)
        tally["admitted" if status is AdmissionStatus.ADMITTED
              else "truncated"] += 1
        return AdmissionDecision(
            status, granted, spent_after - spent_before, spent_after)

    # -- crash/retry ledger transactions --------------------------------------

    def reprice_steps(self, tenant: str, sampling_rate: float,
                      noise_multiplier: float, steps: int) -> int:
        """Reserve up to ``steps`` extra mechanism executions for ``tenant``.

        Called when a crash discards work past the last checkpoint: the
        lost steps already executed (their noise was released), so their
        reservation stays spent, and re-running them needs a *fresh*
        grant.  Prices the request against the tenant's remaining
        budget and returns the granted count in ``[0, steps]`` —
        possibly smaller than asked, never larger, so the ledger can
        only move toward the budget cap, never past it.
        """
        if steps <= 0:
            return 0
        base = self._rdp.get(tenant)
        budget = self.budget_for(tenant)
        granted = max_steps_for_budget(
            sampling_rate, noise_multiplier, budget.epsilon,
            budget.delta, orders=self.orders, base_rdp=base,
            max_steps=steps)
        if granted <= 0:
            return 0
        per_step = compute_rdp(sampling_rate, noise_multiplier,
                               1, self.orders)
        if base is None:
            base = np.zeros(len(self.orders))
        self._rdp[tenant] = base + granted * per_step
        return granted

    def refund_steps(self, tenant: str, sampling_rate: float,
                     noise_multiplier: float, steps: int) -> None:
        """Return ``steps`` reserved-but-never-executed steps to the ledger.

        Only reservations whose noise was never released may be
        refunded (e.g. the un-run tail of a job abandoned after its
        retry cap).  The subtraction mirrors the reservation's
        ``steps x per-step`` RDP exactly; clipping at zero only absorbs
        float round-off, so a refund can never mint budget.
        """
        if steps <= 0:
            return
        base = self._rdp.get(tenant)
        if base is None:
            return
        per_step = compute_rdp(sampling_rate, noise_multiplier,
                               1, self.orders)
        self._rdp[tenant] = np.maximum(base - steps * per_step, 0.0)

    # -- batched (trace-at-once) admission -----------------------------------

    def admit_batch(self, trace: TraceArrays) -> "BatchAdmissionDecisions":
        """Decide a whole trace at once, decision-identical to
        :meth:`admit`.

        Ledger updates are inherently sequential within a tenant (each
        grant changes the RDP base every later decision sees), but two
        regimes vectorize: runs of *full admits* resolve through a
        chunked prefix-cumulative RDP pass (each prefix row is exactly
        the ledger the scalar path would have held), and runs of
        *rejections* — the steady state once a tenant's budget is
        exhausted — never touch the ledger, so a whole run classifies
        against one fixed base in a single pass over the distinct
        ``(sampling rate, sigma, steps)`` mechanism shapes.  Only
        truncations (rare: each one pushes the tenant to the budget
        edge) fall back to the scalar binary search.  Every
        floating-point expression repeats the scalar path's operation
        order, so the decisions (and the final per-tenant ledgers and
        tallies) are identical, not merely close.

        Updates this controller's ledger/tally state exactly as the
        equivalent sequence of :meth:`admit` calls would.
        """
        n = len(trace)
        status = np.full(n, BatchAdmissionDecisions.REJECTED,
                         dtype=np.int8)
        granted = np.zeros(n, dtype=np.int64)
        eps_after = np.zeros(n, dtype=float)
        if n == 0:
            return BatchAdmissionDecisions(status, granted, eps_after)

        is_private = trace.is_private
        pairs = np.stack([trace.sampling_rate, trace.noise_multiplier],
                         axis=1)
        unique_pairs, class_of = np.unique(pairs, axis=0,
                                           return_inverse=True)
        per_step_table = np.stack([
            np.array(_single_step_rdp(float(q), float(sigma), self.orders))
            for q, sigma in unique_pairs])

        # Tenants register in first-arrival order (scalar setdefault).
        _, first_seen = np.unique(trace.tenant, return_index=True)
        for code in trace.tenant[np.sort(first_seen)].tolist():
            self._admit_tenant_batch(
                trace, int(code), is_private, class_of, per_step_table,
                status, granted, eps_after)
        return BatchAdmissionDecisions(status, granted, eps_after)

    def _admit_tenant_batch(
        self, trace: TraceArrays, code: int, is_private: NDArray[Any],
        class_of: NDArray[Any], per_step_table: NDArray[Any],
        status: NDArray[Any], granted: NDArray[Any], eps_after: NDArray[Any],
    ) -> None:
        """Replay one tenant's jobs (arrival order) against its ledger."""
        name = trace.tenants[code]
        tally = self._counts.setdefault(
            name, {"admitted": 0, "truncated": 0, "rejected": 0})
        budget = self.budget_for(name)
        target = budget.epsilon
        log_term = math.log(1.0 / budget.delta) / (
            np.array(self.orders) - 1.0)

        jobs = np.nonzero(trace.tenant == code)[0]
        total = len(jobs)
        private = is_private[jobs]
        steps = trace.steps[jobs]
        classes = class_of[jobs]
        base = self._rdp.get(name)
        ledger = (np.zeros(len(self.orders)) if base is None
                  else np.asarray(base, dtype=float))

        def eps_of(rdp: NDArray[Any]) -> float:
            """Scalar ``epsilon`` of one RDP curve (the rdp_to_epsilon
            formula, with its all-zero special case)."""
            if not np.any(rdp):
                return 0.0
            return float(np.min(rdp + log_term))

        spent = eps_of(ledger)
        admitted_code = BatchAdmissionDecisions.ADMITTED
        rejected_code = BatchAdmissionDecisions.REJECTED

        def resolve_fixed(lo: int, hi: int) -> None:
            """Jobs [lo, hi) under an unchanged ledger: private ->
            rejected, non-private -> admitted."""
            seg = jobs[lo:hi]
            mask = private[lo:hi]
            status[seg[~mask]] = admitted_code
            granted[seg[~mask]] = steps[lo:hi][~mask]
            eps_after[seg] = spent
            tally["rejected"] += int(mask.sum())
            tally["admitted"] += int((~mask).sum())

        pos = 0
        while pos < total:
            if spent > target:
                # Scalar guard: eps(0) already overshoots, nothing
                # private ever fits again.
                resolve_fixed(pos, total)
                return

            # -- A: maximal run of sequential full admits ------------------
            blocked = -1
            while pos < total and blocked < 0:
                hi = min(pos + _ADMIT_CHUNK, total)
                chunk_priv = pos + np.nonzero(private[pos:hi])[0]
                if chunk_priv.size == 0:
                    seg = jobs[pos:hi]
                    status[seg] = admitted_code
                    granted[seg] = steps[pos:hi]
                    eps_after[seg] = spent
                    tally["admitted"] += hi - pos
                    pos = hi
                    continue
                increments = (steps[chunk_priv, None]
                              * per_step_table[classes[chunk_priv]])
                # Left-associated prefix sums: row j is bitwise the
                # ledger the scalar path holds after fully granting
                # the first j+1 private jobs of the chunk.
                cumulative = np.cumsum(
                    np.concatenate([ledger[None, :], increments]),
                    axis=0)[1:]
                eps_cum = np.min(cumulative + log_term, axis=1)
                eps_cum = np.where(np.any(cumulative, axis=1),
                                   eps_cum, 0.0)
                over = eps_cum > target
                fits = int(np.argmax(over)) if over.any() \
                    else len(chunk_priv)
                stop = int(chunk_priv[fits]) if fits < len(chunk_priv) \
                    else hi
                spent_at_start = spent
                span = np.arange(pos, stop)
                mask = private[pos:stop]
                if fits > 0:
                    admitted_priv = chunk_priv[:fits]
                    pj = jobs[admitted_priv]
                    status[pj] = admitted_code
                    granted[pj] = steps[admitted_priv]
                    eps_after[pj] = eps_cum[:fits]
                    tally["admitted"] += fits
                    ledger = cumulative[fits - 1]
                    self._rdp[name] = ledger
                    spent = float(eps_cum[fits - 1])
                nj = jobs[span[~mask]]
                status[nj] = admitted_code
                granted[nj] = steps[span[~mask]]
                if fits > 0:
                    before = np.searchsorted(chunk_priv[:fits],
                                             span[~mask])
                    eps_after[nj] = np.where(
                        before > 0,
                        eps_cum[np.maximum(before - 1, 0)],
                        spent_at_start)
                else:
                    eps_after[nj] = spent_at_start
                tally["admitted"] += int((~mask).sum())
                pos = stop
                if fits < len(chunk_priv):
                    blocked = stop
            if blocked < 0:
                return

            # -- B: the blocked private job: truncate or reject ------------
            job = int(jobs[blocked])
            per_step = per_step_table[int(classes[blocked])]
            want = int(steps[blocked])
            if self.allow_truncation and \
                    eps_of(ledger + 1 * per_step) <= target:
                low, high = 0, want  # eps(low) <= target < eps(high)
                while high - low > 1:
                    mid = (low + high) // 2
                    if eps_of(ledger + mid * per_step) <= target:
                        low = mid
                    else:
                        high = mid
                ledger = ledger + low * per_step
                self._rdp[name] = ledger
                spent = eps_of(ledger)
                status[job] = BatchAdmissionDecisions.TRUNCATED
                granted[job] = low
                eps_after[job] = spent
                tally["truncated"] += 1
                pos = blocked + 1
                continue
            status[job] = rejected_code
            eps_after[job] = spent
            tally["rejected"] += 1
            pos = blocked + 1
            if pos >= total:
                return

            # -- C: fixed-ledger scan to the next eligible private job -----
            remaining = np.arange(pos, total)
            rem_priv = remaining[private[pos:]]
            if rem_priv.size == 0:
                seg = jobs[pos:]
                status[seg] = admitted_code
                granted[seg] = steps[pos:]
                eps_after[seg] = spent
                tally["admitted"] += total - pos
                return
            keys = np.stack([classes[rem_priv], steps[rem_priv]], axis=1)
            unique_keys, inverse = np.unique(keys, axis=0,
                                             return_inverse=True)
            rdp_full = (ledger + unique_keys[:, 1][:, None]
                        * per_step_table[unique_keys[:, 0]])
            eps_full = np.where(
                np.any(rdp_full, axis=1),
                np.min(rdp_full + log_term, axis=1), 0.0)
            ok_full = eps_full[inverse] <= target
            unique_classes = np.unique(classes[rem_priv])
            rdp_one = ledger + 1 * per_step_table[unique_classes]
            eps_one = np.where(
                np.any(rdp_one, axis=1),
                np.min(rdp_one + log_term, axis=1), 0.0)
            ok_one = eps_one[np.searchsorted(
                unique_classes, classes[rem_priv])] <= target
            eligible = ok_full | (self.allow_truncation & ok_one)
            next_eligible = (int(rem_priv[np.argmax(eligible)])
                             if eligible.any() else total)
            resolve_fixed(pos, next_eligible)
            pos = next_eligible
            # The loop re-enters regime A (full admit) or B (truncate)
            # for the eligible job under the unchanged ledger.
