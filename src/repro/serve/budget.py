"""Per-tenant privacy-budget admission control.

Every tenant owns an ``(epsilon, delta)`` budget in the sense of Abadi
et al.'s moments accounting: each admitted job appends
``steps x RDP(q, sigma)`` to the tenant's cumulative RDP curve, and a
job is only admitted if the curve's ``(epsilon, delta)`` conversion
stays inside the budget *after* the job runs.  Because jobs of one
tenant may mix sampling rates and noise multipliers, the ledger
composes raw RDP curves (which add across heterogeneous mechanisms)
rather than reusing a fixed-``(q, sigma)``
:class:`~repro.dpml.accountant.RdpAccountant`.

Decisions are made at *arrival* and the budget is reserved
immediately, so two queued jobs of one tenant can never jointly
overspend no matter which scheduling policy later runs them first.
A job that does not fit in full is truncated to the largest affordable
step count (:func:`repro.dpml.accountant.max_steps_for_budget`) when
truncation is allowed, and rejected outright otherwise.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.dpml.accountant import (
    DEFAULT_ORDERS,
    compute_rdp,
    max_steps_for_budget,
    rdp_to_epsilon,
)
from repro.serve.job import TrainingJob


@dataclass(frozen=True)
class TenantBudget:
    """One tenant's lifetime ``(epsilon, delta)`` allowance."""

    epsilon: float
    delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(
                f"budget epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(
                f"budget delta must be in (0, 1), got {self.delta}")


class AdmissionStatus(enum.Enum):
    """Outcome of one admission decision."""

    ADMITTED = "admitted"
    TRUNCATED = "truncated"
    REJECTED = "rejected"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller granted, and what it cost.

    ``granted_steps`` is ``job.steps`` for a full admit, the truncated
    count for a partial one, and 0 for a rejection.  ``epsilon_after``
    is the tenant's cumulative spend once the grant is reserved.
    """

    status: AdmissionStatus
    granted_steps: int
    epsilon_cost: float
    epsilon_after: float

    @property
    def admitted(self) -> bool:
        return self.status is not AdmissionStatus.REJECTED


class AdmissionController:
    """RDP ledger + admit/truncate/reject gate over a stream of jobs.

    Parameters
    ----------
    budget:
        Either one :class:`TenantBudget` applied to every tenant, or a
        mapping ``tenant -> TenantBudget`` (tenants absent from the
        mapping fall back to ``default_budget``).
    default_budget:
        Fallback for tenants missing from a ``budget`` mapping.
    allow_truncation:
        When True (default), a job that does not fit in full is cut to
        the largest affordable step count instead of rejected.
    orders:
        RDP orders the ledger composes over.
    """

    def __init__(
        self,
        budget: TenantBudget | Mapping[str, TenantBudget] | None = None,
        *,
        default_budget: TenantBudget | None = None,
        allow_truncation: bool = True,
        orders: tuple[int, ...] = DEFAULT_ORDERS,
    ) -> None:
        if budget is None:
            budget = TenantBudget(epsilon=3.0)
        if isinstance(budget, TenantBudget):
            self._default = budget
            self._overrides: dict[str, TenantBudget] = {}
        else:
            self._default = default_budget or TenantBudget(epsilon=3.0)
            self._overrides = dict(budget)
        self.allow_truncation = allow_truncation
        self.orders = orders
        self._rdp: dict[str, np.ndarray] = {}
        self._counts: dict[str, dict[str, int]] = {}

    def budget_for(self, tenant: str) -> TenantBudget:
        return self._overrides.get(tenant, self._default)

    def epsilon_spent(self, tenant: str) -> float:
        """Tenant's cumulative ``epsilon`` at its own ``delta``."""
        rdp = self._rdp.get(tenant)
        if rdp is None or not np.any(rdp):
            return 0.0
        return rdp_to_epsilon(self.orders, rdp,
                              self.budget_for(tenant).delta)[0]

    def remaining_fraction(self, tenant: str) -> float:
        """Unspent share of the tenant's epsilon budget, in [0, 1]."""
        budget = self.budget_for(tenant)
        return max(0.0, 1.0 - self.epsilon_spent(tenant) / budget.epsilon)

    def seen_tenants(self) -> tuple[str, ...]:
        """Tenants that submitted at least one job, in first-seen order."""
        return tuple(self._counts)

    def counts(self, tenant: str) -> dict[str, int]:
        """``{admitted, truncated, rejected}`` tallies for ``tenant``."""
        return dict(self._counts.get(
            tenant, {"admitted": 0, "truncated": 0, "rejected": 0}))

    def admit(self, job: TrainingJob) -> AdmissionDecision:
        """Decide on ``job`` and reserve any granted budget."""
        tally = self._counts.setdefault(
            job.tenant, {"admitted": 0, "truncated": 0, "rejected": 0})
        base = self._rdp.get(job.tenant)
        if not job.is_private:
            # Non-private jobs never touch the ledger.
            tally["admitted"] += 1
            spent = self.epsilon_spent(job.tenant)
            return AdmissionDecision(
                AdmissionStatus.ADMITTED, job.steps, 0.0, spent)

        budget = self.budget_for(job.tenant)
        spent_before = self.epsilon_spent(job.tenant)
        affordable = max_steps_for_budget(
            job.sampling_rate, job.noise_multiplier, budget.epsilon,
            budget.delta, orders=self.orders, base_rdp=base,
            max_steps=job.steps)
        if affordable >= job.steps:
            status, granted = AdmissionStatus.ADMITTED, job.steps
        elif self.allow_truncation and affordable >= 1:
            status, granted = AdmissionStatus.TRUNCATED, affordable
        else:
            tally["rejected"] += 1
            return AdmissionDecision(
                AdmissionStatus.REJECTED, 0, 0.0, spent_before)

        per_step = compute_rdp(job.sampling_rate, job.noise_multiplier,
                               1, self.orders)
        if base is None:
            base = np.zeros(len(self.orders))
        self._rdp[job.tenant] = base + granted * per_step
        spent_after = self.epsilon_spent(job.tenant)
        tally["admitted" if status is AdmissionStatus.ADMITTED
              else "truncated"] += 1
        return AdmissionDecision(
            status, granted, spent_after - spent_before, spent_after)
