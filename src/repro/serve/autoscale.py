"""Load-adaptive fleet autoscaling: policy, state, and cost ledger.

The static fleet of :mod:`repro.serve.scheduler` rejects most of its
load once arrivals outpace capacity (``BENCH_serve.json`` records ~80%
rejects at the benchmark's arrival rate), which makes the *reactive*
regime the interesting one: a real operator adds clusters when the
queue builds and retires them when they fall idle.  This module is
that reactive controller, written once and shared **verbatim** by both
fleet simulators — the record-keeping :func:`~repro.serve.scheduler.
simulate_fleet` and the array-backed :func:`~repro.serve.scheduler.
simulate_fleet_streaming` drive one :class:`AutoscalerState` through
the identical sequence of observations, so their scale decisions (and
the resulting dispatch schedules) are decision-identical by
construction.  ``tests/test_serve_streaming.py`` pins that equivalence
on 10k-job traces.

Model:

* **Signals.**  At every simulation event (arrival, completion,
  provision), after the dispatch loop settles, the controller sees the
  queue depth, the idle-cluster count, and a streaming P² estimate of
  the p99 queueing wait (:class:`~repro.serve.stream.StreamingStats`,
  fed in dispatch order).
* **Scale up.**  When the queue exceeds
  ``up_queue_per_cluster x active`` clusters' worth of jobs — or the
  p99 wait estimate exceeds ``target_p99_wait_s`` while jobs queue —
  ``step_clusters`` new clusters are *requested*.  Each becomes
  usable ``provision_delay_s`` later (machines take time to arrive),
  and counts toward ``max_clusters`` from the moment of the request.
* **Scale down.**  When the queue is empty and more than
  ``down_idle_fraction`` of the active clusters sit idle, idle
  clusters retire immediately (never below ``min_clusters``).
* **Cooldown.**  Decisions are rate-limited to one per
  ``cooldown_s`` of simulated time, the standard guard against
  provisioning oscillation.
* **Cost.**  Active capacity integrates into chip-hours
  (clusters x chips, from activation to retirement or end of run),
  priced at ``chip_cost_per_hour`` — the fleet report's answer to
  "what did serving this trace cost?".
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any

from repro.serve.stream import StreamingStats

#: Reasons a :class:`ScaleEvent` may carry.
SCALE_REASONS = ("queue_depth", "p99_wait", "idle")


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Knobs of the reactive scaling loop.

    Parameters
    ----------
    min_clusters:
        Floor the fleet never shrinks below.  ``None`` (default) means
        the fleet's initial cluster count.
    max_clusters:
        Ceiling on ``active + pending`` clusters.
    up_queue_per_cluster:
        Scale up when ``queued > up_queue_per_cluster x active``.
    target_p99_wait_s:
        Optional latency SLO: scale up whenever the streaming p99
        queueing-wait estimate exceeds this while jobs are queued.
        ``None`` disables the latency trigger.
    down_idle_fraction:
        Scale down when the queue is empty and strictly more than this
        fraction of active clusters is idle.
    provision_delay_s:
        Lag between requesting a cluster and it accepting work.
    cooldown_s:
        Minimum simulated time between two scale decisions.
    step_clusters:
        Clusters added (or retired) per decision.
    chip_cost_per_hour:
        Price of one chip-hour, for the report's cost line.
    """

    min_clusters: int | None = None
    max_clusters: int = 64
    up_queue_per_cluster: float = 4.0
    target_p99_wait_s: float | None = None
    down_idle_fraction: float = 0.5
    provision_delay_s: float = 60.0
    cooldown_s: float = 60.0
    step_clusters: int = 1
    chip_cost_per_hour: float = 2.5

    def __post_init__(self) -> None:
        if self.min_clusters is not None and self.min_clusters < 1:
            raise ValueError(
                f"min_clusters must be >= 1, got {self.min_clusters}")
        if self.max_clusters < 1:
            raise ValueError(
                f"max_clusters must be >= 1, got {self.max_clusters}")
        if self.min_clusters is not None \
                and self.min_clusters > self.max_clusters:
            raise ValueError(
                f"min_clusters {self.min_clusters} exceeds max_clusters "
                f"{self.max_clusters}")
        if self.up_queue_per_cluster <= 0:
            raise ValueError("up_queue_per_cluster must be positive")
        if self.target_p99_wait_s is not None \
                and self.target_p99_wait_s <= 0:
            raise ValueError("target_p99_wait_s must be positive")
        if not 0.0 <= self.down_idle_fraction <= 1.0:
            raise ValueError(
                f"down_idle_fraction must be in [0, 1], got "
                f"{self.down_idle_fraction}")
        if self.provision_delay_s < 0:
            raise ValueError("provision_delay_s must be >= 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.step_clusters < 1:
            raise ValueError(
                f"step_clusters must be >= 1, got {self.step_clusters}")
        if self.chip_cost_per_hour < 0:
            raise ValueError("chip_cost_per_hour must be >= 0")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, as it appears in the fleet report.

    ``clusters`` is the (positive) cluster count the action moved.
    For an ``"up"`` event the new clusters are *pending* (usable
    ``provision_delay_s`` later); ``active_after`` / ``pending_after``
    snapshot the capacity immediately after the decision.
    """

    time_s: float
    action: str  # "up" | "down"
    clusters: int
    active_after: int
    pending_after: int
    reason: str  # one of SCALE_REASONS

    @property
    def label(self) -> str:
        """Display name (trace instants, report lines)."""
        return f"scale {self.action} ({self.reason})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "time_s": self.time_s,
            "action": self.action,
            "clusters": self.clusters,
            "active_after": self.active_after,
            "pending_after": self.pending_after,
            "reason": self.reason,
        }


class AutoscalerState:
    """Mutable per-run scaling state shared by both event loops.

    The loops own event ordering and dispatch; this object owns the
    capacity ledger: how many clusters are active, which activation
    times are pending, the wait-percentile signal, the scale-event log
    and the chip-hour integral.  Both simulators drive it through the
    same call sequence — ``record_wait`` per dispatch, ``decide`` per
    settled event, ``activate_one`` per provision event,
    ``finalize`` at the end — which is what makes their scale
    decisions identical.
    """

    __slots__ = ("policy", "chips_per_cluster", "min_clusters", "active",
                 "pending", "events", "waits", "peak_clusters",
                 "_last_scale_s", "_chip_seconds", "_accrued_to_s")

    def __init__(self, policy: AutoscalerPolicy, *, initial_clusters: int,
                 chips_per_cluster: int) -> None:
        if initial_clusters > policy.max_clusters:
            raise ValueError(
                f"initial fleet of {initial_clusters} clusters exceeds "
                f"max_clusters {policy.max_clusters}")
        self.policy = policy
        self.chips_per_cluster = chips_per_cluster
        self.min_clusters = (policy.min_clusters
                             if policy.min_clusters is not None
                             else initial_clusters)
        self.active = initial_clusters
        self.peak_clusters = initial_clusters
        #: Min-heap of pending activation times.
        self.pending: list[float] = []
        self.events: list[ScaleEvent] = []
        #: Queueing-wait stream, fed in dispatch order.  The streaming
        #: simulator shares this object with its metric accumulator.
        self.waits = StreamingStats()
        self._last_scale_s = -math.inf
        self._chip_seconds = 0.0
        self._accrued_to_s = 0.0

    # -- capacity ledger --------------------------------------------------

    def _accrue(self, now_s: float) -> None:
        """Integrate active capacity up to ``now_s`` (monotone)."""
        if now_s > self._accrued_to_s:
            self._chip_seconds += (self.active * self.chips_per_cluster
                                   * (now_s - self._accrued_to_s))
            self._accrued_to_s = now_s

    def next_provision_s(self) -> float:
        """Earliest pending activation time (``inf`` when none)."""
        return self.pending[0] if self.pending else math.inf

    def activate_one(self, now_s: float) -> None:
        """Turn the earliest pending cluster on at ``now_s``."""
        self._accrue(now_s)
        heapq.heappop(self.pending)
        self.active += 1
        if self.active > self.peak_clusters:
            self.peak_clusters = self.active

    def finalize(self, end_s: float) -> None:
        """Close the chip-hour integral at the end of the run."""
        self._accrue(end_s)

    @property
    def chip_hours(self) -> float:
        return self._chip_seconds / 3600.0

    @property
    def cost(self) -> float:
        return self.chip_hours * self.policy.chip_cost_per_hour

    # -- signals -----------------------------------------------------------

    def record_wait(self, wait_s: float) -> None:
        """Fold one dispatch's queueing wait into the p99 signal."""
        self.waits.add(float(wait_s))

    # -- the decision ------------------------------------------------------

    def decide(self, now_s: float, queued: int, idle: int) -> int:
        """One scale decision after an event's dispatch loop settles.

        Returns the signed cluster delta: ``+k`` clusters requested
        (now pending, usable at ``now_s + provision_delay_s``),
        ``-k`` idle clusters retired immediately, ``0`` for no action.
        The caller mirrors the delta into its own event structures
        (provision events / idle pool).
        """
        policy = self.policy
        if now_s - self._last_scale_s < policy.cooldown_s:
            return 0
        total = self.active + len(self.pending)
        if queued > 0 and total < policy.max_clusters:
            reason = None
            if queued > policy.up_queue_per_cluster * self.active:
                reason = "queue_depth"
            elif (policy.target_p99_wait_s is not None
                  and self.waits.count > 0
                  and self.waits.quantile(0.99)
                  > policy.target_p99_wait_s):
                reason = "p99_wait"
            if reason is not None:
                grow = min(policy.step_clusters,
                           policy.max_clusters - total)
                for _ in range(grow):
                    heapq.heappush(self.pending,
                                   now_s + policy.provision_delay_s)
                self._last_scale_s = now_s
                self.events.append(ScaleEvent(
                    time_s=float(now_s), action="up", clusters=grow,
                    active_after=self.active,
                    pending_after=len(self.pending), reason=reason))
                return grow
            return 0
        if queued == 0 and self.active > self.min_clusters \
                and idle > policy.down_idle_fraction * self.active:
            shrink = min(policy.step_clusters, idle,
                         self.active - self.min_clusters)
            if shrink > 0:
                self._accrue(now_s)
                self.active -= shrink
                self._last_scale_s = now_s
                self.events.append(ScaleEvent(
                    time_s=float(now_s), action="down", clusters=shrink,
                    active_after=self.active,
                    pending_after=len(self.pending), reason="idle"))
                return -shrink
        return 0
