"""Streaming (O(1)-memory) metric accumulators for the fleet simulator.

Million-job traces cannot afford per-job metric lists: this module
provides the constant-space accumulators the streaming scheduler
(:func:`repro.serve.scheduler.simulate_fleet_streaming`) folds each
job into as it dispatches —

* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtac (1985):
  five markers track one quantile of an unbounded observation stream
  with parabolic height adjustment, O(1) memory and O(1) update.  The
  target quantile may drift per observation (the standard adaptive
  extension), which the zero-split wrapper below relies on.
* :class:`StreamingStats` — running count / sum / max plus
  *zero-split* P² percentiles: queueing-wait streams carry a large
  point mass at exactly zero (jobs that dispatch immediately), which
  plain P² smears badly, so zeros are counted exactly and only the
  positive substream feeds the markers, each estimator re-targeted to
  the equivalent substream quantile.  Pinned by tolerance tests
  against the exact nearest-rank percentiles on small traces.
"""

from __future__ import annotations


class P2Quantile:
    """P² streaming estimator of one quantile in [0, 1]."""

    __slots__ = ("p", "_count", "_heights", "_positions")

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        self.p = p
        self._count = 0
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]

    def __len__(self) -> int:
        return self._count

    def add(self, x: float, p: float | None = None) -> None:
        """Fold one observation in, optionally drifting the target.

        ``p`` overrides the target quantile for this update (adaptive
        P²: the desired marker positions advance by the *current*
        target, so a converging ``p`` sequence converges the marker).
        """
        if p is None:
            p = self.p
        else:
            self.p = p
        self._count += 1
        q = self._heights
        if self._count <= 5:
            q.append(x)
            q.sort()
            return
        n = self._positions
        # Locate the marker cell and clamp the extreme heights.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        # Desired marker positions from the *current* count and target
        # (not incrementally accumulated): with a drifting target the
        # stale early increments would otherwise bias the markers for
        # the rest of the stream.
        span = self._count - 1.0
        desired = (1.0, 1.0 + span * p / 2.0, 1.0 + span * p,
                   1.0 + span * (1.0 + p) / 2.0, 1.0 + span)
        # Adjust the three interior markers toward their desired
        # positions, parabolically when the result stays monotone.
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or \
                    (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = 1.0 if d > 0 else -1.0
                qi = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
                    / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
                    / (n[i] - n[i - 1]))
                if not q[i - 1] < qi < q[i + 1]:  # fall back to linear
                    j = i + int(d)
                    qi = q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
                q[i] = qi
                n[i] += d

    def seed(self, sorted_sample: list[float], p: float) -> None:
        """Initialize the markers from an exact sorted sample.

        Places the five markers at the sample's true quantile ranks for
        target ``p`` — the warmup hand-off of :class:`StreamingStats`:
        an exact buffer absorbs the unstable early stream (where the
        zero fraction, and therefore the re-targeted quantile, still
        drifts), then seeds the estimator with converged markers.
        """
        self.p = p
        n = len(sorted_sample)
        self._count = n
        if n <= 5:
            self._heights = list(sorted_sample)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            return
        span = n - 1.0
        ideal = (1.0, 1.0 + span * p / 2.0, 1.0 + span * p,
                 1.0 + span * (1.0 + p) / 2.0, float(n))
        ranks: list[int] = []
        for i, position in enumerate(ideal):
            low = ranks[-1] + 1 if ranks else 1
            ranks.append(max(low, min(round(position), n - (4 - i))))
        self._heights = [float(sorted_sample[r - 1]) for r in ranks]
        self._positions = [float(r) for r in ranks]

    def value(self) -> float:
        """Current quantile estimate (0.0 on an empty stream).

        Below five observations the estimate is the exact nearest-rank
        percentile of the buffered sample.
        """
        count = self._count
        if count == 0:
            return 0.0
        if count <= 5:
            rank = max(1, min(count, -(-int(count * self.p * 1000) // 1000)))
            return float(self._heights[rank - 1])
        return float(self._heights[2])


#: Observations buffered exactly before the P² hand-off.  Below this
#: count every quantile is the exact nearest-rank percentile; past it
#: memory stays constant regardless of stream length.
WARMUP_OBSERVATIONS = 4096


class StreamingStats:
    """Zero-split running stats of one nonnegative observation stream.

    Tracks count / sum / max in O(1) and estimates percentiles in two
    regimes:

    * the first :data:`WARMUP_OBSERVATIONS` observations are buffered
      and quantiles answered *exactly* (nearest-rank, matching
      :func:`repro.serve.metrics.percentile`) — small traces never see
      an approximation;
    * past the warmup the buffer seeds one :class:`P2Quantile` per
      requested percentile and is dropped.  Exact-zero observations
      (jobs that dispatched without queueing — a large point mass in
      wait streams) are only ever *counted*: each estimator tracks the
      positive substream, re-targeted every update to the equivalent
      substream quantile ``(p * count - zeros) / positives``, and
      ``quantile(p)`` is exactly 0.0 whenever the zero mass alone
      covers ``p``.
    """

    __slots__ = ("count", "zeros", "total", "maximum", "_estimators",
                 "_items", "_buffer")

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
                 ) -> None:
        self.count = 0
        self.zeros = 0
        self.total = 0.0
        self.maximum = 0.0
        self._estimators = {p: P2Quantile(p) for p in quantiles}
        self._items = list(self._estimators.items())
        self._buffer: list[float] | None = []

    def _adjusted(self, p: float) -> float:
        positives = self.count - self.zeros
        adjusted = (p * self.count - self.zeros) / positives
        return min(max(adjusted, 0.0), 1.0)

    def _graduate(self) -> None:
        """Seed the P² estimators from the warmup buffer and drop it."""
        sample = sorted(self._buffer)
        for target, estimator in self._estimators.items():
            estimator.seed(sample, self._adjusted(target)
                           if sample else target)
        self._buffer = None

    def add(self, x: float) -> None:
        self.count += 1
        if x > 0.0:
            self.total += x
            if x > self.maximum:
                self.maximum = x
        else:
            self.zeros += 1
        if self._buffer is not None:
            if x > 0.0:
                self._buffer.append(x)
            if self.count >= WARMUP_OBSERVATIONS:
                self._graduate()
            return
        if x > 0.0:
            positives = self.count - self.zeros
            zeros = self.zeros
            n = self.count
            for target, estimator in self._items:
                adjusted = (target * n - zeros) / positives
                estimator.add(
                    x, 0.0 if adjusted < 0.0
                    else 1.0 if adjusted > 1.0 else adjusted)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> float:
        """Streaming estimate of the ``p`` quantile of the full stream.

        Exact while the warmup buffer is alive; P²-approximate after.
        Only the quantiles named at construction are answerable — the
        markers exist per target — and that contract holds in both
        regimes (the warmup buffer could answer any ``p``, but
        allowing it would make the API silently degrade at
        graduation).
        """
        if p not in self._estimators:
            raise ValueError(
                f"quantile {p} not tracked; this stream records "
                f"{sorted(self._estimators)}")
        if self.count == 0:
            return 0.0
        if self._buffer is not None:
            rank = max(1.0, -(-self.count * (p * 100) // 100))
            if rank <= self.zeros:
                return 0.0
            positives = sorted(self._buffer)
            return float(positives[int(rank) - self.zeros - 1])
        if p * self.count <= self.zeros:
            return 0.0
        return self._estimators[p].value()

    def to_dict(self) -> dict[str, float]:
        """JSON summary: count / mean / max plus every tracked quantile.

        The serialization the observability layer's streamed
        histograms (:class:`repro.obs.metrics.Histogram`) emit —
        quantile keys are ``p50``-style, from the targets named at
        construction.
        """
        summary: dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "max": self.maximum,
        }
        for p in sorted(self._estimators):
            summary[f"p{100 * p:g}"] = self.quantile(p)
        return summary
