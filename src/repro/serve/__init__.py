"""Multi-tenant DP-training fleet simulator with budget admission.

The serving layer on top of ``arch`` / ``training`` / ``dpml`` /
``experiments``: synthetic job traces (:mod:`repro.serve.job`),
per-tenant ``(epsilon, delta)`` admission control
(:mod:`repro.serve.budget`), a discrete-event scheduler over a pool of
clusters (:mod:`repro.serve.scheduler`) and fleet-level metrics
(:mod:`repro.serve.metrics`).  See ``docs/serving.md``.
"""

from repro.serve.autoscale import (
    SCALE_REASONS,
    AutoscalerPolicy,
    AutoscalerState,
    ScaleEvent,
)
from repro.serve.budget import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStatus,
    BatchAdmissionDecisions,
    TenantBudget,
)
from repro.serve.capacity import CapacityPlan, CapacityProbe, plan_capacity
from repro.serve.faults import (
    AttemptOutcome,
    FaultConfig,
    FaultEvent,
    FaultModel,
    FaultRun,
)
from repro.serve.job import (
    JOB_ALGORITHMS,
    TRACE_SHAPES,
    TraceArrays,
    TraceConfig,
    TrainingJob,
    generate_trace,
    generate_trace_arrays,
)
from repro.serve.metrics import (
    FleetReport,
    TenantUsage,
    build_report,
    build_streaming_report,
    percentile,
)
from repro.serve.scheduler import (
    POLICIES,
    FleetConfig,
    JobRecord,
    predict_step_seconds,
    predict_step_seconds_batch,
    simulate_fleet,
    simulate_fleet_streaming,
)
from repro.serve.stream import P2Quantile, StreamingStats

__all__ = [
    "JOB_ALGORITHMS",
    "TRACE_SHAPES",
    "TrainingJob",
    "TraceConfig",
    "TraceArrays",
    "generate_trace",
    "generate_trace_arrays",
    "SCALE_REASONS",
    "AutoscalerPolicy",
    "AutoscalerState",
    "ScaleEvent",
    "CapacityPlan",
    "CapacityProbe",
    "plan_capacity",
    "AttemptOutcome",
    "FaultConfig",
    "FaultEvent",
    "FaultModel",
    "FaultRun",
    "TenantBudget",
    "AdmissionStatus",
    "AdmissionDecision",
    "AdmissionController",
    "BatchAdmissionDecisions",
    "POLICIES",
    "FleetConfig",
    "JobRecord",
    "predict_step_seconds",
    "predict_step_seconds_batch",
    "simulate_fleet",
    "simulate_fleet_streaming",
    "FleetReport",
    "TenantUsage",
    "build_report",
    "build_streaming_report",
    "percentile",
    "P2Quantile",
    "StreamingStats",
]
