"""Multi-tenant DP-training fleet simulator with budget admission.

The serving layer on top of ``arch`` / ``training`` / ``dpml`` /
``experiments``: synthetic job traces (:mod:`repro.serve.job`),
per-tenant ``(epsilon, delta)`` admission control
(:mod:`repro.serve.budget`), a discrete-event scheduler over a pool of
clusters (:mod:`repro.serve.scheduler`) and fleet-level metrics
(:mod:`repro.serve.metrics`).  See ``docs/serving.md``.
"""

from repro.serve.budget import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStatus,
    TenantBudget,
)
from repro.serve.job import (
    JOB_ALGORITHMS,
    TraceConfig,
    TrainingJob,
    generate_trace,
)
from repro.serve.metrics import (
    FleetReport,
    TenantUsage,
    build_report,
    percentile,
)
from repro.serve.scheduler import (
    POLICIES,
    FleetConfig,
    JobRecord,
    predict_step_seconds,
    simulate_fleet,
)

__all__ = [
    "JOB_ALGORITHMS",
    "TrainingJob",
    "TraceConfig",
    "generate_trace",
    "TenantBudget",
    "AdmissionStatus",
    "AdmissionDecision",
    "AdmissionController",
    "POLICIES",
    "FleetConfig",
    "JobRecord",
    "predict_step_seconds",
    "simulate_fleet",
    "FleetReport",
    "TenantUsage",
    "build_report",
    "percentile",
]
