"""Training jobs and synthetic multi-tenant traces.

A :class:`TrainingJob` is the unit of work the fleet simulator
schedules: one tenant asking for ``steps`` DP-SGD iterations of one
zoo workload at a given mini-batch and noise multiplier.  The privacy
cost of a job follows from exactly three of its fields — sampling rate
``batch / dataset_size``, ``noise_multiplier`` and ``steps`` — which is
what lets admission control (:mod:`repro.serve.budget`) price a job
before a single cycle is simulated.

:func:`generate_trace` produces a seeded synthetic arrival stream:
Poisson arrivals (exponential inter-arrival times) over a configurable
tenant / workload / algorithm mix, in the spirit of the
budget-and-model diversity documented by Jayaraman & Evans
("Evaluating Differentially Private Machine Learning in Practice").
The generator is deterministic in ``TraceConfig.seed``: the same
config always yields the identical tuple of jobs, which the scheduler
tests rely on (same seed => identical fleet report).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from typing import Any, Iterator

import numpy as np
from numpy.typing import NDArray

#: Algorithms a job may request; non-private SGD bypasses admission.
JOB_ALGORITHMS = ("SGD", "DP-SGD", "DP-SGD(R)")

#: Arrival-process shapes the trace generators understand.
#:
#: ``poisson``
#:     Homogeneous Poisson arrivals (the original model).
#: ``diurnal``
#:     Inhomogeneous Poisson with a sinusoidal day/night rate.
#: ``bursty``
#:     Two-state Markov-modulated Poisson process: long calm
#:     stretches punctuated by short high-rate bursts.
#: ``multiregion``
#:     Superposition of phase-shifted diurnal regions, each owning a
#:     slice of the tenant population.
TRACE_SHAPES = ("poisson", "diurnal", "bursty", "multiregion")


@dataclass(frozen=True)
class TrainingJob:
    """One tenant's training request.

    Parameters
    ----------
    job_id:
        Unique within a trace (ties in every scheduling policy break
        on it, keeping simulations deterministic).
    tenant:
        Owner of the privacy budget this job draws from.
    model:
        A :data:`repro.workloads.MODEL_NAMES` entry.
    algorithm:
        ``"SGD"``, ``"DP-SGD"`` or ``"DP-SGD(R)"``.
    batch:
        Global mini-batch per step.
    steps:
        Requested optimizer steps (admission may truncate them).
    noise_multiplier:
        ``sigma`` of Algorithm 1; ignored for non-private jobs.
    dataset_size:
        Tenant dataset cardinality ``N``; the Poisson sampling rate is
        ``batch / N``.
    arrival_s:
        Submission time on the simulated clock.
    """

    job_id: int
    tenant: str
    model: str
    algorithm: str
    batch: int
    steps: int
    noise_multiplier: float
    dataset_size: int
    arrival_s: float

    def __post_init__(self) -> None:
        if self.algorithm not in JOB_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {JOB_ALGORITHMS}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.dataset_size < 1:
            raise ValueError(
                f"dataset_size must be >= 1, got {self.dataset_size}")
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.is_private and self.noise_multiplier <= 0:
            raise ValueError(
                "private jobs need a positive noise multiplier, got "
                f"{self.noise_multiplier}")

    @property
    def is_private(self) -> bool:
        return self.algorithm != "SGD"

    @property
    def sampling_rate(self) -> float:
        """Poisson sampling rate ``q = batch / dataset_size`` (capped)."""
        return min(1.0, self.batch / self.dataset_size)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace generator.

    The defaults describe the demo trace used by the ``serve``
    experiment and CLI: four tenants submitting mostly-private jobs
    over three small zoo workloads, sized so a default per-tenant
    budget of a few epsilon admits the early jobs and rejects or
    truncates the stragglers.
    """

    jobs: int = 60
    seed: int = 7
    #: Mean inter-arrival time of the arrival process, seconds.  The
    #: default loads the demo's 4-cluster fleet to ~40% utilization
    #: with bursty arrivals — enough contention that queueing waits
    #: (and therefore policy choice) are visible in the fleet report.
    #: Every shape is normalized to this long-run mean rate, so
    #: switching shapes changes *when* jobs arrive, not how many.
    mean_interarrival_s: float = 8.0
    #: Arrival-process shape; one of :data:`TRACE_SHAPES`.
    shape: str = "poisson"
    #: Day-length of the diurnal / multiregion sinusoid, seconds.
    diurnal_period_s: float = 3600.0
    #: Relative swing of the diurnal rate: the instantaneous rate is
    #: ``base x (1 + amplitude x sin(...))``, so 0 is flat Poisson and
    #: 1 swings between zero and double the mean rate.
    diurnal_amplitude: float = 0.8
    #: Burst-state arrival rate as a multiple of the calm-state rate.
    burst_rate_ratio: float = 8.0
    #: Long-run fraction of time the bursty process spends bursting.
    burst_fraction: float = 0.1
    #: Mean duration of one burst, seconds.
    burst_mean_s: float = 60.0
    #: Phase-shifted regions of the ``multiregion`` shape; region
    #: ``r`` owns tenants ``{i : i % regions == r}``.
    regions: int = 3
    n_tenants: int = 4
    models: tuple[str, ...] = ("SqueezeNet", "MobileNet", "BERT-base")
    algorithms: tuple[str, ...] = ("DP-SGD(R)", "DP-SGD", "SGD")
    #: Relative draw weights, aligned with ``algorithms``.
    algorithm_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    batches: tuple[int, ...] = (64, 128, 256)
    #: Inclusive range requested steps are drawn from.
    steps_range: tuple[int, int] = (200, 2000)
    noise_multipliers: tuple[float, ...] = (0.7, 1.0, 1.3)
    dataset_sizes: tuple[int, ...] = (20_000, 50_000)
    tenant_prefix: str = "tenant"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if self.shape not in TRACE_SHAPES:
            raise ValueError(f"unknown trace shape {self.shape!r}; "
                             f"choose from {TRACE_SHAPES}")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1], got "
                f"{self.diurnal_amplitude}")
        if self.burst_rate_ratio < 1.0:
            raise ValueError(
                f"burst_rate_ratio must be >= 1, got "
                f"{self.burst_rate_ratio}")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got "
                f"{self.burst_fraction}")
        if self.burst_mean_s <= 0:
            raise ValueError("burst_mean_s must be positive")
        if self.regions < 1:
            raise ValueError(f"regions must be >= 1, got {self.regions}")
        if self.shape == "multiregion" and self.n_tenants < self.regions:
            raise ValueError(
                f"multiregion needs n_tenants >= regions, got "
                f"{self.n_tenants} tenants over {self.regions} regions")
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if len(self.algorithms) != len(self.algorithm_weights):
            raise ValueError(
                "algorithms and algorithm_weights must align")
        lo, hi = self.steps_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"steps_range must satisfy 1 <= lo <= hi, got {lo, hi}")

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(f"{self.tenant_prefix}-{i}"
                     for i in range(self.n_tenants))


def _diurnal_rate(config: TraceConfig, t_s: float, *, base_hz: float,
                  phase: float = 0.0) -> float:
    """Instantaneous arrival rate of a (phase-shifted) diurnal cycle."""
    return base_hz * (1.0 + config.diurnal_amplitude * math.sin(
        2.0 * math.pi * (t_s / config.diurnal_period_s + phase)))


def _bursty_rates(config: TraceConfig) -> tuple[float, float]:
    """(calm, burst) arrival rates whose time-average is the mean rate.

    Solves ``f x burst + (1 - f) x calm = 1 / mean_interarrival`` with
    ``burst = ratio x calm``, so the MMPP delivers the same long-run
    job count as the Poisson shape.
    """
    base_hz = 1.0 / config.mean_interarrival_s
    fraction = config.burst_fraction
    calm_hz = base_hz / (1.0 - fraction
                         + fraction * config.burst_rate_ratio)
    return calm_hz, calm_hz * config.burst_rate_ratio


def _region_tenants(config: TraceConfig, region: int) -> tuple[str, ...]:
    """Tenants owned by ``region``: every ``regions``-th index."""
    return config.tenants[region::config.regions]


def _poisson_arrivals(config: TraceConfig, rng: random.Random
                      ) -> Iterator[tuple[float, int | None]]:
    clock = 0.0
    while True:
        clock += rng.expovariate(1.0 / config.mean_interarrival_s)
        yield clock, None


def _thinned_arrival(config: TraceConfig, rng: random.Random,
                     clock: float, *, base_hz: float, phase: float
                     ) -> float:
    """Next arrival of one diurnal cycle, by Lewis-Shedler thinning."""
    peak_hz = base_hz * (1.0 + config.diurnal_amplitude)
    while True:
        clock += rng.expovariate(peak_hz)
        if rng.random() * peak_hz <= _diurnal_rate(
                config, clock, base_hz=base_hz, phase=phase):
            return clock


def _diurnal_arrivals(config: TraceConfig, rng: random.Random
                      ) -> Iterator[tuple[float, int | None]]:
    base_hz = 1.0 / config.mean_interarrival_s
    clock = 0.0
    while True:
        clock = _thinned_arrival(config, rng, clock,
                                 base_hz=base_hz, phase=0.0)
        yield clock, None


def _bursty_arrivals(config: TraceConfig, rng: random.Random
                     ) -> Iterator[tuple[float, int | None]]:
    calm_hz, burst_hz = _bursty_rates(config)
    fraction = config.burst_fraction
    # Mean sojourns chosen so the stationary burst fraction is f.
    calm_mean_s = config.burst_mean_s * (1.0 - fraction) / fraction
    in_burst = False
    clock = 0.0
    switch_s = rng.expovariate(1.0 / calm_mean_s)
    while True:
        while True:
            gap = rng.expovariate(burst_hz if in_burst else calm_hz)
            if clock + gap < switch_s:
                clock += gap
                break
            # State flips before the candidate arrival; the
            # exponential is memoryless, so redraw in the new state.
            clock = switch_s
            in_burst = not in_burst
            switch_s = clock + rng.expovariate(
                1.0 / (config.burst_mean_s if in_burst else calm_mean_s))
        yield clock, None


def _multiregion_arrivals(config: TraceConfig, rng: random.Random
                          ) -> Iterator[tuple[float, int | None]]:
    regions = config.regions
    base_hz = 1.0 / config.mean_interarrival_s / regions
    # Evenly spaced phases: region peaks cover the day and (for
    # regions >= 2) the superposed rate stays at the configured mean.
    nxt = [_thinned_arrival(config, rng, 0.0, base_hz=base_hz,
                            phase=region / regions)
           for region in range(regions)]
    while True:
        region = min(range(regions), key=lambda r: nxt[r])
        clock = nxt[region]
        nxt[region] = _thinned_arrival(config, rng, clock,
                                       base_hz=base_hz,
                                       phase=region / regions)
        yield clock, region


_SCALAR_ARRIVALS = {
    "poisson": _poisson_arrivals,
    "diurnal": _diurnal_arrivals,
    "bursty": _bursty_arrivals,
    "multiregion": _multiregion_arrivals,
}


def generate_trace(config: TraceConfig = TraceConfig()
                   ) -> tuple[TrainingJob, ...]:
    """Draw a deterministic synthetic job stream from ``config``.

    The arrival process follows ``config.shape`` (see
    :data:`TRACE_SHAPES`); the ``poisson`` stream is draw-for-draw
    identical to what this generator always produced.  Under
    ``multiregion`` each arrival carries its region, and the tenant is
    drawn from that region's slice of the tenant population.
    """
    rng = random.Random(config.seed)
    lo, hi = config.steps_range
    arrivals = _SCALAR_ARRIVALS[config.shape](config, rng)
    jobs = []
    for job_id in range(config.jobs):
        clock, region = next(arrivals)
        tenant = rng.choice(config.tenants if region is None
                            else _region_tenants(config, region))
        jobs.append(TrainingJob(
            job_id=job_id,
            tenant=tenant,
            model=rng.choice(config.models),
            algorithm=rng.choices(config.algorithms,
                                  weights=config.algorithm_weights)[0],
            batch=rng.choice(config.batches),
            steps=rng.randint(lo, hi),
            noise_multiplier=rng.choice(config.noise_multipliers),
            dataset_size=rng.choice(config.dataset_sizes),
            arrival_s=clock,
        ))
    return tuple(jobs)


@dataclass(frozen=True)
class TraceArrays:
    """A job trace as a struct of NumPy arrays (one entry per job).

    The memory-flat counterpart of a ``tuple[TrainingJob, ...]`` —
    ~50 bytes per job instead of a Python object graph — consumed by
    the streaming fleet simulator
    (:func:`repro.serve.scheduler.simulate_fleet_streaming`) and the
    batched admission controller.  ``tenant`` / ``model`` /
    ``algorithm`` are indices into the ``tenants`` / ``models`` /
    ``algorithms`` vocabularies; job ids are implicit array positions
    and arrivals are nondecreasing.
    """

    tenants: tuple[str, ...]
    models: tuple[str, ...]
    algorithms: tuple[str, ...]
    arrival_s: NDArray[Any]
    tenant: NDArray[Any]
    model: NDArray[Any]
    algorithm: NDArray[Any]
    batch: NDArray[Any]
    steps: NDArray[Any]
    noise_multiplier: NDArray[Any]
    dataset_size: NDArray[Any]

    def __len__(self) -> int:
        return self.arrival_s.shape[0]

    @property
    def is_private(self) -> NDArray[Any]:
        """Boolean mask of jobs that draw on a privacy budget."""
        sgd = np.array([name == "SGD" for name in self.algorithms])
        return ~sgd[self.algorithm]

    @property
    def sampling_rate(self) -> NDArray[Any]:
        """Per-job Poisson sampling rate ``min(1, batch / dataset)``."""
        return np.minimum(1.0, self.batch / self.dataset_size)

    @classmethod
    def from_jobs(cls, jobs: "tuple[TrainingJob, ...] | list[TrainingJob]"
                  ) -> "TraceArrays":
        """Convert a materialized job tuple (ordered by arrival)."""
        jobs = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        tenants = tuple(dict.fromkeys(j.tenant for j in jobs))
        models = tuple(dict.fromkeys(j.model for j in jobs))
        algorithms = tuple(dict.fromkeys(j.algorithm for j in jobs))
        tenant_idx = {name: i for i, name in enumerate(tenants)}
        model_idx = {name: i for i, name in enumerate(models)}
        algo_idx = {name: i for i, name in enumerate(algorithms)}
        return cls(
            tenants=tenants, models=models, algorithms=algorithms,
            arrival_s=np.array([j.arrival_s for j in jobs], dtype=float),
            tenant=np.array([tenant_idx[j.tenant] for j in jobs],
                            dtype=np.int32),
            model=np.array([model_idx[j.model] for j in jobs],
                           dtype=np.int32),
            algorithm=np.array([algo_idx[j.algorithm] for j in jobs],
                               dtype=np.int32),
            batch=np.array([j.batch for j in jobs], dtype=np.int64),
            steps=np.array([j.steps for j in jobs], dtype=np.int64),
            noise_multiplier=np.array(
                [j.noise_multiplier for j in jobs], dtype=float),
            dataset_size=np.array([j.dataset_size for j in jobs],
                                  dtype=np.int64),
        )

    def jobs(self) -> tuple[TrainingJob, ...]:
        """Materialize :class:`TrainingJob` objects (small traces only)."""
        return tuple(
            TrainingJob(
                job_id=i,
                tenant=self.tenants[self.tenant[i]],
                model=self.models[self.model[i]],
                algorithm=self.algorithms[self.algorithm[i]],
                batch=int(self.batch[i]),
                steps=int(self.steps[i]),
                noise_multiplier=float(self.noise_multiplier[i]),
                dataset_size=int(self.dataset_size[i]),
                arrival_s=float(self.arrival_s[i]),
            )
            for i in range(len(self))
        )


def _thinned_arrivals_array(config: TraceConfig, rng: np.random.Generator,
                            jobs: int, *, base_hz: float, phase: float
                            ) -> NDArray[Any]:
    """``jobs`` diurnal arrival times by chunked Lewis-Shedler thinning.

    Candidates stream at the peak rate in chunks; each keeps with
    probability ``rate(t) / peak`` — the vector form of the scalar
    sampler's accept loop.
    """
    peak_hz = base_hz * (1.0 + config.diurnal_amplitude)
    kept: list[NDArray[Any]] = [np.zeros(0)]
    have = 0
    clock = 0.0
    while have < jobs:
        chunk = max(1024, 2 * (jobs - have))
        times = clock + np.cumsum(rng.exponential(1.0 / peak_hz, chunk))
        rate = base_hz * (1.0 + config.diurnal_amplitude * np.sin(
            2.0 * np.pi * (times / config.diurnal_period_s + phase)))
        accepted = times[rng.random(chunk) * peak_hz <= rate]
        kept.append(accepted)
        have += accepted.shape[0]
        clock = float(times[-1])
    return np.concatenate(kept)[:jobs]


def _bursty_arrivals_array(config: TraceConfig, rng: np.random.Generator,
                           jobs: int) -> NDArray[Any]:
    """``jobs`` MMPP arrival times, one sojourn interval at a time.

    Conditioned on a sojourn, arrivals are a Poisson count placed
    uniformly in the interval — equivalent in law to the scalar
    competing-exponentials sampler, and vectorized per interval.
    """
    calm_hz, burst_hz = _bursty_rates(config)
    fraction = config.burst_fraction
    calm_mean_s = config.burst_mean_s * (1.0 - fraction) / fraction
    kept: list[NDArray[Any]] = [np.zeros(0)]
    have = 0
    clock = 0.0
    in_burst = False
    while have < jobs:
        mean_s = config.burst_mean_s if in_burst else calm_mean_s
        rate_hz = burst_hz if in_burst else calm_hz
        duration_s = rng.exponential(mean_s)
        count = int(rng.poisson(rate_hz * duration_s))
        if count:
            kept.append(clock + np.sort(rng.random(count)) * duration_s)
            have += count
        clock += duration_s
        in_burst = not in_burst
    return np.concatenate(kept)[:jobs]


def _multiregion_arrivals_array(
    config: TraceConfig, rng: np.random.Generator, jobs: int,
) -> tuple[NDArray[Any], NDArray[Any]]:
    """(arrival, region) arrays for the superposed multiregion shape.

    Each region contributes ``jobs`` candidates (enough that the
    merged first ``jobs`` are exact); a stable merge keeps ties
    deterministic.
    """
    regions = config.regions
    base_hz = 1.0 / config.mean_interarrival_s / regions
    times = [_thinned_arrivals_array(config, rng, jobs, base_hz=base_hz,
                                     phase=region / regions)
             for region in range(regions)]
    merged = np.concatenate(times)
    labels = np.repeat(np.arange(regions, dtype=np.int32), jobs)
    order = np.argsort(merged, kind="stable")[:jobs]
    return merged[order], labels[order]


def generate_trace_arrays(config: TraceConfig = TraceConfig()
                          ) -> TraceArrays:
    """Vectorized synthetic trace generation, straight into arrays.

    One NumPy pass per job attribute — Poisson arrivals are a
    ``cumsum`` over exponential inter-arrival draws, the job mix is a
    weighted categorical draw — so million-job traces generate in
    tens of milliseconds at a flat ~50 bytes/job.  Every
    :data:`TRACE_SHAPES` entry has a vectorized sampler here (chunked
    thinning for diurnal, per-sojourn Poisson counts for bursty, a
    stable ``regions``-way merge for multiregion).  Deterministic in
    ``config.seed`` (PCG64), though the stream differs from the
    scalar :func:`generate_trace` (different RNG); both are seeded,
    deterministic samplers of the same configured mix.
    """
    rng = np.random.default_rng(config.seed)
    jobs = config.jobs
    weights = np.asarray(config.algorithm_weights, dtype=float)
    region: NDArray[Any] | None = None
    if config.shape == "poisson":
        arrival = np.cumsum(
            rng.exponential(config.mean_interarrival_s, jobs))
    elif config.shape == "diurnal":
        arrival = _thinned_arrivals_array(
            config, rng, jobs,
            base_hz=1.0 / config.mean_interarrival_s, phase=0.0)
    elif config.shape == "bursty":
        arrival = _bursty_arrivals_array(config, rng, jobs)
    else:  # multiregion
        arrival, region = _multiregion_arrivals_array(config, rng, jobs)
    if region is None:
        tenant = rng.integers(0, config.n_tenants, jobs, dtype=np.int32)
    else:
        # Region r owns tenants {i : i % regions == r}; draw uniformly
        # within the arrival's region slice.
        counts = np.array(
            [len(_region_tenants(config, r))
             for r in range(config.regions)], dtype=np.int64)
        offset = np.floor(rng.random(jobs) * counts[region])
        tenant = (region
                  + config.regions * offset.astype(np.int32)).astype(
                      np.int32)
    return TraceArrays(
        tenants=config.tenants,
        models=tuple(config.models),
        algorithms=tuple(config.algorithms),
        arrival_s=arrival,
        tenant=tenant,
        model=rng.integers(0, len(config.models), jobs, dtype=np.int32),
        algorithm=rng.choice(
            len(config.algorithms), size=jobs,
            p=weights / weights.sum()).astype(np.int32),
        batch=rng.choice(np.asarray(config.batches, dtype=np.int64),
                         size=jobs),
        steps=rng.integers(config.steps_range[0],
                           config.steps_range[1] + 1, jobs,
                           dtype=np.int64),
        noise_multiplier=rng.choice(
            np.asarray(config.noise_multipliers, dtype=float), size=jobs),
        dataset_size=rng.choice(
            np.asarray(config.dataset_sizes, dtype=np.int64), size=jobs),
    )
