"""Training jobs and synthetic multi-tenant traces.

A :class:`TrainingJob` is the unit of work the fleet simulator
schedules: one tenant asking for ``steps`` DP-SGD iterations of one
zoo workload at a given mini-batch and noise multiplier.  The privacy
cost of a job follows from exactly three of its fields — sampling rate
``batch / dataset_size``, ``noise_multiplier`` and ``steps`` — which is
what lets admission control (:mod:`repro.serve.budget`) price a job
before a single cycle is simulated.

:func:`generate_trace` produces a seeded synthetic arrival stream:
Poisson arrivals (exponential inter-arrival times) over a configurable
tenant / workload / algorithm mix, in the spirit of the
budget-and-model diversity documented by Jayaraman & Evans
("Evaluating Differentially Private Machine Learning in Practice").
The generator is deterministic in ``TraceConfig.seed``: the same
config always yields the identical tuple of jobs, which the scheduler
tests rely on (same seed => identical fleet report).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from typing import Any

import numpy as np
from numpy.typing import NDArray

#: Algorithms a job may request; non-private SGD bypasses admission.
JOB_ALGORITHMS = ("SGD", "DP-SGD", "DP-SGD(R)")


@dataclass(frozen=True)
class TrainingJob:
    """One tenant's training request.

    Parameters
    ----------
    job_id:
        Unique within a trace (ties in every scheduling policy break
        on it, keeping simulations deterministic).
    tenant:
        Owner of the privacy budget this job draws from.
    model:
        A :data:`repro.workloads.MODEL_NAMES` entry.
    algorithm:
        ``"SGD"``, ``"DP-SGD"`` or ``"DP-SGD(R)"``.
    batch:
        Global mini-batch per step.
    steps:
        Requested optimizer steps (admission may truncate them).
    noise_multiplier:
        ``sigma`` of Algorithm 1; ignored for non-private jobs.
    dataset_size:
        Tenant dataset cardinality ``N``; the Poisson sampling rate is
        ``batch / N``.
    arrival_s:
        Submission time on the simulated clock.
    """

    job_id: int
    tenant: str
    model: str
    algorithm: str
    batch: int
    steps: int
    noise_multiplier: float
    dataset_size: int
    arrival_s: float

    def __post_init__(self) -> None:
        if self.algorithm not in JOB_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {JOB_ALGORITHMS}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.dataset_size < 1:
            raise ValueError(
                f"dataset_size must be >= 1, got {self.dataset_size}")
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.is_private and self.noise_multiplier <= 0:
            raise ValueError(
                "private jobs need a positive noise multiplier, got "
                f"{self.noise_multiplier}")

    @property
    def is_private(self) -> bool:
        return self.algorithm != "SGD"

    @property
    def sampling_rate(self) -> float:
        """Poisson sampling rate ``q = batch / dataset_size`` (capped)."""
        return min(1.0, self.batch / self.dataset_size)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace generator.

    The defaults describe the demo trace used by the ``serve``
    experiment and CLI: four tenants submitting mostly-private jobs
    over three small zoo workloads, sized so a default per-tenant
    budget of a few epsilon admits the early jobs and rejects or
    truncates the stragglers.
    """

    jobs: int = 60
    seed: int = 7
    #: Mean inter-arrival time of the Poisson process, seconds.  The
    #: default loads the demo's 4-cluster fleet to ~40% utilization
    #: with bursty arrivals — enough contention that queueing waits
    #: (and therefore policy choice) are visible in the fleet report.
    mean_interarrival_s: float = 8.0
    n_tenants: int = 4
    models: tuple[str, ...] = ("SqueezeNet", "MobileNet", "BERT-base")
    algorithms: tuple[str, ...] = ("DP-SGD(R)", "DP-SGD", "SGD")
    #: Relative draw weights, aligned with ``algorithms``.
    algorithm_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    batches: tuple[int, ...] = (64, 128, 256)
    #: Inclusive range requested steps are drawn from.
    steps_range: tuple[int, int] = (200, 2000)
    noise_multipliers: tuple[float, ...] = (0.7, 1.0, 1.3)
    dataset_sizes: tuple[int, ...] = (20_000, 50_000)
    tenant_prefix: str = "tenant"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if len(self.algorithms) != len(self.algorithm_weights):
            raise ValueError(
                "algorithms and algorithm_weights must align")
        lo, hi = self.steps_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"steps_range must satisfy 1 <= lo <= hi, got {lo, hi}")

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(f"{self.tenant_prefix}-{i}"
                     for i in range(self.n_tenants))


def generate_trace(config: TraceConfig = TraceConfig()
                   ) -> tuple[TrainingJob, ...]:
    """Draw a deterministic synthetic job stream from ``config``."""
    rng = random.Random(config.seed)
    lo, hi = config.steps_range
    clock = 0.0
    jobs = []
    for job_id in range(config.jobs):
        clock += rng.expovariate(1.0 / config.mean_interarrival_s)
        jobs.append(TrainingJob(
            job_id=job_id,
            tenant=rng.choice(config.tenants),
            model=rng.choice(config.models),
            algorithm=rng.choices(config.algorithms,
                                  weights=config.algorithm_weights)[0],
            batch=rng.choice(config.batches),
            steps=rng.randint(lo, hi),
            noise_multiplier=rng.choice(config.noise_multipliers),
            dataset_size=rng.choice(config.dataset_sizes),
            arrival_s=clock,
        ))
    return tuple(jobs)


@dataclass(frozen=True)
class TraceArrays:
    """A job trace as a struct of NumPy arrays (one entry per job).

    The memory-flat counterpart of a ``tuple[TrainingJob, ...]`` —
    ~50 bytes per job instead of a Python object graph — consumed by
    the streaming fleet simulator
    (:func:`repro.serve.scheduler.simulate_fleet_streaming`) and the
    batched admission controller.  ``tenant`` / ``model`` /
    ``algorithm`` are indices into the ``tenants`` / ``models`` /
    ``algorithms`` vocabularies; job ids are implicit array positions
    and arrivals are nondecreasing.
    """

    tenants: tuple[str, ...]
    models: tuple[str, ...]
    algorithms: tuple[str, ...]
    arrival_s: NDArray[Any]
    tenant: NDArray[Any]
    model: NDArray[Any]
    algorithm: NDArray[Any]
    batch: NDArray[Any]
    steps: NDArray[Any]
    noise_multiplier: NDArray[Any]
    dataset_size: NDArray[Any]

    def __len__(self) -> int:
        return self.arrival_s.shape[0]

    @property
    def is_private(self) -> NDArray[Any]:
        """Boolean mask of jobs that draw on a privacy budget."""
        sgd = np.array([name == "SGD" for name in self.algorithms])
        return ~sgd[self.algorithm]

    @property
    def sampling_rate(self) -> NDArray[Any]:
        """Per-job Poisson sampling rate ``min(1, batch / dataset)``."""
        return np.minimum(1.0, self.batch / self.dataset_size)

    @classmethod
    def from_jobs(cls, jobs: "tuple[TrainingJob, ...] | list[TrainingJob]"
                  ) -> "TraceArrays":
        """Convert a materialized job tuple (ordered by arrival)."""
        jobs = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        tenants = tuple(dict.fromkeys(j.tenant for j in jobs))
        models = tuple(dict.fromkeys(j.model for j in jobs))
        algorithms = tuple(dict.fromkeys(j.algorithm for j in jobs))
        tenant_idx = {name: i for i, name in enumerate(tenants)}
        model_idx = {name: i for i, name in enumerate(models)}
        algo_idx = {name: i for i, name in enumerate(algorithms)}
        return cls(
            tenants=tenants, models=models, algorithms=algorithms,
            arrival_s=np.array([j.arrival_s for j in jobs], dtype=float),
            tenant=np.array([tenant_idx[j.tenant] for j in jobs],
                            dtype=np.int32),
            model=np.array([model_idx[j.model] for j in jobs],
                           dtype=np.int32),
            algorithm=np.array([algo_idx[j.algorithm] for j in jobs],
                               dtype=np.int32),
            batch=np.array([j.batch for j in jobs], dtype=np.int64),
            steps=np.array([j.steps for j in jobs], dtype=np.int64),
            noise_multiplier=np.array(
                [j.noise_multiplier for j in jobs], dtype=float),
            dataset_size=np.array([j.dataset_size for j in jobs],
                                  dtype=np.int64),
        )

    def jobs(self) -> tuple[TrainingJob, ...]:
        """Materialize :class:`TrainingJob` objects (small traces only)."""
        return tuple(
            TrainingJob(
                job_id=i,
                tenant=self.tenants[self.tenant[i]],
                model=self.models[self.model[i]],
                algorithm=self.algorithms[self.algorithm[i]],
                batch=int(self.batch[i]),
                steps=int(self.steps[i]),
                noise_multiplier=float(self.noise_multiplier[i]),
                dataset_size=int(self.dataset_size[i]),
                arrival_s=float(self.arrival_s[i]),
            )
            for i in range(len(self))
        )


def generate_trace_arrays(config: TraceConfig = TraceConfig()
                          ) -> TraceArrays:
    """Vectorized synthetic trace generation, straight into arrays.

    One NumPy pass per job attribute — Poisson arrivals are a
    ``cumsum`` over exponential inter-arrival draws, the job mix is a
    weighted categorical draw — so million-job traces generate in
    tens of milliseconds at a flat ~50 bytes/job.  Deterministic in
    ``config.seed`` (PCG64), though the stream differs from the
    scalar :func:`generate_trace` (different RNG); both are seeded,
    deterministic samplers of the same configured mix.
    """
    rng = np.random.default_rng(config.seed)
    jobs = config.jobs
    weights = np.asarray(config.algorithm_weights, dtype=float)
    return TraceArrays(
        tenants=config.tenants,
        models=tuple(config.models),
        algorithms=tuple(config.algorithms),
        arrival_s=np.cumsum(
            rng.exponential(config.mean_interarrival_s, jobs)),
        tenant=rng.integers(0, config.n_tenants, jobs, dtype=np.int32),
        model=rng.integers(0, len(config.models), jobs, dtype=np.int32),
        algorithm=rng.choice(
            len(config.algorithms), size=jobs,
            p=weights / weights.sum()).astype(np.int32),
        batch=rng.choice(np.asarray(config.batches, dtype=np.int64),
                         size=jobs),
        steps=rng.integers(config.steps_range[0],
                           config.steps_range[1] + 1, jobs,
                           dtype=np.int64),
        noise_multiplier=rng.choice(
            np.asarray(config.noise_multipliers, dtype=float), size=jobs),
        dataset_size=rng.choice(
            np.asarray(config.dataset_sizes, dtype=np.int64), size=jobs),
    )
