"""Training jobs and synthetic multi-tenant traces.

A :class:`TrainingJob` is the unit of work the fleet simulator
schedules: one tenant asking for ``steps`` DP-SGD iterations of one
zoo workload at a given mini-batch and noise multiplier.  The privacy
cost of a job follows from exactly three of its fields — sampling rate
``batch / dataset_size``, ``noise_multiplier`` and ``steps`` — which is
what lets admission control (:mod:`repro.serve.budget`) price a job
before a single cycle is simulated.

:func:`generate_trace` produces a seeded synthetic arrival stream:
Poisson arrivals (exponential inter-arrival times) over a configurable
tenant / workload / algorithm mix, in the spirit of the
budget-and-model diversity documented by Jayaraman & Evans
("Evaluating Differentially Private Machine Learning in Practice").
The generator is deterministic in ``TraceConfig.seed``: the same
config always yields the identical tuple of jobs, which the scheduler
tests rely on (same seed => identical fleet report).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Algorithms a job may request; non-private SGD bypasses admission.
JOB_ALGORITHMS = ("SGD", "DP-SGD", "DP-SGD(R)")


@dataclass(frozen=True)
class TrainingJob:
    """One tenant's training request.

    Parameters
    ----------
    job_id:
        Unique within a trace (ties in every scheduling policy break
        on it, keeping simulations deterministic).
    tenant:
        Owner of the privacy budget this job draws from.
    model:
        A :data:`repro.workloads.MODEL_NAMES` entry.
    algorithm:
        ``"SGD"``, ``"DP-SGD"`` or ``"DP-SGD(R)"``.
    batch:
        Global mini-batch per step.
    steps:
        Requested optimizer steps (admission may truncate them).
    noise_multiplier:
        ``sigma`` of Algorithm 1; ignored for non-private jobs.
    dataset_size:
        Tenant dataset cardinality ``N``; the Poisson sampling rate is
        ``batch / N``.
    arrival_s:
        Submission time on the simulated clock.
    """

    job_id: int
    tenant: str
    model: str
    algorithm: str
    batch: int
    steps: int
    noise_multiplier: float
    dataset_size: int
    arrival_s: float

    def __post_init__(self) -> None:
        if self.algorithm not in JOB_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {JOB_ALGORITHMS}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.dataset_size < 1:
            raise ValueError(
                f"dataset_size must be >= 1, got {self.dataset_size}")
        if self.arrival_s < 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.is_private and self.noise_multiplier <= 0:
            raise ValueError(
                "private jobs need a positive noise multiplier, got "
                f"{self.noise_multiplier}")

    @property
    def is_private(self) -> bool:
        return self.algorithm != "SGD"

    @property
    def sampling_rate(self) -> float:
        """Poisson sampling rate ``q = batch / dataset_size`` (capped)."""
        return min(1.0, self.batch / self.dataset_size)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace generator.

    The defaults describe the demo trace used by the ``serve``
    experiment and CLI: four tenants submitting mostly-private jobs
    over three small zoo workloads, sized so a default per-tenant
    budget of a few epsilon admits the early jobs and rejects or
    truncates the stragglers.
    """

    jobs: int = 60
    seed: int = 7
    #: Mean inter-arrival time of the Poisson process, seconds.  The
    #: default loads the demo's 4-cluster fleet to ~40% utilization
    #: with bursty arrivals — enough contention that queueing waits
    #: (and therefore policy choice) are visible in the fleet report.
    mean_interarrival_s: float = 8.0
    n_tenants: int = 4
    models: tuple[str, ...] = ("SqueezeNet", "MobileNet", "BERT-base")
    algorithms: tuple[str, ...] = ("DP-SGD(R)", "DP-SGD", "SGD")
    #: Relative draw weights, aligned with ``algorithms``.
    algorithm_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    batches: tuple[int, ...] = (64, 128, 256)
    #: Inclusive range requested steps are drawn from.
    steps_range: tuple[int, int] = (200, 2000)
    noise_multipliers: tuple[float, ...] = (0.7, 1.0, 1.3)
    dataset_sizes: tuple[int, ...] = (20_000, 50_000)
    tenant_prefix: str = "tenant"

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs}")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if len(self.algorithms) != len(self.algorithm_weights):
            raise ValueError(
                "algorithms and algorithm_weights must align")
        lo, hi = self.steps_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"steps_range must satisfy 1 <= lo <= hi, got {lo, hi}")

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(f"{self.tenant_prefix}-{i}"
                     for i in range(self.n_tenants))


def generate_trace(config: TraceConfig = TraceConfig()
                   ) -> tuple[TrainingJob, ...]:
    """Draw a deterministic synthetic job stream from ``config``."""
    rng = random.Random(config.seed)
    lo, hi = config.steps_range
    clock = 0.0
    jobs = []
    for job_id in range(config.jobs):
        clock += rng.expovariate(1.0 / config.mean_interarrival_s)
        jobs.append(TrainingJob(
            job_id=job_id,
            tenant=rng.choice(config.tenants),
            model=rng.choice(config.models),
            algorithm=rng.choices(config.algorithms,
                                  weights=config.algorithm_weights)[0],
            batch=rng.choice(config.batches),
            steps=rng.randint(lo, hi),
            noise_multiplier=rng.choice(config.noise_multipliers),
            dataset_size=rng.choice(config.dataset_sizes),
            arrival_s=clock,
        ))
    return tuple(jobs)
