"""Seeded fault injection for the fleet simulators.

Real fleets lose chips.  This module gives the serving simulators a
failure model that is **deterministic by construction**: every random
quantity — time-to-failure, straggler slowdown, blast radius, repair
downtime, the degrade-vs-requeue preference — is a pure function of
``(seed, job_id, attempt)`` through a splitmix64-style counter hash.
No RNG object is ever constructed and no call-order state exists, so
:func:`~repro.serve.scheduler.simulate_fleet` and
:func:`~repro.serve.scheduler.simulate_fleet_streaming` draw the exact
same failure schedule even though they walk the trace with different
data structures (lint rule R008 pins consumers to this stream).

The pieces:

:class:`FaultConfig` / :class:`FaultModel`
    The distributions.  Per-chip Weibull (shape 1 = exponential) MTBF
    composed over a cluster's chips via the min-stability of Weibull
    minima; optionally correlated failures that take a whole node's
    chips; transient stragglers multiplying step latency; exponential
    repair downtime; capped exponential retry backoff.

:class:`FaultRun`
    The per-simulation state machine both event loops drive through an
    identical call sequence — :meth:`FaultRun.begin_attempt` per
    dispatch.  It owns checkpoint amortization (cadence from the
    :class:`~repro.training.simulate.CheckpointConfig`, Young/Daly
    when unset), the crash ledger transactions
    (:meth:`~repro.serve.budget.AdmissionController.reprice_steps` /
    :meth:`~repro.serve.budget.AdmissionController.refund_steps`),
    graceful degradation via
    :func:`~repro.training.plan.plan_placement`, and every fault
    metric the report surfaces.  See ``docs/reliability.md``.

Budget-safety invariant (tested property-style): steps that executed
before a crash released their noise, so their reservation is *never*
refunded; re-running work lost since the last checkpoint requires a
fresh grant priced against the remaining budget, and only the un-run
tail of an abandoned job is returned.  The ledger therefore moves
toward the ``(epsilon, delta)`` cap monotonically and never past it,
no matter how crashes and retries interleave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.training.simulate import (
    CheckpointConfig,
    checkpoint_write_seconds,
    young_daly_interval_s,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments import runner
    from repro.serve.budget import AdmissionController
    from repro.serve.scheduler import FleetConfig

__all__ = [
    "AttemptOutcome",
    "FaultConfig",
    "FaultEvent",
    "FaultModel",
    "FaultRun",
]


# -- keyed randomness ---------------------------------------------------------

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

#: Draw streams: one per random quantity, so adding a stream never
#: shifts another stream's values (counter-based, not sequential).
_S_FAIL, _S_STRAGGLE, _S_SCOPE, _S_REPAIR, _S_DEGRADE = range(5)


def _mix64(value: int) -> int:
    """splitmix64 finalizer: one avalanche round over 64 bits."""
    z = (value + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _keyed_uniform(seed: int, job_id: int, attempt: int,
                   stream: int) -> float:
    """Uniform in (0, 1), a pure function of its key — no RNG state."""
    h = _mix64(seed)
    h = _mix64(h ^ _mix64(job_id))
    h = _mix64(h ^ _mix64(attempt))
    h = _mix64(h ^ _mix64(stream))
    # 53 mantissa bits, offset half an ulp: never exactly 0 or 1, so
    # log() below is always finite.
    return ((h >> 11) + 0.5) * (2.0 ** -53)


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class FaultConfig:
    """Failure-process parameters for one simulated fleet.

    Parameters
    ----------
    mtbf_hours:
        Per-chip mean time between failures.  A cluster of ``C`` chips
        fails at the min of ``C`` i.i.d. Weibull draws, which is again
        Weibull with scale shrunk by ``C**(1/shape)``.
    weibull_shape:
        Weibull shape ``k``; 1 is the memoryless exponential, ``k > 1``
        models wear-out, ``k < 1`` infant mortality.
    straggler_rate:
        Probability that an attempt runs on a transient straggler,
        multiplying its *compute* step latency by
        ``straggler_factor`` (checkpoint writes are storage-bound and
        unaffected).
    correlated_fraction:
        Probability that a failure takes out the whole node
        (``chips_per_node`` chips) instead of a single chip.
    repair_hours:
        Mean of the exponential repair downtime.
    degrade_fraction:
        Probability a crashed job *continues degraded* on the surviving
        chips (when a feasible ``dp' < dp`` placement exists) instead
        of requeueing.
    max_retries:
        Requeues allowed after the first attempt; the next crash
        abandons the job and refunds its un-run reservation.
    backoff_base_s / backoff_cap_s:
        Capped exponential requeue backoff:
        ``min(cap, base * 2**(retry - 1))``.
    checkpoint:
        Checkpoint cadence and storage bandwidth
        (:class:`~repro.training.simulate.CheckpointConfig`); a
        ``None`` interval derives the per-workload Young/Daly cadence.
    seed:
        Root of every keyed draw.
    """

    mtbf_hours: float = 168.0
    weibull_shape: float = 1.0
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    correlated_fraction: float = 0.0
    repair_hours: float = 0.5
    degrade_fraction: float = 0.5
    max_retries: int = 3
    backoff_base_s: float = 30.0
    backoff_cap_s: float = 3600.0
    checkpoint: CheckpointConfig = CheckpointConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mtbf_hours <= 0:
            raise ValueError(
                f"mtbf_hours must be positive, got {self.mtbf_hours}")
        if self.weibull_shape <= 0:
            raise ValueError(
                f"weibull_shape must be positive, got {self.weibull_shape}")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError(
                f"straggler_rate must be in [0, 1], got "
                f"{self.straggler_rate}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got "
                f"{self.straggler_factor}")
        if not 0.0 <= self.correlated_fraction <= 1.0:
            raise ValueError(
                f"correlated_fraction must be in [0, 1], got "
                f"{self.correlated_fraction}")
        if not 0.0 <= self.degrade_fraction <= 1.0:
            raise ValueError(
                f"degrade_fraction must be in [0, 1], got "
                f"{self.degrade_fraction}")
        if self.repair_hours < 0:
            raise ValueError(
                f"repair_hours must be >= 0, got {self.repair_hours}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")


class FaultModel:
    """Keyed draws from :class:`FaultConfig`'s distributions.

    Stateless: every method is a pure function of its arguments and
    the config, so the two fleet simulators (and any re-run) observe
    identical failures without sharing any mutable object.
    """

    __slots__ = ("config", "_chip_scale_s")

    def __init__(self, config: FaultConfig = FaultConfig()) -> None:
        self.config = config
        # Weibull scale matching the configured chip MTBF:
        # mean = scale * Gamma(1 + 1/k).
        self._chip_scale_s = (config.mtbf_hours * 3600.0
                              / math.gamma(1.0 + 1.0 / config.weibull_shape))

    def cluster_mtbf_s(self, n_chips: int) -> float:
        """Mean time to first failure among ``n_chips`` chips."""
        return (self.config.mtbf_hours * 3600.0
                / n_chips ** (1.0 / self.config.weibull_shape))

    def time_to_failure_s(self, job_id: int, attempt: int,
                          n_chips: int) -> float:
        """Attempt-start-relative first failure across the cluster."""
        shape = self.config.weibull_shape
        u = _keyed_uniform(self.config.seed, job_id, attempt, _S_FAIL)
        scale = self._chip_scale_s / n_chips ** (1.0 / shape)
        return scale * (-math.log(u)) ** (1.0 / shape)

    def straggler_multiplier(self, job_id: int, attempt: int) -> float:
        """Step-latency multiplier for this attempt (1.0 = healthy)."""
        rate = self.config.straggler_rate
        if rate <= 0.0:
            return 1.0
        u = _keyed_uniform(self.config.seed, job_id, attempt, _S_STRAGGLE)
        return self.config.straggler_factor if u < rate else 1.0

    def chips_lost(self, job_id: int, attempt: int, chips_per_node: int,
                   chips_per_cluster: int) -> int:
        """Blast radius of this attempt's failure, in chips."""
        fraction = self.config.correlated_fraction
        if fraction <= 0.0 or chips_per_node <= 1:
            return 1
        u = _keyed_uniform(self.config.seed, job_id, attempt, _S_SCOPE)
        if u < fraction:
            return min(chips_per_node, chips_per_cluster)
        return 1

    def repair_seconds(self, job_id: int, attempt: int) -> float:
        """Seeded exponential repair downtime for this failure."""
        mean_s = self.config.repair_hours * 3600.0
        if mean_s <= 0.0:
            return 0.0
        u = _keyed_uniform(self.config.seed, job_id, attempt, _S_REPAIR)
        return -mean_s * math.log(u)

    def prefers_degrade(self, job_id: int, attempt: int) -> bool:
        """Whether this failure degrades in place (if feasible)."""
        fraction = self.config.degrade_fraction
        if fraction <= 0.0:
            return False
        u = _keyed_uniform(self.config.seed, job_id, attempt, _S_DEGRADE)
        return u < fraction

    def backoff_s(self, retry: int) -> float:
        """Capped exponential requeue delay before retry ``retry``."""
        return min(self.config.backoff_cap_s,
                   self.config.backoff_base_s * 2.0 ** (retry - 1))


# -- per-run state machine ----------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One failure-lifecycle instant, for observability export."""

    kind: str  # "failure" | "repair" | "retry" | "degrade"
    time_s: float
    job_id: int
    attempt: int


@dataclass(frozen=True)
class AttemptOutcome:
    """What one dispatched attempt did with its cluster.

    ``free_s`` is when the cluster rejoins the idle pool: the finish
    instant for clean runs, ``max(finish, repair end)`` for degraded
    continuations, the repair end for crashes.  ``retry_s`` is set
    only when the job requeues.
    """

    completed: bool
    failed: bool
    finish_s: float | None
    free_s: float
    retry_s: float | None
    crash_s: float | None


@dataclass
class _JobState:
    """Crash survivor state; exists only between a crash and the end."""

    done: int
    reserved: int
    attempts: int
    ready_s: float


@dataclass
class FaultRun:
    """Failure bookkeeping one simulation drives through its dispatches.

    Both event loops call :meth:`begin_attempt` once per dispatch with
    identical arguments in identical order, so every counter, ledger
    transaction and outcome below is decision-identical between the
    scalar and streaming simulators.

    The step-count ledger per job is ``target = done + reserved``:
    ``done`` steps executed *and checkpointed*, ``reserved`` steps
    still holding budget.  A crash moves the surviving steps into
    ``done``, drops the executed-but-lost steps from ``reserved``
    (their noise escaped — the spend stands), and asks the admission
    controller to price their re-execution; any shortfall shrinks the
    job's target instead of overdrawing the tenant.
    """

    model: FaultModel
    fleet: "FleetConfig"
    admission: "AdmissionController"
    cache: "runner.ResultCache | None" = None

    # -- outcome counters (identical across both simulators) --
    completed: int = 0
    truncated: int = 0
    failed: int = 0
    failures: int = 0
    retries: int = 0
    degradations: int = 0
    busy_s: float = 0.0
    wasted_s: float = 0.0
    makespan_s: float = 0.0
    repair_total_s: float = 0.0
    #: Cluster-unavailable intervals (requeue repairs; degraded-run
    #: repair tails past the job's finish).
    downtime: list[tuple[float, float]] = field(default_factory=list)
    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._jobs: dict[int, _JobState] = {}
        self._ckpt: dict[tuple[str, float], tuple[float, int]] = {}
        self._degraded: dict[tuple[str, str, int, int], float | None] = {}

    # -- checkpoint cadence ------------------------------------------------

    def _checkpoint(self, model_name: str,
                    step_s: float) -> tuple[float, int]:
        """``(write_s, interval_steps)`` for one workload's cadence."""
        key = (model_name, step_s)
        hit = self._ckpt.get(key)
        if hit is None:
            from repro.workloads import build_model

            cfg = self.model.config.checkpoint
            write_s = checkpoint_write_seconds(build_model(model_name), cfg)
            if cfg.interval_steps is not None:
                interval = cfg.interval_steps
            else:
                mtbf_s = self.model.cluster_mtbf_s(
                    self.fleet.chips_per_cluster)
                interval = max(1, round(
                    young_daly_interval_s(write_s, mtbf_s) / step_s))
            hit = (write_s, interval)
            self._ckpt[key] = hit
        return hit

    def effective_step_seconds(self, model_name: str,
                               step_s: float) -> float:
        """Step latency with the amortized checkpoint-write overhead."""
        write_s, interval = self._checkpoint(model_name, step_s)
        return step_s + write_s / interval

    # -- requeue bookkeeping the loops read ---------------------------------

    def remaining_steps(self, job_id: int, granted: int) -> int:
        """Steps the next attempt will run (the job's live reservation)."""
        state = self._jobs.get(job_id)
        return granted if state is None else state.reserved

    def ready_s(self, job_id: int, arrival_s: float) -> float:
        """When the job became dispatchable (arrival, or retry time)."""
        state = self._jobs.get(job_id)
        return arrival_s if state is None else state.ready_s

    # -- graceful degradation ----------------------------------------------

    def _degraded_step_s(self, model_name: str, algorithm: str,
                         batch: int, chips_lost: int) -> float | None:
        """Step latency at the nearest feasible ``dp' < dp``.

        ``pp`` / ``tp`` stages are mandatory — each lost chip removes
        one data-parallel replica (its whole ``pp x tp`` grid stalls),
        so only the ``dp`` axis shrinks.  ``None`` when no smaller
        replica count fits (including ``dp == 1``: losing any chip of
        a pure model-parallel grid stalls the job outright).
        """
        key = (model_name, algorithm, batch, chips_lost)
        if key in self._degraded:
            return self._degraded[key]

        from repro.training import Algorithm, plan_placement
        from repro.workloads import build_model

        fleet = self.fleet
        replicas_lost = min(fleet.dp, chips_lost)
        best: float | None = None
        for dp2 in range(fleet.dp - replicas_lost, 0, -1):
            chips2 = dp2 * fleet.pp * fleet.tp
            rounded = math.ceil(batch / dp2) * dp2
            try:
                result = plan_placement(
                    build_model(model_name), Algorithm(algorithm),
                    chips2, rounded, kind=fleet.kind,
                    topology=fleet.topology,
                    bucket_bytes=fleet.bucket_bytes,
                    chips_per_node=fleet.chips_per_node,
                    fabric=fleet.fabric, overlap=fleet.overlap)
            except ValueError:
                continue
            for cand in result.candidates:
                if cand.feasible and cand.plan.dp == dp2 \
                        and cand.plan.pp == fleet.pp \
                        and cand.plan.tp == fleet.tp:
                    best = cand.step_seconds
                    break
            if best is not None:
                break
        self._degraded[key] = best
        return best

    # -- the attempt state machine ------------------------------------------

    def begin_attempt(
        self,
        job_id: int,
        now: float,
        *,
        step_s: float,
        granted: int,
        requested: int,
        tenant: str,
        sampling_rate: float,
        noise_multiplier: float,
        private: bool,
        model_name: str,
        algorithm: str,
        batch: int,
    ) -> AttemptOutcome:
        """Run one dispatched attempt of ``job_id`` starting at ``now``."""
        cfg = self.model.config
        fleet = self.fleet
        state = self._jobs.get(job_id)
        attempt = 1 if state is None else state.attempts + 1
        remaining = granted if state is None else state.reserved
        done = 0 if state is None else state.done

        write_s, interval = self._checkpoint(model_name, step_s)
        mult = self.model.straggler_multiplier(job_id, attempt)
        eff = step_s * mult + write_s / interval
        duration = remaining * eff
        fail_after = self.model.time_to_failure_s(
            job_id, attempt, fleet.chips_per_cluster)

        if fail_after >= duration:
            # Clean run to completion.
            finish = now + duration
            self.busy_s += duration
            return self._complete(job_id, finish, free_s=finish,
                                  crash_s=None, total_done=done + remaining,
                                  requested=requested)

        # Crash: everything since the last checkpoint is lost.
        self.failures += 1
        executed = min(remaining - 1, int(fail_after / eff))
        surviving = (executed // interval) * interval
        lost = executed - surviving
        crash_s = now + fail_after
        self.busy_s += fail_after
        self.wasted_s += fail_after - surviving * eff
        repair_s = self.model.repair_seconds(job_id, attempt)
        self.repair_total_s += repair_s
        self.events.append(FaultEvent("failure", crash_s, job_id, attempt))
        self.events.append(
            FaultEvent("repair", crash_s + repair_s, job_id, attempt))

        # Ledger transaction: surviving steps stay spent-and-kept, the
        # lost steps' spend stands but their re-run needs a new grant.
        if lost > 0 and private:
            regranted = self.admission.reprice_steps(
                tenant, sampling_rate, noise_multiplier, lost)
        else:
            regranted = lost
        done += surviving
        reserved = remaining - executed + regranted

        chips_lost = self.model.chips_lost(
            job_id, attempt, fleet.chips_per_node, fleet.chips_per_cluster)

        if reserved > 0 and self.model.prefers_degrade(job_id, attempt):
            degraded_step_s = self._degraded_step_s(
                model_name, algorithm, batch, chips_lost)
            if degraded_step_s is not None:
                # Continue on the surviving replicas: reload the last
                # checkpoint, run the tail at the degraded latency;
                # the chip repairs concurrently.
                eff_deg = degraded_step_s * mult + write_s / interval
                finish = crash_s + write_s + reserved * eff_deg
                free_s = max(finish, crash_s + repair_s)
                self.busy_s += write_s + reserved * eff_deg
                self.wasted_s += write_s
                self.degradations += 1
                if free_s > finish:
                    self.downtime.append((finish, free_s))
                self.events.append(
                    FaultEvent("degrade", crash_s, job_id, attempt))
                return self._complete(job_id, finish, free_s=free_s,
                                      crash_s=crash_s,
                                      total_done=done + reserved,
                                      requested=requested)

        # The cluster goes down for repair either way from here.
        free_s = crash_s + repair_s
        self.downtime.append((crash_s, free_s))

        if reserved <= 0:
            # The remaining budget cannot re-buy the lost work: the
            # job ends at the crash with what it checkpointed.
            self._jobs.pop(job_id, None)
            if done > 0:
                return self._complete(job_id, crash_s, free_s=free_s,
                                      crash_s=crash_s, total_done=done,
                                      requested=requested)
            return self._fail(job_id, crash_s, free_s)

        if attempt > cfg.max_retries:
            # Out of retries: abandon and return the un-run tail.
            if private:
                self.admission.refund_steps(
                    tenant, sampling_rate, noise_multiplier, reserved)
            return self._fail(job_id, crash_s, free_s)

        retry_s = crash_s + self.model.backoff_s(attempt)
        self.retries += 1
        self._jobs[job_id] = _JobState(
            done=done, reserved=reserved, attempts=attempt,
            ready_s=retry_s)
        self.events.append(FaultEvent("retry", retry_s, job_id, attempt))
        return AttemptOutcome(completed=False, failed=False, finish_s=None,
                              free_s=free_s, retry_s=retry_s,
                              crash_s=crash_s)

    def _complete(self, job_id: int, finish_s: float, *, free_s: float,
                  crash_s: float | None, total_done: int,
                  requested: int) -> AttemptOutcome:
        self._jobs.pop(job_id, None)
        self.completed += 1
        if total_done < requested:
            self.truncated += 1
        if finish_s > self.makespan_s:
            self.makespan_s = finish_s
        return AttemptOutcome(completed=True, failed=False,
                              finish_s=finish_s, free_s=free_s,
                              retry_s=None, crash_s=crash_s)

    def _fail(self, job_id: int, crash_s: float,
              free_s: float) -> AttemptOutcome:
        self._jobs.pop(job_id, None)
        self.failed += 1
        if crash_s > self.makespan_s:
            self.makespan_s = crash_s
        return AttemptOutcome(completed=False, failed=True, finish_s=None,
                              free_s=free_s, retry_s=None, crash_s=crash_s)

    # -- report inputs -------------------------------------------------------

    @property
    def mttr_s(self) -> float:
        """Mean repair downtime per failure (0 with no failures)."""
        return (self.repair_total_s / self.failures
                if self.failures else 0.0)

    @property
    def retries_per_job(self) -> float:
        """Requeues per job that reached a terminal state."""
        terminal = self.completed + self.failed
        return self.retries / terminal if terminal else 0.0

    def downtime_seconds(self, cap_s: float | None = None) -> float:
        """Total cluster-unavailable time, optionally clipped at ``cap_s``."""
        total = 0.0
        for start, end in self.downtime:
            if cap_s is not None:
                end = min(end, cap_s)
            if end > start:
                total += end - start
        return total
