"""DiVa configuration (Table II) and accelerator factory inputs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.engine import ArrayConfig
from repro.arch.memory import MemoryConfig
from repro.arch.vector import VectorUnitConfig
from repro.core.ppu import PpuConfig


@dataclass(frozen=True)
class DivaConfig:
    """Complete DiVa / baseline configuration bundle.

    Defaults reproduce Table II: a 128x128 PE array at 940 MHz, 16 MB
    of on-chip SRAM, 16 memory channels at 450 GB/s aggregate with
    100-cycle access latency, and a PPU of 8 adder trees matched to the
    8-rows/clock drain rate.
    """

    array: ArrayConfig = field(default_factory=ArrayConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    vector: VectorUnitConfig = field(default_factory=VectorUnitConfig)
    ppu: PpuConfig = field(default_factory=PpuConfig)

    def __post_init__(self) -> None:
        if self.ppu.tree_width < self.array.width:
            raise ValueError(
                "PPU tree width must cover one PE-array row "
                f"({self.ppu.tree_width} < {self.array.width})"
            )

    def table2(self) -> dict[str, str]:
        """Render the Table II rows from the live configuration."""
        array = self.array
        mem = self.memory
        return {
            "PE array dimension": f"{array.height} x {array.width}",
            "PE operating frequency": f"{array.frequency_hz / 1e6:.0f} MHz",
            "On-chip SRAM size": f"{mem.sram_bytes / 2**20:.0f} MB",
            "Number of memory channels": str(mem.channels),
            "Memory bandwidth": f"{mem.bandwidth_bytes_per_s / 1e9:.0f} GB/sec",
            "Memory access latency": f"{mem.access_latency_cycles} cycles",
        }
