"""DiVa's post-processing unit (PPU): pipelined adder-tree reductions.

Section IV-C: the PPU is ``R`` (= ``drain_rows_per_cycle``) instances of
a ``log2(PE_W)``-level pipelined adder tree.  As the output-stationary
GEMM engine drains R output rows per clock, each row feeds its own tree,
which squares and sums the row's PE_W elements — deriving the
per-example gradient L2 norm *on the fly*, without ever spilling
per-example gradients to DRAM.  With FREQ_PPU == FREQ_GEMM, the trees
exactly match the drain bandwidth (3.85 TB/s in the default
configuration), so norm derivation adds only a pipeline flush per GEMM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PpuConfig:
    """PPU parameters (Section IV-C defaults)."""

    num_trees: int = 8
    tree_width: int = 128
    frequency_hz: float = 940e6
    element_bytes: int = 4

    def __post_init__(self) -> None:
        if self.tree_width < 2:
            raise ValueError("adder tree needs at least 2 inputs")
        if self.num_trees <= 0:
            raise ValueError("need at least one adder tree")

    @property
    def levels(self) -> int:
        """Pipeline depth of one adder tree (7 for a 128-wide tree)."""
        return math.ceil(math.log2(self.tree_width))

    @property
    def elements_per_cycle(self) -> int:
        """Reduction throughput in elements per clock."""
        return self.num_trees * self.tree_width

    @property
    def sustainable_bytes_per_s(self) -> float:
        """Input bandwidth the PPU sustains (paper: 3.85 TB/s)."""
        return (self.elements_per_cycle * self.element_bytes
                * self.frequency_hz)


class PostProcessingUnit:
    """Latency model of the adder-tree reduction unit."""

    def __init__(self, config: PpuConfig | None = None) -> None:
        self.config = config or PpuConfig()

    def matches_drain_rate(self, drain_rows_per_cycle: int,
                           array_width: int) -> bool:
        """Whether the PPU keeps up with the GEMM engine drain (IV-C)."""
        return (self.config.num_trees >= drain_rows_per_cycle
                and self.config.tree_width >= array_width)

    def flush_cycles(self) -> int:
        """Pipeline flush after the last drained row of a GEMM."""
        # Tree depth plus the final accumulate/sqrt of the norm scalar.
        return self.config.levels + 4

    def reduction_cycles(self, elems: int) -> int:
        """Cycles for a standalone reduction of ``elems`` values.

        Input loading is O(1) per beat and output generation is
        O(log2 E) — the tree property highlighted in Section IV-C.
        """
        if elems <= 0:
            return 0
        beats = math.ceil(elems / self.config.elements_per_cycle)
        return beats + self.flush_cycles()
