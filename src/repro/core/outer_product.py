"""DiVa's outer-product GEMM engine (Section IV-B).

The engine decomposes an (M, K, N) GEMM into K rank-1 updates: each
cycle one column of the LHS (length m) and one row of the RHS (length n)
are broadcast over row/column buses and multiplied all-to-all, retiring
``m x n`` MACs *regardless of the K dimension* — the property that
rescues the tall-skinny per-example weight-gradient GEMMs of DP-SGD.
Outputs stay resident in per-PE accumulators (an output-stationary
dataflow) and drain at ``drain_rows_per_cycle`` rows per clock, either
to the SRAM output buffer or directly into the PPU.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.arch.engine import (
    GemmEngine,
    TileGrid,
    TileShape,
    chunk_sizes,
    chunk_spec,
)
from repro.workloads.gemms import Gemm


class OuterProductEngine(GemmEngine):
    """DiVa's all-to-all outer-product engine."""

    name = "DiVa"
    dataflow = "output_stationary"
    grid_axes = ("m", "n")

    def tiles(self, gemm: Gemm) -> list[TileShape]:
        """Tile M onto PE rows and N onto PE columns; K iterates in time."""
        cfg = self.config
        return [
            TileShape(mt, gemm.k, nt)
            for mt in chunk_sizes(gemm.m, cfg.height)
            for nt in chunk_sizes(gemm.n, cfg.width)
        ]

    def tile_grid(self, gemm: Gemm) -> TileGrid:
        cfg = self.config
        return TileGrid(outer=chunk_spec(gemm.m, cfg.height),
                        inner=chunk_spec(gemm.n, cfg.width))

    def grid_tile_dims(
        self, gemm: Gemm, outer_sizes: NDArray[Any],
        inner_sizes: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any], NDArray[Any]]:
        return outer_sizes, np.full_like(outer_sizes, gemm.k), inner_sizes

    def tile_cycle_phases(self, tile: TileShape) -> tuple[int, int]:
        """One rank-1 update per cycle: K cycles of compute, then drain."""
        cfg = self.config
        drain = math.ceil(tile.m / cfg.drain_rows_per_cycle)
        return drain, tile.k

    def tile_phases_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        drain = (m + cfg.drain_rows_per_cycle - 1) // cfg.drain_rows_per_cycle
        return drain, k

    def tile_sram_traffic(self, tile: TileShape) -> tuple[int, int]:
        """Streams one LHS column + one RHS row per cycle (Table I)."""
        cfg = self.config
        reads = (tile.m + tile.n) * tile.k * cfg.input_bytes
        writes = tile.m * tile.n * cfg.acc_bytes
        return reads, writes

    def tile_traffic_batch(
        self, m: NDArray[Any], k: NDArray[Any], n: NDArray[Any],
    ) -> tuple[NDArray[Any], NDArray[Any]]:
        cfg = self.config
        reads = (m + n) * k * cfg.input_bytes
        writes = m * n * cfg.acc_bytes
        return reads, writes
