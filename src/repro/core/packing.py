"""Spatial multi-GEMM packing: the paper's stated future work.

Section VII: "co-locating multiple skinny GEMMs within the ML
accelerator for spatial multi-tasking is an interesting approach that
can potentially lead to higher PE utility in DP-SGD ... we leave it as
future work."  This module implements that extension as a model: a
:class:`PackedOuterProductEngine` whose row/column broadcast buses are
*segmented* into ``bus_segments`` independent sectors, allowing several
small independent GEMMs (e.g. the ``B`` per-example weight-gradient
GEMMs, or MobileNet's per-channel grouped GEMMs) to occupy disjoint
array quadrants simultaneously.

Cost model: segmenting a bus adds repeaters/steering per segment; we
charge an area/power factor per extra segment (see
:func:`packing_overhead_fraction`), in the same spirit as the base
broadcast-bus overhead of Table III.
"""

from __future__ import annotations

import math

from repro.arch.engine import ArrayConfig, GemmStats
from repro.core.outer_product import OuterProductEngine
from repro.workloads.gemms import Gemm

#: Additional array-area fraction per extra bus segment (model constant;
#: segmented buses need repeaters and per-segment drivers).
SEGMENT_AREA_FRACTION = 0.02


def packing_overhead_fraction(bus_segments: int) -> float:
    """Fractional area/power overhead of ``bus_segments`` sectors."""
    if bus_segments < 1:
        raise ValueError("need at least one bus segment")
    return SEGMENT_AREA_FRACTION * (bus_segments - 1)


class PackedOuterProductEngine(OuterProductEngine):
    """Outer-product engine with segmented broadcast buses.

    When a batched GEMM's single-instance footprint (m x n) occupies
    only a fraction of the array, up to
    ``(H // m) * (W // n)`` instances (bounded by ``bus_segments``) are
    mapped onto disjoint sectors and execute concurrently — each sector
    broadcasting its own operand pair.
    """

    name = "DiVa-Pack"

    def __init__(self, config: ArrayConfig | None = None,
                 bus_segments: int = 4) -> None:
        super().__init__(config)
        if bus_segments < 1:
            raise ValueError("need at least one bus segment")
        self.bus_segments = bus_segments

    def packing_factor(self, gemm: Gemm) -> int:
        """How many instances of ``gemm`` run concurrently."""
        cfg = self.config
        if gemm.count == 1:
            return 1
        fit = (cfg.height // gemm.m) * (cfg.width // gemm.n)
        if fit <= 1:
            return 1
        return max(1, min(self.bus_segments, fit, gemm.count))

    def _cache_key(self) -> tuple[object, ...]:
        return super()._cache_key() + (self.bus_segments,)

    def _pack_stats(self, gemm: Gemm, per_instance: GemmStats,
                    pack: int) -> GemmStats:
        # `pack` instances run concurrently; the batch completes in
        # ceil(count / pack) sequential rounds of one-instance latency.
        rounds = math.ceil(gemm.count / pack)
        return GemmStats(
            gemm=gemm,
            engine=self.name,
            compute_cycles=per_instance.compute_cycles * rounds,
            macs=gemm.macs,
            peak_macs_per_cycle=per_instance.peak_macs_per_cycle,
            tiles=per_instance.tiles * gemm.count,
            sram_read_bytes=per_instance.sram_read_bytes * gemm.count,
            sram_write_bytes=per_instance.sram_write_bytes * gemm.count,
        )

    def _compute_gemm_stats(self, gemm: Gemm) -> GemmStats:
        pack = self.packing_factor(gemm)
        if pack == 1:
            return super()._compute_gemm_stats(gemm)
        return self._pack_stats(
            gemm, super()._compute_gemm_stats(gemm.single()), pack)

    def gemm_stats_reference(self, gemm: Gemm) -> GemmStats:
        pack = self.packing_factor(gemm)
        if pack == 1:
            return super().gemm_stats_reference(gemm)
        return self._pack_stats(
            gemm, super().gemm_stats_reference(gemm.single()), pack)
