"""DiVa core: outer-product GEMM engine, PPU, configuration, factory."""

from repro.core.config import DivaConfig
from repro.core.diva import (
    ACCELERATOR_KINDS,
    build_accelerator,
    build_cluster,
    build_diva,
)
from repro.core.outer_product import OuterProductEngine
from repro.core.ppu import PostProcessingUnit, PpuConfig

__all__ = [
    "DivaConfig",
    "OuterProductEngine",
    "PostProcessingUnit",
    "PpuConfig",
    "ACCELERATOR_KINDS",
    "build_accelerator",
    "build_cluster",
    "build_diva",
]
