"""Accelerator factory: DiVa and the WS/OS systolic baselines.

``build_accelerator`` constructs every design point evaluated in
Figures 13–16:

* ``"ws"`` — the TPUv3-like weight-stationary baseline (no PPU: its
  coarse output granularity cannot feed the adder trees, Section IV-C);
* ``"os"`` — output-stationary systolic array, with or without a PPU;
* ``"diva"`` — the outer-product engine, with or without a PPU.
"""

from __future__ import annotations

from repro.arch.accelerator import Accelerator
from repro.arch.cluster import Cluster
from repro.arch.interconnect import Interconnect, InterconnectConfig
from repro.arch.memory import MemorySystem
from repro.arch.systolic import OutputStationaryEngine, WeightStationaryEngine
from repro.arch.vector import VectorUnit
from repro.core.config import DivaConfig
from repro.core.outer_product import OuterProductEngine
from repro.core.ppu import PostProcessingUnit

ACCELERATOR_KINDS = ("ws", "os", "diva")

_ENGINES = {
    "ws": WeightStationaryEngine,
    "os": OutputStationaryEngine,
    "diva": OuterProductEngine,
}


def build_accelerator(
    kind: str,
    with_ppu: bool | None = None,
    config: DivaConfig | None = None,
) -> Accelerator:
    """Build an accelerator design point.

    Parameters
    ----------
    kind:
        One of :data:`ACCELERATOR_KINDS`.
    with_ppu:
        Attach the PPU.  Defaults to True for OS/DiVa and is rejected
        for WS (whose dataflow cannot exploit it, Section IV-C).
    config:
        Shared architecture configuration (Table II defaults).
    """
    kind = kind.lower()
    if kind not in _ENGINES:
        raise KeyError(f"unknown accelerator kind {kind!r}; "
                       f"choose from {ACCELERATOR_KINDS}")
    cfg = config or DivaConfig()
    if with_ppu is None:
        with_ppu = kind != "ws"
    if with_ppu and kind == "ws":
        raise ValueError(
            "a WS systolic array cannot integrate the PPU: its output "
            "tiles are vector-memory sized (tens of MB), not drain-rate "
            "sized (Section IV-C)"
        )
    engine = _ENGINES[kind](cfg.array)
    ppu = PostProcessingUnit(cfg.ppu) if with_ppu else None
    name = {"ws": "WS", "os": "OS", "diva": "DiVa"}[kind]
    return Accelerator(
        name=name,
        engine=engine,
        memory=MemorySystem(cfg.memory, frequency_hz=cfg.array.frequency_hz),
        vector=VectorUnit(cfg.vector),
        ppu=ppu,
    )


def build_diva(config: DivaConfig | None = None,
               with_ppu: bool = True) -> Accelerator:
    """Convenience builder for the full DiVa design."""
    return build_accelerator("diva", with_ppu=with_ppu, config=config)


def build_cluster(
    kind: str = "diva",
    n_chips: int = 1,
    with_ppu: bool | None = None,
    config: DivaConfig | None = None,
    interconnect: Interconnect | InterconnectConfig | None = None,
) -> Cluster:
    """Build a homogeneous multi-chip cluster of one design point.

    ``n_chips`` identical accelerators (see :func:`build_accelerator`)
    behind one interconnect — the execution target of the data-parallel
    sharded training step and the ``scaling`` experiment.
    """
    if n_chips < 1:
        raise ValueError(f"n_chips must be >= 1, got {n_chips}")
    ic_config = interconnect.config \
        if isinstance(interconnect, Interconnect) else interconnect
    if ic_config is not None and ic_config.topology == "hierarchical" \
            and n_chips > 1 and n_chips % ic_config.chips_per_node:
        # A 1-chip cluster is exempt: it has no collectives at all.
        raise ValueError(
            f"{n_chips} chips do not group into hierarchical nodes of "
            f"{ic_config.chips_per_node}; pick a chips_per_node that "
            f"divides the chip count")
    chips = [build_accelerator(kind, with_ppu=with_ppu, config=config)
             for _ in range(n_chips)]
    return Cluster(chips, interconnect=interconnect)
