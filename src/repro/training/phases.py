"""Training-step phase taxonomy, matching Figures 5 and 14.

The paper decomposes a training step into the stages below; every
simulated operation is attributed to exactly one phase so the breakdown
figures can be regenerated.
"""

from __future__ import annotations

import enum


class Phase(enum.Enum):
    """Stages of a training step (labels follow Figure 5/14).

    ``COMM`` is not a paper phase: it is the cross-chip collective stage
    (norm + clipped-gradient allreduce) charged only by the multi-chip
    sharded step (:func:`repro.training.simulate.simulate_sharded_training_step`);
    single-chip reports never contain it.
    """

    FWD = "Fwdprop"
    BWD_ACT_1 = "Bwd(activation grad, 1st pass)"
    BWD_EXAMPLE_GRAD = "Bwd(per-example grad)"
    BWD_GRAD_NORM = "Bwd(grad norm)"
    BWD_ACT_2 = "Bwd(activation grad, 2nd pass)"
    BWD_BATCH_GRAD = "Bwd(per-batch grad)"
    BWD_GRAD_CLIP = "Bwd(grad clip)"
    BWD_REDUCE_NOISE = "Bwd(Reduce/noise)"
    COMM = "Comm(allreduce)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Phases belonging to backpropagation (everything but forward and
#: cross-chip communication).
BACKPROP_PHASES = tuple(
    p for p in Phase if p not in (Phase.FWD, Phase.COMM)
)

#: Rendering order used by the single-chip breakdown figures (5/14);
#: deliberately excludes the cluster-only COMM phase.
PHASE_ORDER = (
    Phase.FWD,
    Phase.BWD_ACT_1,
    Phase.BWD_EXAMPLE_GRAD,
    Phase.BWD_GRAD_NORM,
    Phase.BWD_ACT_2,
    Phase.BWD_BATCH_GRAD,
    Phase.BWD_GRAD_CLIP,
    Phase.BWD_REDUCE_NOISE,
)

#: Rendering order for multi-chip sharded-step breakdowns.
CLUSTER_PHASE_ORDER = PHASE_ORDER + (Phase.COMM,)
