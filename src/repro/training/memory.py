"""Memory footprint model for SGD / DP-SGD / DP-SGD(R) (Figure 4, Sec. III-A).

The paper's Figure 4 decomposes TPUv3 HBM usage into weights,
activations, per-batch weight gradients, per-example weight gradients
and "else"; per-example gradients average 78% of DP-SGD's footprint and
cap the feasible mini-batch at a fraction of the non-private one
(e.g. ResNet-152: 8192 for SGD vs 32 for DP-SGD).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.training.algorithms import Algorithm
from repro.workloads.model import Network

#: Default accelerator HBM capacity (Google TPUv3: 16 GB).
DEFAULT_CAPACITY_BYTES = 16 * 2**30

#: Fraction of HBM the runtime keeps free (allocator fragmentation,
#: framework reserves).  Calibrated so the max-batch search reproduces
#: the paper's power-of-two batch sizes.
DEFAULT_RESERVED_FRACTION = 0.10


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-category memory usage of one training step, in bytes."""

    weights: int
    activations: int
    batch_gradients: int
    example_gradients: int
    other: int

    @property
    def total(self) -> int:
        return (self.weights + self.activations + self.batch_gradients
                + self.example_gradients + self.other)

    def fraction(self, category: str) -> float:
        """Fraction of the total taken by ``category`` (attribute name)."""
        return getattr(self, category) / self.total

    def as_dict(self) -> dict[str, int]:
        return {
            "weights": self.weights,
            "activations": self.activations,
            "batch_gradients": self.batch_gradients,
            "example_gradients": self.example_gradients,
            "other": self.other,
        }


def memory_breakdown(
    network: Network,
    algorithm: Algorithm,
    batch: int,
    act_bytes: int = 2,
    grad_bytes: int = 4,
    master_bytes: int = 4,
    optimizer_slots: int = 1,
) -> MemoryBreakdown:
    """Model the HBM footprint of one training step.

    Parameters
    ----------
    act_bytes:
        Activation storage width (BF16 on TPUs).
    grad_bytes:
        Gradient storage width (FP32 accumulation, Table I footnote).
    master_bytes:
        Master weight copy width (FP32).
    optimizer_slots:
        Extra per-parameter optimizer state copies (momentum).
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    params = network.params
    # FP32 master copy plus the BF16 working copy fed to the GEMM engine.
    weights = params * (master_bytes + act_bytes)
    activations = network.act_elems_per_example * batch * act_bytes
    batch_gradients = params * grad_bytes
    if algorithm.stores_example_gradients:
        example_gradients = params * grad_bytes * batch
    elif algorithm.is_private:
        # DP-SGD(R): transient per-layer buffer — per-example gradients
        # of the largest layer live only until their norms are derived.
        example_gradients = network.max_layer_params * grad_bytes * batch
    else:
        example_gradients = 0
    other = params * grad_bytes * optimizer_slots
    other += network.input_elems * batch * act_bytes
    if algorithm.is_private:
        # Per-example norm scalars and clip scales.
        other += 2 * batch * len(network.weight_layers) * grad_bytes
    return MemoryBreakdown(
        weights=weights,
        activations=activations,
        batch_gradients=batch_gradients,
        example_gradients=example_gradients,
        other=other,
    )


def checkpoint_bytes(
    network: Network,
    grad_bytes: int = 4,
    master_bytes: int = 4,
    optimizer_slots: int = 1,
) -> int:
    """Bytes of persistent state one training checkpoint must capture.

    Restartable state is the FP32 master weights plus the optimizer
    slots — the same per-parameter terms :func:`memory_breakdown`
    charges as resident HBM.  Activations, per-example gradients and
    the batch-gradient buffer are transient within a step and are
    recomputed after a restart, so they never reach storage.
    """
    if optimizer_slots < 0:
        raise ValueError(
            f"optimizer_slots must be >= 0, got {optimizer_slots}")
    return network.params * (master_bytes + grad_bytes * optimizer_slots)


def max_batch_size(
    network: Network,
    algorithm: Algorithm,
    capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    reserved_fraction: float = DEFAULT_RESERVED_FRACTION,
    power_of_two: bool = True,
    **kwargs,
) -> int:
    """Largest feasible training mini-batch under ``capacity_bytes``.

    Mirrors the Section III-A experiment: the paper reports
    power-of-two maxima (8192/1024 for SGD vs 32/8 for DP-SGD on
    ResNet-152/BERT-base).
    """
    budget = capacity_bytes * (1.0 - reserved_fraction)
    if memory_breakdown(network, algorithm, 1, **kwargs).total > budget:
        raise ValueError(
            f"{network.name} does not fit a single example under "
            f"{capacity_bytes / 2**30:.1f} GB with {algorithm}"
        )
    low, high = 1, 2
    while memory_breakdown(network, algorithm, high, **kwargs).total <= budget:
        low, high = high, high * 2
    if power_of_two:
        return low
    while high - low > 1:
        mid = (low + high) // 2
        if memory_breakdown(network, algorithm, mid, **kwargs).total <= budget:
            low = mid
        else:
            high = mid
    return low
