"""Pipeline/tensor-parallel schedule partitioning for 3D plans.

:func:`build_pipeline_schedule` splits one replica's whole-step
schedule — the declarative :func:`repro.training.simulate.step_gemm_ops`
list plus the per-phase vector totals — into ``pp`` contiguous layer
stages and prices the GPipe-style microbatched pipeline in closed form.
It consumes only *already-priced* integer op cycles, so the scalar
driver and the NumPy batched evaluator (:mod:`repro.training.batch`)
feed it the same integers and get bit-identical schedules back.

Modeling choices
----------------
* Stages are contiguous layer ranges, balanced on per-layer GEMM
  cycles (the dominant cost; layers without GEMMs ride with their
  neighbors).  Cuts are placed deterministically at the smallest prefix
  reaching each ``j/pp`` share of the total.
* Per-phase vector cycles are apportioned to stages by largest
  remainder — activation-proportional phases by each stage's
  element-wise activation elements, parameter-proportional phases by
  stage parameters — so the stage totals always sum exactly to the
  replica's totals.
* The microbatched makespan is ``ceil((sum_s + (M-1)*max_s) / M)`` over
  the per-stage *per-microbatch* work, plus the per-step optimizer tail
  (reduce/noise/update), which runs once after the drain and is never
  amortized by ``M``.  The bubble is the bottleneck stage's idle time,
  ``steady - max_s``.
* Tensor-parallel collectives are aggregated: every forward /
  activation-gradient GEMM allgathers its column-sharded output, and
  private algorithms combine per-example norm partials once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.arch.cluster import ParallelPlan
from repro.training.algorithms import Algorithm
from repro.training.memory import MemoryBreakdown
from repro.training.phases import PHASE_ORDER, Phase
from repro.workloads.model import Network

#: Gradient / activation storage widths — mirrors repro.training.simulate.
_GRAD_BYTES = 4
_ACT_BYTES = 2

#: Phases whose GEMM outputs are activations that TP must allgather.
_TP_GATHER_PHASES = (Phase.FWD, Phase.BWD_ACT_1, Phase.BWD_ACT_2)

#: Phases whose vector work scales with activations, not parameters.
_ACT_PHASES = frozenset((Phase.FWD, Phase.BWD_ACT_1, Phase.BWD_ACT_2))


@dataclass(frozen=True)
class PipelineSchedule:
    """One replica's schedule split into pipeline stages (all integers)."""

    plan: ParallelPlan
    microbatches: int
    #: ``pp + 1`` layer indices; stage ``s`` holds layers
    #: ``[stage_bounds[s], stage_bounds[s+1])``.
    stage_bounds: tuple[int, ...]
    #: Whole-step cycles of each stage (sums to the replica total).
    stage_cycles: tuple[int, ...]
    #: Parameters owned by each stage (before TP sharding).
    stage_params: tuple[int, ...]
    #: Microbatched makespan of the bottleneck replica, cycles.
    pipeline_cycles: int
    #: Fill/drain idle cycles inside the makespan.
    bubble_cycles: int
    #: Bottleneck stage's share of the gradient-producing phase — the
    #: window the DP allreduce may overlap into.
    overlappable_cycles: int
    #: Per-chip DP gradient allreduce payload: the bottleneck stage's
    #: TP-sharded parameters.
    dp_payload_bytes: int
    #: Total gathered activation bytes of the step's TP allgathers.
    tp_payload_bytes: int
    tp_collectives: int
    #: One microbatch's activation bytes across all stage cuts.
    boundary_micro_bytes: int
    cuts: int


def partition_layers(costs: Sequence[int], pp: int) -> tuple[int, ...]:
    """Contiguous ``pp``-way split of ``costs``, balanced deterministically.

    Cut ``j`` lands at the smallest prefix holding at least ``j/pp`` of
    the total cost (compared in exact integers), nudged so every stage
    keeps at least one layer.  Returns ``pp + 1`` boundary indices.
    """
    n = len(costs)
    if pp < 1:
        raise ValueError(f"pp must be >= 1, got {pp}")
    if pp > n:
        raise ValueError(
            f"cannot split {n} layers into {pp} pipeline stages")
    total = sum(costs)
    bounds = [0]
    prefix = 0
    index = 0
    for j in range(1, pp):
        target = j * total
        while index < n and prefix * pp < target:
            prefix += costs[index]
            index += 1
        # Keep this stage non-empty and leave enough layers behind.
        cut = max(index, bounds[-1] + 1)
        cut = min(cut, n - (pp - j))
        if cut > index:
            prefix += sum(costs[index:cut])
            index = cut
        elif cut < index:
            prefix -= sum(costs[cut:index])
            index = cut
        bounds.append(cut)
    bounds.append(n)
    return tuple(bounds)


def _apportion(value: int, weights: Sequence[int]) -> list[int]:
    """Split ``value`` by ``weights`` with largest-remainder rounding.

    Exact: the shares always sum to ``value``.  Zero total weight falls
    back to uniform weights so nothing is silently dropped.
    """
    n = len(weights)
    total = sum(weights)
    if total == 0:
        weights = [1] * n
        total = n
    shares = [value * w // total for w in weights]
    remainder = value - sum(shares)
    if remainder:
        order = sorted(range(n), key=lambda s: (-(value * weights[s] % total),
                                                s))
        for s in order[:remainder]:
            shares[s] += 1
    return shares


def build_pipeline_schedule(
    network: Network,
    algorithm: Algorithm,
    ops: Sequence,
    op_cycles: Sequence[int],
    phase_cycles: Mapping[Phase, int],
    local_batch: int,
    plan: ParallelPlan,
) -> PipelineSchedule:
    """Split one replica's priced schedule into a pipeline schedule.

    ``ops`` / ``op_cycles`` are the step's
    :class:`~repro.training.simulate.GemmOp` list (built with the
    plan's ``tp``) and each op's integer cycles; ``phase_cycles`` maps
    every phase of the step to its *total* cycles (GEMM + vector).
    Both the scalar driver and the batched evaluator produce identical
    integers here, which makes the resulting schedule — and everything
    priced from it — bitwise-equal across the two paths.
    """
    pp, tp = plan.pp, plan.tp
    layers = network.layers
    layer_index: dict[str, int] = {}
    for i, layer in enumerate(layers):
        layer_index.setdefault(layer.name, i)

    # Map every op to its layer; ops from unnamed/unknown layers ride
    # with the previous op's layer (schedule order is layer order).
    op_layers: list[int] = []
    previous = 0
    for op in ops:
        previous = layer_index.get(op.gemm.layer, previous)
        op_layers.append(previous)

    layer_cost = [0] * len(layers)
    for idx, cycles in zip(op_layers, op_cycles):
        layer_cost[idx] += cycles
    bounds = partition_layers(layer_cost, pp)

    def stage_of(layer: int) -> int:
        for s in range(pp):
            if layer < bounds[s + 1]:
                return s
        return pp - 1

    # -- per-stage, per-phase cycles ----------------------------------------
    step_phases = [p for p in PHASE_ORDER if p in phase_cycles]
    gemm_by_phase: dict[Phase, list[int]] = {p: [0] * pp for p in step_phases}
    for op, idx, cycles in zip(ops, op_layers, op_cycles):
        gemm_by_phase[op.phase][stage_of(idx)] += cycles

    params_w = [sum(l.params for l in layers[bounds[s]:bounds[s + 1]])
                for s in range(pp)]
    act_w = [sum(l.out_elems for l in layers[bounds[s]:bounds[s + 1]]
                 if not l.has_weights)
             for s in range(pp)]

    stage_phase = {p: list(gemm_by_phase[p]) for p in step_phases}
    for phase in step_phases:
        vector = phase_cycles[phase] - sum(gemm_by_phase[phase])
        weights = act_w if phase in _ACT_PHASES else params_w
        for s, share in enumerate(_apportion(vector, weights)):
            stage_phase[phase][s] += share

    stage_cycles = [sum(stage_phase[p][s] for p in step_phases)
                    for s in range(pp)]
    tail = stage_phase.get(Phase.BWD_REDUCE_NOISE, [0] * pp)
    micro = [stage_cycles[s] - tail[s] for s in range(pp)]

    # -- microbatched makespan ----------------------------------------------
    m = plan.resolved_microbatches(local_batch)
    sum_micro = sum(micro)
    max_micro = max(micro)
    steady = -(-(sum_micro + (m - 1) * max_micro) // m)
    pipeline_cycles = steady + max(tail)
    bubble_cycles = steady - max_micro

    bottleneck = stage_cycles.index(max(stage_cycles))
    overlap_phase = (Phase.BWD_GRAD_CLIP if algorithm is Algorithm.DP_SGD
                     else Phase.BWD_BATCH_GRAD)
    overlappable = stage_phase.get(overlap_phase, [0] * pp)[bottleneck]

    # -- communication payloads ---------------------------------------------
    dp_payload = max(-(-p // tp) for p in params_w) * _GRAD_BYTES
    tp_payload = 0
    tp_collectives = 0
    if tp > 1:
        for op in ops:
            if op.phase in _TP_GATHER_PHASES:
                gemm = op.gemm
                tp_payload += gemm.m * (gemm.n * tp) * gemm.count * _ACT_BYTES
                tp_collectives += 1
        if algorithm.is_private:
            # Per-example norm partials combine once across the TP group.
            tp_payload += local_batch * _GRAD_BYTES
            tp_collectives += 1

    micro_examples = -(-local_batch // m)
    boundary_micro_bytes = sum(
        micro_examples * layers[bounds[j] - 1].out_elems * _ACT_BYTES
        for j in range(1, pp))

    return PipelineSchedule(
        plan=plan,
        microbatches=m,
        stage_bounds=bounds,
        stage_cycles=tuple(stage_cycles),
        stage_params=tuple(params_w),
        pipeline_cycles=pipeline_cycles,
        bubble_cycles=bubble_cycles,
        overlappable_cycles=overlappable,
        dp_payload_bytes=dp_payload,
        tp_payload_bytes=tp_payload,
        tp_collectives=tp_collectives,
        boundary_micro_bytes=boundary_micro_bytes,
        cuts=pp - 1,
    )


def stage_memory_breakdown(
    network: Network,
    algorithm: Algorithm,
    local_batch: int,
    stage_bounds: Sequence[int],
    tp: int = 1,
    act_bytes: int = 2,
    grad_bytes: int = 4,
    master_bytes: int = 4,
    optimizer_slots: int = 1,
) -> list[MemoryBreakdown]:
    """Per-stage HBM footprint of one pipeline replica's chips.

    Mirrors :func:`repro.training.memory.memory_breakdown` category by
    category, restricted to the layers of each stage and with every
    parameter-proportional term sharded ``ceil(.../tp)`` across the TP
    group (activations stay replicated: TP ranks hold the gathered
    tensors).  With one stage and ``tp=1`` the single entry reproduces
    the whole-chip breakdown exactly — pinned in tests.
    """
    if local_batch <= 0:
        raise ValueError(f"batch must be positive, got {local_batch}")
    breakdowns: list[MemoryBreakdown] = []
    for s in range(len(stage_bounds) - 1):
        layers = network.layers[stage_bounds[s]:stage_bounds[s + 1]]
        params = sum(l.params for l in layers)
        shard_params = -(-params // tp)
        weights = shard_params * (master_bytes + act_bytes)
        act_elems = sum(l.out_elems for l in layers)
        if s == 0:
            act_elems += network.input_elems
        activations = act_elems * local_batch * act_bytes
        batch_gradients = shard_params * grad_bytes
        if algorithm.stores_example_gradients:
            example_gradients = shard_params * grad_bytes * local_batch
        elif algorithm.is_private:
            largest = max((l.params for l in layers), default=0)
            example_gradients = (-(-largest // tp)) * grad_bytes * local_batch
        else:
            example_gradients = 0
        other = shard_params * grad_bytes * optimizer_slots
        if s == 0:
            other += network.input_elems * local_batch * act_bytes
        if algorithm.is_private:
            weight_layers = sum(1 for l in layers if l.has_weights)
            other += 2 * local_batch * weight_layers * grad_bytes
        breakdowns.append(MemoryBreakdown(
            weights=weights,
            activations=activations,
            batch_gradients=batch_gradients,
            example_gradients=example_gradients,
            other=other,
        ))
    return breakdowns
