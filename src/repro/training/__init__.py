"""Training-step planning, memory modeling and simulation."""

from repro.training.algorithms import Algorithm
from repro.training.memory import (
    DEFAULT_CAPACITY_BYTES,
    MemoryBreakdown,
    max_batch_size,
    memory_breakdown,
)
from repro.training.phases import (
    BACKPROP_PHASES,
    CLUSTER_PHASE_ORDER,
    PHASE_ORDER,
    Phase,
)
from repro.training.batch import (
    ShardedStepBatch,
    StepBatch,
    sharded_step_batch,
    training_step_batch,
)
from repro.training.parallel import (
    PipelineSchedule,
    build_pipeline_schedule,
    partition_layers,
    stage_memory_breakdown,
)
from repro.training.plan import (
    PlacementResult,
    PlanCandidate,
    bottleneck_gemms,
    phase_gemms,
    plan_placement,
)
from repro.training.simulate import (
    ClusterTrainingReport,
    GemmOp,
    TrainingReport,
    allreduce_payload_bytes,
    overlappable_backward_cycles,
    simulate_sharded_training_step,
    simulate_training_step,
    stage_utilization,
    step_gemm_ops,
    step_vector_runs,
)

__all__ = [
    "Algorithm",
    "Phase",
    "PHASE_ORDER",
    "CLUSTER_PHASE_ORDER",
    "BACKPROP_PHASES",
    "phase_gemms",
    "bottleneck_gemms",
    "MemoryBreakdown",
    "memory_breakdown",
    "max_batch_size",
    "DEFAULT_CAPACITY_BYTES",
    "TrainingReport",
    "ClusterTrainingReport",
    "allreduce_payload_bytes",
    "overlappable_backward_cycles",
    "simulate_training_step",
    "simulate_sharded_training_step",
    "stage_utilization",
    "GemmOp",
    "step_gemm_ops",
    "step_vector_runs",
    "StepBatch",
    "ShardedStepBatch",
    "training_step_batch",
    "sharded_step_batch",
    "PipelineSchedule",
    "build_pipeline_schedule",
    "partition_layers",
    "stage_memory_breakdown",
    "PlanCandidate",
    "PlacementResult",
    "plan_placement",
]
