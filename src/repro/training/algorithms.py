"""Training algorithm taxonomy (Algorithm 1 of the paper)."""

from __future__ import annotations

import enum


class Algorithm(enum.Enum):
    """The three training algorithms characterized by the paper.

    * ``SGD`` — non-private mini-batch SGD: one per-batch weight
      gradient per layer (Section II-B).
    * ``DP_SGD`` — canonical differentially-private SGD (Abadi et al.):
      per-example weight gradients, L2-norm clipping, reduction, and
      Gaussian noise (Algorithm 1, ``DERIVE_DP_GRADIENTS``).
    * ``DP_SGD_R`` — reweighted DP-SGD (Lee & Kifer): a first
      backpropagation derives per-example gradient *norms* only, then a
      second pass computes the clipped per-batch gradient directly from
      a reweighted loss (Algorithm 1,
      ``DERIVE_REWEIGHTED_DP_GRADIENTS``).  Trades extra compute for a
      ~3.8x memory reduction (Section III-A) and becomes the paper's
      baseline DP algorithm.
    """

    SGD = "SGD"
    DP_SGD = "DP-SGD"
    DP_SGD_R = "DP-SGD(R)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_private(self) -> bool:
        """Whether the algorithm provides differential privacy."""
        return self is not Algorithm.SGD

    @property
    def stores_example_gradients(self) -> bool:
        """Whether per-example weight gradients persist in memory.

        Only plain DP-SGD materializes all ``B`` gradient sets at once;
        DP-SGD(R) consumes them on the fly during its first pass.
        """
        return self is Algorithm.DP_SGD

    @property
    def backprop_passes(self) -> int:
        """Number of backpropagation passes per training step."""
        return 2 if self is Algorithm.DP_SGD_R else 1
