"""Batched closed-form evaluation of training steps over config grids.

The scalar drivers (:func:`repro.training.simulate.simulate_training_step`
and :func:`~repro.training.simulate.simulate_sharded_training_step`)
pay a Python round trip per GEMM and per design point.  This module
evaluates the *same* analytic model over a struct-of-arrays grid of
configurations — workload x chips x bucket_bytes x topology x DP mode —
in a few NumPy broadcast passes:

* :func:`training_step_batch` prices a list of single-chip step specs
  by collecting every GEMM of every spec into one flat array per
  engine, deduplicating shapes, and pushing them through
  :func:`repro.arch.batch.gemm_stats_batch`; the handful of vector-unit
  kernels per spec reuse the scalar
  :func:`~repro.training.simulate.step_vector_runs` directly (they are
  O(1) per spec and sharing the code path guarantees equality).
* :func:`sharded_step_batch` adds the vectorized collective model of
  :mod:`repro.arch.batch` (bucketing, topology, overlap exposure) on
  top, reusing one shard evaluation for every grid point that shares a
  ``(kind, model, algorithm, local batch, tp)``.  3D grid points
  (``pp``/``tp`` columns > 1) reuse the batched per-op cycle arrays to
  build the same :class:`~repro.training.parallel.PipelineSchedule`
  the scalar driver builds — the schedule consumes only integers, so
  it is bit-identical by construction — and their serial TP/PP
  charges walk the shared link-polymorphic collective forms of
  :mod:`repro.arch.interconnect` in the scalar operation order.

Both are pinned cycle- and seconds-identical to the scalar drivers by
the equivalence tests in ``tests/test_batch_step.py`` — every
floating-point expression repeats the scalar operation order, so the
results are bitwise equal, not merely close.  The ``scaling`` and
``design-space`` experiments and the fleet simulator's service-time
table (:mod:`repro.serve.scheduler`) run their grids through this
module; the process-pool runner remains for non-analytic work.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ContextManager, Sequence

import numpy as np

from repro.arch.accelerator import Accelerator
from repro.arch.batch import (
    allreduce_seconds_batch,
    first_bucket_seconds_batch,
    gemm_stats_batch,
    link_bytes_per_chip_batch,
    n_buckets_batch,
    topology_codes,
)
from repro.arch.cluster import ParallelPlan
from repro.arch.interconnect import (
    DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    DEFAULT_LINK_LATENCY_S,
    Fabric,
    fabric_named,
    pipeline_boundary_seconds,
    tensor_collective_seconds,
)
from repro.training.algorithms import Algorithm
from repro.training.phases import PHASE_ORDER, Phase
from repro.training.simulate import (
    GRAD_BYTES,
    step_gemm_ops,
    step_vector_runs,
)
from repro.workloads.model import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profile import Profiler

#: Fixed phase axis of the batched per-phase cycle matrices.
STEP_PHASES: tuple[Phase, ...] = tuple(Phase)
_PHASE_INDEX = {phase: i for i, phase in enumerate(STEP_PHASES)}


def _stage(profiler: "Profiler | None", name: str) -> ContextManager[Any]:
    """Profiler stage context, or a no-op when profiling is off."""
    return nullcontext() if profiler is None else profiler.stage(name)


@dataclass(frozen=True)
class StepBatch:
    """Per-phase cycle matrix of a batch of single-chip training steps.

    ``phase_cycles[u, p]`` is spec ``u``'s cycle charge in phase
    ``STEP_PHASES[p]`` (zero for phases the algorithm does not touch) —
    exactly the :class:`~repro.training.simulate.TrainingReport` phase
    sums of the scalar driver.
    """

    phase_cycles: np.ndarray
    frequency_hz: np.ndarray
    #: Per-spec schedule-ordered GEMM op cycles (only when collected):
    #: ``op_cycles[u][j]`` is the charge of spec ``u``'s ``j``-th
    #: :func:`~repro.training.simulate.step_gemm_ops` entry.
    op_cycles: "dict[int, np.ndarray] | None" = None

    def __len__(self) -> int:
        return self.phase_cycles.shape[0]

    @property
    def total_cycles(self) -> np.ndarray:
        return self.phase_cycles.sum(axis=1)

    @property
    def total_seconds(self) -> np.ndarray:
        return self.total_cycles / self.frequency_hz

    def cycles_of(self, phase: Phase) -> np.ndarray:
        return self.phase_cycles[:, _PHASE_INDEX[phase]]


#: One single-chip step specification for :func:`training_step_batch`:
#: ``(accelerator, network, algorithm, batch)`` plus an optional
#: trailing tensor-parallel degree (defaults to 1).
StepSpec = "tuple[Accelerator, Network, Algorithm, int]"


def training_step_batch(
    specs: Sequence[tuple],
    profiler: "Profiler | None" = None,
    *,
    collect_ops: bool = False,
) -> StepBatch:
    """Price single-chip training steps, batching all GEMMs per engine.

    ``specs`` is a sequence of ``(accelerator, network, algorithm,
    batch[, tp])`` tuples; accelerator objects may repeat (and sharing
    them across specs lets the evaluator group their GEMMs into one
    vectorized pass).  A trailing ``tp`` column-shards every GEMM and
    parameter-proportional vector kernel across a tensor-parallel
    group.  Returns per-phase cycle sums identical to running
    :func:`simulate_training_step` per spec.

    ``collect_ops=True`` additionally keeps each spec's per-op GEMM
    cycle array (schedule order) — the input the pipeline-schedule
    builder needs for 3D grid points.

    ``profiler`` (a :class:`repro.obs.profile.Profiler`) times the
    vector-kernel and batched-GEMM stages and counts specs / GEMM ops
    / unique shapes — purely additive bookkeeping.
    """
    specs = list(specs)
    matrix = np.zeros((len(specs), len(STEP_PHASES)), dtype=np.int64)
    frequency = np.array([accel.frequency_hz for accel, *_ in specs],
                         dtype=float)
    op_store: "dict[int, np.ndarray] | None" = {} if collect_ops else None
    if profiler is not None:
        profiler.count("step_specs", len(specs))

    groups: dict[int, tuple[Accelerator, list[tuple]]] = {}
    with _stage(profiler, "step-batch/vector"):
        for index, (accel, network, algorithm, batch,
                    *rest) in enumerate(specs):
            tp = rest[0] if rest else 1
            runs = step_vector_runs(network, algorithm, accel, batch, tp=tp)
            for phase, run in runs.items():
                matrix[index, _PHASE_INDEX[phase]] += run.cycles
            _, ops = groups.setdefault(id(accel), (accel, []))
            for op in step_gemm_ops(network, algorithm, accel, batch, tp=tp):
                ops.append((index, _PHASE_INDEX[op.phase],
                            op.gemm.m, op.gemm.k, op.gemm.n,
                            op.gemm.count,
                            op.write_output, op.fuse_norm))

    with _stage(profiler, "step-batch/gemm"):
        for accel, ops in groups.values():
            if not ops:
                continue
            (spec_idx, phase_idx, m, k, n, count, write_out,
             fuse) = (np.array(col) for col in zip(*ops))
            shapes = np.stack([m, k, n], axis=1)
            unique, inverse = np.unique(shapes, axis=0,
                                        return_inverse=True)
            if profiler is not None:
                profiler.count("gemm_ops", len(ops))
                profiler.count("unique_gemm_shapes", len(unique))
            stats = gemm_stats_batch(
                accel.engine, unique[:, 0], unique[:, 1], unique[:, 2], 1)
            compute = stats.compute_cycles[inverse] * count

            input_bytes = accel.config.input_bytes
            acc_bytes = accel.config.acc_bytes
            dram_read = (m * k + k * n) * count * input_bytes
            out_bytes = m * n * count * acc_bytes
            dram_write = np.where(write_out, out_bytes, 0)
            if fuse.any():
                # Mirrors Accelerator.run_gemm's fuse_norm path: the
                # per-GEMM PPU flush is compute-exposed and one norm
                # scalar per GEMM goes off-chip alongside any
                # persisted outputs.
                flush = accel.ppu.flush_cycles()
                compute = compute + np.where(fuse, flush * count, 0)
                dram_write = np.where(fuse,
                                      count * acc_bytes + dram_write,
                                      dram_write)

            total_bytes = dram_read + dram_write
            transfer = np.where(
                total_bytes > 0,
                np.ceil(total_bytes / accel.memory.bytes_per_cycle)
                .astype(np.int64)
                + accel.memory.config.access_latency_cycles,
                0)
            cycles = np.maximum(compute, transfer)
            np.add.at(matrix, (spec_idx, phase_idx), cycles)
            if op_store is not None:
                # spec_idx ascends within a group (ops append spec by
                # spec), so each spec's ops are one contiguous run in
                # schedule order.
                uniq, starts, counts = np.unique(
                    spec_idx, return_index=True, return_counts=True)
                for u, s0, c in zip(uniq, starts, counts):
                    op_store[int(u)] = cycles[s0:s0 + c]

    return StepBatch(phase_cycles=matrix, frequency_hz=frequency,
                     op_cycles=op_store)


@dataclass(frozen=True)
class ShardedStepBatch:
    """Struct-of-arrays result of :func:`sharded_step_batch`.

    One entry per grid point; field semantics match
    :class:`~repro.training.simulate.ClusterTrainingReport` (``comm``
    cycles are the exposed critical-path charge, ``comm_total`` the
    full wire time, their difference the overlap-hidden remainder).
    For 3D grid points ``shard_cycles`` is the microbatched pipeline
    makespan (``pipeline_cycles``) and ``bubble_cycles`` its fill/drain
    idle share; pure-DP points carry a zero bubble.
    """

    n_chips: np.ndarray
    global_batch: np.ndarray
    frequency_hz: np.ndarray
    shard_cycles: np.ndarray
    comm_cycles: np.ndarray
    comm_total_cycles: np.ndarray
    link_bytes: np.ndarray
    #: Data-parallel replica count of each point (= n_chips / (pp*tp)).
    dp: np.ndarray
    bubble_cycles: np.ndarray

    def __len__(self) -> int:
        return self.n_chips.shape[0]

    @property
    def local_batch(self) -> np.ndarray:
        return self.global_batch // self.dp

    @property
    def total_cycles(self) -> np.ndarray:
        return self.shard_cycles + self.comm_cycles

    @property
    def total_seconds(self) -> np.ndarray:
        return self.total_cycles / self.frequency_hz

    @property
    def compute_seconds(self) -> np.ndarray:
        return self.shard_cycles / self.frequency_hz

    @property
    def comm_seconds(self) -> np.ndarray:
        """Exposed (critical-path) collective seconds."""
        return self.comm_cycles / self.frequency_hz

    @property
    def comm_total_seconds(self) -> np.ndarray:
        return self.comm_total_cycles / self.frequency_hz

    @property
    def comm_hidden_seconds(self) -> np.ndarray:
        return (self.comm_total_cycles
                - self.comm_cycles) / self.frequency_hz

    @property
    def comm_fraction(self) -> np.ndarray:
        total = self.total_cycles
        return np.divide(self.comm_cycles, total, where=total != 0,
                         out=np.zeros(len(self), dtype=float))


def _broadcast_column(value, length: int, dtype=None) -> np.ndarray:
    array = np.asarray(value, dtype=dtype)
    if array.ndim == 0:
        array = array[None]
    return np.broadcast_to(array, (length,)).copy()


def _fabric_links(fabrics, length: int,
                  bandwidth: float, latency: float) -> tuple[np.ndarray, ...]:
    """Resolve a fabric column into (cross_bw, cross_lat, intra_bw,
    intra_lat) float arrays.

    ``None`` entries resolve to the uniform fabric built from the
    scalar bandwidth/latency pair — the same floats the scalar
    :meth:`InterconnectConfig.links` resolution feeds, so the default
    grid stays bitwise-identical to the single-link-class model.
    """
    if fabrics is None or isinstance(fabrics, (str, Fabric)):
        fabrics = [fabrics] * length
    fabrics = list(fabrics)
    if len(fabrics) != length:
        raise ValueError("grid columns must broadcast to one length")
    columns = np.empty((4, length), dtype=float)
    for i, fab in enumerate(fabrics):
        if isinstance(fab, str):
            fab = fabric_named(fab)
        if fab is None:
            columns[:, i] = (bandwidth, latency, bandwidth, latency)
        else:
            columns[:, i] = (fab.cross_node.bandwidth_bytes_per_s,
                             fab.cross_node.latency_s,
                             fab.intra_node.bandwidth_bytes_per_s,
                             fab.intra_node.latency_s)
    return columns[0], columns[1], columns[2], columns[3]


def sharded_step_batch(  # repro-lint: ignore[R003] per-step tracing (recorder) has no batched analogue; the batch engine self-profiles via `profiler`
    models: Sequence[str],
    algorithms,
    global_batches,
    chips,
    *,
    topologies="ring",
    bucket_bytes=None,
    chips_per_node=1,
    overlaps=True,
    kinds="diva",
    pps=1,
    tps=1,
    fabrics=None,
    config=None,
    link_bandwidth_bytes_per_s: float = DEFAULT_LINK_BANDWIDTH_BYTES_PER_S,
    link_latency_s: float = DEFAULT_LINK_LATENCY_S,
    profiler: "Profiler | None" = None,
) -> ShardedStepBatch:
    """Price sharded (DP, or 3D DP x PP x TP) training steps over a grid.

    Every argument broadcasts against ``models`` (scalars apply to the
    whole grid); ``bucket_bytes`` uses ``None``/``0`` for one
    monolithic bucket and ``config`` is an optional shared
    :class:`~repro.core.config.DivaConfig` applied to every point.
    ``pps`` / ``tps`` give each point's pipeline/tensor-parallel
    degrees (data parallelism is the remaining ``chips / (pp*tp)``
    factor) and ``fabrics`` names each point's link classes (``None``
    = the uniform fabric from the scalar bandwidth/latency pair).
    Returns quantities identical to running
    :func:`simulate_sharded_training_step` per point — the shard is
    evaluated once per distinct ``(kind, model, algorithm, local
    batch, tp)``, pipeline schedules once per distinct ``(shard,
    pp)``, and the collective model runs fully vectorized.
    ``profiler`` forwards to :func:`training_step_batch` and counts
    grid points / unique shard evaluations.
    """
    from repro.core import build_accelerator
    from repro.workloads import build_model

    models = list(models)
    length = len(models)
    algorithm_names = [
        a.value if isinstance(a, Algorithm) else str(a)
        for a in (algorithms if not isinstance(algorithms, (str, Algorithm))
                  else [algorithms] * length)]
    if len(algorithm_names) == 1 and length > 1:
        algorithm_names = algorithm_names * length
    kind_names = [kinds] * length if isinstance(kinds, str) else list(kinds)
    topology_names = ([topologies] * length if isinstance(topologies, str)
                      else list(topologies))
    global_batch = _broadcast_column(global_batches, length, np.int64)
    n_chips = _broadcast_column(chips, length, np.int64)
    cpn = _broadcast_column(chips_per_node, length, np.int64)
    bucket = _broadcast_column(
        0 if bucket_bytes is None else
        [0 if b is None else b for b in bucket_bytes]
        if not np.isscalar(bucket_bytes) else bucket_bytes,
        length, np.int64)
    overlap = _broadcast_column(overlaps, length, bool)
    pp_col = _broadcast_column(pps, length, np.int64)
    tp_col = _broadcast_column(tps, length, np.int64)
    if not (len(algorithm_names) == len(kind_names)
            == len(topology_names) == length):
        raise ValueError("grid columns must broadcast to one length")
    cross_bw, cross_lat, intra_bw, intra_lat = _fabric_links(
        fabrics, length, link_bandwidth_bytes_per_s, link_latency_s)

    topo = topology_codes(topology_names)
    if (global_batch <= 0).any():
        raise ValueError("global batches must be positive")
    if (pp_col < 1).any() or (tp_col < 1).any():
        raise ValueError("pp and tp degrees must be >= 1")
    mp = pp_col * tp_col
    if (n_chips % mp).any():
        bad = int(np.argmax(n_chips % mp != 0))
        raise ValueError(
            f"{int(n_chips[bad])} chips do not factor into "
            f"pp={int(pp_col[bad])} x tp={int(tp_col[bad])} stages")
    dp = n_chips // mp
    if (global_batch % dp).any():
        bad = int(np.argmax(global_batch % dp != 0))
        if int(mp[bad]) == 1:
            raise ValueError(
                f"global batch {int(global_batch[bad])} does not divide "
                f"evenly across {int(n_chips[bad])} chips")
        plan = ParallelPlan(dp=int(dp[bad]), pp=int(pp_col[bad]),
                            tp=int(tp_col[bad]))
        raise ValueError(
            f"global batch {int(global_batch[bad])} does not divide "
            f"evenly across {int(dp[bad])} data-parallel replicas of "
            f"plan {plan}")
    hier = topo == topology_codes(["hierarchical"])[0]
    lopsided = hier & (dp > 1) & (dp % np.maximum(cpn, 1) != 0)
    if lopsided.any():
        bad = int(np.argmax(lopsided))
        raise ValueError(
            f"{int(dp[bad])} chips do not group into hierarchical "
            f"nodes of {int(cpn[bad])}")
    # Flat topologies ignore chips_per_node in the scalar model only
    # because InterconnectConfig rejects it; mirror that contract.
    if ((~hier) & (cpn != 1)).any():
        raise ValueError(
            "chips_per_node is only meaningful for the 'hierarchical' "
            "topology")

    local_batch = global_batch // dp
    networks: dict[str, Network] = {}
    accels: dict[str, Accelerator] = {}
    shard_keys: list[tuple] = []
    shard_index = np.empty(length, dtype=np.int64)
    key_to_index: dict[tuple, int] = {}
    for i in range(length):
        key = (kind_names[i], models[i], algorithm_names[i],
               int(local_batch[i]), int(tp_col[i]))
        index = key_to_index.get(key)
        if index is None:
            index = len(shard_keys)
            key_to_index[key] = index
            shard_keys.append(key)
        shard_index[i] = index

    specs = []
    for kind, model, algorithm, batch, tp in shard_keys:
        accel = accels.get(kind)
        if accel is None:
            accel = accels[kind] = build_accelerator(kind, config=config)
        network = networks.get(model)
        if network is None:
            network = networks[model] = build_model(model)
        specs.append((accel, network, Algorithm(algorithm), batch, tp))
    if profiler is not None:
        profiler.count("grid_points", length)
        profiler.count("unique_shards", len(shard_keys))
    any_3d = bool((mp > 1).any())
    step = training_step_batch(specs, profiler=profiler,
                               collect_ops=any_3d)

    shard_cycles = step.total_cycles[shard_index]
    frequency = step.frequency_hz[shard_index]
    private = np.array([Algorithm(a).is_private for a in algorithm_names])
    params = np.array([networks[m].params for m in models], dtype=np.int64)
    # Which backward phase the gradient allreduce may hide behind
    # (overlappable_backward_cycles): the clipping pass under DP-SGD,
    # the per-batch weight-gradient GEMMs otherwise.
    dpsgd = np.array([Algorithm(a) is Algorithm.DP_SGD
                      for a in algorithm_names])
    clip = step.cycles_of(Phase.BWD_GRAD_CLIP)[shard_index]
    batch_grad = step.cycles_of(Phase.BWD_BATCH_GRAD)[shard_index]
    overlappable = np.where(dpsgd, clip, batch_grad)

    grad_payload = params * GRAD_BYTES
    # 3D points: replace the whole-replica quantities with the pipeline
    # schedule's — built from the same batched integers the scalar
    # driver prices, so every derived number matches it bit for bit.
    tp_payload = np.zeros(length, dtype=np.int64)
    tp_colls = np.zeros(length, dtype=np.int64)
    boundary = np.zeros(length, dtype=np.int64)
    cuts = np.zeros(length, dtype=np.int64)
    microbatches = np.ones(length, dtype=np.int64)
    bubble = np.zeros(length, dtype=np.int64)
    if any_3d:
        from repro.training.parallel import build_pipeline_schedule

        assert step.op_cycles is not None
        schedules: dict[tuple[int, int], Any] = {}
        shard_cycles = shard_cycles.copy()
        overlappable = overlappable.copy()
        grad_payload = grad_payload.copy()
        for i in np.flatnonzero(mp > 1):
            u = int(shard_index[i])
            sched_key = (u, int(pp_col[i]))
            sched = schedules.get(sched_key)
            if sched is None:
                kind, model, algorithm, batch, tp = shard_keys[u]
                accel = accels[kind]
                network = networks[model]
                ops = step_gemm_ops(
                    network, Algorithm(algorithm), accel, batch, tp=tp)
                sched = build_pipeline_schedule(
                    network, Algorithm(algorithm), ops,
                    [int(c) for c in step.op_cycles.get(u, ())],
                    {p: int(step.phase_cycles[u, _PHASE_INDEX[p]])
                     for p in PHASE_ORDER},
                    batch,
                    ParallelPlan(dp=int(dp[i]), pp=int(pp_col[i]), tp=tp))
                schedules[sched_key] = sched
            shard_cycles[i] = sched.pipeline_cycles
            bubble[i] = sched.bubble_cycles
            overlappable[i] = sched.overlappable_cycles
            grad_payload[i] = sched.dp_payload_bytes
            tp_payload[i] = sched.tp_payload_bytes
            tp_colls[i] = sched.tp_collectives
            boundary[i] = sched.boundary_micro_bytes
            cuts[i] = sched.cuts
            microbatches[i] = sched.microbatches

    norm_payload = global_batch * GRAD_BYTES
    comm_args = (dp, topo, bucket, cpn)
    kwargs = {"bandwidth": cross_bw, "latency": cross_lat,
              "intra_bandwidth": intra_bw, "intra_latency": intra_lat}
    grad_s = allreduce_seconds_batch(grad_payload, *comm_args, **kwargs)
    norm_s = allreduce_seconds_batch(norm_payload, *comm_args, **kwargs)
    total_s = grad_s + np.where(private, norm_s, 0.0)
    wire = link_bytes_per_chip_batch(grad_payload, *comm_args)
    wire = wire + np.where(
        private, link_bytes_per_chip_batch(norm_payload, *comm_args), 0)

    # Overlap exposure: only the gradient-sum allreduce hides behind
    # backward compute; the norm-bookkeeping collective stays serial.
    buckets = np.maximum(n_buckets_batch(grad_payload, bucket), 1)
    window_s = ((overlappable / frequency) * (buckets - 1)) / buckets
    exposed_grad_s = np.maximum(
        first_bucket_seconds_batch(grad_payload, *comm_args, **kwargs),
        grad_s - window_s)
    exposed_s = np.where(overlap & (dp > 1),
                         exposed_grad_s + (total_s - grad_s), total_s)

    # Serial model-parallel charges: TP allgathers gate their GEMMs and
    # the pipeline boundary fill/drain is exposed by construction.
    # Same link-polymorphic forms (and operand order) as the scalar
    # Interconnect methods; masked entries contribute exact zero, so
    # pure-DP points keep their legacy floats bit for bit.
    tp_mask = (tp_col > 1) & (tp_payload > 0)
    pp_mask = (cuts > 0) & (boundary > 0)
    serial_s = (
        np.where(tp_mask, tensor_collective_seconds(
            tp_payload, tp_colls, tp_col, intra_bw, intra_lat), 0.0)
        + np.where(pp_mask, pipeline_boundary_seconds(
            boundary, cuts, cross_bw, cross_lat), 0.0))
    tp_shard = -(-(-(-tp_payload // np.maximum(tp_colls, 1)))
                 // np.maximum(tp_col, 1))
    wire = wire + np.where(tp_mask & (tp_colls > 0),
                           tp_colls * (tp_col - 1) * tp_shard, 0)
    per_cut = -(-boundary // np.maximum(cuts, 1))
    touched = np.where(pp_col > 2, 2, 1)
    wire = wire + np.where(pp_mask & (pp_col > 1),
                           2 * microbatches * touched * per_cut, 0)

    comm_total_cycles = np.ceil(
        (total_s + serial_s) * frequency).astype(np.int64)
    comm_cycles = np.minimum(
        np.ceil((exposed_s + serial_s) * frequency).astype(np.int64),
        comm_total_cycles)

    return ShardedStepBatch(
        n_chips=n_chips,
        global_batch=global_batch,
        frequency_hz=frequency,
        shard_cycles=shard_cycles,
        comm_cycles=comm_cycles,
        comm_total_cycles=comm_total_cycles,
        link_bytes=wire,
        dp=dp,
        bubble_cycles=bubble,
    )
